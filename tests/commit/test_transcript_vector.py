"""Batched scalar absorption: framing, determinism, and domain separation."""

from repro.commit.transcript import Transcript
from repro.field import GOLDILOCKS

F = GOLDILOCKS


def test_vector_equals_explicit_framing():
    scalars = [0, 1, 12345, F.p - 1]
    t1 = Transcript(F)
    t1.append_scalar_vector(b"col", scalars)
    payload = len(scalars).to_bytes(8, "little") + b"".join(
        s.to_bytes(32, "little") for s in scalars
    )
    t2 = Transcript(F)
    t2.append_message(b"col", payload)
    assert t1.challenge_scalar(b"c") == t2.challenge_scalar(b"c")


def test_vector_differs_from_per_scalar_loop():
    scalars = [7, 8, 9]
    batched = Transcript(F)
    batched.append_scalar_vector(b"col", scalars)
    loop = Transcript(F)
    for s in scalars:
        loop.append_scalar(b"col", s)
    assert batched.challenge_scalar(b"c") != loop.challenge_scalar(b"c")


def test_length_prefix_prevents_concatenation_ambiguity():
    t1 = Transcript(F)
    t1.append_scalar_vector(b"col", [1, 2])
    t1.append_scalar_vector(b"col", [3])
    t2 = Transcript(F)
    t2.append_scalar_vector(b"col", [1])
    t2.append_scalar_vector(b"col", [2, 3])
    assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")


def test_empty_vector_is_absorbed():
    t1 = Transcript(F)
    t1.append_scalar_vector(b"col", [])
    t2 = Transcript(F)
    assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")
