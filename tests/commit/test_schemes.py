"""Tests for the KZG-sim and IPA-sim commitment backends."""

import random

import pytest

from repro.commit import IPAScheme, KZGScheme, KZGSetup, scheme_by_name
from repro.commit.scheme import Commitment
from repro.field import GOLDILOCKS

F = GOLDILOCKS


@pytest.fixture(params=["kzg", "ipa"])
def scheme(request):
    return scheme_by_name(request.param, F)


class TestCommitOpenVerify:
    def test_honest_opening_verifies(self, scheme):
        coeffs = [random.randrange(F.p) for _ in range(16)]
        com = scheme.commit(coeffs)
        proof = scheme.open(coeffs, 12345)
        assert scheme.verify_opening(com, proof)

    def test_wrong_value_rejected(self, scheme):
        coeffs = [random.randrange(F.p) for _ in range(16)]
        com = scheme.commit(coeffs)
        proof = scheme.open(coeffs, 12345)
        bad = type(proof)(point=proof.point, value=F.add(proof.value, 1),
                          witness=proof.witness)
        assert not scheme.verify_opening(com, bad)

    def test_wrong_polynomial_rejected(self, scheme):
        coeffs = [random.randrange(F.p) for _ in range(16)]
        other = list(coeffs)
        other[3] = F.add(other[3], 1)
        com = scheme.commit(coeffs)
        proof = scheme.open(other, 7)
        assert not scheme.verify_opening(com, proof)

    def test_commitment_is_deterministic(self, scheme):
        coeffs = [1, 2, 3]
        assert scheme.commit(coeffs).digest == scheme.commit(coeffs).digest

    def test_backends_domain_separated(self):
        coeffs = [1, 2, 3]
        assert (KZGScheme(F).commit(coeffs).digest
                != IPAScheme(F).commit(coeffs).digest)


class TestKZGSetupBound:
    def test_within_bound_ok(self):
        scheme = KZGScheme(F, KZGSetup(max_k=4))
        scheme.commit([0] * 16)

    def test_exceeding_bound_raises(self):
        scheme = KZGScheme(F, KZGSetup(max_k=4))
        with pytest.raises(ValueError):
            scheme.commit([0] * 17)

    def test_ipa_has_no_bound(self):
        IPAScheme(F).commit([0] * 1024)


class TestModeledEnvelope:
    def test_msm_counts_match_paper(self):
        # KZG: n_FFT + d_max - 1; IPA: n_FFT + d_max  (section 7.4)
        assert KZGScheme(F).extra_msms(3) == 2
        assert IPAScheme(F).extra_msms(3) == 3

    def test_ipa_openings_grow_with_k(self):
        ipa = IPAScheme(F)
        assert ipa.opening_proof_bytes(20) > ipa.opening_proof_bytes(10)

    def test_kzg_openings_constant(self):
        kzg = KZGScheme(F)
        assert kzg.opening_proof_bytes(20) == kzg.opening_proof_bytes(10)

    def test_verifier_work_kzg_constant_ipa_linear(self):
        kzg, ipa = KZGScheme(F), IPAScheme(F)
        assert kzg.verifier_group_ops(20) == kzg.verifier_group_ops(10)
        assert ipa.verifier_group_ops(20) == 1024 * ipa.verifier_group_ops(10)


def test_unknown_scheme_raises():
    with pytest.raises(KeyError):
        scheme_by_name("groth16", F)


def test_commitment_digest_must_be_32_bytes():
    with pytest.raises(ValueError):
        Commitment(b"short")
