"""Tests for the Merkle tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commit import MerkleTree, verify_merkle_path


def test_empty_rejected():
    with pytest.raises(ValueError):
        MerkleTree([])


def test_single_leaf():
    t = MerkleTree([b"only"])
    assert verify_merkle_path(t.root, 0, b"only", t.open(0))


def test_all_paths_verify():
    leaves = [bytes([i]) * 4 for i in range(7)]
    t = MerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        assert verify_merkle_path(t.root, i, leaf, t.open(i))


def test_wrong_leaf_rejected():
    leaves = [b"a", b"b", b"c", b"d"]
    t = MerkleTree(leaves)
    assert not verify_merkle_path(t.root, 1, b"x", t.open(1))


def test_wrong_index_rejected():
    leaves = [b"a", b"b", b"c", b"d"]
    t = MerkleTree(leaves)
    assert not verify_merkle_path(t.root, 2, b"b", t.open(1))


def test_out_of_range_open():
    t = MerkleTree([b"a", b"b"])
    with pytest.raises(IndexError):
        t.open(2)


def test_roots_differ_for_different_content():
    assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root


def test_leaf_node_domain_separation():
    # A single leaf equal to the concatenation of two hashes must not
    # collide with the two-leaf tree (second-preimage resistance shape).
    t2 = MerkleTree([b"a", b"b"])
    forged = MerkleTree([t2._levels[0][0] + t2._levels[0][1]])
    assert forged.root != t2.root


@given(
    n=st.integers(min_value=1, max_value=20),
    idx_frac=st.floats(min_value=0, max_value=0.999),
)
@settings(max_examples=25)
def test_paths_verify_property(n, idx_frac):
    leaves = [i.to_bytes(4, "little") for i in range(n)]
    t = MerkleTree(leaves)
    i = int(idx_frac * n)
    assert verify_merkle_path(t.root, i, leaves[i], t.open(i))
