"""Tests for the Fiat-Shamir transcript."""

from repro.commit import Transcript
from repro.field import GOLDILOCKS


def test_deterministic_replay():
    t1 = Transcript(GOLDILOCKS)
    t2 = Transcript(GOLDILOCKS)
    for t in (t1, t2):
        t.append_scalar(b"a", 5)
        t.append_message(b"b", b"hello")
    assert t1.challenge_scalar(b"c") == t2.challenge_scalar(b"c")


def test_different_messages_give_different_challenges():
    t1 = Transcript(GOLDILOCKS)
    t2 = Transcript(GOLDILOCKS)
    t1.append_scalar(b"a", 5)
    t2.append_scalar(b"a", 6)
    assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")


def test_label_separation():
    t1 = Transcript(GOLDILOCKS)
    t2 = Transcript(GOLDILOCKS)
    assert t1.challenge_scalar(b"x") != t2.challenge_scalar(b"y")


def test_sequential_challenges_differ():
    t = Transcript(GOLDILOCKS)
    assert t.challenge_scalar(b"c") != t.challenge_scalar(b"c")


def test_challenge_in_field():
    t = Transcript(GOLDILOCKS)
    for _ in range(10):
        assert 0 <= t.challenge_scalar(b"c") < GOLDILOCKS.p


def test_challenge_nonzero():
    t = Transcript(GOLDILOCKS)
    assert t.challenge_nonzero(b"z") != 0


def test_commitment_absorption_changes_state():
    t1 = Transcript(GOLDILOCKS)
    t2 = Transcript(GOLDILOCKS)
    t1.append_commitment(b"com", b"\x01" * 32)
    t2.append_commitment(b"com", b"\x02" * 32)
    assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")
