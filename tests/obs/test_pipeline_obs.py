"""End-to-end observability: spans, metrics, and the no-op guarantee."""

import json
import pickle

import numpy as np
import pytest

from repro.model import get_model
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, use_tracer
from repro.runtime import prove_model


def model_inputs(spec, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }


@pytest.fixture(scope="module")
def traced_run():
    spec = get_model("dlrm", "mini")
    inputs = model_inputs(spec)
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer):
        result = prove_model(spec, inputs, metrics=registry)
        result.verification_seconds()
    return spec, inputs, tracer, registry, result


class TestSpanTree:
    def test_covers_pipeline_stages(self, traced_run):
        _, _, tracer, _, _ = traced_run
        names = {s.name for s in tracer.spans()}
        for required in ("prove_model", "synthesize", "layout", "witness",
                        "keygen", "prove", "commit", "helpers", "quotient",
                        "openings", "verify"):
            assert required in names, "missing span %r" % required

    def test_phases_are_children_of_prove(self, traced_run):
        _, _, tracer, _, _ = traced_run
        spans = {s.name: s for s in tracer.spans()}
        prove = spans["prove"]
        for phase in ("commit", "helpers", "quotient", "openings"):
            assert spans[phase].parent_id == prove.span_id
        # each supervised attempt gets its own span between the stage and
        # prove_model, so retries are visible in the trace tree
        supervised = spans["supervised:prove"]
        assert spans["prove"].parent_id == supervised.span_id
        assert supervised.parent_id == spans["prove_model"].span_id

    def test_keygen_attrs(self, traced_run):
        _, _, tracer, _, result = traced_run
        (keygen,) = [s for s in tracer.spans() if s.name == "keygen"]
        assert keygen.attrs["k"] == result.k
        assert keygen.attrs["scheme"] == "kzg"
        assert "pk_cache_hit" in keygen.attrs

    def test_chrome_export_loadable(self, traced_run, tmp_path):
        _, _, tracer, _, _ = traced_run
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"], "no events exported"
        # complete events plus the "M" metadata records naming the lanes
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestMetricsRecording:
    def test_observed_counts_match_metrics(self, traced_run):
        _, _, _, registry, result = traced_run
        assert result.observed_counts["ntt_base"] > 0
        assert registry.value(
            "zkml_ntt_invocations", model=result.spec_name, domain="base"
        ) == result.observed_counts["ntt_base"]
        assert registry.value(
            "zkml_prover_ops", model=result.spec_name, op="commitments"
        ) == result.observed_counts["commitments"]

    def test_predicted_vs_actual_report(self, traced_run):
        _, _, _, _, result = traced_run
        rows = result.predicted_vs_actual()
        assert {r["quantity"] for r in rows} == {
            "ffts_base", "ffts_extended", "msms", "lookup_passes"}
        for row in rows:
            assert row["actual"] > 0 and row["predicted"] > 0
        # the layout simulator counts lookup passes exactly
        (lookups,) = [r for r in rows if r["quantity"] == "lookup_passes"]
        assert lookups["ratio"] == 1.0

    def test_circuit_stats_present(self, traced_run):
        _, _, _, registry, result = traced_run
        model = result.spec_name
        assert registry.value("zkml_rows_total", model=model) == 1 << result.k
        used = registry.value("zkml_rows_used", model=model)
        assert 0 < used <= 1 << result.k


class TestNoOpGuarantee:
    def test_proof_bytes_identical_with_and_without_tracing(self):
        # the acceptance bar: enabling observability must not perturb the
        # transcript.  (The untraced path is also the default, so this
        # doubles as a regression test for pre-PR byte equality.)
        spec = get_model("dlrm", "mini")
        inputs = model_inputs(spec)
        plain = prove_model(spec, inputs, use_pk_cache=False)
        with use_tracer(Tracer()):
            traced = prove_model(spec, inputs, use_pk_cache=False,
                                 metrics=MetricsRegistry())
        assert pickle.dumps(plain.proof) == pickle.dumps(traced.proof)

    def test_prove_result_api_unchanged(self, traced_run):
        _, _, _, _, result = traced_run
        assert set(result.phase_seconds) == {"commit", "helpers", "quotient",
                                             "openings"}
        assert result.proving_seconds > 0
