"""Tests for the metrics registry, exporters, and circuit recorders."""

from types import SimpleNamespace

import pytest

from repro.gadgets import AddGadget, CircuitBuilder
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    predicted_vs_actual,
    record_circuit_stats,
    record_costmodel_drift,
    record_prover_run,
    render_predicted_vs_actual,
)
from repro.tensor import Entry


class TestPrimitives:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.value("c") == 3

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(5)
        reg.gauge("g").inc(-2)
        assert reg.value("g") == 3

    def test_labels_are_separate_instances(self):
        reg = MetricsRegistry()
        reg.counter("ops", op="fft").inc(4)
        reg.counter("ops", op="msm").inc(1)
        assert reg.value("ops", op="fft") == 4
        assert reg.value("ops", op="msm") == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 105.5" in text
        assert "lat_count 3" in text


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.counter("zkml_ntts", "NTT calls", domain="base").inc(7)
        reg.gauge("zkml_k", "log2 rows", model="toy").set(9)
        text = reg.to_prometheus()
        assert "# HELP zkml_ntts NTT calls" in text
        assert "# TYPE zkml_ntts counter" in text
        assert 'zkml_ntts{domain="base"} 7' in text
        assert "# TYPE zkml_k gauge" in text
        assert 'zkml_k{model="toy"} 9' in text
        assert text.endswith("\n")

    def test_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.prom"
        reg.write(str(path))
        assert path.read_text() == reg.to_prometheus()

    def test_label_value_escaping(self):
        # spec order: backslashes first, then quotes and newlines —
        # escaping in the wrong order double-escapes the quote's backslash
        reg = MetricsRegistry()
        reg.counter("c", layer='conv "a"\\b\nrest').inc()
        text = reg.to_prometheus()
        assert r'c{layer="conv \"a\"\\b\nrest"} 1' in text
        assert "\n\n" not in text  # the raw newline must not survive

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", 'rows\nper "layer" \\ band').inc()
        text = reg.to_prometheus()
        # HELP escapes backslash + newline but NOT quotes (per the spec)
        assert '# HELP c rows\\nper "layer" \\\\ band' in text

    def test_deterministic_ordering(self):
        # families sort by name, instances by label key — insertion order
        # must not leak into the export (diffs of two runs stay clean)
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1.counter("b", op="y").inc()
        reg1.counter("b", op="x").inc()
        reg1.gauge("a").set(1)
        reg2.gauge("a").set(1)
        reg2.counter("b", op="x").inc()
        reg2.counter("b", op="y").inc()
        assert reg1.to_prometheus() == reg2.to_prometheus()
        text = reg1.to_prometheus()
        assert text.index("# TYPE a ") < text.index("# TYPE b ")
        assert text.index('op="x"') < text.index('op="y"')


class TestHistogramQuantiles:
    def test_empty_histogram_returns_none(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        assert h.quantile(0.5) is None
        assert h.quantile(0.0) is None
        # and the export still renders zeroed buckets, not garbage
        text = reg.to_prometheus()
        assert 'lat_bucket{le="1"} 0' in text
        assert "lat_count 0" in text

    def test_single_sample(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        h.observe(5.0)
        # the one sample lands in (1, 10]; every quantile interpolates
        # inside that bucket
        for q in (0.1, 0.5, 1.0):
            est = h.quantile(q)
            assert 1.0 <= est <= 10.0

    def test_interpolation_midpoint(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.0, 10.0))
        for _ in range(2):
            h.observe(5.0)
        # both samples in (0, 10]: the median ranks halfway through the
        # bucket, so linear interpolation lands on 5.0 exactly
        assert h.quantile(0.5) == 5.0

    def test_overflow_clamps_to_largest_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        h.observe(1000.0)  # beyond every finite bucket
        assert h.quantile(0.99) == 10.0

    def test_rejects_out_of_range_q(self):
        h = MetricsRegistry().histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)


class TestNullMetrics:
    def test_accepts_everything(self):
        NULL_METRICS.counter("a", x=1).inc(5)
        NULL_METRICS.gauge("b").set(2)
        NULL_METRICS.histogram("c").observe(1.0)


class TestCircuitStats:
    def toy(self):
        """One AddGadget row: 12 = 5 + 7.  Hand-countable."""
        builder = CircuitBuilder(k=4, num_cols=10, scale_bits=6)
        gadget = builder.gadget(AddGadget)
        gadget.assign_row([(Entry(5), Entry(7))])
        layout = SimpleNamespace(
            per_layer_rows={"add0": 1},
            gadget_rows=1,
            spec=SimpleNamespace(name="toy"),
        )
        return SimpleNamespace(layout=layout, builder=builder)

    def test_hand_counted_toy_circuit(self):
        synthesized = self.toy()
        builder = synthesized.builder
        reg = MetricsRegistry()
        record_circuit_stats(reg, synthesized, model="toy")

        assert reg.value("zkml_rows_total", model="toy") == 16  # 2^4
        assert reg.value("zkml_k", model="toy") == 4
        assert reg.value("zkml_rows_used", model="toy") == 1
        assert reg.value("zkml_gadget_rows", model="toy") == 1
        # one add: a, b, and z occupy three advice cells on one row
        advice_cells = sum(
            sum(1 for v in col if v is not None)
            for col in builder.asg.advice
        )
        assert reg.value("zkml_cells_assigned", model="toy",
                         kind="advice") == advice_cells == 3
        assert reg.value("zkml_cells_assigned", model="toy",
                         kind="instance") == 0
        assert reg.value("zkml_copy_constraints", model="toy") == len(
            builder.asg.copies)
        assert reg.value("zkml_columns", model="toy", kind="advice") == 10
        assert reg.value("zkml_gates", model="toy") == len(builder.cs.gates)
        assert reg.value("zkml_layer_rows", model="toy", layer="add0") == 1
        # the add selector is on for exactly the one assigned row
        assert reg.value("zkml_gadget_selector_rows", model="toy",
                         gate="add") == 1

    def test_lookup_rows(self):
        synthesized = self.toy()
        reg = MetricsRegistry()
        record_circuit_stats(reg, synthesized, model="toy")
        lookups = len(synthesized.builder.cs.lookups)
        assert reg.value("zkml_lookup_rows", model="toy") == lookups * 16


class TestProverRun:
    def test_records_counters_and_predictions(self):
        reg = MetricsRegistry()
        observed = {"ntt_base": 10, "ntt_extended": 20, "commitments": 5,
                    "transcript_absorbs": 40, "lookup_passes": 2}
        predicted = {"ffts_base": 9.5, "msms": 5.0, "lookup_passes": 2.0}
        record_prover_run(reg, "toy", observed, predicted,
                          phase_seconds={"commit": 0.25})
        assert reg.value("zkml_ntt_invocations", model="toy",
                         domain="base") == 10
        assert reg.value("zkml_ntt_invocations", model="toy",
                         domain="extended") == 20
        assert reg.value("zkml_hash_invocations", model="toy",
                         site="transcript") == 40
        assert reg.value("zkml_prover_ops", model="toy",
                         op="commitments") == 5
        assert reg.value("zkml_predicted_ops", model="toy",
                         op="msms") == 5.0
        assert reg.value("zkml_phase_seconds", model="toy",
                         phase="commit") == 0.25


class TestBatchSlotAttribution:
    def test_single_run_defaults(self):
        reg = MetricsRegistry()
        record_prover_run(reg, "toy", {"ntt_base": 4}, {},
                          phase_seconds={"commit": 0.2})
        assert reg.value("zkml_prover_runs_total", model="toy") == 1
        assert reg.value("zkml_prover_slots_total", model="toy") == 1
        # no amortized family for an unbatched run
        text = reg.to_prometheus()
        assert "zkml_slot_phase_seconds" not in text
        assert "zkml_batch_slots" not in text

    def test_batch_attributed_per_slot(self):
        # a batch of 4 is 4 proved inferences in ONE run — the whole-batch
        # latency must not be reported as if it were a single inference
        reg = MetricsRegistry()
        record_prover_run(reg, "toy", {"ntt_base": 4}, {},
                          phase_seconds={"commit": 0.8}, slots=4)
        assert reg.value("zkml_prover_runs_total", model="toy") == 1
        assert reg.value("zkml_prover_slots_total", model="toy") == 4
        assert reg.value("zkml_phase_seconds", model="toy",
                         phase="commit") == 0.8
        assert reg.value("zkml_slot_phase_seconds", model="toy",
                         phase="commit") == 0.2
        assert reg.value("zkml_batch_slots", model="toy") == 4


class TestCostModelDrift:
    def test_drift_is_symmetric_log_ratio(self):
        reg = MetricsRegistry()
        over = record_costmodel_drift(reg, "toy", "p", 2.0, 1.0)
        under = record_costmodel_drift(reg, "toy", "q", 0.5, 1.0)
        assert over["drift"] == pytest.approx(under["drift"])
        assert reg.value("zkml_costmodel_drift", model="toy",
                         profile="p") == pytest.approx(over["drift"],
                                                       abs=1e-6)
        assert reg.value("zkml_costmodel_predicted_seconds", model="toy",
                         profile="p") == 2.0
        assert reg.value("zkml_costmodel_actual_seconds", model="toy",
                         profile="p") == 1.0

    def test_exact_prediction_is_zero_drift(self):
        reg = MetricsRegistry()
        rep = record_costmodel_drift(reg, "toy", "p", 1.5, 1.5)
        assert rep["drift"] == 0.0


class TestPredictedVsActual:
    def test_rows_and_ratio(self):
        rows = predicted_vs_actual(
            {"ffts_base": 10.0, "msms": 4.0},
            {"ntt_base": 12, "commitments": 4},
        )
        by_name = {r["quantity"]: r for r in rows}
        assert by_name["ffts_base"]["ratio"] == 1.2
        assert by_name["msms"]["ratio"] == 1.0

    def test_render(self):
        rows = predicted_vs_actual({"ffts_base": 10.0}, {"ntt_base": 12})
        text = render_predicted_vs_actual(rows)
        assert "quantity" in text and "ffts_base" in text
        assert render_predicted_vs_actual([]) == "(no predicted-vs-actual data)"
