"""Tests for the span tracer and its exporters."""

import json
import os

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


def fake_clock(step=1.0):
    """A deterministic clock advancing by ``step`` per read."""
    state = {"t": 0.0}

    def read():
        state["t"] += step
        return state["t"]

    return read


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner2"].parent_id == spans["outer"].span_id

    def test_deterministic_ordering(self):
        # spans() sorts by (start, id): outer first despite finishing last
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans()] == ["a", "b"]

    def test_to_tree(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.to_tree()
        assert root["name"] == "root"
        (child,) = root["children"]
        assert child["name"] == "child"
        assert child["children"][0]["name"] == "grandchild"

    def test_attributes(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("keygen", k=11, scheme="kzg") as sp:
            sp.set_attr("pk_cache_hit", True)
        (span,) = tracer.spans()
        assert span.attrs == {"k": 11, "scheme": "kzg", "pk_cache_hit": True}

    def test_duration_from_clock(self):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("work"):
            pass
        (span,) = tracer.spans()
        assert span.duration == 1.0

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=fake_clock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans()] == ["boom"]


class TestChromeExport:
    def test_schema(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("prove", k=9):
            with tracer.span("commit"):
                pass
        doc = tracer.to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2
        for event in complete:
            assert set(event) == {"name", "cat", "ph", "ts", "dur", "pid",
                                  "tid", "args"}
            assert event["cat"] == "zkml"
            assert event["ts"] >= 0
            assert event["dur"] > 0
        assert complete[0]["args"] == {"k": 9}
        # one process_name + one thread_name lane for the single thread
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}

    def test_ingested_worker_spans_get_distinct_lanes(self):
        # spans shipped back from worker processes keep their own pid and
        # render on their own named lanes — not collapsed onto the main one
        tracer = Tracer(clock=fake_clock())
        with tracer.span("prove") as prove:
            parent = prove.span_id
        # one ingest call per task result, exactly as parallel_map does;
        # both workers restarted their span ids at 1
        tracer.ingest(
            [{"name": "task", "id": 1, "parent": None, "start": 1.5,
              "end": 2.0, "pid": 91001, "tid": 7, "attrs": {}},
             {"name": "sub", "id": 2, "parent": 1, "start": 1.6,
              "end": 1.8, "pid": 91001, "tid": 7, "attrs": {}}],
            parent_id=parent,
        )
        tracer.ingest(
            [{"name": "task", "id": 1, "parent": None, "start": 1.5,
              "end": 2.1, "pid": 91002, "tid": 9, "attrs": {}}],
            parent_id=parent,
        )
        spans = {(s.name, s.pid): s for s in tracer.spans()}
        # remapped ids: no collisions despite both workers starting at 1
        assert len({s.span_id for s in tracer.spans()}) == 4
        # batch roots hang off the dispatching span; in-batch links remap
        assert spans[("task", 91001)].parent_id == parent
        assert spans[("task", 91002)].parent_id == parent
        assert spans[("sub", 91001)].parent_id == \
            spans[("task", 91001)].span_id

        doc = tracer.to_chrome_trace()
        x_by_pid = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                x_by_pid.setdefault(event["pid"], set()).add(event["tid"])
        assert set(x_by_pid) == {os.getpid(), 91001, 91002}
        meta_names = {(e["pid"], e["args"]["name"])
                      for e in doc["traceEvents"] if e["ph"] == "M"
                      and e["name"] == "process_name"}
        assert (91001, "zkml worker 91001") in meta_names
        assert (91002, "zkml worker 91002") in meta_names


class TestRecordSpan:
    def test_externally_timed_span(self):
        tracer = Tracer(clock=fake_clock())
        span_id = tracer.record_span("serve:batch", 2.0, 5.0,
                                     batch_id="batch-7", ok=True)
        (span,) = tracer.spans()
        assert span.span_id == span_id
        assert span.name == "serve:batch"
        assert (span.start, span.end, span.duration) == (2.0, 5.0, 3.0)
        assert span.parent_id is None
        assert span.pid == os.getpid()
        assert span.attrs == {"batch_id": "batch-7", "ok": True}

    def test_returned_id_anchors_ingested_batches(self):
        # the cluster path: record the parent serve:batch span after the
        # fact, then hang the worker's shipped tree under it
        tracer = Tracer(clock=fake_clock())
        parent = tracer.record_span("serve:batch", 1.0, 4.0)
        tracer.ingest(
            [{"name": "worker:prove", "id": 1, "parent": None, "start": 1.5,
              "end": 3.5, "pid": 4242, "tid": 1, "attrs": {}}],
            parent_id=parent)
        spans = {s.name: s for s in tracer.spans()}
        assert spans["worker:prove"].parent_id == parent
        assert spans["worker:prove"].pid == 4242

    def test_explicit_pid_tid_override(self):
        tracer = Tracer(clock=fake_clock())
        tracer.record_span("ghost", 0.0, 1.0, pid=777, tid=3)
        (span,) = tracer.spans()
        assert (span.pid, span.tid) == (777, 3)

    def test_null_tracer_record_span_is_inert(self):
        assert NULL_TRACER.record_span("x", 0.0, 1.0) is None
        assert NULL_TRACER.now() == 0.0
        assert NULL_TRACER.spans() == []


class TestConcurrentIngest:
    """Satellite-4 coverage: the parent tracer under multi-worker load.

    The serve collect loop ingests one batch's spans per result, from a
    thread racing the request threads recording their own spans.  Every
    worker tracer restarts its ids at 1, so *all* shipped ids collide —
    remapping must hold up under concurrency, interleaving, and volume.
    """

    def test_interleaved_batches_from_many_threads(self):
        import threading

        tracer = Tracer(clock=fake_clock())
        anchor = tracer.record_span("serve:session", 0.0, 1000.0)
        workers, batches, spans_per_batch = 4, 8, 3
        barrier = threading.Barrier(workers)

        def ship(worker):
            barrier.wait()  # maximize interleaving across workers
            for batch in range(batches):
                payload = [
                    {"name": "worker:prove", "id": 1, "parent": None,
                     "start": 1.0, "end": 2.0, "pid": 90000 + worker,
                     "tid": 1, "attrs": {"batch": batch}}]
                payload += [
                    {"name": "step-%d" % i, "id": i + 2, "parent": 1,
                     "start": 1.1, "end": 1.9, "pid": 90000 + worker,
                     "tid": 1, "attrs": {}}
                    for i in range(spans_per_batch - 1)]
                tracer.ingest(payload, parent_id=anchor)

        threads = [threading.Thread(target=ship, args=(w,))
                   for w in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        spans = tracer.spans()
        assert len(spans) == 1 + workers * batches * spans_per_batch
        # fresh ids all around: no collisions despite every batch
        # shipping ids 1..spans_per_batch
        assert len({s.span_id for s in spans}) == len(spans)
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.name == "worker:prove"]
        assert len(roots) == workers * batches
        for root in roots:
            assert root.parent_id == anchor
        # every child resolved to a root from its OWN batch (same pid,
        # same batch attr) — interleaving never cross-wired parents
        for span in spans:
            if span.name.startswith("step-"):
                parent = by_id[span.parent_id]
                assert parent.name == "worker:prove"
                assert parent.pid == span.pid

    def test_ingest_races_live_recording(self):
        import threading

        tracer = Tracer(clock=fake_clock())
        stop = threading.Event()

        def record_live():
            while not stop.is_set():
                with tracer.span("live"):
                    pass

        recorder = threading.Thread(target=record_live)
        recorder.start()
        try:
            for batch in range(50):
                tracer.ingest(
                    [{"name": "shipped", "id": 1, "parent": None,
                      "start": 1.0, "end": 2.0, "pid": 91000, "tid": 1,
                      "attrs": {"batch": batch}}],
                    parent_id=None)
                tracer.record_span("stitched", 1.0, 2.0, batch=batch)
        finally:
            stop.set()
            recorder.join()

        spans = tracer.spans()
        assert len({s.span_id for s in spans}) == len(spans)
        assert sum(1 for s in spans if s.name == "shipped") == 50
        assert sum(1 for s in spans if s.name == "stitched") == 50
        # the export stays coherent: one lane per (pid, tid), all events
        doc = tracer.to_chrome_trace()
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(spans)


class TestCollapsedExport:
    def test_folded_stacks_self_time(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("root"):        # clock: 1..6 -> dur 5
            with tracer.span("leaf"):    # clock: 2..3 -> dur 1
                pass
            with tracer.span("leaf"):    # clock: 4..5 -> dur 1
                pass
        folded = tracer.to_collapsed()
        lines = dict(line.rsplit(" ", 1) for line in folded.splitlines())
        # two identical leaf stacks merge; root reports SELF time only
        assert lines["root;leaf"] == str(2 * 1_000_000)
        assert lines["root"] == str((5 - 2) * 1_000_000)

    def test_write_by_extension(self, tmp_path):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            pass
        folded = tmp_path / "t.folded"
        tracer.write(str(folded))
        assert folded.read_text().startswith("a ")

    def test_write_chrome_and_jsonl(self, tmp_path):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            pass
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        tracer.write(str(chrome))
        tracer.write(str(jsonl))
        complete = [e for e in json.loads(chrome.read_text())["traceEvents"]
                    if e["ph"] == "X"]
        assert complete[0]["name"] == "a"
        lines = jsonl.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["parent"] is None


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        # the disabled path allocates nothing: every span() call returns
        # the same inert object
        a = NULL_TRACER.span("anything")
        b = NULL_TRACER.span("else")
        assert a is b
        with a as sp:
            sp.set_attr("ignored", 1)
        assert NULL_TRACER.spans() == []
        assert not NullTracer.enabled


class TestCurrentTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores(self):
        tracer = Tracer(clock=fake_clock())
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_means_null(self):
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
