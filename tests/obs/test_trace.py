"""Tests for the span tracer and its exporters."""

import json

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


def fake_clock(step=1.0):
    """A deterministic clock advancing by ``step`` per read."""
    state = {"t": 0.0}

    def read():
        state["t"] += step
        return state["t"]

    return read


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner2"].parent_id == spans["outer"].span_id

    def test_deterministic_ordering(self):
        # spans() sorts by (start, id): outer first despite finishing last
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans()] == ["a", "b"]

    def test_to_tree(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        (root,) = tracer.to_tree()
        assert root["name"] == "root"
        (child,) = root["children"]
        assert child["name"] == "child"
        assert child["children"][0]["name"] == "grandchild"

    def test_attributes(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("keygen", k=11, scheme="kzg") as sp:
            sp.set_attr("pk_cache_hit", True)
        (span,) = tracer.spans()
        assert span.attrs == {"k": 11, "scheme": "kzg", "pk_cache_hit": True}

    def test_duration_from_clock(self):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("work"):
            pass
        (span,) = tracer.spans()
        assert span.duration == 1.0

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=fake_clock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans()] == ["boom"]


class TestChromeExport:
    def test_schema(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("prove", k=9):
            with tracer.span("commit"):
                pass
        doc = tracer.to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert set(event) == {"name", "cat", "ph", "ts", "dur", "pid",
                                  "tid", "args"}
            assert event["ph"] == "X"
            assert event["cat"] == "zkml"
            assert event["ts"] >= 0
            assert event["dur"] > 0
        assert doc["traceEvents"][0]["args"] == {"k": 9}

    def test_write_chrome_and_jsonl(self, tmp_path):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("a"):
            pass
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        tracer.write(str(chrome))
        tracer.write(str(jsonl))
        assert json.loads(chrome.read_text())["traceEvents"][0]["name"] == "a"
        lines = jsonl.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["parent"] is None


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        # the disabled path allocates nothing: every span() call returns
        # the same inert object
        a = NULL_TRACER.span("anything")
        b = NULL_TRACER.span("else")
        assert a is b
        with a as sp:
            sp.set_attr("ignored", 1)
        assert NULL_TRACER.spans() == []
        assert not NullTracer.enabled


class TestCurrentTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores(self):
        tracer = Tracer(clock=fake_clock())
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_means_null(self):
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
