"""Tests for the layer-level proving profiler and ``zkml profile``."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.model import get_model
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import UNATTRIBUTED, attribute_layers, profile_model


@pytest.fixture(autouse=True)
def reset_log_level():
    from repro.obs import log as obs_log

    yield
    obs_log.set_level(obs_log.INFO)


def model_inputs(spec, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }


@pytest.fixture(scope="module")
def mnist_profile():
    spec = get_model("mnist", "mini")
    registry = MetricsRegistry()
    report, tracer, result = profile_model(spec, model_inputs(spec),
                                           registry=registry)
    return report, tracer, result, registry


class TestAttribution:
    def test_rows_sum_exactly_to_rows_used(self, mnist_profile):
        # the acceptance bar: attribution never invents or loses rows
        report, _, _, _ = mnist_profile
        assert report.attributed_rows() == report.rows_used
        assert sum(lp.row_share for lp in report.layers) == \
            pytest.approx(1.0)

    def test_every_row_claiming_layer_appears(self, mnist_profile):
        # layers that laid out rows must each get a profile entry
        # (flatten claims no rows, so it legitimately has none)
        report, _, result, _ = mnist_profile
        names = {lp.name for lp in report.layers}
        for layer, rows in result.synthesized.layout.per_layer_rows.items():
            if rows > 0:
                assert layer in names

    def test_bands_are_disjoint_and_ordered(self, mnist_profile):
        report, _, _, _ = mnist_profile
        real = [lp for lp in report.layers if lp.name != UNATTRIBUTED]
        for before, after in zip(real, real[1:]):
            assert before.end <= after.start

    def test_cells_and_copies_match_circuit_totals(self, mnist_profile):
        report, _, result, _ = mnist_profile
        asg = result.synthesized.builder.asg
        total_cells = sum(
            sum(1 for v in col if v is not None) for col in asg.advice)
        # every assigned advice cell lives inside some layer band (mnist
        # layers cover all used rows), and every copy lands somewhere
        assert sum(lp.advice_cells for lp in report.layers) == total_cells
        assert sum(lp.copies for lp in report.layers) == len(asg.copies)

    def test_selector_rows_match_grid(self, mnist_profile):
        report, _, result, _ = mnist_profile
        builder = result.synthesized.builder
        per_gate = {}
        for lp in report.layers:
            for gate, rows in lp.selector_rows.items():
                per_gate[gate] = per_gate.get(gate, 0) + rows
        for gate in builder.cs.gates:
            if gate.selector is None:
                continue
            on = sum(builder.asg.selectors[gate.selector.index])
            if on:
                assert per_gate.get(gate.name, 0) == on == \
                    report.gadget_rows[gate.name]

    def test_synth_seconds_from_layer_spans(self, mnist_profile):
        report, tracer, _, _ = mnist_profile
        spanned = {s.name[len("layer:"):] for s in tracer.spans()
                   if s.name.startswith("layer:")}
        for lp in report.layers:
            if lp.name in spanned:
                assert lp.synth_seconds > 0

    def test_est_prove_seconds_partitions_total(self, mnist_profile):
        report, _, _, _ = mnist_profile
        assert sum(lp.est_prove_seconds for lp in report.layers) == \
            pytest.approx(report.prove_seconds)

    def test_unattributed_bucket_covers_gap(self):
        # a builder whose regions don't cover every used row: the gap
        # must land in the (unattributed) bucket, keeping the sum exact
        from repro.gadgets import AddGadget, CircuitBuilder
        from repro.tensor import Entry

        builder = CircuitBuilder(k=4, num_cols=10, scale_bits=6)
        with builder.region("layer0", "add"):
            builder.gadget(AddGadget).assign_row([(Entry(5), Entry(7))])
        # rows assigned outside any region
        builder.gadget(AddGadget).assign_row([(Entry(1), Entry(2))])
        profiles = attribute_layers(builder)
        by_name = {lp.name: lp for lp in profiles}
        assert UNATTRIBUTED in by_name
        assert sum(lp.rows for lp in profiles) == builder.rows_used
        assert by_name[UNATTRIBUTED].rows > 0


class TestReport:
    def test_json_roundtrip(self, mnist_profile, tmp_path):
        report, _, _, _ = mnist_profile
        path = tmp_path / "p.json"
        report.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == "zkml-profile/v1"
        assert doc["attributed_rows"] == doc["rows_used"]
        assert doc["layers"][0]["rows"] >= doc["layers"][-1]["rows"]

    def test_render_ranked_table(self, mnist_profile):
        report, _, _, _ = mnist_profile
        text = report.render(top=2)
        assert "mnist-mini" in text
        assert "more layers" in text  # truncation line for top=2
        assert "gadgets:" in text

    def test_registry_gets_layer_gauges(self, mnist_profile):
        report, _, _, registry = mnist_profile
        top = report.ranked()[0]
        assert registry.value("zkml_profile_layer_rows",
                              model="mnist-mini",
                              layer=top.name) == top.rows


class TestProfileCommand:
    def test_cli_writes_all_three_artifacts(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        rc = main(["profile", "--model", "dlrm", "--out", str(out),
                   "--top", "3"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["attributed_rows"] == doc["rows_used"]
        trace = json.loads((tmp_path / "prof.trace.json").read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "prove_model" in names and "commit" in names
        folded = (tmp_path / "prof.folded").read_text()
        assert "prove_model" in folded
        assert "ranked" not in folded  # folded format is stacks only
        table = capsys.readouterr().out
        assert "layer" in table and "rows" in table
