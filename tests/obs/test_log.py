"""Tests for the structured CLI logger."""

import pytest

from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def reset_level():
    yield
    obs_log.set_level(obs_log.INFO)


class TestConfigure:
    def test_default_info(self):
        obs_log.configure(env={})
        assert obs_log.get_level() == obs_log.INFO

    def test_quiet_wins(self):
        obs_log.configure(quiet=True, verbosity=3, env={})
        assert obs_log.get_level() == obs_log.ERROR

    def test_verbose(self):
        obs_log.configure(verbosity=1, env={})
        assert obs_log.get_level() == obs_log.DEBUG

    def test_env_variable(self):
        obs_log.configure(env={"ZKML_LOG_LEVEL": "warning"})
        assert obs_log.get_level() == obs_log.WARNING

    def test_flags_beat_env(self):
        obs_log.configure(verbosity=1, env={"ZKML_LOG_LEVEL": "error"})
        assert obs_log.get_level() == obs_log.DEBUG

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            obs_log.set_level("nonsense")


class TestOutput:
    def test_info_goes_to_stdout_bare(self, capsys):
        log = obs_log.get_logger("t")
        log.info("proving: %.2f s", 1.5)
        captured = capsys.readouterr()
        assert captured.out == "proving: 1.50 s\n"
        assert captured.err == ""

    def test_structured_fields_appended_sorted(self, capsys):
        log = obs_log.get_logger("t")
        log.info("done", model="mnist", k=9)
        assert capsys.readouterr().out == "done k=9 model=mnist\n"

    def test_warning_prefixed_on_stderr(self, capsys):
        log = obs_log.get_logger("t")
        log.warning("odd %s", "thing")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "warning: odd thing\n"

    def test_quiet_suppresses_info(self, capsys):
        obs_log.set_level(obs_log.ERROR)
        log = obs_log.get_logger("t")
        log.info("hidden")
        log.error("shown")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error: shown" in captured.err

    def test_debug_hidden_by_default(self, capsys):
        log = obs_log.get_logger("t")
        log.debug("hidden")
        assert capsys.readouterr().err == ""
        obs_log.set_level(obs_log.DEBUG)
        log.debug("shown", hit=True)
        assert capsys.readouterr().err == "[debug t] shown hit=True\n"

    def test_get_logger_cached(self):
        assert obs_log.get_logger("x") is obs_log.get_logger("x")


class TestBind:
    def test_bound_fields_appear_on_every_record(self, capsys):
        log = obs_log.get_logger("t")
        with obs_log.bind(request_id="req-1"):
            log.info("accepted")
            log.info("resolved")
        assert capsys.readouterr().out == (
            "accepted request_id=req-1\nresolved request_id=req-1\n")

    def test_bindings_nest_and_unwind(self, capsys):
        log = obs_log.get_logger("t")
        with obs_log.bind(request_id="req-1"):
            with obs_log.bind(batch_id="batch-9"):
                log.info("inner")
                assert obs_log.bound_fields() == {"request_id": "req-1",
                                                 "batch_id": "batch-9"}
            log.info("outer")
        log.info("outside")
        assert obs_log.bound_fields() == {}
        assert capsys.readouterr().out == (
            "inner batch_id=batch-9 request_id=req-1\n"
            "outer request_id=req-1\n"
            "outside\n")

    def test_explicit_fields_win_over_bound(self, capsys):
        log = obs_log.get_logger("t")
        with obs_log.bind(request_id="req-old"):
            log.info("msg", request_id="req-new")
        assert capsys.readouterr().out == "msg request_id=req-new\n"

    def test_bindings_are_per_thread(self):
        import threading

        seen = {}

        def other_thread():
            seen["fields"] = obs_log.bound_fields()

        with obs_log.bind(request_id="req-main"):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["fields"] == {}

    def test_binding_survives_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs_log.bind(request_id="req-1"):
                raise RuntimeError("boom")
        assert obs_log.bound_fields() == {}
