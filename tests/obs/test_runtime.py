"""Tests for the runtime telemetry layer (SLO windows, flight recorder)."""

import json

import pytest

from repro.obs.runtime import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    NULL_RUNTIME,
    RuntimeTelemetry,
    SloTracker,
    SloWindow,
    flight_checksum,
    new_batch_id,
    new_request_id,
    percentile,
    render_status,
    verify_flight_dump,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestIds:
    def test_ids_unique_and_prefixed(self):
        rids = {new_request_id() for _ in range(100)}
        assert len(rids) == 100
        assert all(r.startswith("req-") for r in rids)
        assert new_batch_id().startswith("batch-")

    def test_ids_sortable_in_mint_order(self):
        a, b = new_request_id(), new_request_id()
        assert int(a.rsplit("-", 1)[1]) < int(b.rsplit("-", 1)[1])


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank(self):
        values = sorted([1.0, 2.0, 3.0, 4.0])
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.95) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0

    def test_singleton(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSloWindow:
    def test_counts_and_percentiles(self):
        win = SloWindow("1m", 60.0)
        for i in range(10):
            win.observe(100.0, latency=0.1 * (i + 1), ok=i != 0,
                        occupancy=4)
        snap = win.snapshot(100.0)
        assert snap["count"] == 10
        assert snap["errors"] == 1
        assert snap["error_rate"] == 0.1
        assert snap["mean_occupancy"] == 4.0
        assert snap["p50_seconds"] == 0.5
        assert snap["p99_seconds"] == 1.0

    def test_horizon_eviction(self):
        win = SloWindow("1m", 60.0)
        win.observe(0.0, latency=9.0, ok=False, occupancy=1)
        win.observe(59.0, latency=0.1, ok=True, occupancy=1)
        # at t=70 the t=0 sample (and its error) has aged out
        snap = win.snapshot(70.0)
        assert snap["count"] == 1
        assert snap["errors"] == 0
        assert snap["p99_seconds"] == 0.1

    def test_total_window_keeps_exact_counts_past_ring(self):
        win = SloWindow("total", None, max_samples=8, started_at=0.0)
        for i in range(100):
            win.observe(float(i), latency=0.01, ok=i % 2 == 0, occupancy=1)
        snap = win.snapshot(100.0)
        # counts are exact running sums even though the ring holds 8
        assert snap["count"] == 100
        assert snap["errors"] == 50
        assert snap["throughput_rps"] == 1.0

    def test_empty_snapshot(self):
        snap = SloWindow("5m", 300.0).snapshot(10.0)
        assert snap["count"] == 0
        assert snap["p50_seconds"] is None
        assert snap["error_rate"] == 0.0


class TestSloTracker:
    def test_all_windows_fed_from_one_observe(self):
        clock = FakeClock()
        tracker = SloTracker(clock=clock)
        tracker.observe(0.25, ok=True, occupancy=2)
        snap = tracker.snapshot()
        assert set(snap) == {"1m", "5m", "total"}
        assert all(w["count"] == 1 for w in snap.values())

    def test_short_window_forgets_old_minutes(self):
        clock = FakeClock()
        tracker = SloTracker(clock=clock)
        tracker.observe(0.5)
        clock.advance(120.0)
        tracker.observe(0.1)
        snap = tracker.snapshot()
        assert snap["1m"]["count"] == 1
        assert snap["total"]["count"] == 2


class TestFlightRecorder:
    def test_ring_keeps_only_the_tail(self):
        recorder = FlightRecorder(capacity=4, clock=FakeClock())
        for i in range(10):
            recorder.record("tick", i=i)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert [e["i"] for e in recorder.events()] == [6, 7, 8, 9]
        # seq numbers are global, not ring positions
        assert [e["seq"] for e in recorder.events()] == [6, 7, 8, 9]

    def test_kind_filter(self):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("a", x=1)
        recorder.record("b", x=2)
        assert [e["x"] for e in recorder.events(kind="b")] == [2]

    def test_dump_artifact_verifies(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("request_accepted", request_id="req-1")
        path = str(tmp_path / "flight.json")
        artifact = recorder.dump(path=path, reason="test")
        assert artifact["schema"] == FLIGHT_SCHEMA
        assert artifact["reason"] == "test"
        assert verify_flight_dump(artifact)
        with open(path) as fh:
            loaded = json.load(fh)
        assert verify_flight_dump(loaded)
        assert loaded["checksum"] == artifact["checksum"]
        assert recorder.dumps == 1

    def test_tampered_dump_fails_verification(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("request_accepted", request_id="req-1")
        artifact = recorder.dump(reason="test")
        artifact["events"][0]["request_id"] = "req-FORGED"
        assert not verify_flight_dump(artifact)

    def test_wrong_schema_fails_verification(self):
        assert not verify_flight_dump(
            {"schema": "bogus", "events": [], "checksum": flight_checksum([])})

    def test_checksum_stringifies_non_json_values(self):
        # request_ids lists and numpy scalars survive canonicalization
        events = [{"kind": "x", "value": object()}]
        assert isinstance(flight_checksum(events), str)


class TestRuntimeTelemetry:
    def test_overload_storm_detection_and_rate_limit(self):
        clock = FakeClock()
        runtime = RuntimeTelemetry(overload_threshold=3,
                                   overload_window_seconds=1.0, clock=clock)
        assert not runtime.rejection()
        assert not runtime.rejection()
        assert runtime.rejection()  # third within the window: storm
        assert not runtime.rejection()  # rate-limited
        clock.advance(2.0)
        for _ in range(2):
            assert not runtime.rejection()
        assert runtime.rejection()  # fresh storm after the window

    def test_dump_prefers_explicit_path(self, tmp_path):
        configured = str(tmp_path / "auto.json")
        explicit = str(tmp_path / "explicit.json")
        runtime = RuntimeTelemetry(dump_path=configured, clock=FakeClock())
        runtime.note("x")
        runtime.dump(reason="r", path=explicit)
        assert (tmp_path / "explicit.json").exists()
        assert not (tmp_path / "auto.json").exists()

    def test_null_runtime_is_inert_but_valid(self):
        assert not NULL_RUNTIME.enabled
        NULL_RUNTIME.note("anything", x=1)
        NULL_RUNTIME.request_done(0.1, ok=True)
        assert not NULL_RUNTIME.rejection()
        artifact = NULL_RUNTIME.dump()
        assert verify_flight_dump(artifact)
        assert artifact["events"] == []
        assert NULL_RUNTIME.auto_dump("anything") is None
        assert NULL_RUNTIME.suppressed_dumps == 0


class TestAutoDumpRateLimit:
    """Per-reason rate limiting of automatic flight-recorder dumps.

    A crash-looping cluster worker fails a batch every tick; without
    this limit every failure would write a new dump file.  The first
    dump per reason lands, repeats within the interval are suppressed
    (counted), and distinct reasons never starve each other.
    """

    def _runtime(self, tmp_path, clock, interval=5.0):
        return RuntimeTelemetry(
            dump_path=str(tmp_path / "flight.json"), clock=clock,
            auto_dump_interval_seconds=interval)

    def test_repeat_reason_suppressed_within_interval(self, tmp_path):
        clock = FakeClock()
        runtime = self._runtime(tmp_path, clock)
        runtime.note("batch_failed", batch_id="batch-1")
        assert runtime.auto_dump("batch_failure") is not None
        for _ in range(10):  # the crash loop
            clock.advance(0.1)
            assert runtime.auto_dump("batch_failure") is None
        assert runtime.suppressed_dumps == 10

    def test_dumps_again_after_interval(self, tmp_path):
        clock = FakeClock()
        runtime = self._runtime(tmp_path, clock, interval=5.0)
        assert runtime.auto_dump("batch_failure") is not None
        clock.advance(4.9)
        assert runtime.auto_dump("batch_failure") is None
        clock.advance(0.2)
        artifact = runtime.auto_dump("batch_failure")
        assert artifact is not None
        assert verify_flight_dump(artifact)
        assert runtime.suppressed_dumps == 1

    def test_reasons_rate_limit_independently(self, tmp_path):
        clock = FakeClock()
        runtime = self._runtime(tmp_path, clock)
        assert runtime.auto_dump("batch_failure") is not None
        clock.advance(0.5)
        # a different reason is not starved by the batch_failure dump
        assert runtime.auto_dump("overload_storm") is not None
        assert runtime.auto_dump("overload_storm") is None
        assert runtime.auto_dump("batch_failure") is None
        assert runtime.suppressed_dumps == 2

    def test_no_dump_path_means_no_auto_dumps(self, tmp_path):
        runtime = RuntimeTelemetry(clock=FakeClock())
        assert runtime.auto_dump("batch_failure") is None
        assert runtime.suppressed_dumps == 0
        assert not list(tmp_path.iterdir())

    def test_explicit_dump_bypasses_the_limit(self, tmp_path):
        # the operator `dump` control op is never rate-limited — only
        # *automatic* dumps are
        clock = FakeClock()
        runtime = self._runtime(tmp_path, clock)
        assert runtime.auto_dump("batch_failure") is not None
        for _ in range(3):
            assert runtime.dump(reason="operator_request") is not None
        assert runtime.suppressed_dumps == 0


class TestRenderStatus:
    def test_renders_every_section(self):
        status = {
            "uptime_seconds": 12.5, "accepting": True,
            "queue": {"depth": 3, "max": 64},
            "inflight_batches": 1, "outstanding_requests": 4,
            "counters": {"requests": 10, "proofs": 8, "batches": 2,
                         "rejected": 1, "failed_batches": 0,
                         "mean_occupancy": 4.0},
            "slo": {"1m": {"count": 8, "error_rate": 0.0,
                           "p50_seconds": 0.3, "p95_seconds": 0.5,
                           "p99_seconds": 0.5, "throughput_rps": 2.0,
                           "mean_occupancy": 4.0}},
            "pending_by_model": {"dlrm-mini": 2},
            "batcher": {"max_batch": 8, "flush_deadline_seconds": 0.05,
                        "ema_prove_seconds": 0.2},
            "pk_cache": {"entries": 2, "maxsize": 4, "hits": 5,
                         "misses": 2, "rebuilds": 0},
            "resilience": {"degraded": 0, "retries": 0, "recovered": 0},
            "flight_recorder": {"buffered": 10, "capacity": 512,
                                "recorded": 10, "dumps": 0},
        }
        text = render_status(status)
        assert "up 12.5s" in text
        assert "queue 3/64" in text
        assert "pending: dlrm-mini=2" in text
        assert "pk cache: 2/4" in text
        assert "flight recorder: 10/512" in text
        assert "0.300" in text  # p50 formatted

    def test_renders_minimal_status(self):
        # health-degraded server: most sections absent, still renders
        text = render_status({"accepting": False})
        assert "accepting=NO" in text
        assert "resilience:" in text
