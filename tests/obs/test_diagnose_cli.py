"""Tests for ``zkml diagnose`` and the CLI observability flags."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.model import get_model
from repro.obs.diagnose import diagnose_model


@pytest.fixture(autouse=True)
def reset_log_level():
    from repro.obs import log as obs_log

    yield
    obs_log.set_level(obs_log.INFO)


def model_inputs(spec, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }


class TestDiagnoseEngine:
    def test_clean_circuit_ok(self):
        spec = get_model("mnist", "mini")
        report = diagnose_model(spec, model_inputs(spec))
        assert report.ok
        assert "satisfied" in report.render()

    def test_tampered_cell_attributed_to_layer(self):
        spec = get_model("mnist", "mini")
        # row 0 belongs to the first conv layer and carries an active gate
        report = diagnose_model(spec, model_inputs(spec), tamper_row=0,
                                tamper_col=0, max_failures=3)
        assert not report.ok
        assert report.tampered.startswith("advice[0]@0")
        text = report.render()
        assert "NOT satisfied" in text
        assert "layer" in text          # region attribution
        assert "advice[0]@0=" in text   # offending cell values
        (gate_failure,) = [f for f in report.failures if f.kind == "gate"]
        assert gate_failure.region.startswith("layer")
        assert gate_failure.cells

    def test_cap_reports_remainder(self):
        spec = get_model("mnist", "mini")
        report = diagnose_model(spec, model_inputs(spec), tamper_row=0,
                                tamper_col=0, max_failures=1)
        assert report.failures.truncated
        assert "more failures" in report.failures.summary()


class TestDiagnoseCommand:
    def test_ok_exit_zero(self, capsys):
        assert main(["diagnose", "--model", "mnist"]) == 0
        assert "satisfied" in capsys.readouterr().out

    def test_broken_assignment_exit_two(self, capsys):
        # exit 2 is the stable "constraints failed" code (distinct from
        # exit 1, which means an operational error) — CI keys off it
        rc = main(["diagnose", "--model", "mnist", "--tamper-row", "0",
                   "--max-failures", "2"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "NOT satisfied" in out
        assert "layer" in out


class TestObservabilityFlags:
    @pytest.fixture(scope="class")
    def prove_artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs")
        trace = tmp / "out.json"
        metrics = tmp / "out.prom"
        rc = main(["prove", "--model", "dlrm", "--trace", str(trace),
                   "--metrics", str(metrics)])
        assert rc == 0
        return trace, metrics

    def test_trace_file_has_pipeline_spans(self, prove_artifacts):
        trace, _ = prove_artifacts
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        for required in ("prove_model", "keygen", "commit", "helpers",
                         "quotient", "openings", "verify"):
            assert required in names

    def test_metrics_match_inspect_json(self, prove_artifacts, capsys):
        # the acceptance bar: `zkml prove --metrics` row/cell counters
        # agree with `zkml inspect --json` for the same configuration
        _, metrics = prove_artifacts
        assert main(["inspect", "--model", "dlrm", "--scale", "mini",
                     "--columns", "10", "--scale-bits", "5", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        metrics_text = metrics.read_text()
        for family, instances in info["metrics"].items():
            for labels, value in instances.items():
                line = "%s%s %d" % (family, labels, value)
                assert line in metrics_text, "missing %r" % line

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "env-trace.json"
        monkeypatch.setenv("ZKML_TRACE", str(path))
        assert main(["models"]) == 0
        assert path.exists()

    def test_quiet_silences_info(self, capsys):
        assert main(["models", "--quiet"]) == 0
        assert capsys.readouterr().out == ""
