"""Tests for cell-reference tensors and their free shape operations."""

import numpy as np
import pytest

from repro.tensor import Entry, Tensor


def seq_tensor(*shape):
    n = int(np.prod(shape))
    return Tensor.from_values(list(range(n)), shape)


class TestConstruction:
    def test_from_values_shape(self):
        t = seq_tensor(2, 3)
        assert t.shape == (2, 3)
        assert t.size == 6
        assert t.ndim == 2

    def test_values_roundtrip(self):
        t = seq_tensor(2, 2)
        assert t.values().tolist() == [[0, 1], [2, 3]]

    def test_filled_shares_one_entry(self):
        e = Entry(7)
        t = Tensor.filled(e, (2, 2))
        assert all(x is e for x in t.entries())

    def test_non_object_array_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.zeros((2, 2)))


class TestSharing:
    def test_reshape_shares_entries(self):
        t = seq_tensor(2, 3)
        r = t.reshape(3, 2)
        assert t.entry(0, 1) is r.entry(0, 1)
        # mutating through one view is visible through the other
        t.entry(0, 1).value = 99
        assert r.entry(0, 1).value == 99

    def test_transpose_shares_entries(self):
        t = seq_tensor(2, 3)
        tr = t.transpose()
        assert tr.shape == (3, 2)
        assert tr.entry(2, 1) is t.entry(1, 2)

    def test_slice_shares_entries(self):
        t = seq_tensor(4, 4)
        s = t[1:3, 2:]
        assert s.shape == (2, 2)
        assert s.entry(0, 0) is t.entry(1, 2)

    def test_concat_shares_entries(self):
        a, b = seq_tensor(2, 2), seq_tensor(2, 2)
        c = Tensor.concat([a, b], axis=0)
        assert c.shape == (4, 2)
        assert c.entry(0, 0) is a.entry(0, 0)
        assert c.entry(2, 0) is b.entry(0, 0)

    def test_pad_references_shared_zero(self):
        zero = Entry(0)
        t = seq_tensor(2, 2).pad(((1, 1), (1, 1)), zero)
        assert t.shape == (4, 4)
        assert t.entry(0, 0) is zero
        assert t.entry(3, 3) is zero
        assert t.entry(1, 1).value == 0  # original corner


class TestShapeOps:
    def test_flatten(self):
        assert seq_tensor(2, 3).flatten().shape == (6,)

    def test_squeeze_expand(self):
        t = seq_tensor(1, 3)
        assert t.squeeze(0).shape == (3,)
        assert t.squeeze(0).expand_dims(1).shape == (3, 1)

    def test_split(self):
        parts = seq_tensor(4, 2).split(2, axis=0)
        assert [p.shape for p in parts] == [(2, 2), (2, 2)]
        assert parts[1].entry(0, 0).value == 4

    def test_stack(self):
        s = Tensor.stack([seq_tensor(3), seq_tensor(3)], axis=0)
        assert s.shape == (2, 3)

    def test_broadcast(self):
        t = seq_tensor(1, 3).broadcast_to((4, 3))
        assert t.shape == (4, 3)
        assert t.entry(2, 1) is t.entry(0, 1)

    def test_getitem_scalar_wraps(self):
        t = seq_tensor(2, 2)
        s = t[1, 1]
        assert s.shape == ()
        assert s.entries()[0].value == 3

    def test_values_i64(self):
        assert seq_tensor(3).values_i64().dtype == np.int64
