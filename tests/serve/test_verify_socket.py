"""Socket round trips for ``zkml verify-serve``: `VerifyServer` + client.

The wire layer must be as hostile-proof as the service behind it: bad
base64, oversized request lines, and malformed JSON are all typed
rejections that leave the accept loop alive, and the envelope fuzzer
run against the *live socket* must see nothing but typed verdicts.
"""

import base64
import json
import socket as socket_mod

import numpy as np
import pytest

from repro.model import get_model
from repro.registry import VKRegistry
from repro.resilience.fuzz import run_envelope_fuzz
from repro.runtime import prove_model
from repro.serve import VerifyConfig, VerifyService
from repro.serve.client import control_request, verify_request
from repro.serve.verify_server import VerifyServer

rng = np.random.default_rng(47)


@pytest.fixture(scope="module")
def proven():
    spec = get_model("dlrm", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                       scale_bits=5)


@pytest.fixture(scope="module")
def encoded(proven):
    return proven.envelope().encode()


@pytest.fixture(scope="module")
def served(tmp_path_factory, proven):
    root = tmp_path_factory.mktemp("verify-serve")
    env = proven.envelope()
    registry = VKRegistry(str(root / "reg"))
    registry.publish(proven.vk, env.model, env.config_digest)
    service = VerifyService(registry=registry, config=VerifyConfig())
    socket_path = str(root / "verify.sock")
    server = VerifyServer(service, socket_path).start()
    yield socket_path, service
    server.stop()
    service.close()


def _tampered(encoded):
    bad = bytearray(encoded)
    bad[-1] ^= 0xFF
    return bytes(bad)


def _raw_line(socket_path, line, timeout=30.0):
    conn = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        conn.connect(socket_path)
        conn.sendall(line)
        chunks = []
        while not chunks or b"\n" not in chunks[-1]:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return json.loads(b"".join(chunks).split(b"\n", 1)[0])
    finally:
        conn.close()


class TestRoundTrip:
    def test_single_envelope_verifies(self, served, encoded):
        socket_path, _ = served
        report = verify_request(socket_path, [encoded])
        assert report["ok"] and report["accepted"] == 1
        (verdict,) = report["results"]
        assert verdict["ok"] and verdict["model"] == "dlrm-mini"
        assert report["request_id"].startswith("req-")

    def test_mixed_batch_verdicts_in_order(self, served, encoded):
        socket_path, _ = served
        report = verify_request(socket_path,
                                [encoded, _tampered(encoded), encoded])
        assert report["accepted"] == 2 and report["rejected"] == 1
        causes = [r.get("cause") for r in report["results"]]
        assert causes == [None, "checksum", None]

    def test_request_id_round_trips(self, served, encoded):
        socket_path, _ = served
        report = verify_request(socket_path, [encoded],
                                request_id="req-verify-test-1")
        assert report["request_id"] == "req-verify-test-1"


class TestWireHardening:
    def test_invalid_base64_rejected_before_decoder(self, served):
        socket_path, _ = served
        response = _raw_line(
            socket_path,
            json.dumps({"envelopes": ["@@not-base64@@"]}).encode() + b"\n")
        assert not response["ok"]
        assert response["error"] == "ServiceError"
        assert "base64" in response["detail"]

    def test_non_string_envelope_rejected(self, served):
        socket_path, _ = served
        response = _raw_line(
            socket_path,
            json.dumps({"envelopes": [42]}).encode() + b"\n")
        assert not response["ok"] and response["error"] == "ServiceError"

    def test_empty_and_missing_payloads_rejected(self, served):
        socket_path, _ = served
        for payload in ({"envelopes": []}, {}, {"envelopes": "nope"}):
            response = _raw_line(socket_path,
                                 json.dumps(payload).encode() + b"\n")
            assert not response["ok"]

    def test_malformed_json_rejected(self, served):
        socket_path, _ = served
        response = _raw_line(socket_path, b"{not json\n")
        assert not response["ok"]

    def test_oversized_request_line_capped(self, served, encoded, proven,
                                           tmp_path):
        _, service = served
        small = VerifyServer(service, str(tmp_path / "small.sock"),
                             max_request_bytes=1024).start()
        try:
            response = _raw_line(str(tmp_path / "small.sock"),
                                 b"x" * 4096 + b"\n")
            assert not response["ok"]
            assert response["error"] == "ServiceError"
            assert "exceeds" in response["detail"]
        finally:
            small.stop()

    def test_accept_loop_survives_hostility(self, served, encoded):
        socket_path, _ = served
        _raw_line(socket_path, b"\x00\x01\x02\n")
        report = verify_request(socket_path, [encoded])
        assert report["ok"] and report["accepted"] == 1


class TestControlOps:
    def test_health_status_metrics(self, served, encoded):
        socket_path, _ = served
        verify_request(socket_path, [encoded, _tampered(encoded)])
        health = control_request(socket_path, "health")
        assert health["accepting"]
        status = control_request(socket_path, "status")["status"]
        assert status["schema"] == "zkml-verify-status/v1"
        assert status["counters"]["rejections_by_cause"].get("checksum", 0) \
            >= 1
        metrics = control_request(socket_path, "metrics")["metrics_text"]
        assert "verify_envelopes_total" in metrics
        assert 'verify_rejected_total{cause="checksum"}' in metrics

    def test_unknown_op_rejected(self, served):
        socket_path, _ = served
        from repro.resilience.errors import ServiceError

        with pytest.raises(ServiceError, match="unknown control op"):
            control_request(socket_path, "reboot")


class TestSocketFuzz:
    def test_fuzz_against_live_socket(self, served, encoded):
        # the end-to-end satellite check: mutants through the real wire
        # must come back 100% typed rejections, no hangs, no escapes —
        # and the server must still answer cleanly afterwards
        socket_path, _ = served

        def check(data):
            report = verify_request(socket_path, [data], timeout=60.0)
            if not report.get("ok"):
                return {"ok": False, "error": report.get("error", "")}
            (verdict,) = report["results"]
            return verdict

        report = run_envelope_fuzz(encoded, check, iterations=40, seed=11)
        assert report.ok, report.summary()
        assert report.iterations == 40
        after = verify_request(socket_path, [encoded])
        assert after["ok"] and after["accepted"] == 1

    def test_raw_base64_garbage_over_socket(self, served):
        socket_path, _ = served
        local = np.random.default_rng(13)
        for size in (0, 1, 17, 400):
            blob = bytes(local.integers(0, 256, size, dtype=np.uint8))
            line = json.dumps(
                {"envelopes": [base64.b64encode(blob).decode()]},
            ).encode() + b"\n"
            response = _raw_line(socket_path, line)
            assert response["ok"]  # request-level ok; the verdict rejects
            (verdict,) = response["results"]
            assert not verdict["ok"] and verdict["error"]
