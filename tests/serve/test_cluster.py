"""Multi-process proving cluster: dispatch, recovery, shedding, parity.

The slow end-to-end paths (worker processes actually proving) get one
test each; the scheduling *policy* (priority ordering, round-robin,
bulk-victim eviction) is pinned with fast unit tests against an
unstarted :class:`ClusterScheduler` — ``enqueue`` and ``_next_job`` are
pure queue manipulation and need no processes.
"""

import os
import signal
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.model import GraphBuilder
from repro.resilience.errors import (
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.serve import ProvingService, ServeConfig
from repro.serve.scheduler import PRIORITIES, ClusterScheduler
from repro.serve.worker import BatchJob

rng = np.random.default_rng(23)


def small_model(name="clustered"):
    gb = GraphBuilder(name, materialize=True, seed=2)
    x = gb.input("x", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 2)
    return gb.build([out])


def an_input(seed=None):
    r = np.random.default_rng(seed) if seed is not None else rng
    return {"x": r.uniform(-1, 1, (1, 4))}


def _cluster_config(tmp_path, **overrides):
    settings = dict(max_batch=4, max_flush_seconds=0.05,
                    cluster_workers=2,
                    pk_cache_dir=str(tmp_path / "pkcache"))
    settings.update(overrides)
    return ServeConfig(**settings)


class TestClusterEndToEnd:
    def test_two_workers_prove_mixed_models(self, tmp_path):
        spec_a, spec_b = small_model("clu-a"), small_model("clu-b")
        with ProvingService(_cluster_config(tmp_path)) as service:
            futures = [service.submit(spec_a if i % 2 else spec_b,
                                      an_input(), scale_bits=6)
                       for i in range(8)]
            responses = [f.result(timeout=300) for f in futures]
            status = service.status()
            stats = service.stats()
        assert all(r.verified for r in responses)
        assert status["mode"] == "cluster"
        cluster = status["cluster"]
        assert cluster["alive"] == 2
        assert len(cluster["workers"]) == 2
        assert cluster["restarts"] == 0
        assert stats["shed_batches"] == 0
        # the shared disk cache persisted one artifact per circuit
        pk_dir = os.path.join(str(tmp_path / "pkcache"), "pk")
        assert len(os.listdir(pk_dir)) == 2

    def test_single_worker_proofs_byte_identical_to_inline(self, tmp_path):
        spec = small_model("clu-parity")
        inputs = [an_input(seed=100 + i) for i in range(3)]
        inline_cfg = ServeConfig(max_batch=1, max_flush_seconds=0.05)
        with ProvingService(inline_cfg) as service:
            inline = [service.submit(spec, inp, scale_bits=6).result(
                timeout=300) for inp in inputs]
        cluster_cfg = _cluster_config(tmp_path, max_batch=1,
                                      cluster_workers=1)
        with ProvingService(cluster_cfg) as service:
            clustered = [service.submit(spec, inp, scale_bits=6).result(
                timeout=300) for inp in inputs]
        for a, b in zip(inline, clustered):
            assert a.verified and b.verified
            assert a.proof_bytes == b.proof_bytes
            assert a.envelope_bytes == b.envelope_bytes

    def test_unknown_priority_rejected_before_queueing(self, tmp_path):
        spec = small_model("clu-prio")
        with ProvingService(_cluster_config(tmp_path,
                                            cluster_workers=1)) as service:
            with pytest.raises(ServiceError, match="unknown priority"):
                service.submit(spec, an_input(), scale_bits=6,
                               priority="urgent")


class TestCrashRecovery:
    def _kill_busy_worker(self, service, deadline=30.0):
        """SIGKILL the first busy worker once the batch is in flight."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            cluster = service.status()["cluster"]
            busy = [w for w in cluster["workers"] if w["busy"]]
            if busy:
                os.kill(busy[0]["pid"], signal.SIGKILL)
                return busy[0]["pid"]
            time.sleep(0.002)
        raise AssertionError("no worker went busy before the deadline")

    def test_killed_worker_is_replaced_and_batch_redispatched(
            self, tmp_path):
        spec = small_model("clu-kill")
        config = _cluster_config(tmp_path, cluster_workers=1, max_batch=8,
                                 max_flush_seconds=0.02)
        with ProvingService(config) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(8)]
            killed_pid = self._kill_busy_worker(service)
            responses = [f.result(timeout=300) for f in futures]
            status = service.status()["cluster"]
            stats = service.stats()
        # no request was lost: the in-flight batch was re-queued at the
        # front and proved by the replacement worker
        assert all(r.verified for r in responses)
        assert status["restarts"] >= 1
        assert stats["redispatched_batches"] >= 1
        replacement = status["workers"][0]
        assert replacement["alive"] and replacement["pid"] != killed_pid

    def test_poison_batch_fails_typed_instead_of_crash_looping(
            self, tmp_path):
        spec = small_model("clu-poison")
        config = _cluster_config(tmp_path, cluster_workers=1, max_batch=8,
                                 max_flush_seconds=0.02,
                                 redispatch_limit=0)
        with ProvingService(config) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(8)]
            self._kill_busy_worker(service)
            with pytest.raises(WorkerCrashError, match="poison"):
                for f in futures:
                    f.result(timeout=300)
            # the pool itself survived: a fresh request still proves
            after = service.submit(spec, an_input(), scale_bits=6)
            assert after.result(timeout=300).verified


class TestLoadShedding:
    def test_bulk_flood_sheds_typed_overload(self, tmp_path):
        spec = small_model("clu-shed")
        config = _cluster_config(tmp_path, cluster_workers=1, max_batch=1,
                                 max_flush_seconds=0.01,
                                 max_backlog_batches=1)
        with ProvingService(config) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6,
                                      priority="bulk")
                       for _ in range(12)]
            outcomes = []
            for f in futures:
                try:
                    outcomes.append(f.result(timeout=300))
                except ServiceOverloadedError:
                    outcomes.append(None)
            stats = service.stats()
        proved = [r for r in outcomes if r is not None]
        shed = len(outcomes) - len(proved)
        assert proved and all(r.verified for r in proved)
        assert shed > 0  # a 1-deep backlog cannot absorb a 12-batch flood
        assert stats["shed_batches"] == shed


def _job(model="m", priority="interactive", job_id=0):
    return BatchJob(job_id=job_id, batch_id="b%d" % job_id,
                    spec=SimpleNamespace(name=model), batch_inputs=[],
                    scheme_name="kzg", num_cols=4, scale_bits=6,
                    lookup_bits=None, occupancy=1, padded_size=1,
                    priority=priority)


def _scheduler(**overrides):
    """An UNSTARTED scheduler: queue policy only, no processes."""
    shed = []
    settings = dict(workers=1,
                    on_result=lambda job, result: None,
                    on_shed=lambda job, reason: shed.append((job, reason)),
                    max_backlog_batches=4)
    settings.update(overrides)
    scheduler = ClusterScheduler(**settings)
    return scheduler, shed


class TestDispatchPolicy:
    def test_interactive_always_dispatches_before_bulk(self):
        scheduler, _ = _scheduler()
        bulk = _job("a", "bulk", 1)
        inter = _job("a", "interactive", 2)
        assert scheduler.enqueue(bulk)
        assert scheduler.enqueue(inter)
        assert scheduler._next_job() is inter
        assert scheduler._next_job() is bulk
        assert scheduler._next_job() is None

    def test_models_round_robin_within_a_class(self):
        scheduler, _ = _scheduler()
        jobs = [_job(model, "interactive", i)
                for i, model in enumerate(["a", "a", "b", "b"])]
        for job in jobs:
            scheduler.enqueue(job)
        order = [scheduler._next_job().spec.name for _ in range(4)]
        # a hot model cannot starve the other: strict alternation
        assert order == ["a", "b", "a", "b"]

    def test_interactive_overflow_evicts_newest_bulk(self):
        scheduler, shed = _scheduler(max_backlog_batches=2)
        old_bulk = _job("m", "bulk", 1)
        new_bulk = _job("m", "bulk", 2)
        scheduler.enqueue(old_bulk)
        scheduler.enqueue(new_bulk)
        inter = _job("m", "interactive", 3)
        assert scheduler.enqueue(inter)  # accepted at full backlog...
        assert shed == [(new_bulk, "overload")]  # ...at newest bulk's cost
        assert scheduler.shed == 1
        assert scheduler._next_job() is inter
        assert scheduler._next_job() is old_bulk

    def test_bulk_overflow_sheds_the_incoming_batch(self):
        scheduler, shed = _scheduler(max_backlog_batches=1)
        scheduler.enqueue(_job("m", "bulk", 1))
        late = _job("m", "bulk", 2)
        assert not scheduler.enqueue(late)
        assert shed == [(late, "overload")]

    def test_interactive_overflow_without_bulk_victims_sheds_incoming(
            self):
        scheduler, shed = _scheduler(max_backlog_batches=1)
        scheduler.enqueue(_job("m", "interactive", 1))
        late = _job("m", "interactive", 2)
        assert not scheduler.enqueue(late)
        assert shed == [(late, "overload")]

    def test_backlog_bound_is_per_model(self):
        scheduler, shed = _scheduler(max_backlog_batches=1)
        assert scheduler.enqueue(_job("a", "bulk", 1))
        assert scheduler.enqueue(_job("b", "bulk", 2))  # own bucket
        assert shed == []

    def test_priorities_constant_matches_policy_order(self):
        assert PRIORITIES == ("interactive", "bulk")
