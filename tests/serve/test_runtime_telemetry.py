"""Tests for the serving path's operational telemetry.

Request correlation end to end, the health/status/metrics/dump control
ops over a real socket, flight-recorder postmortems on forced faults,
and the ``zkml top`` scripting surface.
"""

import json
import socket as socket_mod
import threading

import numpy as np
import pytest

from repro.model import GraphBuilder
from repro.obs.runtime import verify_flight_dump
from repro.resilience.errors import ResilienceError, ServiceError
from repro.serve import ProvingService, ServeConfig
from repro.serve.client import control_request, submit_request
from repro.serve.server import ServeServer

rng = np.random.default_rng(23)


def small_model(name="telemetry"):
    gb = GraphBuilder(name, materialize=True, seed=2)
    x = gb.input("x", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 2)
    return gb.build([out])


def an_input():
    return {"x": rng.uniform(-1, 1, (1, 4))}


class TestRequestCorrelation:
    def test_request_id_round_trips_and_correlates_the_lifecycle(self):
        spec = small_model()
        config = ServeConfig(max_batch=2, max_flush_seconds=0.1)
        with ProvingService(config) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6,
                                      request_id="req-test-%d" % i)
                       for i in range(2)]
            responses = [f.result(timeout=120) for f in futures]
            events = service.runtime.recorder.events()
        assert [r.request_id for r in responses] == ["req-test-0",
                                                     "req-test-1"]
        # both requests rode the same batch, and say which
        assert responses[0].batch_id == responses[1].batch_id
        batch_id = responses[0].batch_id
        assert batch_id.startswith("batch-")
        # the flight ring recorded the full lifecycle, correlated
        kinds = {e["kind"] for e in events}
        assert {"service_started", "request_accepted", "batch_flushed",
                "request_resolved", "batch_resolved"} <= kinds
        accepted = [e for e in events if e["kind"] == "request_accepted"]
        assert {e["request_id"] for e in accepted} == {"req-test-0",
                                                       "req-test-1"}
        flushed = [e for e in events if e["kind"] == "batch_flushed"]
        assert flushed[0]["batch_id"] == batch_id
        assert set(flushed[0]["request_ids"]) == {"req-test-0", "req-test-1"}
        resolved = [e for e in events if e["kind"] == "request_resolved"]
        assert all(e["batch_id"] == batch_id for e in resolved)
        assert {e["slot"] for e in resolved} == {0, 1}

    def test_minted_id_when_caller_gives_none(self):
        spec = small_model()
        with ProvingService(ServeConfig(max_batch=1)) as service:
            response = service.submit(spec, an_input(),
                                      scale_bits=6).result(timeout=120)
        assert response.request_id.startswith("req-")

    def test_proof_bytes_identical_with_telemetry_off(self):
        spec = small_model()
        inputs = an_input()
        on_cfg = ServeConfig(max_batch=1, telemetry=True)
        off_cfg = ServeConfig(max_batch=1, telemetry=False)
        with ProvingService(on_cfg) as service:
            with_telemetry = service.submit(
                spec, inputs, scale_bits=6).result(timeout=120)
        with ProvingService(off_cfg) as service:
            without = service.submit(
                spec, inputs, scale_bits=6).result(timeout=120)
            assert not service.runtime.enabled
            # the null runtime still answers status(), minus SLO/flight
            status = service.status()
        assert with_telemetry.proof_bytes == without.proof_bytes
        assert "slo" not in status


class TestOperatorSurface:
    def test_health_is_cheap_and_honest_under_saturation(self):
        # not started: the dispatcher never drains, so the queue saturates
        service = ProvingService(ServeConfig(max_queue=2))
        spec = small_model()
        for _ in range(2):
            service.submit(spec, an_input(), scale_bits=6)
        with pytest.raises(ResilienceError):
            service.submit(spec, an_input(), scale_bits=6)
        health = service.health()
        assert health["queue_depth"] == 2
        assert health["queue_headroom"] == 0
        assert health["saturated"] is True
        assert health["accepting"] is False  # never started
        service.shutdown(drain=False)

    def test_status_snapshot_shape(self):
        spec = small_model()
        with ProvingService(ServeConfig(max_batch=1)) as service:
            service.submit(spec, an_input(), scale_bits=6).result(timeout=120)
            status = service.status()
        assert status["schema"] == "zkml-serve-status/v2"
        assert status["uptime_seconds"] >= 0.0
        assert status["counters"]["proofs"] == 1
        assert set(status["slo"]) == {"1m", "5m", "total"}
        assert status["slo"]["total"]["count"] == 1
        assert status["pk_cache"]["maxsize"] > 0
        assert status["flight_recorder"]["recorded"] > 0
        assert "degraded" in status["resilience"]


class TestFlightRecorderPostmortem:
    def test_failed_batch_auto_dumps_a_verifiable_artifact(self, tmp_path):
        dump_path = str(tmp_path / "flight.json")
        spec = small_model("telemetry-bad")
        config = ServeConfig(max_batch=1, flight_path=dump_path)
        with ProvingService(config) as service:
            bad = service.submit(spec, {"x": np.full((1, 4), 1e9)},
                                 scale_bits=6, request_id="req-doomed")
            with pytest.raises(ResilienceError):
                bad.result(timeout=120)
            service.drain(timeout=120)
        with open(dump_path) as fh:
            artifact = json.load(fh)
        assert verify_flight_dump(artifact)
        assert artifact["reason"] == "batch_failure"
        failed = [e for e in artifact["events"]
                  if e["kind"] == "batch_failed"]
        assert failed and "req-doomed" in failed[0]["request_ids"]
        # the whole lifecycle up to the fault is in the dump
        kinds = [e["kind"] for e in artifact["events"]]
        assert "request_accepted" in kinds and "batch_flushed" in kinds

    def test_overload_storm_auto_dumps(self, tmp_path):
        dump_path = str(tmp_path / "storm.json")
        spec = small_model()
        config = ServeConfig(max_queue=1, flight_path=dump_path,
                             overload_dump_threshold=3)
        service = ProvingService(config)  # not started: queue never drains
        service.submit(spec, an_input(), scale_bits=6)
        for _ in range(3):
            with pytest.raises(ResilienceError):
                service.submit(spec, an_input(), scale_bits=6)
        service.shutdown(drain=False)
        with open(dump_path) as fh:
            artifact = json.load(fh)
        assert verify_flight_dump(artifact)
        assert artifact["reason"] == "overload_storm"
        rejected = [e for e in artifact["events"]
                    if e["kind"] == "request_rejected"]
        assert len(rejected) == 3


@pytest.fixture()
def served(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    service = ProvingService(ServeConfig(max_batch=4,
                                         max_flush_seconds=0.2)).start()
    server = ServeServer(service, socket_path).start()
    yield socket_path, service
    server.stop()
    service.shutdown()


class TestControlOpsOverSocket:
    def test_health_status_metrics_dump(self, served):
        socket_path, service = served
        health = control_request(socket_path, "health")
        assert health["ok"] and health["accepting"]
        assert health["queue_headroom"] > 0

        # prove something so status/metrics have content
        done = submit_request(socket_path, {"model": "dlrm", "seed": 1},
                              timeout=300.0)
        assert done["ok"] and done["verified"]
        assert done["request_id"].startswith("req-")
        assert done["batch_id"].startswith("batch-")
        assert done["client_seconds"] > 0.0

        status = control_request(socket_path, "status")["status"]
        assert status["schema"] == "zkml-serve-status/v2"
        assert status["counters"]["proofs"] >= 1
        assert status["slo"]["total"]["count"] >= 1

        metrics = control_request(socket_path, "metrics")["metrics_text"]
        assert "serve_requests_total" in metrics

        dump = control_request(socket_path, "dump")
        assert dump["events_recorded"] >= 1
        assert verify_flight_dump(dump["artifact"])
        # the wire response's request_id matches the flight ring's record
        accepted = [e for e in dump["artifact"]["events"]
                    if e["kind"] == "request_accepted"]
        assert done["request_id"] in {e["request_id"] for e in accepted}

    def test_dump_to_server_side_path(self, served, tmp_path):
        socket_path, _ = served
        path = str(tmp_path / "op-dump.json")
        response = control_request(socket_path, "dump", path=path)
        assert response["path"] == path
        with open(path) as fh:
            assert verify_flight_dump(json.load(fh))

    def test_client_supplied_request_id_round_trips(self, served):
        socket_path, _ = served
        response = submit_request(
            socket_path,
            {"model": "dlrm", "seed": 2, "request_id": "req-mine-1"},
            timeout=300.0)
        assert response["ok"]
        assert response["request_id"] == "req-mine-1"

    def test_malformed_ops_get_structured_rejections(self, served):
        socket_path, _ = served
        # raw client: the structured rejection comes from the server
        response = submit_request(socket_path, {"op": "reboot"}, timeout=30.0)
        assert response == {"ok": False, "error": "ServiceError",
                            "detail": response["detail"],
                            "client_seconds": response["client_seconds"]}
        assert "unknown control op" in response["detail"]
        assert not submit_request(socket_path, {"op": 7},
                                  timeout=30.0)["ok"]
        bad_path = submit_request(socket_path, {"op": "dump", "path": 3},
                                  timeout=30.0)
        assert not bad_path["ok"] and bad_path["error"] == "ServiceError"
        # control_request raises the typed error for its callers
        with pytest.raises(ServiceError):
            control_request(socket_path, "reboot")
        # a malformed op never kills the accept loop
        assert control_request(socket_path, "health")["ok"]

    def test_bad_request_id_type_rejected(self, served):
        socket_path, _ = served
        response = submit_request(socket_path,
                                  {"model": "dlrm", "request_id": 42},
                                  timeout=30.0)
        assert not response["ok"] and response["error"] == "ServiceError"


class TestClientFailureEdges:
    def test_disconnect_mid_response_is_a_typed_error(self, tmp_path):
        """A server that dies mid-reply must surface ServiceError, not a
        JSON traceback."""
        socket_path = str(tmp_path / "cut.sock")
        listener = socket_mod.socket(socket_mod.AF_UNIX,
                                     socket_mod.SOCK_STREAM)
        listener.bind(socket_path)
        listener.listen(1)

        def cut_mid_reply():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(b'{"ok": true, "verifi')  # truncated, no newline
            conn.close()

        thread = threading.Thread(target=cut_mid_reply, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServiceError) as excinfo:
                submit_request(socket_path, {"model": "dlrm"}, timeout=10.0)
            # the frame never completed, so this is a mid-reply cut —
            # not "malformed JSON", which would blame the payload
            assert "mid-reply" in str(excinfo.value)
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_silent_close_is_a_typed_error(self, tmp_path):
        socket_path = str(tmp_path / "mute.sock")
        listener = socket_mod.socket(socket_mod.AF_UNIX,
                                     socket_mod.SOCK_STREAM)
        listener.bind(socket_path)
        listener.listen(1)

        def close_without_reply():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.close()

        thread = threading.Thread(target=close_without_reply, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServiceError) as excinfo:
                submit_request(socket_path, {"model": "dlrm"}, timeout=10.0)
            assert "without responding" in str(excinfo.value)
        finally:
            thread.join(timeout=5.0)
            listener.close()

    def test_unreachable_socket_is_a_typed_error(self, tmp_path):
        with pytest.raises(ServiceError):
            control_request(str(tmp_path / "nothing.sock"), "health")


class TestZkmlTop:
    def test_top_once_json_is_scriptable(self, served, capsys):
        socket_path, _ = served
        from repro.cli import main

        rc = main(["top", "--socket", socket_path, "--once", "--json"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["schema"] == "zkml-serve-status/v2"
        assert status["accepting"] is True

    def test_top_once_renders_dashboard(self, served, capsys):
        socket_path, _ = served
        from repro.cli import main

        rc = main(["top", "--socket", socket_path, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "zkml serve — up" in out
        assert "resilience:" in out

    def test_top_against_dead_socket_fails_typed(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["top", "--socket", str(tmp_path / "dead.sock"), "--once"])
        assert rc == 1
        assert "cannot reach proving service" in capsys.readouterr().err
