"""`VerifyService`: hostile envelopes in, deterministic verdicts out.

The service's contract, tested layer by layer: request-level caps raise
typed errors before any decoding; per-envelope failures reject
*themselves* (typed cause, input order preserved) without failing
batch-mates; identical input bytes always produce identical verdicts;
and every rejection is accounted under its taxonomy cause.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.envelope import EnvelopeCaps
from repro.model import get_model
from repro.registry import VKRegistry
from repro.resilience import events
from repro.resilience.errors import (
    DeadlineExceeded,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.runtime import prove_model
from repro.serve import VerifyConfig, VerifyService

rng = np.random.default_rng(43)


@pytest.fixture(scope="module")
def proven():
    spec = get_model("dlrm", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                       scale_bits=5)


@pytest.fixture(scope="module")
def encoded(proven):
    return proven.envelope().encode()


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, proven):
    root = str(tmp_path_factory.mktemp("vkreg"))
    env = proven.envelope()
    VKRegistry(root).publish(proven.vk, env.model, env.config_digest)
    return root


@pytest.fixture()
def service(registry_dir):
    svc = VerifyService(registry=VKRegistry(registry_dir),
                        config=VerifyConfig(telemetry=True))
    yield svc
    svc.close()


def _tampered_checksum(encoded):
    bad = bytearray(encoded)
    bad[-1] ^= 0xFF
    return bytes(bad)


def _relabeled(proven, **changes):
    """A well-formed envelope with mutated metadata, checksum valid."""
    return dataclasses.replace(proven.envelope(), **changes).encode()


def _unknown_vk(encoded, model_len):
    """Flip a vk-hash byte and recompute the checksum: structurally
    perfect, integrity-passing, but the key is not in any registry."""
    body = bytearray(encoded[:-16])
    offset = 1 + len("zkml-proof-envelope/v1") + 1 + 3 + 1 + model_len
    body[offset] ^= 0xFF
    return bytes(body) + hashlib.blake2b(bytes(body),
                                         digest_size=16).digest()


class TestVerdicts:
    def test_mixed_batch_keeps_input_order(self, service, proven, encoded):
        batch = [
            encoded,
            _tampered_checksum(encoded),
            _unknown_vk(encoded, len(proven.envelope().model)),
            encoded,
        ]
        report = service.verify_batch(batch)
        assert report["batch_size"] == 4
        assert report["accepted"] == 2 and report["rejected"] == 2
        verdicts = report["results"]
        assert [v["index"] for v in verdicts] == [0, 1, 2, 3]
        assert verdicts[0]["ok"] and verdicts[3]["ok"]
        assert verdicts[1]["cause"] == "checksum"
        assert verdicts[2]["cause"] == "unknown_vk"
        # a rejected envelope never sinks its batch-mates
        assert verdicts[0]["vk_hash"] == proven.vk.digest().hex()

    def test_truncated_envelope_cause(self, service, encoded):
        report = service.verify_batch([encoded[:50]])
        (verdict,) = report["results"]
        assert not verdict["ok"] and verdict["cause"] == "truncated"
        assert verdict["error"] == "EnvelopeTruncatedError"

    def test_garbage_bytes_cause(self, service):
        report = service.verify_batch([b"\x00" * 64])
        (verdict,) = report["results"]
        assert not verdict["ok"]
        assert verdict["cause"] in ("schema", "truncated")

    def test_relabeled_model_rejected_via_registry_binding(self, service,
                                                           proven):
        # proof still verifies mathematically; the registry is what binds
        # the (model, config) metadata — a relabel must be caught
        mutant = _relabeled(proven, model="mnist-mini")
        report = service.verify_batch([mutant])
        (verdict,) = report["results"]
        assert not verdict["ok"] and verdict["cause"] == "verify_failed"
        assert "does not match registry entry" in verdict["detail"]

    def test_relabeled_config_rejected(self, service, proven):
        mutant = _relabeled(proven, config_digest=bytes(16))
        (verdict,) = service.verify_batch([mutant])["results"]
        assert not verdict["ok"] and verdict["cause"] == "verify_failed"

    def test_tampered_instance_rejected_as_verify_failed(self, service,
                                                         proven):
        env = proven.envelope()
        instance = [list(col) for col in env.instance]
        instance[0][0] += 1
        mutant = dataclasses.replace(env, instance=instance).encode()
        (verdict,) = service.verify_batch([mutant])["results"]
        assert not verdict["ok"] and verdict["cause"] == "verify_failed"

    def test_no_registry_rejects_everything_unknown_vk(self, encoded):
        lone = VerifyService(registry=None)
        (verdict,) = lone.verify_batch([encoded])["results"]
        assert not verdict["ok"] and verdict["cause"] == "unknown_vk"


class TestDeterminism:
    def test_same_bytes_same_verdict_property(self, service, proven,
                                              encoded):
        # property test over a spread of mutants: verdicts are a pure
        # function of the input bytes (modulo timing fields)
        mutants = [encoded, _tampered_checksum(encoded), encoded[:33],
                   b"", b"\xff" * 100,
                   _unknown_vk(encoded, len(proven.envelope().model)),
                   _relabeled(proven, model="mnist-mini")]
        local = np.random.default_rng(5)
        for _ in range(8):
            flip = bytearray(encoded)
            pos = int(local.integers(0, len(flip)))
            flip[pos] ^= int(local.integers(1, 256))
            mutants.append(bytes(flip))

        def verdicts(batch):
            report = service.verify_batch(batch)
            return [{k: v for k, v in r.items()} for r in report["results"]]

        first = verdicts(mutants)
        second = verdicts(list(mutants))
        assert first == second

    def test_registry_fetch_amortized_per_key(self, registry_dir, encoded):
        class CountingRegistry(VKRegistry):
            gets = 0

            def get(self, vk_hash):
                type(self).gets += 1
                return super().get(vk_hash)

        svc = VerifyService(registry=CountingRegistry(registry_dir))
        report = svc.verify_batch([encoded] * 6)
        assert report["accepted"] == 6
        assert CountingRegistry.gets == 1  # one fetch for six envelopes


class TestRequestCaps:
    def test_batch_cap_rejected_before_decoding(self, registry_dir,
                                                encoded):
        svc = VerifyService(registry=VKRegistry(registry_dir),
                            config=VerifyConfig(max_batch=2))
        with pytest.raises(ServiceError, match="cap"):
            svc.verify_batch([encoded] * 3)
        assert svc.stats()["rejections_by_cause"].get("batch_cap") == 1

    def test_envelope_caps_flow_from_config(self, registry_dir, encoded):
        svc = VerifyService(
            registry=VKRegistry(registry_dir),
            config=VerifyConfig(caps=EnvelopeCaps(
                max_envelope_bytes=len(encoded) - 1)))
        (verdict,) = svc.verify_batch([encoded])["results"]
        assert not verdict["ok"] and verdict["cause"] == "cap"

    def test_overload_shed_typed(self, registry_dir, encoded):
        svc = VerifyService(registry=VKRegistry(registry_dir),
                            config=VerifyConfig(max_inflight=0,
                                                flight_path=None))
        with pytest.raises(ServiceOverloadedError):
            svc.verify_batch([encoded])
        assert svc.stats()["rejections_by_cause"].get("overload") == 1

    def test_deadline_exceeded_typed(self, registry_dir, encoded):
        svc = VerifyService(registry=VKRegistry(registry_dir),
                            config=VerifyConfig(deadline_seconds=0.0))
        with pytest.raises(DeadlineExceeded):
            svc.verify_batch([encoded, encoded])
        assert svc.stats()["rejections_by_cause"].get("deadline") == 1

    def test_shutdown_rejects_new_requests(self, service, encoded):
        service.close()
        with pytest.raises(ServiceShutdownError):
            service.verify_batch([encoded])


class TestOperatorSurface:
    def test_health_is_cheap_and_truthful(self, service):
        health = service.health()
        assert health["ok"] and health["accepting"]
        assert health["slots_free"] == service.config.max_inflight

    def test_status_schema_and_counters(self, service, encoded):
        service.verify_batch([encoded, _tampered_checksum(encoded)])
        status = service.status()
        assert status["schema"] == "zkml-verify-status/v1"
        assert status["counters"]["envelopes"] == 2
        assert status["counters"]["accepted"] == 1
        assert status["counters"]["rejections_by_cause"] == {"checksum": 1}
        assert status["registry"]["configured"]
        assert status["registry"]["entries"] == 1
        assert status["limits"]["max_batch"] == service.config.max_batch
        assert "slo" in status and "flight_recorder" in status

    def test_metrics_counters_by_cause(self, service, encoded):
        service.verify_batch([_tampered_checksum(encoded)])
        text = service.metrics.to_prometheus()
        assert "verify_requests_total" in text
        assert 'verify_rejected_total{cause="checksum"}' in text
        assert "verify_request_seconds" in text

    def test_events_unaffected_by_clean_verify(self, service, encoded):
        events.reset()
        service.verify_batch([encoded])
        assert not any("escal" in k for k in events.counts())
