"""Socket round-trip tests: ``ServeServer`` + the ``zkml submit`` client."""

import base64

import pytest

from repro.halo2.proof import proof_from_bytes
from repro.serve import ProvingService, ServeConfig
from repro.serve.client import submit_many, submit_request
from repro.serve.server import ServeServer


@pytest.fixture()
def served(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    service = ProvingService(ServeConfig(max_batch=4,
                                         max_flush_seconds=0.2)).start()
    server = ServeServer(service, socket_path).start()
    yield socket_path, service
    server.stop()
    service.shutdown()


class TestSocketRoundTrip:
    def test_concurrent_submits_coalesce_and_verify(self, served):
        socket_path, service = served
        payloads = [{"model": "dlrm", "seed": i} for i in range(4)]
        responses = submit_many(socket_path, payloads, timeout=300.0)
        assert all(r["ok"] for r in responses)
        assert all(r["verified"] for r in responses)
        assert all(r["model"] == "dlrm-mini" for r in responses)
        # 4 concurrent connections over one model -> at least one real batch
        assert service.stats()["batches"] >= 1
        assert max(r["batch_size"] for r in responses) > 1
        # identical seed => identical statement => identical outputs
        again = submit_request(socket_path, {"model": "dlrm", "seed": 0},
                               timeout=300.0)
        assert again["outputs"] == responses[0]["outputs"]

    def test_want_proof_returns_parseable_proof(self, served):
        socket_path, _ = served
        response = submit_request(
            socket_path, {"model": "dlrm", "seed": 3, "want_proof": True},
            timeout=300.0)
        assert response["ok"] and response["verified"]
        proof = proof_from_bytes(base64.b64decode(response["proof_b64"]))
        assert proof is not None

    def test_unknown_model_is_a_typed_error_not_a_crash(self, served):
        socket_path, _ = served
        response = submit_request(socket_path, {"model": "nope"},
                                  timeout=60.0)
        assert response.pop("client_seconds") >= 0.0
        assert response == {"ok": False, "error": "ServiceError",
                            "detail": response["detail"]}
        assert "unknown model" in response["detail"]
        # the accept loop survived: a good request still goes through
        good = submit_request(socket_path, {"model": "dlrm", "seed": 1},
                              timeout=300.0)
        assert good["ok"] and good["verified"]

    def test_bad_input_shape_rejected(self, served):
        socket_path, _ = served
        response = submit_request(
            socket_path,
            {"model": "dlrm", "inputs": {"dense": [1.0, 2.0]}},
            timeout=60.0)
        assert not response["ok"]
        assert response["error"] == "ServiceError"
