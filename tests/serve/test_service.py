"""Tests for the batch-aware proving service (queue → batcher → workers)."""

import numpy as np
import pytest

from repro.model import GraphBuilder, run_fixed
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.resilience import events, faults
from repro.resilience.errors import (
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.serve import ProvingService, ServeConfig

rng = np.random.default_rng(17)


def small_model(name="served"):
    gb = GraphBuilder(name, materialize=True, seed=2)
    x = gb.input("x", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 2)
    return gb.build([out])


def an_input():
    return {"x": rng.uniform(-1, 1, (1, 4))}


class TestCoalescing:
    def test_requests_coalesce_verify_and_carry_outputs(self):
        spec = small_model()
        inputs = [an_input() for _ in range(6)]
        with ProvingService(ServeConfig(max_batch=4,
                                        max_flush_seconds=0.2)) as service:
            futures = [service.submit(spec, inp, scale_bits=6)
                       for inp in inputs]
            responses = [f.result(timeout=120) for f in futures]
            stats = service.stats()
        assert all(r.verified for r in responses)
        assert stats["batches"] == 2
        assert stats["proofs"] == 6
        assert stats["mean_occupancy"] == pytest.approx(3.0)
        # 6 requests split 4 + 2; a batch's members share one proof
        assert sorted(r.batch_size for r in responses) == [2, 2, 4, 4, 4, 4]
        by_size = {}
        for r in responses:
            by_size.setdefault(r.batch_size, set()).add(r.proof_bytes)
        assert all(len(proofs) == 1 for proofs in by_size.values())
        # each response carries *its own* inference's outputs
        for inp, response in zip(inputs, responses):
            reference = run_fixed(spec, inp, 6)
            for name in spec.outputs:
                want = np.asarray(reference[name], dtype=object)
                assert (response.outputs[name] == want).all()

    def test_distinct_models_do_not_coalesce(self):
        spec_a, spec_b = small_model("served-a"), small_model("served-b")
        with ProvingService(ServeConfig(max_batch=4,
                                        max_flush_seconds=0.05)) as service:
            fa = service.submit(spec_a, an_input(), scale_bits=6)
            fb = service.submit(spec_b, an_input(), scale_bits=6)
            ra, rb = fa.result(timeout=120), fb.result(timeout=120)
            stats = service.stats()
        assert stats["batches"] == 2
        assert ra.batch_size == rb.batch_size == 1
        assert ra.model == "served-a" and rb.model == "served-b"

    def test_padding_keeps_proving_keys_warm(self):
        GLOBAL_PK_CACHE.clear()
        spec = small_model()
        config = ServeConfig(max_batch=4, max_flush_seconds=0.05)
        with ProvingService(config) as service:
            first = [service.submit(spec, an_input(), scale_bits=6)
                     for _ in range(3)]
            responses = [f.result(timeout=120) for f in first]
            assert all(r.padded_size == 4 for r in responses)
            assert not any(r.keygen_cache_hit for r in responses)
            second = [service.submit(spec, an_input(), scale_bits=6)
                      for _ in range(3)]
            responses = [f.result(timeout=120) for f in second]
        # same occupancy bucket -> same circuit shape -> keygen skipped
        assert all(r.keygen_cache_hit for r in responses)

    def test_metrics_recorded(self):
        from repro.obs.metrics import MetricsRegistry

        spec = small_model()
        registry = MetricsRegistry()
        config = ServeConfig(max_batch=2, max_flush_seconds=0.1)
        with ProvingService(config, metrics=registry) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(2)]
            for f in futures:
                f.result(timeout=120)
        assert registry.value("serve_requests_total", model="served") == 2
        assert registry.value("serve_batches_total", model="served") == 1
        text = registry.to_prometheus()
        assert "serve_batch_occupancy_bucket" in text
        assert "serve_request_seconds_sum" in text

    def test_batch_cost_attributed_per_slot(self):
        # a coalesced batch must report per-request cost as batch time /
        # occupancy — not the whole batch's latency per request
        from repro.obs.metrics import MetricsRegistry

        spec = small_model()
        registry = MetricsRegistry()
        config = ServeConfig(max_batch=3, max_flush_seconds=0.2)
        with ProvingService(config, metrics=registry) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(3)]
            responses = [f.result(timeout=120) for f in futures]
        for r in responses:
            assert r.batch_size == 3
            assert r.slot_prove_seconds == pytest.approx(
                r.prove_seconds / 3)
        # the amortized histogram saw one sample per request
        text = registry.to_prometheus()
        assert "serve_slot_prove_seconds_count 3" in text


class TestBackpressureAndShutdown:
    def test_full_queue_rejects_with_typed_error(self):
        spec = small_model()
        service = ProvingService(ServeConfig(max_queue=2))  # not started
        service.submit(spec, an_input(), scale_bits=6)
        service.submit(spec, an_input(), scale_bits=6)
        with pytest.raises(ServiceOverloadedError):
            service.submit(spec, an_input(), scale_bits=6)
        assert service.stats()["rejected"] == 1
        # the queued work is not lost: starting the service resolves it
        service.start()
        service.drain(timeout=120)
        service.shutdown()

    def test_submit_after_shutdown_raises(self):
        service = ProvingService().start()
        service.shutdown()
        with pytest.raises(ServiceShutdownError):
            service.submit(small_model(), an_input(), scale_bits=6)

    def test_shutdown_drains_partial_batches(self):
        spec = small_model()
        config = ServeConfig(max_batch=8, max_flush_seconds=30.0)
        service = ProvingService(config).start()
        futures = [service.submit(spec, an_input(), scale_bits=6)
                   for _ in range(3)]
        # far below max_batch and far before the deadline: only the
        # drain forces the flush
        service.shutdown(drain=True)
        responses = [f.result(timeout=1) for f in futures]
        assert all(r.verified for r in responses)
        assert all(r.batch_size == 3 for r in responses)

    def test_shutdown_without_drain_fails_futures_cleanly(self):
        spec = small_model()
        service = ProvingService(ServeConfig())  # never started
        futures = [service.submit(spec, an_input(), scale_bits=6)
                   for _ in range(2)]
        service.shutdown(drain=False)
        for future in futures:
            with pytest.raises(ServiceShutdownError):
                future.result(timeout=1)
        assert service.stats()["queue_depth"] == 0


class TestResilience:
    def test_worker_fault_degrades_batch_without_losing_requests(self):
        spec = small_model()
        events.reset()
        config = ServeConfig(max_batch=4, max_flush_seconds=0.2, jobs=2)
        with faults.use_faults("worker:1") as plan:
            with ProvingService(config) as service:
                futures = [service.submit(spec, an_input(), scale_bits=6)
                           for _ in range(4)]
                responses = [f.result(timeout=120) for f in futures]
        assert plan.report()["worker"]["fired"] == 1
        assert all(r.verified for r in responses)
        assert all(r.batch_size == 4 for r in responses)
        counts = events.counts()
        assert counts['degraded{reason="parallel_pool_unavailable"}'] >= 1

    def test_failed_batch_fails_only_its_own_requests(self):
        spec = small_model()
        bad_spec = small_model("served-bad")
        config = ServeConfig(max_batch=4, max_flush_seconds=0.05)
        with ProvingService(config) as service:
            good = service.submit(spec, an_input(), scale_bits=6)
            bad = service.submit(bad_spec, {"x": np.full((1, 4), 1e9)},
                                 scale_bits=6)
            assert good.result(timeout=120).verified
            with pytest.raises(Exception) as excinfo:
                bad.result(timeout=120)
        from repro.resilience.errors import ResilienceError

        assert isinstance(excinfo.value, ResilienceError)
