"""Client framing against scripted unix-socket servers.

A response frame is *one message*, not one ``recv`` — these tests pin
that down with servers that trickle bytes, split the terminator across
chunks, append trailing garbage, hang, or hang up at every interesting
point.  Each failure edge must surface as its own typed error:

========================================  ================================
server behaviour                          client outcome
========================================  ================================
reply trickled byte-by-byte               parses fine
newline + trailing bytes in one chunk     trailing bytes ignored
close before any byte                     ``ServiceError`` (silent close)
close after a partial frame               ``ServiceError`` (mid-reply cut)
hang (zero bytes or partial frame)        ``ServiceTimeoutError``
========================================  ================================
"""

import json
import socket
import threading
import time

import pytest

from repro.resilience.errors import ServiceError, ServiceTimeoutError
from repro.serve.client import submit_request

REPLY = {"ok": True, "request_id": "req-test", "outputs": [1, 2, 3]}


class ScriptedServer:
    """A unix-socket server that answers one connection with a script.

    The script is a list of steps: ``bytes`` are sent as-is, a float
    sleeps, the string ``"close"`` shuts the connection down, and
    ``"hang"`` holds it open until the client gives up.
    """

    def __init__(self, tmp_path, script):
        self.path = str(tmp_path / "scripted.sock")
        self.script = script
        self.received = b""
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(1)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        try:
            conn.settimeout(10.0)
            # drain the request line first so the client's sendall lands
            while b"\n" not in self.received:
                chunk = conn.recv(65536)
                if not chunk:
                    return
                self.received += chunk
            for step in self.script:
                if isinstance(step, bytes):
                    conn.sendall(step)
                elif step == "close":
                    return
                elif step == "hang":
                    time.sleep(10.0)
                else:
                    time.sleep(step)
        except OSError:
            pass  # client went away first (timeout tests)
        finally:
            conn.close()

    def close(self):
        self._listener.close()


def _submit(server, timeout=5.0):
    return submit_request(server.path, {"model": "mnist",
                                        "request_id": "req-test"},
                          timeout=timeout)


def _frame():
    return json.dumps(REPLY).encode() + b"\n"


class TestReassembly:
    def test_slow_trickle_byte_by_byte(self, tmp_path):
        script = []
        for byte in _frame():
            script.append(bytes([byte]))
            script.append(0.002)
        server = ScriptedServer(tmp_path, script)
        response = _submit(server)
        assert response["ok"] and response["outputs"] == [1, 2, 3]
        assert response["client_seconds"] > 0
        server.close()

    def test_terminator_split_from_body(self, tmp_path):
        frame = _frame()
        server = ScriptedServer(
            tmp_path, [frame[:10], 0.01, frame[10:-1], 0.01, frame[-1:]])
        assert _submit(server)["ok"]
        server.close()

    def test_trailing_bytes_after_newline_ignored(self, tmp_path):
        server = ScriptedServer(
            tmp_path, [_frame() + b'{"ok": false, "junk": true}\n'])
        response = _submit(server)
        assert response["ok"] is True
        assert "junk" not in response
        server.close()

    def test_newline_and_trailing_split_across_chunks(self, tmp_path):
        frame = _frame()
        server = ScriptedServer(
            tmp_path, [frame[:-1], 0.01, b"\ngarbage-after"])
        assert _submit(server)["ok"]
        server.close()


class TestDisconnects:
    def test_silent_close_is_service_error_not_timeout(self, tmp_path):
        server = ScriptedServer(tmp_path, ["close"])
        with pytest.raises(ServiceError) as exc_info:
            _submit(server)
        assert not isinstance(exc_info.value, ServiceTimeoutError)
        assert "without responding" in str(exc_info.value)
        server.close()

    def test_mid_reply_cut_is_distinct_from_malformed_json(self, tmp_path):
        server = ScriptedServer(tmp_path, [_frame()[:20], 0.01, "close"])
        with pytest.raises(ServiceError) as exc_info:
            _submit(server)
        assert not isinstance(exc_info.value, ServiceTimeoutError)
        message = str(exc_info.value)
        assert "mid-reply" in message and "malformed" not in message
        server.close()


class TestTimeouts:
    def test_hang_with_zero_bytes_is_timeout(self, tmp_path):
        server = ScriptedServer(tmp_path, ["hang"])
        started = time.monotonic()
        with pytest.raises(ServiceTimeoutError):
            _submit(server, timeout=0.3)
        assert time.monotonic() - started < 5.0
        server.close()

    def test_hang_after_partial_frame_is_timeout(self, tmp_path):
        server = ScriptedServer(tmp_path, [_frame()[:15], "hang"])
        with pytest.raises(ServiceTimeoutError) as exc_info:
            _submit(server, timeout=0.3)
        # the error carries how far the reply got before the stall
        assert exc_info.value.context.get("received_bytes") == 15
        server.close()

    def test_timeout_is_a_service_error_subclass(self, tmp_path):
        # callers catching the broad class still see timeouts; callers
        # that care can catch the narrow one
        server = ScriptedServer(tmp_path, ["hang"])
        with pytest.raises(ServiceError):
            _submit(server, timeout=0.3)
        server.close()


class TestMalformedFrames:
    def test_non_json_frame(self, tmp_path):
        server = ScriptedServer(tmp_path, [b"this is not json\n"])
        with pytest.raises(ServiceError) as exc_info:
            _submit(server)
        assert "malformed" in str(exc_info.value)
        server.close()

    def test_non_object_frame(self, tmp_path):
        server = ScriptedServer(tmp_path, [b"[1, 2, 3]\n"])
        with pytest.raises(ServiceError) as exc_info:
            _submit(server)
        assert "not a JSON object" in str(exc_info.value)
        server.close()
