"""HTTP front-end tests: routes, status codes, request-size caps.

The HTTP transport must be payload-for-payload identical to the unix
socket — both feed the same :class:`PayloadProcessor` — with typed
errors surfacing as honest status codes and the request-size cap
enforced from ``Content-Length`` *before* any body byte is read.
"""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.serve import ProvingService, ServeConfig
from repro.serve.client import control_request, submit_request
from repro.serve.http_server import HttpFrontEnd
from repro.serve.server import MAX_REQUEST_BYTES


@pytest.fixture()
def front_end():
    service = ProvingService(ServeConfig(max_batch=4,
                                         max_flush_seconds=0.2)).start()
    http = HttpFrontEnd(service, port=0).start()
    yield http
    http.stop()
    service.shutdown()


def _get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=30) as reply:
            return reply.status, reply.headers, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers, exc.read()


def _post(url, path, body, timeout=300):
    request = urllib.request.Request(
        url + path, data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _raw_request(http, text):
    """Ship a hand-crafted HTTP request; return the status line."""
    conn = socket.create_connection((http.host, http.port), timeout=30)
    try:
        conn.sendall(text.encode())
        reply = b""
        while b"\r\n\r\n" not in reply:
            chunk = conn.recv(65536)
            if not chunk:
                break
            reply += chunk
        return reply.split(b"\r\n", 1)[0].decode()
    finally:
        conn.close()


class TestProofOverHttp:
    def test_prove_via_client_helper(self, front_end):
        response = submit_request(front_end.url,
                                  {"model": "dlrm", "seed": 0},
                                  timeout=300.0)
        assert response["ok"] and response["verified"]
        assert response["model"] == "dlrm-mini"
        assert response["client_seconds"] > 0

    def test_http_and_raw_post_agree(self, front_end):
        via_helper = submit_request(front_end.url,
                                    {"model": "dlrm", "seed": 5},
                                    timeout=300.0)
        code, raw = _post(front_end.url, "/v1/prove",
                          json.dumps({"model": "dlrm", "seed": 5}).encode())
        assert code == 200 and raw["ok"]
        # same seed, same statement, same outputs — transport-independent
        assert raw["outputs"] == via_helper["outputs"]

    def test_unknown_model_maps_to_400(self, front_end):
        code, body = _post(front_end.url, "/v1/prove",
                           json.dumps({"model": "nope"}).encode(),
                           timeout=30)
        assert code == 400
        assert body == {"ok": False, "error": "ServiceError",
                        "detail": body["detail"]}
        assert "unknown model" in body["detail"]


class TestControlOps:
    def test_control_request_helper_speaks_http(self, front_end):
        health = control_request(front_end.url, "health", timeout=30.0)
        assert health["ok"] and health["accepting"]
        status = control_request(front_end.url, "status", timeout=30.0)
        assert status["ok"] and "batcher" in status["status"]

    def test_get_routes_mirror_control_ops(self, front_end):
        code, headers, body = _get(front_end.url, "/v1/health")
        assert code == 200
        assert json.loads(body)["ok"]
        code, _, body = _get(front_end.url, "/v1/status")
        assert code == 200 and json.loads(body)["ok"]

    def test_metrics_is_prometheus_text(self, front_end):
        # prime at least one counter so the exposition is non-trivial
        submit_request(front_end.url, {"model": "dlrm", "seed": 1},
                       timeout=300.0)
        code, headers, body = _get(front_end.url, "/v1/metrics")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE" in text or "_total" in text

    def test_unknown_op_rejected(self, front_end):
        code, body = _post(front_end.url, "/v1/control",
                           json.dumps({"op": "reboot"}).encode(),
                           timeout=30)
        assert code == 400 and not body["ok"]


class TestRouting:
    def test_unknown_get_path_is_404(self, front_end):
        code, _, body = _get(front_end.url, "/v2/everything")
        assert code == 404
        assert not json.loads(body)["ok"]

    def test_unknown_post_path_is_404(self, front_end):
        code, body = _post(front_end.url, "/v1/nonsense", b"{}",
                           timeout=30)
        assert code == 404 and not body["ok"]


class TestSizeCaps:
    def test_missing_content_length_is_411(self, front_end):
        status = _raw_request(
            front_end,
            "POST /v1/prove HTTP/1.1\r\nHost: x\r\n"
            "Connection: close\r\n\r\n")
        assert " 411 " in status

    def test_oversize_content_length_is_413_before_body_read(
            self, front_end):
        # the declared length alone triggers the rejection: no body is
        # ever sent, so a 413 here proves the cap fires before the read
        status = _raw_request(
            front_end,
            "POST /v1/prove HTTP/1.1\r\nHost: x\r\n"
            "Content-Length: %d\r\nConnection: close\r\n\r\n"
            % (MAX_REQUEST_BYTES + 1))
        assert " 413 " in status

    def test_non_integer_content_length_is_400(self, front_end):
        status = _raw_request(
            front_end,
            "POST /v1/prove HTTP/1.1\r\nHost: x\r\n"
            "Content-Length: lots\r\nConnection: close\r\n\r\n")
        assert " 400 " in status

    def test_bad_json_body_is_400(self, front_end):
        body = b"this is not json"
        status, reply = _post(front_end.url, "/v1/prove", body, timeout=30)
        assert status == 400
        assert "not valid JSON" in reply["detail"]
