"""The cluster telemetry plane: stitching, aggregation, and parity.

What PR 10 promises, pinned as tests:

- worker span trees ship back on the result queue and stitch under the
  parent's ``serve:batch`` span by ``batch_id`` — one Chrome trace with
  the parent lane plus one lane per worker pid;
- worker STATS deltas and pk-cache counters fold into the parent
  registry under per-worker labels, next to the scheduler's own backlog
  gauges and dispatch histogram;
- ``status`` speaks ``zkml-serve-status/v2`` with a per-worker
  ``telemetry`` block and per-priority-class SLO windows;
- the whole plane is observational: proof and envelope bytes are
  byte-identical with worker telemetry on and off;
- ``zkml top --once --json`` sees the same status over the unix socket
  and the HTTP front end (both feed ``render_status``).
"""

import json
import os

import numpy as np

from repro.model import GraphBuilder
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import render_status
from repro.obs.trace import Tracer
from repro.serve import ProvingService, ServeConfig
from repro.serve.client import control_request
from repro.serve.http_server import HttpFrontEnd
from repro.serve.server import ServeServer

rng = np.random.default_rng(31)


def small_model(name="telemetered"):
    gb = GraphBuilder(name, materialize=True, seed=4)
    x = gb.input("x", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 2)
    return gb.build([out])


def an_input(seed=None):
    r = np.random.default_rng(seed) if seed is not None else rng
    return {"x": r.uniform(-1, 1, (1, 4))}


def _cluster_config(tmp_path, **overrides):
    settings = dict(max_batch=2, max_flush_seconds=0.02,
                    cluster_workers=2,
                    pk_cache_dir=str(tmp_path / "pkcache"))
    settings.update(overrides)
    return ServeConfig(**settings)


class TestTraceStitching:
    def test_worker_lanes_stitched_under_serve_batch(self, tmp_path):
        spec = small_model("tel-stitch")
        tracer = Tracer()
        with ProvingService(_cluster_config(tmp_path),
                            tracer=tracer) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(8)]
            responses = [f.result(timeout=300) for f in futures]
        assert all(r.verified for r in responses)

        spans = tracer.spans()
        by_id = {s.span_id: s for s in spans}
        batches = [s for s in spans if s.name == "serve:batch"]
        proves = [s for s in spans if s.name == "worker:prove"]
        waits = [s for s in spans if s.name == "serve:queue-wait"]
        assert batches and proves and waits

        parent_pid = os.getpid()
        # every serve:batch span is on the parent lane and carries ids
        for span in batches:
            assert span.pid == parent_pid
            assert span.attrs["batch_id"].startswith("batch-")
            assert span.attrs["request_ids"]
            assert span.end >= span.start
        # every worker:prove span sits on a *worker* pid lane and its
        # parent is the serve:batch span for the same batch_id
        batch_span_ids = {s.span_id: s for s in batches}
        for span in proves:
            assert span.pid != parent_pid
            parent = batch_span_ids[span.parent_id]
            assert parent.attrs["batch_id"] == span.attrs["batch_id"]
            # worker and parent share the perf_counter timeline: the
            # prove happened inside the parent's batch window
            assert parent.start <= span.start
            assert span.end <= parent.end + 1e-6
        # queue-wait children link to their batch span too
        for span in waits:
            assert by_id[span.parent_id].name == "serve:batch"

        # worker sub-spans (the prove pipeline) landed under worker:prove
        prove_ids = {s.span_id for s in proves}
        nested = [s for s in spans if s.parent_id in prove_ids]
        assert nested, "worker pipeline spans should nest under worker:prove"

        # the Chrome export gives each worker pid its own named process
        doc = tracer.to_chrome_trace()
        lanes = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("name") == "process_name"}
        worker_lanes = {n for n in lanes if n.startswith("zkml worker ")}
        assert "zkml" in lanes
        worker_pids = {s.pid for s in proves}
        assert worker_lanes == {"zkml worker %d" % p for p in worker_pids}
        assert len(worker_lanes) >= 1  # >=1 worker proved (usually both)

    def test_telemetry_off_records_no_worker_spans(self, tmp_path):
        spec = small_model("tel-off")
        tracer = Tracer()
        config = _cluster_config(tmp_path, cluster_workers=1,
                                 worker_telemetry=False)
        with ProvingService(config, tracer=tracer) as service:
            assert service.submit(spec, an_input(),
                                  scale_bits=6).result(timeout=300).verified
        names = {s.name for s in tracer.spans()}
        assert "serve:batch" in names  # the parent span still records
        assert "worker:prove" not in names


class TestByteIdentity:
    def test_proofs_byte_identical_with_telemetry_on_and_off(self, tmp_path):
        spec = small_model("tel-parity")
        inputs = [an_input(seed=300 + i) for i in range(3)]

        def run(telemetry, sub):
            config = ServeConfig(
                max_batch=1, max_flush_seconds=0.02, cluster_workers=1,
                pk_cache_dir=str(tmp_path / sub),
                worker_telemetry=telemetry)
            tracer = Tracer() if telemetry else None
            metrics = MetricsRegistry() if telemetry else None
            with ProvingService(config, tracer=tracer,
                                metrics=metrics) as service:
                return [service.submit(spec, inp, scale_bits=6).result(
                    timeout=300) for inp in inputs]

        noisy = run(True, "pk-on")
        quiet = run(False, "pk-off")
        for a, b in zip(noisy, quiet):
            assert a.verified and b.verified
            assert a.proof_bytes == b.proof_bytes
            assert a.envelope_bytes == b.envelope_bytes


class TestAggregatedMetrics:
    def test_per_worker_and_scheduler_series(self, tmp_path):
        spec = small_model("tel-metrics")
        metrics = MetricsRegistry()
        with ProvingService(_cluster_config(tmp_path),
                            metrics=metrics) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(8)]
            for f in futures:
                assert f.result(timeout=300).verified
            status = service.status()
            stats = service.stats()

        # per-worker ledger: every series is labeled by logical worker id
        worker_batches = metrics.values("zkml_worker_batches_total")
        workers = {dict(key)["worker"] for key in worker_batches}
        assert workers and workers <= {"0", "1"}
        assert sum(worker_batches.values()) == stats["batches"]
        prove_secs = metrics.values("zkml_worker_prove_seconds_total")
        assert sum(prove_secs.values()) > 0
        ops = {dict(key)["op"]
               for key in metrics.values("zkml_worker_ops_total")}
        assert "commitments" in ops and "ntt_base" in ops
        pk_fields = {dict(key)["field"]
                     for key in metrics.values("zkml_worker_pk_cache")}
        assert {"entries", "hits", "disk_loads"} <= pk_fields

        # scheduler instrumentation: backlog gauges exist (drained to 0),
        # the dispatch histogram observed every batch
        backlog = metrics.values("zkml_scheduler_backlog")
        assert any(dict(key)["model"] == "tel-metrics" for key in backlog)
        assert {dict(key)["priority"] for key in backlog} == \
            {"interactive", "bulk"}
        assert all(v == 0 for v in backlog.values())  # drained
        assert metrics.value("zkml_scheduler_backlog_total") == 0
        dispatched = metrics.values("zkml_scheduler_dispatched_total")
        assert sum(dispatched.values()) == stats["batches"]
        hist = metrics.histogram("zkml_scheduler_dispatch_seconds")
        assert hist.count == stats["batches"]

        # the same numbers surface in the prometheus exposition
        text = metrics.to_prometheus()
        assert 'zkml_worker_batches_total{worker="' in text
        assert 'zkml_scheduler_backlog{' in text
        assert "zkml_scheduler_dispatch_seconds_count" in text

        # ... and in the status document
        assert status["schema"] == "zkml-serve-status/v2"
        cluster = status["cluster"]
        assert cluster["worker_telemetry"] is True
        assert cluster["evicted"] == 0 and cluster["poisoned"] == 0
        assert set(cluster["slo_by_class"]) == {"interactive", "bulk"}
        slo = cluster["slo_by_class"]["interactive"]["total"]
        assert slo["count"] == stats["batches"]
        assert slo["errors"] == 0
        telemetered = [w for w in cluster["workers"] if "telemetry" in w]
        assert telemetered
        rollup = telemetered[0]["telemetry"]
        assert rollup["batches"] >= 1
        assert rollup["prove_seconds"] > 0
        assert rollup["last_batch_id"].startswith("batch-")
        assert rollup["ops_total"] > 0
        assert "entries" in rollup["pk_cache"]
        assert sum(w.get("telemetry", {}).get("batches", 0)
                   for w in cluster["workers"]) == stats["batches"]
        json.dumps(status)  # the whole document stays JSON-serializable

        # the dashboard renders the per-worker panel from that block
        text = render_status(status)
        assert "prove(s)" in text and "last batch" in text

    def test_telemetry_off_still_rolls_up_result_fields(self, tmp_path):
        """The flag gates in-worker capture, not result-level rollups:
        batches/prove-seconds come from BatchResult fields either way,
        while ops and pk-cache stay empty without capture."""
        spec = small_model("tel-lean")
        metrics = MetricsRegistry()
        config = _cluster_config(tmp_path, cluster_workers=1,
                                 worker_telemetry=False)
        with ProvingService(config, metrics=metrics) as service:
            assert service.submit(spec, an_input(),
                                  scale_bits=6).result(timeout=300).verified
            status = service.status()
        cluster = status["cluster"]
        assert cluster["worker_telemetry"] is False
        rollups = [w["telemetry"] for w in cluster["workers"]
                   if "telemetry" in w]
        assert rollups and all(r["ops"] == {} and r["pk_cache"] == {}
                               for r in rollups)
        series = metrics.as_dict()
        assert "zkml_worker_batches_total" in series
        assert "zkml_worker_ops_total" not in series
        assert "zkml_worker_pk_cache" not in series


class TestTopParity:
    def test_status_identical_over_socket_and_http(self, tmp_path):
        """`zkml top --once --json` sees one status document, not two.

        Both front ends answer the ``status`` control op through the
        shared :class:`PayloadProcessor`; this pins that the *cluster*
        block — including the per-worker telemetry rollup — reaches an
        HTTP ``zkml top`` exactly like a unix-socket one (modulo fields
        that advance with wall clock between the two calls).
        """
        spec = small_model("tel-top")
        socket_path = str(tmp_path / "tel-top.sock")
        with ProvingService(_cluster_config(tmp_path)) as service:
            futures = [service.submit(spec, an_input(), scale_bits=6)
                       for _ in range(4)]
            for f in futures:
                assert f.result(timeout=300).verified
            server = ServeServer(service, socket_path).start()
            front = HttpFrontEnd(service, host="127.0.0.1", port=0).start()
            try:
                via_socket = control_request(socket_path, "status")["status"]
                via_http = control_request(front.url, "status")["status"]
            finally:
                front.stop()
                server.stop()

        def scrub(node):
            """Zero the fields that advance with wall clock between the
            two control calls; everything else must match exactly."""
            if isinstance(node, dict):
                return {k: 0 if k in ("uptime_seconds", "throughput_rps")
                        else scrub(v) for k, v in node.items()}
            if isinstance(node, list):
                return [scrub(v) for v in node]
            return node

        a = scrub(json.loads(json.dumps(via_socket, sort_keys=True)))
        b = scrub(json.loads(json.dumps(via_http, sort_keys=True)))
        assert a["schema"] == b["schema"] == "zkml-serve-status/v2"
        assert set(a) == set(b)
        # the whole cluster block — workers, telemetry rollups, SLO
        # classes — is transport-independent (no new work ran between
        # the calls, so even the counters agree)
        assert a["cluster"] == b["cluster"]
        assert a == b
        # and both render through the zkml-top dashboard path
        assert render_status(via_http).splitlines()[0] == \
            render_status(via_socket).splitlines()[0]
