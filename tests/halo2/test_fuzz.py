"""Property-based fuzzing of the proving system.

Random small circuits — random gates over random columns, random copy
constraints, random range lookups — are generated, assigned honest
witnesses, proven, and verified; then a random single-cell corruption is
applied and the proof must be rejected (by the MockProver *and* the real
verifier).  Completeness and soundness, fuzzed.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.halo2 import (
    Assignment,
    ConstraintSystem,
    MockProver,
    Ref,
    create_proof,
    keygen,
    verify_proof,
)

F = GOLDILOCKS
K = 4  # 16 rows


def build_random_circuit(seed):
    """A random satisfied circuit: chains of a*b+c ops plus copies and a
    range lookup, with honest witnesses."""
    rng = random.Random(seed)
    cs = ConstraintSystem(F)
    cols = [cs.advice_column() for _ in range(4)]
    for c in cols:
        cs.enable_equality(c)
    sel = cs.selector()
    a, b, c, d = (Ref(col) for col in cols)
    cs.create_gate("fma", [a * b + c - d], selector=sel)

    table = cs.fixed_column()
    lookup_sel = cs.selector()
    cs.add_lookup("range", inputs=[Ref(lookup_sel) * (Ref(cols[0]) + 1)],
                  table=[Ref(table)])

    asg = Assignment(cs, K)
    bound = 8
    for row in range(1 << K):
        asg.assign_fixed(table, row, row + 1 if row < bound else 0)

    n_ops = rng.randint(1, 5)
    produced = []
    for i in range(n_ops):
        row = i
        x, y, z = (rng.randrange(0, 4) for _ in range(3))
        asg.assign_advice(cols[0], row, x)
        asg.assign_advice(cols[1], row, y)
        asg.assign_advice(cols[2], row, z)
        asg.assign_advice(cols[3], row, x * y + z)
        asg.enable_selector(sel, row)
        asg.enable_selector(lookup_sel, row)  # x in [0, 8) always holds
        produced.append((cols[3], row, x * y + z))

    # random copy constraints between equal-valued cells (distinct mirror
    # rows so copies never clobber each other)
    mirror_rows = rng.sample(range(n_ops, 1 << K), rng.randint(0, 2))
    for mirror_row in mirror_rows:
        col, row, value = rng.choice(produced)
        asg.assign_advice(cols[0], mirror_row, value)
        asg.copy(col, row, cols[0], mirror_row)

    return cs, asg, cols, n_ops


@given(seed=st.integers(0, 10**6))
@settings(max_examples=10, deadline=None)
def test_random_circuits_complete(seed):
    """Honest witnesses always prove and verify (completeness)."""
    cs, asg, _, _ = build_random_circuit(seed)
    MockProver(cs, asg).assert_satisfied()
    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    assert verify_proof(vk, proof, asg.instance_values(), scheme)


@given(seed=st.integers(0, 10**6), bump=st.integers(1, 100))
@settings(max_examples=10, deadline=None)
def test_random_corruptions_rejected(seed, bump):
    """Corrupting any constrained output cell is always caught (soundness)."""
    cs, asg, cols, n_ops = build_random_circuit(seed)
    rng = random.Random(seed ^ 0xC0FFEE)
    row = rng.randrange(n_ops)
    victim = cols[3]
    original = asg.value(victim, row)
    asg.assign_advice(victim, row, F.add(original, bump))

    failures = MockProver(cs, asg).verify()
    assert failures, "MockProver missed the corruption"

    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    assert not verify_proof(vk, proof, asg.instance_values(), scheme), (
        "verifier accepted a corrupted witness"
    )


@given(seed=st.integers(0, 10**6))
@settings(max_examples=6, deadline=None)
def test_copy_violations_rejected(seed):
    """Breaking a copy constraint is always caught."""
    cs, asg, cols, n_ops = build_random_circuit(seed)
    if not asg.copies:
        return
    col_a, row_a, col_b, row_b = asg.copies[0]
    asg.assign_advice(col_b, row_b, F.add(asg.value(col_b, row_b), 1))
    assert any(f.kind == "copy" for f in MockProver(cs, asg).verify())
    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    assert not verify_proof(vk, proof, asg.instance_values(), scheme)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=6, deadline=None)
def test_out_of_range_lookup_rejected(seed):
    """Pushing a looked-up value out of range is always caught."""
    cs, asg, cols, n_ops = build_random_circuit(seed)
    # make row 0's looked-up cell exceed the table while keeping the gate
    # satisfied: x=100, y=0, z=0, d=0
    asg.assign_advice(cols[0], 0, 100)
    asg.assign_advice(cols[1], 0, 0)
    asg.assign_advice(cols[2], 0, 0)
    asg.assign_advice(cols[3], 0, 0)
    failures = MockProver(cs, asg).verify()
    assert any(f.kind == "lookup" for f in failures)
