"""Small reference circuits shared by the halo2 tests."""

from repro.field import GOLDILOCKS
from repro.halo2 import Assignment, ConstraintSystem, Ref

F = GOLDILOCKS


def mul_circuit(k=3, rows=None, tamper_row=None):
    """c = a * b on a few rows; c of the last row exposed as public input.

    Returns (cs, assignment).
    """
    cs = ConstraintSystem(F)
    a, b, c = cs.advice_column(), cs.advice_column(), cs.advice_column()
    sel = cs.selector()
    inst = cs.instance_column()
    cs.enable_equality(c)
    cs.enable_equality(inst)
    cs.create_gate("mul", [Ref(a) * Ref(b) - Ref(c)], selector=sel)

    rows = rows or [(2, 3), (4, 5), (7, 7)]
    asg = Assignment(cs, k)
    for row, (x, y) in enumerate(rows):
        asg.assign_advice(a, row, x)
        asg.assign_advice(b, row, y)
        product = x * y
        if tamper_row == row:
            product += 1
        asg.assign_advice(c, row, product)
        asg.enable_selector(sel, row)
    last = len(rows) - 1
    asg.assign_instance(inst, 0, rows[last][0] * rows[last][1])
    asg.copy(c, last, inst, 0)
    return cs, asg


def copy_circuit(k=3, break_copy=False):
    """Two advice columns with a copy constraint between two cells."""
    cs = ConstraintSystem(F)
    a, b = cs.advice_column(), cs.advice_column()
    cs.enable_equality(a)
    cs.enable_equality(b)
    asg = Assignment(cs, k)
    asg.assign_advice(a, 1, 42)
    asg.assign_advice(b, 5, 43 if break_copy else 42)
    asg.copy(a, 1, b, 5)
    return cs, asg


def range_check_circuit(k=4, values=(0, 1, 5, 15), bound=16):
    """Each value must lie in [0, bound) via a lookup into a fixed table."""
    cs = ConstraintSystem(F)
    a = cs.advice_column()
    table = cs.fixed_column()
    cs.add_lookup("range", inputs=[Ref(a)], table=[Ref(table)])
    asg = Assignment(cs, k)
    for row in range(asg.n):
        asg.assign_fixed(table, row, row if row < bound else 0)
    for row, v in enumerate(values):
        asg.assign_advice(a, row, v)
    # unassigned advice rows read as 0, which the table contains
    return cs, asg


def relu_lookup_circuit(k=5, pairs=((3, 3), (0, 0), (-4, 0))):
    """(x, relu(x)) pairs checked against a two-column lookup table."""
    cs = ConstraintSystem(F)
    x_col, y_col = cs.advice_column(), cs.advice_column()
    t_in, t_out = cs.fixed_column(), cs.fixed_column()
    cs.add_lookup("relu", inputs=[Ref(x_col), Ref(y_col)], table=[Ref(t_in), Ref(t_out)])
    asg = Assignment(cs, k)
    half = asg.n // 2
    # table covers x in [-half, half)
    for row in range(asg.n):
        x = row - half
        asg.assign_fixed(t_in, row, x)
        asg.assign_fixed(t_out, row, max(x, 0))
    for row, (x, y) in enumerate(pairs):
        asg.assign_advice(x_col, row, x)
        asg.assign_advice(y_col, row, y)
    # remaining rows: (0, 0) is in the table
    return cs, asg
