"""Tests for proof byte serialization."""

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.halo2 import (
    create_proof,
    keygen,
    proof_from_bytes,
    proof_to_bytes,
    verify_proof,
)

from tests.halo2.circuits import mul_circuit, range_check_circuit

F = GOLDILOCKS


@pytest.fixture(scope="module")
def proved():
    scheme = scheme_by_name("kzg", F)
    cs, asg = mul_circuit()
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    return scheme, vk, proof, asg.instance_values()


class TestRoundTrip:
    def test_bytes_round_trip_verifies(self, proved):
        scheme, vk, proof, instance = proved
        data = proof_to_bytes(proof)
        again = proof_from_bytes(data)
        assert verify_proof(vk, again, instance, scheme)

    def test_round_trip_is_identity(self, proved):
        _, _, proof, _ = proved
        again = proof_from_bytes(proof_to_bytes(proof))
        assert again.advice_commitments == proof.advice_commitments
        assert again.helper_commitments == proof.helper_commitments
        assert again.quotient_commitments == proof.quotient_commitments
        assert again.advice_openings == proof.advice_openings
        assert again.quotient_openings == proof.quotient_openings

    def test_deterministic(self, proved):
        _, _, proof, _ = proved
        assert proof_to_bytes(proof) == proof_to_bytes(proof)

    def test_negative_rotations_survive(self):
        scheme = scheme_by_name("ipa", F)
        cs, asg = range_check_circuit()
        pk, vk = keygen(cs, asg, scheme)
        proof = create_proof(pk, asg, scheme)
        again = proof_from_bytes(proof_to_bytes(proof))
        assert verify_proof(vk, again, asg.instance_values(), scheme)


class TestMalformed:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            proof_from_bytes(b"NOTPROOF" + b"\x00" * 64)

    def test_trailing_bytes(self, proved):
        _, _, proof, _ = proved
        with pytest.raises(ValueError, match="trailing"):
            proof_from_bytes(proof_to_bytes(proof) + b"\x00")

    def test_corrupted_payload_fails_verification(self, proved):
        scheme, vk, proof, instance = proved
        data = bytearray(proof_to_bytes(proof))
        data[200] ^= 0xFF  # somewhere inside a commitment/opening
        try:
            again = proof_from_bytes(bytes(data))
        except ValueError:
            return  # rejected at parse time: also fine
        assert not verify_proof(vk, again, instance, scheme)
