"""Tests for the constraint-expression AST."""

import pytest

from repro.field import GOLDILOCKS
from repro.halo2 import Column, ColumnType, Constant, Ref
from repro.halo2.expression import (
    Challenge,
    evaluate_from_openings,
    evaluate_on_domain,
)

F = GOLDILOCKS
A = Column(ColumnType.ADVICE, 0)
B = Column(ColumnType.ADVICE, 1)


def test_degree_tracking():
    assert Constant(5).degree() == 0
    assert Ref(A).degree() == 1
    assert (Ref(A) * Ref(B)).degree() == 2
    assert (Ref(A) * Ref(B) + Ref(A)).degree() == 2
    assert (Ref(A) * Ref(A) * Ref(A)).degree() == 3
    assert Challenge("theta").degree() == 0


def test_refs_collects_rotations():
    expr = Ref(A) * Ref(B, 1) - Ref(A, -1)
    assert expr.refs() == {(A, 0), (B, 1), (A, -1)}


def test_evaluate_with_read_callback():
    expr = Ref(A) * Ref(B) - Constant(6)
    value = expr.evaluate(F, lambda col, rot: 2 if col == A else 3)
    assert value == 0


def test_operator_sugar_with_ints():
    expr = 2 * Ref(A) + 1 - Ref(A)
    value = expr.evaluate(F, lambda col, rot: 10)
    assert value == 11


def test_neg():
    expr = -Ref(A)
    assert expr.evaluate(F, lambda col, rot: 5) == F.p - 5


def test_challenge_evaluation():
    expr = Challenge("alpha") + Ref(A)
    value = expr.evaluate(F, lambda col, rot: 1, {"alpha": 9})
    assert value == 10


def test_unbound_challenge_raises():
    with pytest.raises(KeyError):
        Challenge("alpha").evaluate(F, lambda col, rot: 0)


def test_evaluate_from_openings():
    expr = Ref(A, 1) - Ref(A)
    openings = {(A, 1): 8, (A, 0): 3}
    assert evaluate_from_openings(expr, F, openings) == 5


def test_evaluate_on_domain_matches_pointwise():
    expr = Ref(A) * Ref(B) + Challenge("c") - Ref(A, 1)
    a_vals = [1, 2, 3, 4]
    b_vals = [5, 6, 7, 8]

    def read_vec(col, rot):
        vals = a_vals if col == A else b_vals
        return vals[rot:] + vals[:rot]

    out = evaluate_on_domain(expr, F, read_vec, 4, {"c": 100})
    for i in range(4):
        def read(col, rot, _i=i):
            vals = a_vals if col == A else b_vals
            return vals[(_i + rot) % 4]

        assert out[i] == expr.evaluate(F, read, {"c": 100})
