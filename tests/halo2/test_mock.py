"""Tests for the MockProver."""

import pytest

from repro.halo2 import MockProver

from tests.halo2.circuits import (
    copy_circuit,
    mul_circuit,
    range_check_circuit,
    relu_lookup_circuit,
)


def test_satisfied_mul_circuit():
    cs, asg = mul_circuit()
    MockProver(cs, asg).assert_satisfied()


def test_gate_violation_reported_with_row():
    cs, asg = mul_circuit(tamper_row=1)
    failures = MockProver(cs, asg).verify()
    gate_failures = [f for f in failures if f.kind == "gate"]
    assert len(gate_failures) == 1
    assert gate_failures[0].row == 1
    assert "mul" in gate_failures[0].name


def test_assert_satisfied_raises_with_report():
    cs, asg = mul_circuit(tamper_row=0)
    with pytest.raises(AssertionError, match="mul"):
        MockProver(cs, asg).assert_satisfied()


def test_copy_satisfied():
    cs, asg = copy_circuit()
    MockProver(cs, asg).assert_satisfied()


def test_copy_violation():
    cs, asg = copy_circuit(break_copy=True)
    failures = MockProver(cs, asg).verify()
    assert any(f.kind == "copy" for f in failures)


def test_lookup_satisfied():
    cs, asg = range_check_circuit()
    MockProver(cs, asg).assert_satisfied()


def test_lookup_out_of_range():
    cs, asg = range_check_circuit(values=(0, 99))
    failures = MockProver(cs, asg).verify()
    assert any(f.kind == "lookup" and f.row == 1 for f in failures)


def test_two_column_lookup_satisfied():
    cs, asg = relu_lookup_circuit()
    MockProver(cs, asg).assert_satisfied()


def test_two_column_lookup_wrong_output():
    cs, asg = relu_lookup_circuit(pairs=((3, 4),))
    failures = MockProver(cs, asg).verify()
    assert any(f.kind == "lookup" for f in failures)


def test_selector_limits_gate_rows():
    # Gate active only on selected rows: garbage on unselected rows is fine.
    cs, asg = mul_circuit()
    a = cs.gates[0].constraints[0]
    asg.assign_advice(list(a.refs())[0][0], 7, 999)  # unselected row
    MockProver(cs, asg).assert_satisfied()


def test_max_failures_truncation():
    cs, asg = range_check_circuit(values=tuple([99] * 10))
    failures = MockProver(cs, asg).verify(max_failures=3)
    assert len(failures) == 3
    # the cap limits materialization, not counting
    assert failures.total == 10
    assert failures.truncated
    summary = failures.summary()
    assert "...and 7 more failures (report capped at 3)" in summary


def test_uncapped_failures_not_truncated():
    cs, asg = range_check_circuit(values=(0, 99))
    failures = MockProver(cs, asg).verify()
    assert failures.total == len(failures)
    assert not failures.truncated
    assert "more failures" not in failures.summary()


def test_gate_failure_carries_cell_values():
    cs, asg = mul_circuit(tamper_row=1)
    failures = MockProver(cs, asg).verify()
    (failure,) = [f for f in failures if f.kind == "gate"]
    assert failure.cells, "gate failure should list referenced cells"
    assert "=" in failure.cells
    assert "[" in str(failure)  # cells rendered in the message


def test_region_attribution():
    from repro.gadgets.builder import Region

    cs, asg = mul_circuit(tamper_row=1)
    regions = [Region("fc_1", "fully_connected", 0, 8)]
    failures = MockProver(cs, asg, regions=regions).verify()
    (failure,) = [f for f in failures if f.kind == "gate"]
    assert failure.region == "layer 'fc_1' (fully_connected, rows 0..7)"
    assert "in layer 'fc_1'" in str(failure)


def test_innermost_region_wins():
    from repro.gadgets.builder import Region

    cs, asg = mul_circuit(tamper_row=1)
    regions = [Region("outer", "batch", 0, 8), Region("inner", "", 0, 4)]
    failures = MockProver(cs, asg, regions=regions).verify()
    (failure,) = [f for f in failures if f.kind == "gate"]
    assert failure.region == "region 'inner' (rows 0..3)"


def test_mismatched_assignment_rejected():
    cs1, _ = mul_circuit()
    _, asg2 = mul_circuit()
    with pytest.raises(ValueError):
        MockProver(cs1, asg2)
