"""Tests for ConstraintSystem/Assignment bookkeeping and keygen shape."""

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.halo2 import Assignment, ConstraintSystem, Gate, Ref, keygen
from repro.halo2.column import Column, ColumnType

from tests.halo2.circuits import mul_circuit, range_check_circuit

F = GOLDILOCKS


class TestColumnAllocation:
    def test_indices_increment_per_kind(self):
        cs = ConstraintSystem(F)
        assert cs.advice_column().index == 0
        assert cs.advice_column().index == 1
        assert cs.fixed_column().index == 0
        assert cs.selector().index == 0
        assert cs.instance_column().index == 0
        assert cs.num_advice == 2

    def test_selector_equality_rejected(self):
        cs = ConstraintSystem(F)
        s = cs.selector()
        with pytest.raises(ValueError):
            cs.enable_equality(s)


class TestGate:
    def test_selector_must_be_selector_column(self):
        cs = ConstraintSystem(F)
        a = cs.advice_column()
        with pytest.raises(ValueError):
            Gate(name="bad", constraints=(Ref(a),), selector=a)

    def test_effective_degree_includes_selector(self):
        cs = ConstraintSystem(F)
        a, b = cs.advice_column(), cs.advice_column()
        s = cs.selector()
        cs.create_gate("mul", [Ref(a) * Ref(b)], selector=s)
        assert cs.gates[0].degree() == 3

    def test_gate_degree_floor_is_two(self):
        cs = ConstraintSystem(F)
        assert cs.gate_degree() == 2


class TestMaxDegree:
    def test_lookup_raises_degree(self):
        cs = ConstraintSystem(F)
        a = cs.advice_column()
        t = cs.fixed_column()
        s = cs.selector()
        # selector-gated input has degree 2 -> helper constraint degree 5
        cs.add_lookup("rc", inputs=[Ref(s) * Ref(a)], table=[Ref(t)])
        assert cs.max_degree() == 1 + 2 + 1

    def test_permutation_sets_floor_three(self):
        cs = ConstraintSystem(F)
        a = cs.advice_column()
        cs.enable_equality(a)
        assert cs.max_degree() == 3


class TestAssignment:
    def test_row_bounds_checked(self):
        cs, asg = mul_circuit(k=3)
        col = Column(ColumnType.ADVICE, 0)
        with pytest.raises(IndexError):
            asg.assign_advice(col, 8, 1)

    def test_kind_mismatch_rejected(self):
        cs, asg = mul_circuit(k=3)
        with pytest.raises(ValueError):
            asg.assign_fixed(Column(ColumnType.ADVICE, 0), 0, 1)

    def test_copy_requires_equality(self):
        cs = ConstraintSystem(F)
        a, b = cs.advice_column(), cs.advice_column()
        asg = Assignment(cs, 3)
        with pytest.raises(ValueError):
            asg.copy(a, 0, b, 0)

    def test_negative_values_reduced(self):
        cs, asg = mul_circuit(k=3)
        col = Column(ColumnType.ADVICE, 0)
        asg.assign_advice(col, 6, -1)
        assert asg.value(col, 6) == F.p - 1

    def test_unassigned_reads_zero(self):
        cs, asg = mul_circuit(k=3)
        assert asg.value(Column(ColumnType.ADVICE, 0), 7) == 0


class TestKeygen:
    def test_helper_layout_counts(self):
        scheme = scheme_by_name("kzg", F)
        cs, asg = range_check_circuit()
        pk, vk = keygen(cs, asg, scheme)
        # one lookup -> 3 helper advice columns, no permutation
        assert vk.num_helper_advice == 3
        assert vk.permutation is None
        assert len(vk.lookups) == 1

    def test_permutation_layout_counts(self):
        scheme = scheme_by_name("kzg", F)
        cs, asg = mul_circuit()
        pk, vk = keygen(cs, asg, scheme)
        # two equality columns -> 2 inverse helpers + 1 running sum
        assert vk.permutation is not None
        assert len(vk.permutation.helper_cols) == 2
        assert vk.num_helper_advice == 3

    def test_vk_digest_stable_and_binding(self):
        scheme = scheme_by_name("kzg", F)
        cs1, asg1 = mul_circuit()
        _, vk1 = keygen(cs1, asg1, scheme)
        cs2, asg2 = mul_circuit()
        _, vk2 = keygen(cs2, asg2, scheme)
        assert vk1.digest() == vk2.digest()
        cs3, asg3 = range_check_circuit()
        _, vk3 = keygen(cs3, asg3, scheme)
        assert vk1.digest() != vk3.digest()

    def test_quotient_pieces_track_degree(self):
        scheme = scheme_by_name("kzg", F)
        cs, asg = mul_circuit()
        _, vk = keygen(cs, asg, scheme)
        assert vk.num_quotient_pieces == vk.max_degree - 1
