"""End-to-end proving over the BN254 scalar field (the paper's field).

Goldilocks is the default for speed; this checks the whole stack is
field-generic by proving and verifying over BN254-Fr, including a gadget
circuit with lookups.
"""

import pytest

from repro.commit import scheme_by_name
from repro.field import BN254_FR
from repro.gadgets import AddGadget, CircuitBuilder, MulGadget, PointwiseGadget
from repro.halo2 import (
    Assignment,
    ConstraintSystem,
    Ref,
    create_proof,
    keygen,
    verify_proof,
)
from repro.tensor import Entry


@pytest.mark.parametrize("backend", ["kzg", "ipa"])
def test_plain_circuit_over_bn254(backend):
    cs = ConstraintSystem(BN254_FR)
    a, b, c = cs.advice_column(), cs.advice_column(), cs.advice_column()
    sel = cs.selector()
    cs.enable_equality(a)
    cs.enable_equality(c)
    cs.create_gate("mul", [Ref(a) * Ref(b) - Ref(c)], selector=sel)
    asg = Assignment(cs, 3)
    asg.assign_advice(a, 0, 6)
    asg.assign_advice(b, 0, 7)
    asg.assign_advice(c, 0, 42)
    asg.enable_selector(sel, 0)
    asg.assign_advice(a, 1, 42)
    asg.copy(c, 0, a, 1)

    scheme = scheme_by_name(backend, BN254_FR)
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    assert verify_proof(vk, proof, asg.instance_values(), scheme)

    # and a violated gate is rejected
    asg.assign_advice(c, 0, 43)
    asg.assign_advice(a, 1, 43)
    pk2, vk2 = keygen(cs, asg, scheme)
    bad = create_proof(pk2, asg, scheme)
    assert not verify_proof(vk2, bad, asg.instance_values(), scheme)


def test_gadget_circuit_with_lookups_over_bn254():
    b = CircuitBuilder(k=7, num_cols=8, scale_bits=4, lookup_bits=6,
                       field=BN254_FR)
    add = b.gadget(AddGadget)
    mul = b.gadget(MulGadget)
    relu = b.gadget(PointwiseGadget, fn_name="relu")
    (s,) = add.assign_row([(Entry(b.fp.encode(0.5)), Entry(b.fp.encode(-1.0)))])
    (m,) = mul.assign_row([(s, Entry(b.fp.encode(2.0)))])
    (r,) = relu.assign_row([(m,)])
    assert r.value == 0  # relu(-1.0) at any scale
    b.mock_check()

    scheme = scheme_by_name("kzg", BN254_FR)
    pk, vk = keygen(b.cs, b.asg, scheme)
    proof = create_proof(pk, b.asg, scheme)
    assert verify_proof(vk, proof, b.asg.instance_values(), scheme)


def test_field_encoding_differs_but_semantics_agree():
    from repro.field import GOLDILOCKS

    for field in (GOLDILOCKS, BN254_FR):
        assert field.decode_signed(field.encode_signed(-123)) == -123
    assert BN254_FR.encode_signed(-1) != GOLDILOCKS.encode_signed(-1)
