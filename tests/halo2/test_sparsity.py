"""Sparsity-aware synthesis must be a pure optimization: same bytes out.

All-zero advice columns are common in padded model circuits (unused
helper slots, zero bias rows); the prover skips their transforms and
reuses the zero-polynomial commitment.  The only observable difference
allowed is ``STATS.sparsity_skips`` — proof bytes must be identical with
the optimization on, off (``ZKML_SPARSITY=0``), and against the exact
list-backend reference.  The streaming quotient path
(``ZKML_QUOTIENT_STREAM``) gets the same treatment: mode changes may
never change bytes.
"""

import pickle

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.field.vector import ListBackend
from repro.halo2 import create_proof, keygen, verify_proof
from repro.obs.stats import STATS

from tests.halo2.circuits import mul_circuit

F = GOLDILOCKS


def _zero_heavy_circuit():
    """A mul circuit whose a and c advice columns are identically zero."""
    return mul_circuit(rows=[(0, 5), (0, 9)])


def _force_list_backend(pk):
    domain = pk.vk.domain
    domain.backend = ListBackend(F)
    domain._use_gl64 = False
    domain._inv_vanishing_vec = None


def _prove_bytes(monkeypatch=None, env=None):
    cs, asg = _zero_heavy_circuit()
    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    if env and monkeypatch:
        for key, value in env.items():
            monkeypatch.setenv(key, value)
    proof = create_proof(pk, asg, scheme)
    assert verify_proof(vk, proof, asg.instance_values(), scheme)
    return pickle.dumps(proof)


def test_all_zero_columns_are_detected():
    cs, asg = _zero_heavy_circuit()
    # columns: 0=a (zero), 1=b (nonzero), 2=c (zero products)
    assert asg.advice_is_zero(0)
    assert not asg.advice_is_zero(1)
    assert asg.advice_is_zero(2)


def test_sparsity_skips_are_counted():
    cs, asg = _zero_heavy_circuit()
    scheme = scheme_by_name("kzg", F)
    pk, _ = keygen(cs, asg, scheme)
    before = STATS.snapshot()
    create_proof(pk, asg, scheme)
    assert STATS.delta(before)["sparsity_skips"] > 0


def test_proof_bytes_identical_with_sparsity_disabled(monkeypatch):
    with_sparsity = _prove_bytes()
    without = _prove_bytes(monkeypatch, env={"ZKML_SPARSITY": "0"})
    assert with_sparsity == without


def test_sparsity_disabled_skips_nothing(monkeypatch):
    cs, asg = _zero_heavy_circuit()
    scheme = scheme_by_name("kzg", F)
    pk, _ = keygen(cs, asg, scheme)
    monkeypatch.setenv("ZKML_SPARSITY", "0")
    before = STATS.snapshot()
    create_proof(pk, asg, scheme)
    assert STATS.delta(before)["sparsity_skips"] == 0


def test_sparse_proof_matches_list_backend_reference():
    cs, asg = _zero_heavy_circuit()
    scheme = scheme_by_name("kzg", F)

    pk_fast, _ = keygen(cs, asg, scheme)
    proof_fast = create_proof(pk_fast, asg, scheme)

    pk_ref, _ = keygen(cs, asg, scheme)
    _force_list_backend(pk_ref)
    proof_ref = create_proof(pk_ref, asg, scheme)

    assert pickle.dumps(proof_fast) == pickle.dumps(proof_ref)


def test_sparse_parallel_proof_is_byte_identical():
    cs, asg = _zero_heavy_circuit()
    scheme = scheme_by_name("kzg", F)
    pk, _ = keygen(cs, asg, scheme)
    serial = create_proof(pk, asg, scheme, jobs=1)
    parallel = create_proof(pk, asg, scheme, jobs=2)
    assert pickle.dumps(serial) == pickle.dumps(parallel)


@pytest.mark.parametrize("mode", ["0", "1"])
def test_quotient_stream_mode_does_not_change_bytes(monkeypatch, mode):
    auto = _prove_bytes()
    forced = _prove_bytes(monkeypatch, env={"ZKML_QUOTIENT_STREAM": mode})
    assert auto == forced
