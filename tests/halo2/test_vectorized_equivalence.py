"""The vectorized prover paths must match the per-row reference exactly.

Three layers of equivalence:

- ``evaluate_on_lagrange`` (columnwise helper construction) against a
  per-row ``Expression.evaluate`` loop, on both vector backends;
- ``VectorEvaluator.fold`` (the quotient fold) against per-row evaluation
  plus a scalar Horner fold over the extended coset;
- whole proofs: the numpy Goldilocks backend vs the exact list backend,
  and ``jobs>1`` vs ``jobs=1``, must pickle to identical bytes.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.field.vector import GL64Backend, ListBackend
from repro.halo2 import create_proof, keygen, verify_proof
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import VectorEvaluator, evaluate_on_lagrange
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA

from tests.halo2.circuits import (
    mul_circuit,
    range_check_circuit,
    relu_lookup_circuit,
)

F = GOLDILOCKS

CHALLENGES = {THETA: 1234567, BETA: 7654321, GAMMA: 31337, ALPHA: 424242}


def _column_values(pk, asg):
    """Base-domain evaluations of every user column, as plain int lists."""
    vk = pk.vk
    values = {}
    for col in set(pk.fixed_evals):
        values[col] = list(pk.fixed_evals[col])
    for i in range(vk.cs.num_advice):
        col = Column(ColumnType.ADVICE, i)
        values[col] = asg.column_values(col)
    for i in range(vk.cs.num_instance):
        col = Column(ColumnType.INSTANCE, i)
        values[col] = asg.column_values(col)
    return values


def _fill_missing(values, exprs, n):
    """Deterministic pseudo-random data for columns without assignments.

    Helper columns (lookup m/h/s, permutation products) are only computed
    inside the prover; the evaluator equivalences hold for *any* column
    contents, so arbitrary residues are fine here.
    """
    import random

    rng = random.Random(0xC0FFEE)
    for expr in exprs:
        for col, _rot in expr.refs():
            if col not in values:
                values[col] = [rng.randrange(F.p) for _ in range(n)]


def _per_row_reference(expr, values, n, challenges):
    out = []
    for row in range(n):
        def read(col, rot, row=row):
            return values[col][(row + rot) % n]

        out.append(expr.evaluate(F, read, challenges))
    return out


def _helper_expressions(vk):
    """Every expression the prover evaluates columnwise in phase 2."""
    exprs = []
    for helpers in vk.lookups:
        exprs.extend(helpers.argument.inputs)
        exprs.extend(helpers.argument.table)
    return exprs


CIRCUITS = [
    mul_circuit(),
    range_check_circuit(),
    relu_lookup_circuit(),
]


@pytest.mark.parametrize("circuit", CIRCUITS, ids=["mul", "range", "relu"])
@pytest.mark.parametrize("backend_cls", [ListBackend, GL64Backend])
def test_evaluate_on_lagrange_matches_per_row(circuit, backend_cls):
    cs, asg = circuit
    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    backend = backend_cls(F)
    values = _column_values(pk, asg)
    exprs = _helper_expressions(vk) or [expr for _, expr in vk.constraints]
    _fill_missing(values, exprs, vk.n)
    for expr in exprs:
        got = backend.to_ints(
            evaluate_on_lagrange(
                expr,
                backend,
                lambda col: backend.from_ints(values[col]),
                vk.n,
                CHALLENGES,
            )
        )
        assert got == _per_row_reference(expr, values, vk.n, CHALLENGES)


@pytest.mark.parametrize("circuit", CIRCUITS, ids=["mul", "range", "relu"])
@pytest.mark.parametrize("backend_cls", [ListBackend, GL64Backend])
def test_quotient_fold_matches_per_row(circuit, backend_cls):
    cs, asg = circuit
    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    domain = vk.domain
    n, ext_n = vk.n, domain.extended_n
    extension = ext_n // n
    backend = backend_cls(F)

    # extended-coset evaluations of every referenced column, via the
    # public int-list domain API (independent of the prover's caches)
    base_values = _column_values(pk, asg)
    _fill_missing(base_values, [expr for _, expr in vk.constraints], n)
    extended = {}
    for _, expr in vk.constraints:
        for col, _rot in expr.refs():
            if col not in extended:
                poly = domain.lagrange_to_coeff(base_values[col])
                extended[col] = domain.coeff_to_extended(poly)

    def read_vec(col, rot):
        shift = (rot * extension) % ext_n
        ext = extended[col]
        return backend.from_ints(ext[shift:] + ext[:shift])

    y = 987654321
    evaluator = VectorEvaluator(backend, ext_n, read_vec, CHALLENGES)
    folded = backend.to_ints(
        evaluator.fold([expr for _, expr in vk.constraints], y)
    )

    reference = [0] * ext_n
    for _, expr in vk.constraints:
        for row in range(ext_n):
            def read(col, rot, row=row):
                return extended[col][(row + rot * extension) % ext_n]

            value = expr.evaluate(F, read, CHALLENGES)
            reference[row] = F.add(F.mul(reference[row], y), value)

    assert folded == reference


def _force_list_backend(pk):
    """Downgrade a proving key's domain to the exact list backend."""
    domain = pk.vk.domain
    domain.backend = ListBackend(F)
    domain._use_gl64 = False
    domain._inv_vanishing_vec = None


@pytest.mark.parametrize(
    "circuit", [mul_circuit(), relu_lookup_circuit()], ids=["mul", "relu"]
)
def test_gl64_proof_matches_list_backend(circuit):
    cs, asg = circuit
    scheme = scheme_by_name("kzg", F)

    pk_fast, vk_fast = keygen(cs, asg, scheme)
    proof_fast = create_proof(pk_fast, asg, scheme)

    pk_ref, vk_ref = keygen(cs, asg, scheme)
    _force_list_backend(pk_ref)
    proof_ref = create_proof(pk_ref, asg, scheme)

    assert pickle.dumps(proof_fast) == pickle.dumps(proof_ref)
    assert verify_proof(vk_fast, proof_fast, asg.instance_values(), scheme)


def test_parallel_proof_is_byte_identical():
    cs, asg = mul_circuit()
    scheme = scheme_by_name("kzg", F)
    pk, vk = keygen(cs, asg, scheme)
    serial = create_proof(pk, asg, scheme, jobs=1)
    parallel = create_proof(pk, asg, scheme, jobs=2)
    assert pickle.dumps(serial) == pickle.dumps(parallel)
    assert verify_proof(vk, parallel, asg.instance_values(), scheme)


@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=-100, max_value=100),
            st.integers(min_value=-100, max_value=100),
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=10, deadline=None)
def test_random_mul_circuits_prove_identically(rows):
    cs, asg = mul_circuit(rows=rows)
    scheme = scheme_by_name("kzg", F)

    pk_fast, vk_fast = keygen(cs, asg, scheme)
    proof_fast = create_proof(pk_fast, asg, scheme)
    assert verify_proof(vk_fast, proof_fast, asg.instance_values(), scheme)

    pk_ref, _ = keygen(cs, asg, scheme)
    _force_list_backend(pk_ref)
    proof_ref = create_proof(pk_ref, asg, scheme)
    assert pickle.dumps(proof_fast) == pickle.dumps(proof_ref)


@given(
    values=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8)
)
@settings(max_examples=10, deadline=None)
def test_random_lookup_circuits_prove_identically(values):
    cs, asg = range_check_circuit(values=tuple(values))
    scheme = scheme_by_name("kzg", F)

    pk_fast, vk_fast = keygen(cs, asg, scheme)
    proof_fast = create_proof(pk_fast, asg, scheme)
    assert verify_proof(vk_fast, proof_fast, asg.instance_values(), scheme)

    pk_ref, _ = keygen(cs, asg, scheme)
    _force_list_backend(pk_ref)
    proof_ref = create_proof(pk_ref, asg, scheme)
    assert pickle.dumps(proof_fast) == pickle.dumps(proof_ref)
