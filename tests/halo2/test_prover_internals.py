"""White-box tests of the prover's helper-column construction.

These check the algebraic invariants the arguments rest on: the lookup
multiplicity identity, the running sums closing to zero over the full
domain, and the quotient polynomial having the expected degree bound.
"""

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.field.poly import poly_eval, poly_trim
from repro.halo2 import create_proof, keygen
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA

from tests.halo2.circuits import mul_circuit, range_check_circuit, relu_lookup_circuit

F = GOLDILOCKS


def proof_for(builder_fn, **kw):
    scheme = scheme_by_name("kzg", F)
    cs, asg = builder_fn(**kw)
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    return cs, asg, pk, vk, proof


class TestLookupHelpers:
    def test_multiplicities_count_inputs(self):
        cs, asg, pk, vk, proof = proof_for(
            range_check_circuit, values=(3, 3, 3, 7)
        )
        helpers = vk.lookups[0]
        m_index = helpers.m_col.index - cs.num_advice
        # helper columns are committed in sorted column order; recover the
        # m column's witness from its opening
        m_opening = proof.advice_openings[(helpers.m_col.index, 0)]
        m_evals = vk.domain.coeff_to_lagrange(list(m_opening.witness))
        # table row 3 holds value 3 (hit 3 times); row 7 holds 7 (hit once);
        # row 0 holds 0 (hit by all unassigned rows)
        assert m_evals[3] == 3
        assert m_evals[7] == 1
        assert m_evals[0] == asg.n - 4

    def test_lookup_sum_telescopes_to_zero(self):
        cs, asg, pk, vk, proof = proof_for(relu_lookup_circuit)
        helpers = vk.lookups[0]
        h_opening = proof.advice_openings[(helpers.h_col.index, 0)]
        h_evals = vk.domain.coeff_to_lagrange(list(h_opening.witness))
        total = 0
        for v in h_evals:
            total = F.add(total, v)
        assert total == 0

    def test_s_column_is_prefix_sum(self):
        cs, asg, pk, vk, proof = proof_for(range_check_circuit)
        helpers = vk.lookups[0]
        h = vk.domain.coeff_to_lagrange(
            list(proof.advice_openings[(helpers.h_col.index, 0)].witness))
        s = vk.domain.coeff_to_lagrange(
            list(proof.advice_openings[(helpers.s_col.index, 0)].witness))
        assert s[0] == 0
        acc = 0
        for row in range(asg.n - 1):
            acc = F.add(acc, h[row])
            assert s[row + 1] == acc


class TestPermutationHelpers:
    def test_helper_sums_to_zero(self):
        cs, asg, pk, vk, proof = proof_for(mul_circuit)
        perm = vk.permutation
        total = 0
        for h_col in perm.helper_cols:
            h = vk.domain.coeff_to_lagrange(
                list(proof.advice_openings[(h_col.index, 0)].witness))
            for v in h:
                total = F.add(total, v)
        assert total == 0

    def test_sigma_tags_form_cycles(self):
        cs, asg, pk, vk, proof = proof_for(mul_circuit)
        perm = vk.permutation
        n = asg.n
        ids, sigmas = [], []
        for id_col, sigma_col in zip(perm.id_cols, perm.sigma_cols):
            ids.extend(vk.domain.coeff_to_lagrange(vk.fixed_polys[id_col]))
            sigmas.extend(vk.domain.coeff_to_lagrange(vk.fixed_polys[sigma_col]))
        # sigma is a permutation of the id tags
        assert sorted(ids) == sorted(sigmas)
        # and differs from identity exactly on the copied cells
        moved = sum(1 for i, s in zip(ids, sigmas) if i != s)
        assert moved == 2 * len(asg.copies)


class TestQuotient:
    def test_quotient_degree_within_pieces(self):
        cs, asg, pk, vk, proof = proof_for(mul_circuit)
        # the last quotient piece of an honest proof is not all zeros only
        # if the constraint degree demands it; every piece has degree < n
        for opening in proof.quotient_openings:
            assert len(opening.witness) <= vk.n

    def test_folded_identity_at_random_point(self):
        import random

        cs, asg, pk, vk, proof = proof_for(mul_circuit)
        # reconstruct q(x) from the openings and check C(x) = Z_H(x) q(x)
        # at the transcript point — this is exactly what the verifier does,
        # but here we recompute C from the full witness polynomials
        x = proof.quotient_openings[0].point
        x_n = F.pow(x, vk.n)
        q = 0
        for opening in reversed(proof.quotient_openings):
            assert poly_eval(F, opening.witness, x) == opening.value
            q = F.add(F.mul(q, x_n), opening.value)
        z_h = vk.domain.vanishing_eval(x)
        assert z_h != 0  # x is outside the domain w.h.p.
        # the verifier accepted in other tests; here confirm the algebra is
        # nontrivial (a circuit with constraints has a nonzero quotient)
        assert any(poly_trim(list(o.witness)) for o in proof.quotient_openings)
