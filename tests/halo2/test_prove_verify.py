"""End-to-end prove/verify tests, including negative paths."""

import pytest

from repro.commit import scheme_by_name
from repro.commit.scheme import Commitment
from repro.field import GOLDILOCKS
from repro.halo2 import create_proof, keygen, verify_proof
from repro.halo2.prover import ProvingError

from tests.halo2.circuits import (
    copy_circuit,
    mul_circuit,
    range_check_circuit,
    relu_lookup_circuit,
)

F = GOLDILOCKS


@pytest.fixture(params=["kzg", "ipa"])
def scheme(request):
    return scheme_by_name(request.param, F)


def prove_and_verify(builder, scheme, **kwargs):
    cs, asg = builder(**kwargs)
    pk, vk = keygen(cs, asg, scheme)
    proof = create_proof(pk, asg, scheme)
    ok = verify_proof(vk, proof, asg.instance_values(), scheme)
    return ok, (cs, asg, pk, vk, proof)


class TestHonestProofs:
    def test_mul_circuit(self, scheme):
        ok, _ = prove_and_verify(mul_circuit, scheme)
        assert ok

    def test_copy_circuit(self, scheme):
        ok, _ = prove_and_verify(copy_circuit, scheme)
        assert ok

    def test_range_check(self, scheme):
        ok, _ = prove_and_verify(range_check_circuit, scheme)
        assert ok

    def test_relu_lookup(self, scheme):
        ok, _ = prove_and_verify(relu_lookup_circuit, scheme)
        assert ok


class TestDishonestWitnesses:
    def test_gate_violation_rejected(self, scheme):
        ok, _ = prove_and_verify(mul_circuit, scheme, tamper_row=1)
        assert not ok

    def test_copy_violation_rejected(self, scheme):
        ok, _ = prove_and_verify(copy_circuit, scheme, break_copy=True)
        assert not ok

    def test_lookup_violation_raises_in_prover(self, scheme):
        cs, asg = range_check_circuit(values=(0, 99))
        pk, vk = keygen(cs, asg, scheme)
        with pytest.raises(ProvingError, match="not in the table"):
            create_proof(pk, asg, scheme)


class TestTamperedProofs:
    def test_wrong_instance_rejected(self, scheme):
        ok, (cs, asg, pk, vk, proof) = prove_and_verify(mul_circuit, scheme)
        assert ok
        instance = asg.instance_values()
        instance[0][0] = F.add(instance[0][0], 1)
        assert not verify_proof(vk, proof, instance, scheme)

    def test_tampered_commitment_rejected(self, scheme):
        ok, (cs, asg, pk, vk, proof) = prove_and_verify(mul_circuit, scheme)
        digest = bytearray(proof.advice_commitments[0].digest)
        digest[0] ^= 1
        proof.advice_commitments[0] = Commitment(bytes(digest))
        assert not verify_proof(vk, proof, asg.instance_values(), scheme)

    def test_tampered_opening_value_rejected(self, scheme):
        ok, (cs, asg, pk, vk, proof) = prove_and_verify(mul_circuit, scheme)
        key = next(iter(proof.advice_openings))
        opening = proof.advice_openings[key]
        proof.advice_openings[key] = type(opening)(
            point=opening.point,
            value=F.add(opening.value, 1),
            witness=opening.witness,
        )
        assert not verify_proof(vk, proof, asg.instance_values(), scheme)

    def test_dropped_quotient_piece_rejected(self, scheme):
        ok, (cs, asg, pk, vk, proof) = prove_and_verify(mul_circuit, scheme)
        proof.quotient_commitments = proof.quotient_commitments[:-1]
        proof.quotient_openings = proof.quotient_openings[:-1]
        assert not verify_proof(vk, proof, asg.instance_values(), scheme)


class TestProofShape:
    def test_modeled_size_positive_and_backend_dependent(self):
        kzg = scheme_by_name("kzg", F)
        ipa = scheme_by_name("ipa", F)
        _, (_, asg, _, vk_k, proof_k) = prove_and_verify(mul_circuit, kzg)
        _, (_, _, _, vk_i, proof_i) = prove_and_verify(mul_circuit, ipa)
        size_k = proof_k.modeled_size_bytes(kzg, vk_k.k)
        size_i = proof_i.modeled_size_bytes(ipa, vk_i.k)
        assert size_k > 0
        assert size_i > size_k  # IPA openings grow with k

    def test_wrong_k_assignment_rejected(self, scheme):
        cs, asg = mul_circuit(k=3)
        pk, vk = keygen(cs, asg, scheme)
        _, asg4 = mul_circuit(k=4)
        with pytest.raises(ValueError):
            create_proof(pk, asg4, scheme)
