"""Every example script runs to completion (they contain their own asserts)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    spec = importlib.util.spec_from_file_location(
        "example_%s" % name, EXAMPLES / ("%s.py" % name)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize(
    "name",
    ["quickstart", "twitter_audit", "biometric_auth", "credit_score",
     "training_step", "optimizer_tour", "audit_flow", "gpt2_inference"],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"
