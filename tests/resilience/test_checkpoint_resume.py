"""Checkpoint/resume: interrupted runs resume to byte-identical proofs."""

import json
import os
import pickle

import numpy as np
import pytest

from repro.halo2.proof import proof_to_bytes
from repro.model import get_model
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.resilience import events, faults
from repro.resilience.checkpoint import (
    STAGES,
    CheckpointStore,
    proving_config_digest,
)
from repro.resilience.errors import CheckpointError
from repro.runtime import prove_model, verify_model_proof

rng = np.random.default_rng(7)


@pytest.fixture(scope="module")
def mnist_case():
    spec = get_model("mnist", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    return spec, inputs


def prove(spec, inputs, **kwargs):
    return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                       scale_bits=5, **kwargs)


@pytest.fixture(autouse=True)
def clean_events():
    events.reset()
    yield
    events.reset()
    faults.uninstall()


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "cfg")
        store.save("synthesize", {"rows": 42})
        assert store.has("synthesize")
        assert store.load("synthesize") == {"rows": 42}

    def test_manifest_layout(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "cfg")
        store.save("keygen", [1, 2, 3])
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema"] == "zkml-checkpoint/v1"
        assert manifest["config"] == "cfg"
        assert "keygen" in manifest["stages"]

    def test_config_mismatch_refuses_resume(self, tmp_path):
        CheckpointStore(str(tmp_path), "cfg-a").save("synthesize", 1)
        with pytest.raises(CheckpointError, match="different proving"):
            CheckpointStore(str(tmp_path), "cfg-b", resume=True)

    def test_corrupted_stage_detected(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "cfg")
        store.save("prove", {"x": 1})
        (tmp_path / "prove.pkl").write_bytes(b"garbage")
        from repro.resilience.errors import CacheCorruptionError

        with pytest.raises(CacheCorruptionError, match="checksum"):
            store.load("prove")

    def test_disk_write_fault_retried(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "cfg", backoff_seconds=0.0)
        with faults.use_faults("disk_write:1"):
            store.save("synthesize", "payload")
        assert store.load("synthesize") == "payload"
        assert events.counts()["retries"] >= 1

    def test_disk_write_fault_exhaustion_is_typed(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "cfg", backoff_seconds=0.0)
        with faults.use_faults("disk_write:99"), \
                pytest.raises(CheckpointError, match="could not write"):
            store.save("synthesize", "payload")

    def test_config_digest_binds_inputs(self, mnist_case):
        spec, inputs = mnist_case
        base = proving_config_digest(spec, inputs, "kzg", 10, 5, None, None)
        assert base == proving_config_digest(spec, inputs, "kzg", 10, 5,
                                             None, None)
        other = {k: v + 1.0 for k, v in inputs.items()}
        assert base != proving_config_digest(spec, other, "kzg", 10, 5,
                                             None, None)
        assert base != proving_config_digest(spec, inputs, "ipa", 10, 5,
                                             None, None)


class TestResume:
    def test_checkpointed_equals_plain(self, mnist_case, tmp_path):
        spec, inputs = mnist_case
        plain = prove(spec, inputs)
        ckpt = prove(spec, inputs, checkpoint_dir=str(tmp_path))
        assert proof_to_bytes(plain.proof) == proof_to_bytes(ckpt.proof)
        for stage in STAGES:
            assert (tmp_path / ("%s.pkl" % stage)).exists()

    def test_interrupted_after_keygen_resumes_byte_identical(
            self, mnist_case, tmp_path):
        # the acceptance scenario: kill the run after keygen, resume, and
        # require the final proof bytes to match an uninterrupted run
        spec, inputs = mnist_case
        uninterrupted = prove(spec, inputs)

        class Interrupted(BaseException):
            pass

        calls = {"n": 0}
        orig = pickle.dumps

        def dumps_then_die(obj, *a, **kw):
            data = orig(obj, *a, **kw)
            calls["n"] += 1
            if calls["n"] == 2:  # synthesize, then keygen: die after keygen
                raise Interrupted
            return data

        pickle.dumps = dumps_then_die
        try:
            with pytest.raises(Interrupted):
                prove(spec, inputs, checkpoint_dir=str(tmp_path))
        finally:
            pickle.dumps = orig

        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert set(manifest["stages"]) == {"synthesize"}

        # resume in a "new process": cold pk cache, stale state gone
        GLOBAL_PK_CACHE.clear()
        resumed = prove(spec, inputs, checkpoint_dir=str(tmp_path),
                        resume=True)
        assert (proof_to_bytes(resumed.proof)
                == proof_to_bytes(uninterrupted.proof))
        assert verify_model_proof(resumed.vk, resumed.proof,
                                  resumed.instance, "kzg")

    def test_resume_skips_completed_stages(self, mnist_case, tmp_path):
        spec, inputs = mnist_case
        first = prove(spec, inputs, checkpoint_dir=str(tmp_path))
        GLOBAL_PK_CACHE.clear()
        resumed = prove(spec, inputs, checkpoint_dir=str(tmp_path),
                        resume=True)
        assert (proof_to_bytes(first.proof)
                == proof_to_bytes(resumed.proof))

    def test_corrupt_stage_recomputed_on_resume(self, mnist_case, tmp_path):
        spec, inputs = mnist_case
        first = prove(spec, inputs, checkpoint_dir=str(tmp_path))
        path = os.path.join(str(tmp_path), "prove.pkl")
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff\xff\xff\xff")
        GLOBAL_PK_CACHE.clear()
        resumed = prove(spec, inputs, checkpoint_dir=str(tmp_path),
                        resume=True)
        assert (proof_to_bytes(first.proof)
                == proof_to_bytes(resumed.proof))
        assert events.counts().get(
            'recovered{reason="checkpoint_stage_rebuild"}', 0) >= 1

    def test_without_resume_flag_starts_fresh(self, mnist_case, tmp_path):
        spec, inputs = mnist_case
        prove(spec, inputs, checkpoint_dir=str(tmp_path))
        store = CheckpointStore(str(tmp_path),
                                "unrelated", resume=False)
        assert store.completed_stages() == {}
