"""CLI robustness: chaos matrix, hardened verify, typed top-level errors."""

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.halo2.proof import proof_to_bytes
from repro.model import get_model
from repro.obs import log as obs_log
from repro.resilience import events, faults
from repro.runtime import prove_model

rng = np.random.default_rng(11)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p])
    env.update(extra)
    return env


@pytest.fixture(autouse=True)
def clean_state():
    events.reset()
    faults.uninstall()
    yield
    events.reset()
    faults.uninstall()
    obs_log.set_level("info")  # `-q` runs mute the shared logger


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("artifacts") / "proof.pkl")
    rc = main(["prove", "--model", "dlrm", "--out", path, "-q"])
    assert rc == 0
    return path


class TestVerifyCommand:
    def test_good_artifact_exit_zero(self, artifact):
        assert main(["verify", "--artifact", artifact, "-q"]) == 0

    def test_artifact_carries_wire_bytes(self, artifact):
        with open(artifact, "rb") as f:
            doc = pickle.load(f)
        assert doc["proof_bytes"] == proof_to_bytes(doc["proof"])

    def test_truncated_proof_exit_one(self, artifact, tmp_path, capsys):
        # strip the envelope so the deprecated loose path is what's tested
        with open(artifact, "rb") as f:
            doc = pickle.load(f)
        doc.pop("envelope", None)
        doc["proof_bytes"] = doc["proof_bytes"][:40]
        del doc["proof"]
        bad = str(tmp_path / "truncated.pkl")
        with open(bad, "wb") as f:
            pickle.dump(doc, f)
        assert main(["verify", "--artifact", bad, "-q"]) == 1
        err = capsys.readouterr().err
        assert "ProofFormatError" in err

    def test_tampered_instance_exit_one(self, artifact, tmp_path, capsys):
        with open(artifact, "rb") as f:
            doc = pickle.load(f)
        doc.pop("envelope", None)
        doc["instance"] = [list(col) for col in doc["instance"]]
        doc["instance"][0][0] += 1
        bad = str(tmp_path / "tampered.pkl")
        with open(bad, "wb") as f:
            pickle.dump(doc, f)
        assert main(["verify", "--artifact", bad, "-q"]) == 1
        assert "VerificationFailure" in capsys.readouterr().err

    def test_garbage_file_exit_one(self, tmp_path, capsys):
        bad = str(tmp_path / "garbage.pkl")
        with open(bad, "wb") as f:
            f.write(b"\x93not a pickle at all")
        assert main(["verify", "--artifact", bad, "-q"]) == 1
        assert "malformed artifact" in capsys.readouterr().err

    def test_missing_file_exit_one(self, tmp_path):
        assert main(["verify", "--artifact",
                     str(tmp_path / "nope.pkl"), "-q"]) == 1

    def test_no_traceback_in_subprocess(self, artifact, tmp_path):
        # the contract: `zkml verify` on a broken artifact exits 1 with a
        # structured log line and no Python traceback on either stream
        with open(artifact, "rb") as f:
            doc = pickle.load(f)
        doc.pop("envelope", None)
        doc["proof_bytes"] = doc["proof_bytes"][:33]
        del doc["proof"]
        bad = str(tmp_path / "broken.pkl")
        with open(bad, "wb") as f:
            pickle.dump(doc, f)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "verify", "--artifact", bad],
            capture_output=True, text=True, env=cli_env(),
        )
        assert proc.returncode == 1
        combined = proc.stdout + proc.stderr
        assert "Traceback" not in combined
        assert "verification: FAILED" in combined


class TestChaosCommand:
    def test_single_site_matrix_green(self, capsys):
        rc = main(["chaos", "--model", "dlrm", "--sites", "transcript", "-q"])
        assert rc == 0

    def test_fuzz_only_smoke(self):
        rc = main(["chaos", "--model", "dlrm", "--sites", "transcript",
                   "--fuzz", "20", "-q"])
        assert rc == 0


class TestTypedTopLevel:
    def test_unrecovered_fault_surfaces_typed(self, tmp_path, capsys):
        # arm more transcript faults than the retry budget: the run must
        # exit 1 with a structured ProvingError line, not a traceback
        spec = get_model("dlrm", "mini")
        inputs = {k: rng.uniform(-0.5, 0.5, s)
                  for k, s in spec.inputs.items()}
        from repro.resilience.errors import ProvingError

        with faults.use_faults("transcript:99"):
            with pytest.raises(ProvingError) as info:
                prove_model(spec, inputs, num_cols=10, scale_bits=5,
                            use_pk_cache=False)
        assert info.value.phase == "prove"

    def test_cli_reports_typed_failure_without_traceback(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "prove", "--model", "dlrm"],
            capture_output=True, text=True,
            env=cli_env(ZKML_FAULTS="transcript:99"),
        )
        assert proc.returncode == 1
        combined = proc.stdout + proc.stderr
        assert "Traceback" not in combined
        assert "ProvingError" in combined
