"""The proof envelope codec under a hostile-input threat model.

Three contracts are pinned here:

- the canonical encoding round-trips and is deterministic (equal
  envelopes encode to equal bytes, so the checksum is a content
  address);
- every malformed input is rejected with the *right*
  :class:`EnvelopeError` subtype **before any field arithmetic** — the
  global ``obs.stats`` counters must not move on a rejection path;
- the mutation fuzzer (the ``zkml chaos --envelope-fuzz`` loop) holds:
  hundreds of mutants, 100% typed rejections, zero escapes.
"""

import numpy as np
import pytest

from repro.envelope import (
    DEFAULT_CAPS,
    SCHEMA_V1,
    EnvelopeCaps,
    ProofEnvelope,
    decode_envelope,
    envelope_config_digest,
    is_envelope,
    verify_envelope,
)
from repro.model import get_model
from repro.obs.stats import STATS
from repro.resilience.errors import (
    EnvelopeCapError,
    EnvelopeChecksumError,
    EnvelopeError,
    EnvelopeSchemaError,
    EnvelopeTruncatedError,
    VerificationFailure,
)
from repro.resilience.fuzz import local_envelope_checker, run_envelope_fuzz
from repro.runtime import prove_model

rng = np.random.default_rng(31)


@pytest.fixture(scope="module")
def proven():
    spec = get_model("dlrm", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                       scale_bits=5)


@pytest.fixture(scope="module")
def envelope(proven):
    return proven.envelope()


@pytest.fixture(scope="module")
def encoded(envelope):
    return envelope.encode()


def _reject(data, exc_type, caps=DEFAULT_CAPS):
    """Decode must raise ``exc_type`` without any prover-side op firing.

    The envelope decoder's contract is "reject before expensive work":
    a rejection may cost parsing and a hash, but never an NTT, a
    commitment, a lookup pass — the counters the prover hot path bumps.
    """
    before = STATS.snapshot()
    with pytest.raises(exc_type) as info:
        decode_envelope(data, caps=caps)
    moved = {k: v for k, v in STATS.delta(before).items() if v}
    assert not moved, "decoder rejection did %r work" % moved
    return info.value


class TestRoundTrip:
    def test_decode_inverts_encode(self, envelope, encoded):
        again = decode_envelope(encoded)
        assert again.model == envelope.model
        assert again.scheme_name == envelope.scheme_name
        assert again.vk_hash == envelope.vk_hash
        assert again.config_digest == envelope.config_digest
        assert again.instance == [list(col) for col in envelope.instance]
        assert again.proof_bytes == envelope.proof_bytes

    def test_encoding_is_canonical(self, encoded):
        # decode -> re-encode is the identity, so checksum == content id
        assert decode_envelope(encoded).encode() == encoded

    def test_is_envelope_sniffs_only_the_schema_prefix(self, proven,
                                                       encoded):
        from repro.halo2.proof import proof_to_bytes

        assert is_envelope(encoded)
        assert not is_envelope(proof_to_bytes(proven.proof))
        assert not is_envelope(b"")
        assert not is_envelope(b"\x00garbage")

    def test_decoded_checksum_is_recorded(self, encoded):
        env = decode_envelope(encoded)
        assert env.checksum == encoded[-16:].hex()

    def test_describe_is_json_friendly(self, envelope):
        import json

        doc = envelope.describe()
        assert doc["schema"] == SCHEMA_V1
        assert doc["public_inputs"] == envelope.num_public_inputs()
        json.dumps(doc)

    def test_config_digest_binds_every_knob(self):
        base = envelope_config_digest(10, 5, 9, None)
        assert base == envelope_config_digest(10, 5, 9, None)
        assert base != envelope_config_digest(11, 5, 9, None)
        assert base != envelope_config_digest(10, 6, 9, None)
        assert base != envelope_config_digest(10, 5, 10, None)
        assert base != envelope_config_digest(10, 5, 9, 8)


class TestDecoderCapEdges:
    """Satellite contract: each edge rejects with the right subtype and
    zero prover-side op counters (asserted via ``obs.stats``)."""

    def test_zero_instance_columns_rejected(self, envelope):
        empty = ProofEnvelope(
            scheme_name=envelope.scheme_name, model=envelope.model,
            vk_hash=envelope.vk_hash, config_digest=envelope.config_digest,
            instance=[], proof_bytes=envelope.proof_bytes)
        exc = _reject(empty.encode(), EnvelopeError)
        assert not isinstance(exc, (EnvelopeCapError, EnvelopeSchemaError,
                                    EnvelopeTruncatedError,
                                    EnvelopeChecksumError))
        assert "no public inputs" in str(exc)

    def test_exactly_at_cap_accepted(self, envelope, encoded):
        caps = EnvelopeCaps(
            max_envelope_bytes=len(encoded),
            max_instance_columns=len(envelope.instance),
            max_public_inputs=envelope.num_public_inputs(),
            max_proof_bytes=len(envelope.proof_bytes),
        )
        assert decode_envelope(encoded, caps=caps).model == envelope.model

    def test_one_past_each_cap_rejected(self, envelope, encoded):
        at = dict(
            max_envelope_bytes=len(encoded),
            max_instance_columns=len(envelope.instance),
            max_public_inputs=envelope.num_public_inputs(),
            max_proof_bytes=len(envelope.proof_bytes),
        )
        for knob in at:
            tightened = dict(at)
            tightened[knob] -= 1
            _reject(encoded, EnvelopeCapError, caps=EnvelopeCaps(**tightened))

    def test_empty_proof_bytes_rejected(self, envelope):
        hollow = ProofEnvelope(
            scheme_name=envelope.scheme_name, model=envelope.model,
            vk_hash=envelope.vk_hash, config_digest=envelope.config_digest,
            instance=envelope.instance, proof_bytes=b"")
        exc = _reject(hollow.encode(), EnvelopeError)
        assert "empty proof" in str(exc)

    def test_oversized_envelope_rejected_before_parsing(self, encoded):
        caps = EnvelopeCaps(max_envelope_bytes=len(encoded) - 1)
        exc = _reject(encoded, EnvelopeCapError, caps=caps)
        assert exc.attribution().get("cap") == len(encoded) - 1

    def test_forged_count_rejected_before_allocation(self, envelope,
                                                     encoded):
        # a 2^31 public-input count must die on the cap check, not
        # allocate — the mutant keeps a *valid* checksum so the cap is
        # what rejects it, proving caps do not hide behind integrity
        import hashlib

        header = (1 + len(SCHEMA_V1) + 1 + len(envelope.scheme_name)
                  + 1 + len(envelope.model) + 32 + 16)
        forged = bytearray(encoded[:-16])
        forged[header + 4 : header + 8] = (1 << 31).to_bytes(4, "little")
        forged += hashlib.blake2b(bytes(forged), digest_size=16).digest()
        _reject(bytes(forged), EnvelopeCapError)

    def test_every_truncation_rejected_cleanly(self, encoded):
        for cut in range(0, len(encoded) - 1, max(1, len(encoded) // 64)):
            _reject(encoded[:cut], EnvelopeError)

    def test_schema_confusion_rejected(self, encoded):
        mutated = bytearray(encoded)
        mutated[1] ^= 0x20  # flip case inside the schema id
        _reject(bytes(mutated), EnvelopeSchemaError)

    def test_checksum_tamper_rejected(self, encoded):
        mutated = bytearray(encoded)
        mutated[-1] ^= 0xFF
        _reject(bytes(mutated), EnvelopeChecksumError)

    def test_trailing_garbage_rejected(self, encoded):
        _reject(encoded + b"\x00", EnvelopeError)

    def test_caps_checked_before_checksum(self, encoded):
        # both violations at once: the over-cap body must win, because a
        # hostile sender can always compute a valid checksum
        mutated = bytearray(encoded)
        mutated[-1] ^= 0xFF
        caps = EnvelopeCaps(max_envelope_bytes=len(encoded) - 1)
        _reject(bytes(mutated), EnvelopeCapError, caps=caps)


class TestVerifyEnvelope:
    def test_good_envelope_verifies(self, proven, envelope):
        verify_envelope(envelope, proven.vk)

    def test_vk_hash_mismatch_rejected(self, proven, envelope):
        import dataclasses

        relabeled = dataclasses.replace(envelope,
                                        vk_hash=bytes(32))
        with pytest.raises(VerificationFailure, match="verifying-key"):
            verify_envelope(relabeled, proven.vk)

    def test_scheme_mismatch_rejected(self, proven, envelope):
        import dataclasses

        other = dataclasses.replace(envelope, scheme_name="ipa")
        with pytest.raises(VerificationFailure, match="scheme"):
            verify_envelope(other, proven.vk)

    def test_tampered_instance_rejected(self, proven, envelope):
        import dataclasses

        instance = [list(col) for col in envelope.instance]
        instance[0][0] += 1
        tampered = dataclasses.replace(envelope, instance=instance)
        with pytest.raises(VerificationFailure):
            verify_envelope(tampered, proven.vk)

    def test_non_strict_returns_bool(self, proven, envelope):
        import dataclasses

        assert verify_envelope(envelope, proven.vk, strict=False)
        instance = [list(col) for col in envelope.instance]
        instance[0][0] += 1
        bad = dataclasses.replace(envelope, instance=instance)
        assert not verify_envelope(bad, proven.vk, strict=False)


class TestEnvelopeFuzz:
    def test_two_hundred_mutants_all_typed_rejections(self, proven,
                                                      encoded):
        report = run_envelope_fuzz(encoded,
                                   local_envelope_checker(proven.vk),
                                   iterations=200, seed=7)
        assert report.iterations == 200
        assert report.accepted == [], report.summary()
        assert report.escapes == [], report.summary()
        assert report.rejected_format + report.rejected_verify == 200
        # both rejection layers must actually be exercised
        assert report.rejected_format > 0
        assert report.rejected_verify > 0
        assert report.ok

    def test_fuzz_is_seed_deterministic(self, proven, encoded):
        check = local_envelope_checker(proven.vk)
        a = run_envelope_fuzz(encoded, check, iterations=30, seed=3)
        b = run_envelope_fuzz(encoded, check, iterations=30, seed=3)
        assert (a.rejected_format, a.rejected_verify) \
            == (b.rejected_format, b.rejected_verify)
