"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, InjectedFault


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


class TestPlanParsing:
    def test_single_site_defaults(self):
        plan = FaultPlan.parse("ntt")
        state = plan.sites["ntt"]
        assert state.times == 1 and state.after == 0

    def test_times_and_after(self):
        plan = FaultPlan.parse("cache_read:3@2")
        state = plan.sites["cache_read"]
        assert state.times == 3 and state.after == 2

    def test_multiple_sites(self):
        plan = FaultPlan.parse("ntt:2, worker")
        assert set(plan.sites) == {"ntt", "worker"}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("reactor_core")


class TestSchedule:
    def test_fires_exactly_times(self):
        plan = FaultPlan.parse("ntt:2")
        fired = 0
        for _ in range(5):
            try:
                plan.fire("ntt")
            except InjectedFault:
                fired += 1
        assert fired == 2

    def test_after_skips_initial_calls(self):
        plan = FaultPlan.parse("ntt@2")
        plan.fire("ntt")
        plan.fire("ntt")  # first two pass
        with pytest.raises(InjectedFault):
            plan.fire("ntt")

    def test_deterministic_replay(self):
        # same spec, same call sequence -> identical failure pattern
        def pattern(spec):
            plan = FaultPlan.parse(spec)
            out = []
            for _ in range(6):
                try:
                    plan.fire("transcript")
                    out.append("ok")
                except InjectedFault:
                    out.append("boom")
            return out

        assert pattern("transcript:2@1") == pattern("transcript:2@1")
        assert pattern("transcript:2@1") == ["ok", "boom", "boom",
                                             "ok", "ok", "ok"]

    def test_report_counts_seen_and_fired(self):
        plan = FaultPlan.parse("ntt")
        with pytest.raises(InjectedFault):
            plan.fire("ntt")
        plan.fire("ntt")
        assert plan.report()["ntt"] == {"seen": 2, "fired": 1, "times": 1}


class TestInstallation:
    def test_maybe_inject_noop_without_plan(self):
        faults.maybe_inject("ntt")  # must not raise

    def test_use_faults_restores_previous(self):
        outer = faults.install("ntt")
        with faults.use_faults("worker") as inner:
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer

    def test_injected_fault_is_not_typed(self):
        # InjectedFault escaping un-wrapped must look like an unhandled
        # crash, so chaos runs can detect missed recovery paths
        from repro.resilience.errors import ResilienceError

        assert not issubclass(InjectedFault, ResilienceError)
        assert InjectedFault.transient is True

    def test_env_var_spec(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "ntt")
        faults.uninstall()
        faults._ENV_CHECKED = False
        with pytest.raises(InjectedFault):
            faults.maybe_inject("ntt")
        faults.uninstall()
