"""Tests for the supervised phase runner (retry / recover / deadline)."""

import pytest

from repro.resilience import events
from repro.resilience.errors import (
    DeadlineExceeded,
    FreivaldsCheckError,
    ProvingError,
)
from repro.resilience.faults import InjectedFault
from repro.resilience.supervisor import RetryPolicy, Supervisor


@pytest.fixture(autouse=True)
def clean_events():
    events.reset()
    yield
    events.reset()


def make_supervisor(**kwargs):
    kwargs.setdefault("sleep", lambda _s: None)  # no real backoff in tests
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, base_delay=0.0))
    return Supervisor(**kwargs)


class TestRetry:
    def test_transient_failure_retried_then_succeeds(self):
        sup = make_supervisor()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise InjectedFault("ntt", len(calls))
            return "done"

        assert sup.run_phase("prove", flaky) == "done"
        assert len(calls) == 3
        assert events.counts()["retries"] == 2

    def test_budget_exhaustion_wraps_in_proving_error(self):
        sup = make_supervisor()

        def always_fails():
            raise InjectedFault("ntt", 1)

        with pytest.raises(ProvingError) as info:
            sup.run_phase("keygen", always_fails)
        assert info.value.phase == "keygen"
        assert info.value.context["attempts"] == 3

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=9, base_delay=0.05, factor=2.0,
                             max_delay=0.3)
        delays = [policy.delay(a) for a in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3]


class TestRecover:
    def test_recover_handler_repairs_and_reruns(self):
        sup = make_supervisor()
        state = {"mode": "freivalds"}
        calls = []

        def phase():
            calls.append(state["mode"])
            if state["mode"] == "freivalds":
                raise FreivaldsCheckError("challenge failed")
            return state["mode"]

        def fall_back(_exc):
            state["mode"] = "direct"

        out = sup.run_phase("synthesize", phase,
                            recover={FreivaldsCheckError: fall_back})
        assert out == "direct"
        assert calls == ["freivalds", "direct"]

    def test_recover_fires_once_per_type(self):
        sup = make_supervisor()

        def phase():
            raise FreivaldsCheckError("still failing")

        with pytest.raises(FreivaldsCheckError):
            sup.run_phase("synthesize", phase,
                          recover={FreivaldsCheckError: lambda _e: None})

    def test_typed_error_annotated_with_phase(self):
        sup = make_supervisor()

        def phase():
            raise ProvingError("no luck")

        with pytest.raises(ProvingError) as info:
            sup.run_phase("prove", phase)
        assert info.value.phase == "prove"


class TestDeadline:
    def test_overrun_raises_deadline_exceeded(self):
        ticks = iter([0.0, 10.0, 20.0, 30.0, 40.0, 50.0])
        sup = make_supervisor(clock=lambda: next(ticks))
        with pytest.raises(DeadlineExceeded) as info:
            sup.run_phase("prove", lambda: "ok", deadline=5.0)
        assert info.value.context["deadline"] == 5.0

    def test_under_deadline_passes(self):
        sup = make_supervisor()
        assert sup.run_phase("prove", lambda: 42, deadline=60.0) == 42

    def test_deadlines_table_applies_by_phase_name(self):
        ticks = iter([0.0, 10.0, 20.0, 30.0])
        sup = make_supervisor(clock=lambda: next(ticks),
                              deadlines={"keygen": 1.0})
        with pytest.raises(DeadlineExceeded):
            sup.run_phase("keygen", lambda: "ok")
