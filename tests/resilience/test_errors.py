"""Tests for the typed error taxonomy and its attribution carrying."""

import pytest

from repro.gadgets.builder import Region
from repro.resilience.errors import (
    CacheCorruptionError,
    CheckpointError,
    DeadlineExceeded,
    FreivaldsCheckError,
    LayoutError,
    ProofFormatError,
    ProvingError,
    QuantizationRangeError,
    ResilienceError,
    SpecError,
    UnknownNameError,
    VerificationFailure,
    region_at,
)


class TestTaxonomy:
    def test_all_errors_are_resilience_errors(self):
        for cls in (SpecError, UnknownNameError, QuantizationRangeError,
                    LayoutError, ProvingError, FreivaldsCheckError,
                    CacheCorruptionError, ProofFormatError,
                    VerificationFailure, CheckpointError, DeadlineExceeded):
            assert issubclass(cls, ResilienceError)

    def test_legacy_value_error_compat(self):
        # pre-taxonomy callers catch ValueError; the new types still match
        with pytest.raises(ValueError):
            raise LayoutError("too narrow")
        with pytest.raises(ValueError):
            raise SpecError("bad spec")

    def test_unknown_name_is_key_error(self):
        with pytest.raises(KeyError):
            raise UnknownNameError("no such model")

    def test_str_appends_attribution(self):
        exc = LayoutError("too narrow", phase="synthesize", layer="fc1",
                          num_cols=3)
        text = str(exc)
        assert "too narrow" in text
        assert "phase=synthesize" in text
        assert "layer=fc1" in text
        assert "num_cols=3" in text

    def test_attribution_dict(self):
        exc = ProvingError("boom", phase="prove", row=7)
        attr = exc.attribution()
        assert attr["error"] == "ProvingError"
        assert attr["phase"] == "prove"
        assert attr["row"] == 7


class TestWithContext:
    def test_fills_blanks_only(self):
        exc = ResilienceError("x", layer="inner")
        out = exc.with_context(phase="synthesize", layer="outer")
        assert out is exc  # returns self for `raise exc.with_context(...)`
        assert exc.phase == "synthesize"
        assert exc.layer == "inner"  # never overwritten

    def test_default_phase_not_overwritten(self):
        # LayoutError pre-fills phase="layout"; annotation keeps it
        exc = LayoutError("too narrow").with_context(phase="synthesize")
        assert exc.phase == "layout"

    def test_context_kwargs_use_setdefault(self):
        exc = ProvingError("x", row=3)
        exc.with_context(row=99, extra="yes")
        assert exc.context["row"] == 3
        assert exc.context["extra"] == "yes"


class TestRegionAt:
    def test_innermost_region_wins(self):
        regions = [Region(name="layer0", kind="fc", start=0, end=100),
                   Region(name="gadget3", kind="dot", start=40, end=50)]
        hit = region_at(regions, 45)
        assert hit is not None and hit.name == "gadget3"

    def test_outside_all_regions(self):
        regions = [Region(name="layer0", kind="fc", start=0, end=10)]
        assert region_at(regions, 99) is None
