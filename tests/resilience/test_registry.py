"""The verifying-key registry: content-addressed, checksummed, typed.

The store's contract mirrors the checkpoint/pk-cache idiom: atomic
writes with bounded retries on the ``disk_write`` fault site, reads that
re-verify integrity, and corruption that *evicts* (counted as a
recovery event) and surfaces a typed error — never served corrupt.
"""

import os
import pickle

import numpy as np
import pytest

from repro.model import get_model
from repro.registry import INDEX_SCHEMA, VKRegistry
from repro.resilience import events, faults
from repro.resilience.errors import (
    RegistryError,
    UnknownVerifyingKeyError,
)
from repro.runtime import prove_model

rng = np.random.default_rng(41)


@pytest.fixture(scope="module")
def proven():
    spec = get_model("dlrm", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                       scale_bits=5)


@pytest.fixture()
def registry(tmp_path):
    return VKRegistry(str(tmp_path / "reg"))


@pytest.fixture(autouse=True)
def clean_state():
    events.reset()
    faults.uninstall()
    yield
    events.reset()
    faults.uninstall()


def _publish(registry, proven):
    env = proven.envelope()
    return registry.publish(proven.vk, env.model, env.config_digest)


class TestPublish:
    def test_publish_then_get_round_trips(self, registry, proven):
        entry, created = _publish(registry, proven)
        assert created
        assert entry.vk_hash == proven.vk.digest().hex()
        assert entry.scheme == proven.vk.scheme_name
        assert os.path.exists(os.path.join(registry.root, entry.file))
        vk = registry.get(entry.vk_hash)
        assert vk.digest() == proven.vk.digest()

    def test_republish_is_idempotent(self, registry, proven):
        first, created = _publish(registry, proven)
        again, recreated = _publish(registry, proven)
        assert created and not recreated
        assert again == first

    def test_index_carries_schema(self, registry, proven):
        import json

        _publish(registry, proven)
        with open(registry.index_path) as fh:
            doc = json.load(fh)
        assert doc["schema"] == INDEX_SCHEMA

    def test_find_by_binding_tuple(self, registry, proven):
        entry, _ = _publish(registry, proven)
        hit = registry.find(entry.model, entry.scheme, entry.config_digest)
        assert hit is not None and hit.vk_hash == entry.vk_hash
        assert registry.find("nope", entry.scheme,
                             entry.config_digest) is None

    def test_disk_write_fault_is_retried(self, registry, proven):
        with faults.use_faults("disk_write:1") as plan:
            entry, created = _publish(registry, proven)
        assert created
        assert plan.report()["disk_write"]["fired"]
        assert any("retries" in key for key, count
                   in events.counts().items() if count)
        assert registry.get(entry.vk_hash).digest() == proven.vk.digest()


class TestIntegrity:
    def test_unknown_hash_is_typed_and_a_key_error(self, registry):
        with pytest.raises(UnknownVerifyingKeyError) as info:
            registry.get("ab" * 32)
        assert isinstance(info.value, KeyError)
        with pytest.raises(UnknownVerifyingKeyError):
            registry.entry("ab" * 32)

    def test_corrupt_artifact_evicted_on_get(self, registry, proven):
        entry, _ = _publish(registry, proven)
        path = os.path.join(registry.root, entry.file)
        with open(path, "r+b") as fh:
            fh.seek(100)
            fh.write(b"\xff\xff\xff\xff")
        with pytest.raises(RegistryError, match="re-publish"):
            registry.get(entry.vk_hash)
        # evicted: the entry is gone from the index, counted as recovery
        with pytest.raises(UnknownVerifyingKeyError):
            registry.entry(entry.vk_hash)
        recovered = [k for k, v in events.counts().items()
                     if "vk_registry_evict" in k and v]
        assert recovered

    def test_unpicklable_artifact_evicted(self, registry, proven):
        # checksum the *stored* garbage so the checksum passes and the
        # unpickle layer is what catches it
        import hashlib
        import json

        entry, _ = _publish(registry, proven)
        path = os.path.join(registry.root, entry.file)
        with open(path, "wb") as fh:
            fh.write(b"\x93not a pickle")
        with open(registry.index_path) as fh:
            doc = json.load(fh)
        doc["entries"][entry.vk_hash]["checksum"] = hashlib.blake2b(
            b"\x93not a pickle", digest_size=16).hexdigest()
        with open(registry.index_path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(RegistryError, match="unpicklable"):
            registry.get(entry.vk_hash)

    def test_wrong_key_under_hash_evicted(self, registry, proven):
        # a valid pickle of the wrong object: content addressing catches
        # the swap via vk.digest(), not just the file checksum
        import hashlib
        import json

        entry, _ = _publish(registry, proven)
        path = os.path.join(registry.root, entry.file)
        impostor = pickle.dumps(proven.instance)
        with open(path, "wb") as fh:
            fh.write(impostor)
        with open(registry.index_path) as fh:
            doc = json.load(fh)
        doc["entries"][entry.vk_hash]["checksum"] = hashlib.blake2b(
            impostor, digest_size=16).hexdigest()
        with open(registry.index_path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(RegistryError):
            registry.get(entry.vk_hash)

    def test_publish_rebuilds_corrupt_entry(self, registry, proven):
        entry, _ = _publish(registry, proven)
        os.unlink(os.path.join(registry.root, entry.file))
        rebuilt, created = _publish(registry, proven)
        assert created  # rebuilt from the key in hand
        assert rebuilt.vk_hash == entry.vk_hash
        assert registry.get(entry.vk_hash).digest() == proven.vk.digest()
        rebuilds = [k for k, v in events.counts().items()
                    if "vk_registry_rebuild" in k and v]
        assert rebuilds


class TestCheck:
    def test_clean_registry_checks_ok(self, registry, proven):
        _publish(registry, proven)
        report = registry.check()
        assert report["ok"] and report["intact"] == report["checked"] == 1
        assert report["schema"] == "zkml-registry-check/v1"

    def test_corruption_reported_with_cause(self, registry, proven):
        entry, _ = _publish(registry, proven)
        with open(os.path.join(registry.root, entry.file), "ab") as fh:
            fh.write(b"tail")
        report = registry.check()
        assert not report["ok"]
        assert report["corrupt"][0]["cause"] == "checksum_mismatch"
        # check without --repair must not evict
        assert registry.entry(entry.vk_hash).vk_hash == entry.vk_hash

    def test_repair_evicts_corrupt_entries(self, registry, proven):
        entry, _ = _publish(registry, proven)
        os.unlink(os.path.join(registry.root, entry.file))
        report = registry.check(repair=True)
        assert report["repaired"]
        assert registry.list_entries() == []
