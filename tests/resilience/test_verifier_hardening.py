"""Hardened verifier: malformed proofs are rejected, never crash."""

import numpy as np
import pytest

from repro.commit import scheme_by_name
from repro.halo2.proof import proof_from_bytes, proof_to_bytes
from repro.halo2.verifier import validate_proof_shape, verify_proof_strict
from repro.model import get_model
from repro.resilience.errors import ProofFormatError, VerificationFailure
from repro.resilience.fuzz import run_proof_fuzz
from repro.runtime import prove_model, verify_model_proof

rng = np.random.default_rng(23)


@pytest.fixture(scope="module")
def proven():
    spec = get_model("dlrm", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    result = prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                         scale_bits=5)
    return result


class TestDeserializerBounds:
    def test_roundtrip_survives(self, proven):
        data = proof_to_bytes(proven.proof)
        again = proof_from_bytes(data)
        assert proof_to_bytes(again) == data

    def test_bad_magic_rejected(self, proven):
        data = b"NOTPROOF" + proof_to_bytes(proven.proof)[8:]
        with pytest.raises(ProofFormatError, match="magic"):
            proof_from_bytes(data)

    def test_every_truncation_rejected_cleanly(self, proven):
        # chop the wire format at a spread of offsets: each prefix must
        # raise ProofFormatError, never IndexError/struct.error/MemoryError
        data = proof_to_bytes(proven.proof)
        for cut in range(0, len(data) - 1, max(1, len(data) // 64)):
            with pytest.raises(ProofFormatError):
                proof_from_bytes(data[:cut])

    def test_trailing_garbage_rejected(self, proven):
        data = proof_to_bytes(proven.proof) + b"\x00"
        with pytest.raises(ProofFormatError, match="trailing"):
            proof_from_bytes(data)

    def test_huge_count_rejected_before_allocation(self, proven):
        # forge a 4 GiB advice-commitment count right after the magic: the
        # reader must bail on the length prefix, not loop or allocate
        data = bytearray(proof_to_bytes(proven.proof))
        data[8:12] = (0xFFFFFFFF).to_bytes(4, "little")
        with pytest.raises(ProofFormatError):
            proof_from_bytes(bytes(data))


class TestShapeValidation:
    def test_wrong_scheme_rejected_typed(self, proven):
        # an ipa verifier fed a kzg proof must reject, not crash
        with pytest.raises((ProofFormatError, VerificationFailure)):
            verify_model_proof(proven.vk, proven.proof, proven.instance,
                               "ipa")

    def test_tampered_instance_rejected(self, proven):
        forged = [list(col) for col in proven.instance]
        forged[0][0] = (forged[0][0] + 1) % proven.vk.field.p
        with pytest.raises(VerificationFailure):
            verify_model_proof(proven.vk, proven.proof, forged, "kzg")

    def test_out_of_field_scalar_rejected(self, proven):
        import copy
        import dataclasses

        mutant = copy.deepcopy(proven.proof)
        key, opening = next(iter(mutant.advice_openings.items()))
        mutant.advice_openings[key] = dataclasses.replace(
            opening, value=proven.vk.field.p)  # == p: out of field
        with pytest.raises(ProofFormatError, match="out-of-field"):
            validate_proof_shape(proven.vk, mutant, proven.instance)

    def test_legacy_nonstrict_path_returns_bool(self, proven):
        forged = [list(col) for col in proven.instance]
        forged[0][0] = (forged[0][0] + 1) % proven.vk.field.p
        assert verify_model_proof(proven.vk, proven.proof, forged, "kzg",
                                  strict=False) is False
        assert verify_model_proof(proven.vk, proven.proof, proven.instance,
                                  "kzg", strict=False) is True


class TestFuzzLoop:
    def test_200_mutations_all_rejected(self, proven):
        # the acceptance bar: 200 seeded mutations, 100% clean rejection
        scheme = scheme_by_name("kzg", proven.vk.field)
        report = run_proof_fuzz(proven.vk, proven.proof, proven.instance,
                                scheme, iterations=200, seed=0)
        assert report.iterations == 200
        assert report.ok, report.summary()
        assert report.rejected_format + report.rejected_verify == 200

    def test_fuzz_is_deterministic(self, proven):
        scheme = scheme_by_name("kzg", proven.vk.field)
        a = run_proof_fuzz(proven.vk, proven.proof, proven.instance,
                           scheme, iterations=30, seed=5)
        b = run_proof_fuzz(proven.vk, proven.proof, proven.instance,
                           scheme, iterations=30, seed=5)
        assert (a.rejected_format, a.rejected_verify) == \
            (b.rejected_format, b.rejected_verify)
