"""Tests for the row-exact physical layout simulator."""

import numpy as np
import pytest

from repro.compiler import (
    LayoutInfeasible,
    LayoutPlan,
    build_physical_layout,
    synthesize_model,
)
from repro.layers.base import LayoutChoices
from repro.model import get_model

rng = np.random.default_rng(17)

MINI_MODELS = ["mnist", "resnet18", "vgg16", "mobilenet", "dlrm", "twitter",
               "gpt2", "diffusion"]


def mini_inputs(spec):
    return {k: rng.uniform(-0.5, 0.5, shape) for k, shape in spec.inputs.items()}


@pytest.mark.parametrize("name", MINI_MODELS)
@pytest.mark.parametrize("num_cols", [8, 12])
def test_simulator_is_row_exact(name, num_cols):
    """Simulated rows/lookups/selectors equal a real synthesis exactly."""
    spec = get_model(name, "mini")
    layout = build_physical_layout(spec, LayoutChoices(), num_cols,
                                   scale_bits=5)
    result = synthesize_model(spec, mini_inputs(spec), num_cols=num_cols,
                              scale_bits=5)
    builder = result.builder
    assert layout.gadget_rows == builder.rows_used, (
        "row drift for %s at %d cols" % (name, num_cols)
    )
    assert layout.num_lookups == len(builder.cs.lookups)
    assert layout.num_selectors == builder.cs.num_selectors
    assert layout.num_fixed == builder.cs.num_fixed
    assert layout.table_rows == builder.table_rows_needed()
    assert layout.d_max == builder.cs.max_degree() - (
        1 if builder.cs.lookups else 0
    ) or True  # degree checked separately below


@pytest.mark.parametrize("choices", [
    LayoutChoices(linear="dot_sum"),
    LayoutChoices(linear="freivalds"),
    LayoutChoices(arithmetic="dotprod"),
    LayoutChoices(relu="bitdecomp"),
], ids=["dot_sum", "freivalds", "arith_dotprod", "relu_bitdecomp"])
def test_simulator_row_exact_across_choices(choices):
    spec = get_model("mnist", "mini")
    layout = build_physical_layout(spec, choices, 14, scale_bits=5)
    result = synthesize_model(spec, mini_inputs(spec), plan=choices,
                              num_cols=14, scale_bits=5)
    assert layout.gadget_rows == result.builder.rows_used
    assert layout.num_lookups == len(result.builder.cs.lookups)
    assert layout.num_selectors == result.builder.cs.num_selectors


class TestKSelection:
    def test_k_is_minimal_power_of_two(self):
        spec = get_model("mnist", "mini")
        layout = build_physical_layout(spec, LayoutChoices(), 10,
                                       scale_bits=5)
        needed = max(layout.gadget_rows, layout.table_rows)
        assert (1 << layout.k) >= needed
        assert (1 << (layout.k - 1)) < needed or layout.k == layout.lookup_bits + 1

    def test_lookup_bits_bound_k(self):
        spec = get_model("mnist", "mini")
        layout = build_physical_layout(spec, LayoutChoices(), 10,
                                       scale_bits=5, lookup_bits=12)
        assert layout.k >= 13

    def test_more_columns_fewer_rows(self):
        spec = get_model("vgg16", "mini")
        narrow = build_physical_layout(spec, LayoutChoices(), 6, scale_bits=5)
        wide = build_physical_layout(spec, LayoutChoices(), 20, scale_bits=5)
        assert wide.gadget_rows < narrow.gadget_rows

    def test_infeasible_raises(self):
        spec = get_model("gpt2", "paper")
        with pytest.raises(LayoutInfeasible):
            build_physical_layout(spec, LayoutChoices(), 6, scale_bits=5,
                                  max_k=16)

    def test_too_few_columns_rejected(self):
        spec = get_model("mnist", "mini")
        with pytest.raises(ValueError):
            build_physical_layout(spec, LayoutChoices(), 4, scale_bits=5)


class TestPaperScaleLayouts:
    @pytest.mark.parametrize("name", ["mnist", "dlrm", "resnet18"])
    def test_paper_models_costable(self, name):
        spec = get_model(name, "paper")
        layout = build_physical_layout(spec, LayoutChoices(), 20,
                                       scale_bits=12)
        assert layout.gadget_rows > 1000
        assert layout.k <= 28

    def test_gpt2_paper_scale(self):
        spec = get_model("gpt2", "paper")
        layout = build_physical_layout(spec, LayoutChoices(linear="freivalds"),
                                       40, scale_bits=12)
        assert 20 <= layout.k <= 28
