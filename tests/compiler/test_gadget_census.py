"""Direct unit tests for the gadget census."""

import pytest

from repro.compiler import (
    constraint_degree,
    layer_gadgets,
    lookups_for_gadget,
    tables_for_gadget,
)
from repro.layers import (
    AddLayer,
    FullyConnectedLayer,
    MulLayer,
    SoftmaxLayer,
    layer_registry,
)
from repro.layers.base import LayoutChoices

C = LayoutChoices()


class TestLayerGadgets:
    def test_add_custom_vs_dotprod(self):
        layer = AddLayer()
        assert layer_gadgets(layer, C, 5, [(2, 2)]) == {("add", None)}
        assert layer_gadgets(layer, C.replace(arithmetic="dotprod"), 5,
                             [(2, 2)]) == {("dot_prod_bias", None)}

    def test_mul_dotprod_needs_rescale(self):
        keys = layer_gadgets(MulLayer(), C.replace(arithmetic="dotprod"),
                             5, [(2, 2)])
        assert ("div_round_const", 32) in keys

    def test_fc_choices(self):
        layer = FullyConnectedLayer(units=3)
        shapes = [(1, 4)]
        assert ("dot_prod_bias", None) in layer_gadgets(layer, C, 5, shapes)
        assert ("sum", None) in layer_gadgets(
            layer, C.replace(linear="dot_sum"), 5, shapes)

    def test_softmax_division_width(self):
        narrow = layer_gadgets(SoftmaxLayer(), C, 5, [(3,)])
        wide = layer_gadgets(SoftmaxLayer(), C, 5, [(10,)])
        assert ("var_div", None) in narrow
        assert ("var_div_wide", None) in wide

    def test_shape_layers_are_free(self):
        for kind in ("reshape", "transpose", "pad", "identity"):
            layer = layer_registry[kind](shape=(1,), pad_width=((0, 0),))
            assert layer_gadgets(layer, C, 5, [(2, 2)]) == set()

    def test_unknown_kind_raises(self):
        class Fake:
            kind = "quantum"

        with pytest.raises(KeyError):
            layer_gadgets(Fake(), C, 5, [(2,)])


class TestLookupAndTableCounts:
    def test_pointwise_lookups_scale_with_width(self):
        assert lookups_for_gadget(("pointwise", "relu"), 8) == 4
        assert lookups_for_gadget(("pointwise", "relu"), 16) == 8

    def test_plain_gadgets_have_no_lookups(self):
        for name in ("add", "sub", "sum", "dot_prod", "dot_prod_bias",
                     "scale_const"):
            assert lookups_for_gadget((name, None), 12) == 0

    def test_tables(self):
        assert tables_for_gadget(("mul", None), 5, 8) == {("range", 64)}
        assert tables_for_gadget(("div_round_const", 9), 5, 8) == {
            ("range", 18)}
        assert tables_for_gadget(("pointwise", "tanh"), 5, 8) == {
            ("nl", "tanh")}
        assert tables_for_gadget(("var_div_wide", None), 5, 8) == {
            ("range", 256)}
        assert tables_for_gadget(("add", None), 5, 8) == set()


class TestConstraintDegree:
    def test_no_lookup_degree_three(self):
        assert constraint_degree({("add", None), ("dot_prod", None)}) == 3

    def test_any_lookup_degree_four(self):
        assert constraint_degree({("add", None), ("mul", None)}) == 4
        assert constraint_degree({("pointwise", "relu")}) == 4
