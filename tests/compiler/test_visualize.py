"""Tests for the layout visualizer."""

import numpy as np

from repro.compiler import (
    build_physical_layout,
    render_breakdown,
    render_row_map,
    synthesize_model,
)
from repro.layers.base import LayoutChoices
from repro.model import get_model

rng = np.random.default_rng(81)


def test_breakdown_lists_heaviest_layers_first():
    spec = get_model("mnist", "mini")
    layout = build_physical_layout(spec, LayoutChoices(), 10, scale_bits=5)
    text = render_breakdown(layout)
    assert spec.name in text
    lines = [l for l in text.splitlines()[1:] if "rows" in l]
    counts = [int(l.split("rows")[0].split()[-1].replace(",", ""))
              for l in lines if "(" not in l.split()[0]]
    assert counts == sorted(counts, reverse=True)


def test_breakdown_truncates_long_models():
    spec = get_model("resnet18", "paper")
    layout = build_physical_layout(spec, LayoutChoices(), 16, scale_bits=8)
    text = render_breakdown(layout, top=5)
    assert "more layers" in text


def test_row_map_shows_used_and_unused():
    spec = get_model("mnist", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    result = synthesize_model(spec, inputs, num_cols=10, scale_bits=5)
    strip = render_row_map(result.builder, width=32)
    assert "legend" in strip
    body = strip.splitlines()[0]
    assert "." in body        # free rows at the bottom of the grid
    assert any(c.isalpha() for c in body)  # and gadget-occupied bands
