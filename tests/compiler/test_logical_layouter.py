"""Tests for logical layout generation and whole-model synthesis."""

import numpy as np
import pytest

from repro.commit import scheme_by_name
from repro.compiler import (
    LayoutPlan,
    check_against_reference,
    generate_logical_layouts,
    model_families,
    synthesize_model,
)
from repro.field import GOLDILOCKS
from repro.halo2 import create_proof, keygen, verify_proof
from repro.layers.base import LayoutChoices
from repro.model import get_model

rng = np.random.default_rng(31)


def mini_inputs(spec):
    return {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}


class TestLogicalLayouts:
    def test_families_detected(self):
        spec = get_model("mnist", "mini")
        fams = model_families(spec)
        assert fams["linear"] >= 2
        assert fams["relu"] >= 1

    def test_pruned_is_family_product(self):
        spec = get_model("mnist", "mini")
        plans = generate_logical_layouts(spec, prune=True)
        assert all(p.is_uniform for p in plans)
        # linear(3) x relu(2) x arithmetic(1: no arith layers) = 6
        assert len(plans) == 6

    def test_unpruned_strictly_larger(self):
        spec = get_model("mnist", "mini")
        pruned = generate_logical_layouts(spec, prune=True)
        full = generate_logical_layouts(spec, prune=False)
        assert len(full) > len(pruned)
        assert any(not p.is_uniform for p in full)

    def test_restricted_gadgets_single_layout(self):
        spec = get_model("mnist", "mini")
        plans = generate_logical_layouts(spec, restrict_gadgets=True)
        assert len(plans) == 1
        assert plans[0].base.arithmetic == "dotprod"

    def test_models_without_relu_skip_relu_axis(self):
        spec = get_model("gpt2", "mini")
        plans = generate_logical_layouts(spec)
        assert all(p.base.relu == "lookup" for p in plans)

    def test_layout_plan_override_lookup(self):
        base = LayoutChoices()
        plan = LayoutPlan(base, overrides=(
            ("conv_1", base.replace(linear="freivalds")),))
        assert plan.for_layer("conv_1").linear == "freivalds"
        assert plan.for_layer("other").linear == "dot_bias"


class TestModelSynthesis:
    @pytest.mark.parametrize("name", ["mnist", "dlrm", "gpt2"])
    def test_circuit_matches_fixed_reference(self, name):
        spec = get_model(name, "mini")
        inputs = mini_inputs(spec)
        result = synthesize_model(spec, inputs, num_cols=10, scale_bits=5)
        result.builder.mock_check()
        check_against_reference(result, inputs)

    def test_shape_only_model_rejected(self):
        spec = get_model("gpt2", "paper")
        with pytest.raises(ValueError, match="shape-only"):
            synthesize_model(spec, {})

    def test_missing_inputs_rejected(self):
        spec = get_model("mnist", "mini")
        with pytest.raises(ValueError, match="missing"):
            synthesize_model(spec, {})

    def test_mixed_plan_synthesizes(self):
        spec = get_model("mnist", "mini")
        base = LayoutChoices()
        fc_name = next(l.name for l in spec.layers
                       if l.kind == "fully_connected")
        plan = LayoutPlan(base, overrides=(
            (fc_name, base.replace(linear="dot_sum")),))
        inputs = mini_inputs(spec)
        result = synthesize_model(spec, inputs, plan=plan, num_cols=10,
                                  scale_bits=5)
        result.builder.mock_check()
        check_against_reference(result, inputs)

    def test_end_to_end_proof_of_mnist_mini(self):
        spec = get_model("mnist", "mini")
        inputs = mini_inputs(spec)
        result = synthesize_model(spec, inputs, num_cols=10, scale_bits=5)
        scheme = scheme_by_name("kzg", GOLDILOCKS)
        pk, vk = keygen(result.builder.cs, result.builder.asg, scheme)
        proof = create_proof(pk, result.builder.asg, scheme)
        assert verify_proof(vk, proof, result.builder.asg.instance_values(),
                            scheme)
