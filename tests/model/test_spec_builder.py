"""Tests for ModelSpec validation, shapes, stats, and GraphBuilder."""

import numpy as np
import pytest

from repro.model import GraphBuilder, ModelSpec
from repro.model.spec import LayerSpec


def small_model(materialize=True):
    gb = GraphBuilder("toy", materialize=materialize)
    x = gb.input("image", (4, 4, 1))
    x = gb.conv2d(x, 1, 2, kernel=(3, 3))
    x = gb.activation(x, "relu")
    x = gb.flatten(x)
    x = gb.fully_connected(x, 32, 5)
    x = gb.softmax(x)
    return gb.build([x])


class TestValidation:
    def test_valid_model(self):
        small_model().validate()

    def test_undefined_input_rejected(self):
        spec = ModelSpec(
            name="bad", inputs={},
            layers=[LayerSpec("a", "relu", ["ghost"])], outputs=["a"]
        )
        with pytest.raises(ValueError, match="ghost"):
            spec.validate()

    def test_duplicate_name_rejected(self):
        spec = ModelSpec(
            name="bad", inputs={"x": (2,)},
            layers=[LayerSpec("x", "relu", ["x"])], outputs=["x"]
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.validate()

    def test_unknown_kind_rejected(self):
        spec = ModelSpec(
            name="bad", inputs={"x": (2,)},
            layers=[LayerSpec("y", "quantum_layer", ["x"])], outputs=["y"]
        )
        with pytest.raises(KeyError, match="quantum_layer"):
            spec.validate()

    def test_missing_output_rejected(self):
        spec = ModelSpec(name="bad", inputs={"x": (2,)}, layers=[],
                         outputs=["nope"])
        with pytest.raises(ValueError, match="nope"):
            spec.validate()


class TestShapesAndStats:
    def test_shapes_propagate(self):
        spec = small_model()
        shapes = spec.shapes()
        assert shapes["image"] == (4, 4, 1)
        assert shapes[spec.outputs[0]] == (5,)

    def test_param_count(self):
        spec = small_model()
        # conv: 3*3*1*2 + 2; fc: 32*5 + 5
        assert spec.param_count() == 18 + 2 + 160 + 5

    def test_param_count_shape_only(self):
        spec = small_model(materialize=False)
        assert spec.param_count() == small_model().param_count()
        assert not spec.materialized

    def test_flops_positive_and_conv_dominated(self):
        spec = small_model()
        assert spec.flops() > 2 * 16 * 9 * 2  # conv MACs

    def test_summary_mentions_layers(self):
        text = small_model().summary()
        assert "conv2d" in text and "softmax" in text


class TestGraphBuilderDeterminism:
    def test_same_name_same_weights(self):
        a, b = small_model(), small_model()
        wa = a.layers[0].params["weight"]
        wb = b.layers[0].params["weight"]
        assert np.array_equal(wa, wb)

    def test_different_names_differ(self):
        gb1 = GraphBuilder("alpha")
        gb2 = GraphBuilder("beta")
        w1 = gb1._param((3, 3))
        w2 = gb2._param((3, 3))
        assert not np.array_equal(w1, w2)

    def test_attention_block_shapes(self):
        gb = GraphBuilder("attn-test", materialize=True)
        x = gb.input("h", (4, 8))
        out = gb.attention_block(x, seq=4, dim=8, heads=2)
        spec = gb.build([out])
        assert spec.shapes()[out] == (4, 8)
