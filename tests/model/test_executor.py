"""Tests for the float and fixed-point reference executors."""

import numpy as np
import pytest

from repro.model import (
    GraphBuilder,
    fixed_outputs_decoded,
    get_model,
    run_fixed,
    run_float,
)

rng = np.random.default_rng(2)


def mlp_model():
    gb = GraphBuilder("exec-test", materialize=True)
    x = gb.input("x", (1, 6))
    x = gb.fully_connected(x, 6, 4)
    x = gb.activation(x, "relu")
    x = gb.fully_connected(x, 4, 3)
    return gb.build([x])


class TestRunFloat:
    def test_basic(self):
        spec = mlp_model()
        out = run_float(spec, {"x": rng.uniform(-1, 1, (1, 6))})
        assert out[spec.outputs[0]].shape == (1, 3)

    def test_shape_only_rejected(self):
        spec = get_model("gpt2", "paper")
        with pytest.raises(ValueError, match="shape-only"):
            run_float(spec, {})


class TestRunFixed:
    def test_close_to_float(self):
        spec = mlp_model()
        x = rng.uniform(-1, 1, (1, 6))
        f = run_float(spec, {"x": x})[spec.outputs[0]]
        q = fixed_outputs_decoded(spec, {"x": x}, scale_bits=10)[spec.outputs[0]]
        assert np.allclose(f, q, atol=0.05)

    def test_returns_object_ints(self):
        spec = mlp_model()
        out = run_fixed(spec, {"x": rng.uniform(-1, 1, (1, 6))}, 8)
        arr = out[spec.outputs[0]]
        assert arr.dtype == object
        assert all(isinstance(v, int) for v in arr.reshape(-1))

    def test_precision_improves_with_scale(self):
        spec = mlp_model()
        x = rng.uniform(-1, 1, (1, 6))
        f = run_float(spec, {"x": x})[spec.outputs[0]]
        err = []
        for bits in (4, 8, 12):
            q = fixed_outputs_decoded(spec, {"x": x}, bits)[spec.outputs[0]]
            err.append(np.abs(f - q).max())
        assert err[0] > err[2]


class TestZooMiniModels:
    @pytest.mark.parametrize(
        "name", ["mnist", "resnet18", "vgg16", "mobilenet", "dlrm",
                 "twitter", "gpt2", "diffusion"]
    )
    def test_mini_models_execute(self, name):
        spec = get_model(name, "mini")
        assert spec.materialized
        inputs = {
            k: rng.uniform(-0.5, 0.5, shape) for k, shape in spec.inputs.items()
        }
        f = run_float(spec, inputs)
        q = fixed_outputs_decoded(spec, inputs, scale_bits=9)
        for out in spec.outputs:
            assert np.shape(f[out]) == np.shape(q[out])
            assert np.allclose(f[out], q[out], atol=0.25), (
                "fixed-point drift %.3f" % np.abs(f[out] - q[out]).max()
            )
