"""Tests for the model zoo."""

import pytest

from repro.model import PAPER_TABLE5, get_model, model_names


def test_all_eight_paper_models_present():
    assert model_names() == sorted(PAPER_TABLE5)
    assert len(model_names()) == 8


@pytest.mark.parametrize("name", sorted(PAPER_TABLE5))
class TestPaperScale:
    def test_validates(self, name):
        get_model(name, "paper").validate()

    def test_params_within_25_percent_of_paper(self, name):
        spec = get_model(name, "paper")
        paper_params, _ = PAPER_TABLE5[name]
        ratio = spec.param_count() / paper_params
        assert 0.75 <= ratio <= 1.25, "params off by %.2fx" % ratio

    def test_shape_only(self, name):
        assert not get_model(name, "paper").materialized

    def test_mini_is_materialized_and_small(self, name):
        mini = get_model(name, "mini")
        assert mini.materialized
        assert mini.param_count() < 2000


def test_unknown_model():
    with pytest.raises(KeyError):
        get_model("skynet")


def test_bad_scale():
    with pytest.raises(ValueError):
        get_model("mnist", "huge")


def test_gpt2_has_transformer_pieces():
    spec = get_model("gpt2", "paper")
    kinds = {l.kind for l in spec.layers}
    assert {"batch_matmul", "softmax", "layer_norm", "gelu", "gather"} <= kinds


def test_mobilenet_uses_depthwise():
    spec = get_model("mobilenet", "paper")
    assert any(l.kind == "depthwise_conv2d" for l in spec.layers)
