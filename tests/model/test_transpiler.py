"""Tests for the tflite-like transpiler."""

import numpy as np
import pytest

from repro.model import TranspileError, export, get_model, run_float, transpile

FLAT = {
    "name": "tiny",
    "inputs": {"image": [4, 4, 1]},
    "buffers": {
        "w0": np.random.default_rng(0).uniform(-1, 1, (3, 3, 1, 2)).tolist(),
        "b0": [0.1, -0.1],
        "w1": np.random.default_rng(1).uniform(-1, 1, (32, 3)).tolist(),
        "b1": [0.0, 0.0, 0.0],
    },
    "operators": [
        {"opcode": "CONV_2D", "name": "conv", "inputs": ["image"],
         "params": {"weight": "w0", "bias": "b0"},
         "options": {"kernel": [3, 3], "filters": 2, "stride": 1,
                     "padding": "same"}},
        {"opcode": "RELU", "name": "act", "inputs": ["conv"]},
        {"opcode": "RESHAPE", "name": "flat", "inputs": ["act"],
         "options": {"shape": [1, 32]}},
        {"opcode": "FULLY_CONNECTED", "name": "fc", "inputs": ["flat"],
         "params": {"weight": "w1", "bias": "b1"},
         "options": {"units": 3}},
        {"opcode": "SOFTMAX", "name": "probs", "inputs": ["fc"]},
    ],
    "outputs": ["probs"],
}


def test_transpile_valid_model():
    spec = transpile(FLAT)
    assert spec.name == "tiny"
    assert [l.kind for l in spec.layers] == [
        "conv2d", "relu", "reshape", "fully_connected", "softmax"
    ]
    out = run_float(spec, {"image": np.zeros((4, 4, 1))})
    assert out["probs"].shape == (1, 3)


def test_missing_key_rejected():
    with pytest.raises(TranspileError, match="outputs"):
        transpile({"name": "x", "inputs": {}, "operators": []})


def test_unknown_opcode_rejected():
    bad = dict(FLAT, operators=[{"opcode": "QUANTUM", "inputs": []}])
    with pytest.raises(TranspileError, match="QUANTUM"):
        transpile(bad)


def test_unknown_buffer_rejected():
    bad = dict(FLAT)
    bad = {**FLAT, "operators": [
        {"opcode": "FULLY_CONNECTED", "name": "fc", "inputs": ["image"],
         "params": {"weight": "missing", "bias": "b1"},
         "options": {"units": 3}}]}
    with pytest.raises(TranspileError, match="missing"):
        transpile(bad)


def test_export_round_trip():
    spec = transpile(FLAT)
    flat2 = export(spec)
    spec2 = transpile(flat2)
    assert [l.kind for l in spec2.layers] == [l.kind for l in spec.layers]
    x = np.random.default_rng(3).uniform(-1, 1, (4, 4, 1))
    out1 = run_float(spec, {"image": x})["probs"]
    out2 = run_float(spec2, {"image": x})["probs"]
    assert np.allclose(out1, out2)


def test_zoo_models_round_trip_through_flat_format():
    spec = get_model("mnist", "mini")
    flat = export(spec)
    again = transpile(flat)
    assert again.param_count() == spec.param_count()
