"""Tests for fixed-point quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantize import FixedPoint, div_round, max_table_input_bits, requantize


class TestDivRound:
    def test_exact(self):
        assert div_round(10, 5) == 2

    def test_rounds_up_at_half(self):
        assert div_round(5, 2) == 3
        assert div_round(3, 2) == 2

    def test_rounds_down_below_half(self):
        assert div_round(4, 3) == 1

    def test_negative_numerator_rounds_half_up(self):
        assert div_round(-5, 2) == -2  # -2.5 -> -2 (half up)
        assert div_round(-4, 3) == -1
        assert div_round(-3, 2) == -1  # -1.5 -> -1

    def test_negative_denominator(self):
        assert div_round(5, -2) == -2  # -2.5 -> -2

    def test_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            div_round(1, 0)

    @given(a=st.integers(-10**9, 10**9), b=st.integers(1, 10**6))
    @settings(max_examples=100)
    def test_matches_floor_identity(self, a, b):
        # the defining circuit identity: floor((2a + b) / 2b)
        assert div_round(a, b) == (2 * a + b) // (2 * b)

    @given(a=st.integers(-10**6, 10**6), b=st.integers(1, 10**4))
    @settings(max_examples=100)
    def test_error_at_most_half(self, a, b):
        assert abs(div_round(a, b) - a / b) <= 0.5


class TestFixedPoint:
    def test_factor(self):
        assert FixedPoint(8).factor == 256

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            FixedPoint(-1)

    def test_encode_decode_roundtrip(self):
        fp = FixedPoint(12)
        for x in (0.0, 1.0, -1.5, 3.14159, -0.0002):
            assert abs(fp.decode(fp.encode(x)) - x) <= 1 / fp.factor

    def test_encode_array_exact_ints(self):
        fp = FixedPoint(4)
        arr = fp.encode_array(np.array([0.5, -0.25, 1.0]))
        assert list(arr) == [8, -4, 16]

    def test_decode_array(self):
        fp = FixedPoint(4)
        out = fp.decode_array(np.array([8, -4, 16], dtype=object))
        assert np.allclose(out, [0.5, -0.25, 1.0])

    def test_mul_rescale(self):
        fp = FixedPoint(8)
        a, b = fp.encode(1.5), fp.encode(2.0)
        assert fp.decode(fp.mul_rescale(a, b)) == pytest.approx(3.0, abs=1e-2)

    def test_div_rescale(self):
        fp = FixedPoint(8)
        a, b = fp.encode(3.0), fp.encode(2.0)
        assert fp.decode(fp.div_rescale(a, b)) == pytest.approx(1.5, abs=1e-2)

    def test_div_rescale_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            FixedPoint(8).div_rescale(1, 0)


class TestRequantize:
    def test_upscale_exact(self):
        assert requantize(3, 4, 8) == 48

    def test_downscale_rounds(self):
        assert requantize(48, 8, 4) == 3
        assert requantize(40, 8, 4) == 3  # 2.5 rounds away from zero

    def test_identity(self):
        assert requantize(7, 6, 6) == 7

    @given(v=st.integers(-10**6, 10**6), bits=st.integers(0, 12))
    @settings(max_examples=50)
    def test_up_then_down_is_identity(self, v, bits):
        assert requantize(requantize(v, 4, 4 + bits), 4 + bits, 4) == v


class TestTableBits:
    def test_basic(self):
        assert max_table_input_bits(16) == 15

    def test_too_small(self):
        with pytest.raises(ValueError):
            max_table_input_bits(0)
