"""Tests for free shape layers: no rows, reference-correct."""

import numpy as np
import pytest

from repro.gadgets import CircuitBuilder
from repro.layers import (
    ConcatLayer,
    ExpandDimsLayer,
    FlattenLayer,
    GatherLayer,
    IdentityLayer,
    PadLayer,
    ReshapeLayer,
    SliceLayer,
    SplitLayer,
    SqueezeLayer,
    TransposeLayer,
    supported_layer_kinds,
)
from repro.tensor import Tensor

rng = np.random.default_rng(5)


def synth(layer, arrays, params=None):
    builder = CircuitBuilder(k=8, num_cols=6, scale_bits=4)
    tensors = [Tensor.from_values(np.asarray(a, dtype=object)) for a in arrays]
    param_tensors = {
        k: Tensor.from_values(np.asarray(v, dtype=object))
        for k, v in (params or {}).items()
    }
    out = layer.synthesize(builder, tensors, param_tensors, None)
    assert builder.rows_used == 0, "shape ops must be free"
    return out.values()


def test_reshape():
    x = np.arange(12).reshape(3, 4)
    got = synth(ReshapeLayer(shape=(2, 6)), [x])
    assert got.tolist() == x.reshape(2, 6).tolist()


def test_reshape_infers_minus_one():
    layer = ReshapeLayer(shape=(2, -1))
    assert layer.output_shape([(3, 4)]) == (2, 6)


def test_flatten():
    x = np.arange(6).reshape(2, 3)
    assert synth(FlattenLayer(), [x]).tolist() == list(range(6))


def test_transpose():
    x = np.arange(6).reshape(2, 3)
    got = synth(TransposeLayer(), [x])
    assert got.tolist() == x.T.tolist()


def test_transpose_axes():
    x = np.arange(24).reshape(2, 3, 4)
    got = synth(TransposeLayer(axes=(1, 0, 2)), [x])
    assert got.tolist() == np.transpose(x, (1, 0, 2)).tolist()


def test_squeeze_expand():
    x = np.arange(3).reshape(1, 3)
    assert synth(SqueezeLayer(axis=0), [x]).shape == (3,)
    assert synth(ExpandDimsLayer(axis=1), [x]).shape == (1, 1, 3)


def test_concat():
    a, b = np.arange(4).reshape(2, 2), np.arange(4, 8).reshape(2, 2)
    got = synth(ConcatLayer(axis=1), [a, b])
    assert got.tolist() == np.concatenate([a, b], axis=1).tolist()


def test_slice():
    x = np.arange(16).reshape(4, 4)
    got = synth(SliceLayer(slices=[(1, 3), None]), [x])
    assert got.tolist() == x[1:3].tolist()


def test_pad():
    x = np.arange(4).reshape(2, 2)
    got = synth(PadLayer(pad_width=[(1, 1), (0, 2)]), [x])
    assert got.shape == (4, 4)
    assert got[0].tolist() == [0, 0, 0, 0]


def test_gather():
    table = np.arange(20).reshape(5, 4)
    layer = GatherLayer(indices=[3, 0, 3], table_shape=(5, 4))
    got = synth(layer, [], {"table": table})
    assert got.tolist() == table[[3, 0, 3]].tolist()


def test_identity():
    x = np.arange(4)
    assert synth(IdentityLayer(), [x]).tolist() == x.tolist()


def test_split():
    x = np.arange(12).reshape(4, 3)
    got = synth(SplitLayer(sections=2, axis=0, index=1), [x])
    assert got.tolist() == x[2:].tolist()


def test_paper_layer_count_supported():
    # the paper claims 43 supported layers; we register at least that many
    assert len(supported_layer_kinds()) >= 43
