"""Tests for activation layers across implementations."""

import numpy as np
import pytest

from repro.layers import ACTIVATION_LAYERS
from repro.layers.base import LayoutChoices

from tests.layers.harness import assert_close_to_float, run_layer

rng = np.random.default_rng(3)


@pytest.mark.parametrize(
    "fn_name", ["relu", "sigmoid", "tanh", "gelu", "elu", "silu", "relu6",
                "exp", "softplus", "leaky_relu", "hard_sigmoid", "hard_swish",
                "erf", "mish"]
)
def test_activation_matches_reference(fn_name):
    layer = ACTIVATION_LAYERS[fn_name]()
    x = rng.uniform(-2, 2, (3, 4))
    got, _, _ = run_layer(layer, [x])
    # exp amplifies input quantization error by up to e^2
    tol = 0.25 if fn_name == "exp" else 0.1
    assert_close_to_float(layer, [x], {}, got, tol=tol)


@pytest.mark.parametrize(
    "fn_name,domain", [("sqrt", (0.1, 4)), ("rsqrt", (0.3, 4)),
                       ("log", (0.2, 4)), ("reciprocal", (0.3, 4))]
)
def test_positive_domain_activations(fn_name, domain):
    layer = ACTIVATION_LAYERS[fn_name]()
    x = rng.uniform(*domain, (5,))
    got, _, _ = run_layer(layer, [x], scale_bits=5, k=11)
    assert_close_to_float(layer, [x], {}, got, tol=0.25)


class TestReluChoices:
    def test_bitdecomp_matches_lookup(self):
        layer = ACTIVATION_LAYERS["relu"]()
        x = rng.uniform(-2, 2, (2, 6))
        lookup, _, _ = run_layer(layer, [x], choices=LayoutChoices(relu="lookup"))
        bitd, _, _ = run_layer(
            layer, [x],
            choices=LayoutChoices(relu="bitdecomp", relu_bits=10),
            num_cols=13,
        )
        assert (lookup == bitd).all()

    def test_bitdecomp_needs_no_table(self):
        layer = ACTIVATION_LAYERS["relu"]()
        tables = layer.tables(
            LayoutChoices(relu="bitdecomp"), 5, [(2, 2)]
        )
        assert tables == set()

    def test_lookup_needs_table(self):
        layer = ACTIVATION_LAYERS["relu"]()
        assert layer.tables(LayoutChoices(), 5, [(2, 2)]) == {("nl", "relu")}

    def test_bitdecomp_only_affects_relu(self):
        layer = ACTIVATION_LAYERS["sigmoid"]()
        assert layer.tables(
            LayoutChoices(relu="bitdecomp"), 5, [(2,)]
        ) == {("nl", "sigmoid")}

    def test_bitdecomp_costs_more_rows_when_narrow(self):
        layer = ACTIVATION_LAYERS["relu"]()
        lookup_rows = layer.count_rows(12, [(8, 8)], LayoutChoices(), 5)
        bitd_rows = layer.count_rows(
            12, [(8, 8)], LayoutChoices(relu="bitdecomp", relu_bits=10), 5
        )
        assert bitd_rows > lookup_rows
