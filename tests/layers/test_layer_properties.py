"""Property-based tests of layer semantics (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.layers import (
    AddLayer,
    FullyConnectedLayer,
    MulLayer,
    ReduceSumLayer,
    SoftmaxLayer,
    SubLayer,
)
from repro.quantize import FixedPoint

FP = FixedPoint(6)


def fixed_arrays(shape, lo=-200, hi=200):
    return arrays(np.int64, shape,
                  elements=st.integers(lo, hi)).map(
        lambda a: a.astype(object))


@given(a=fixed_arrays((3, 4)), b=fixed_arrays((3, 4)))
@settings(max_examples=25, deadline=None)
def test_add_sub_inverse(a, b):
    added = AddLayer().forward_fixed([a, b], {}, FP)
    back = SubLayer().forward_fixed([added, b], {}, FP)
    assert (back == a).all()


@given(a=fixed_arrays((2, 3)), b=fixed_arrays((2, 3)))
@settings(max_examples=25, deadline=None)
def test_mul_commutative(a, b):
    ab = MulLayer().forward_fixed([a, b], {}, FP)
    ba = MulLayer().forward_fixed([b, a], {}, FP)
    assert (ab == ba).all()


@given(a=fixed_arrays((3, 4)))
@settings(max_examples=25, deadline=None)
def test_reduce_sum_axis_decomposition(a):
    total = ReduceSumLayer().forward_fixed([a], {}, FP)
    by_rows = ReduceSumLayer(axis=1).forward_fixed([a], {}, FP)
    assert total == sum(int(v) for v in by_rows)


@given(x=fixed_arrays((5,), lo=-100, hi=100), shift=st.integers(-50, 50))
@settings(max_examples=25, deadline=None)
def test_softmax_shift_invariant_in_fixed_point(x, shift):
    layer = SoftmaxLayer()
    base = layer.forward_fixed([x], {}, FP)
    shifted = layer.forward_fixed([x + shift], {}, FP)
    # shift invariance is exact in our pipeline: the max-subtraction
    # cancels any constant shift before the exponential table
    assert (base == shifted).all()


@given(x=fixed_arrays((4,), lo=-100, hi=100))
@settings(max_examples=25, deadline=None)
def test_softmax_outputs_sum_near_scale_factor(x):
    out = SoftmaxLayer().forward_fixed([x], {}, FP)
    total = sum(int(v) for v in out)
    # probabilities sum to 1.0 = SF up to per-element rounding
    assert abs(total - FP.factor) <= len(out)


@given(x=fixed_arrays((1, 5), lo=-50, hi=50),
       w=fixed_arrays((5, 3), lo=-50, hi=50))
@settings(max_examples=25, deadline=None)
def test_fully_connected_linearity(x, w):
    layer = FullyConnectedLayer(units=3)
    params = {"weight": w, "bias": np.zeros(3, dtype=object)}
    y1 = layer.forward_fixed([x], params, FP)
    y2 = layer.forward_fixed([2 * x], params, FP)
    # doubling the input doubles the output up to rescale rounding
    diff = np.abs((2 * y1 - y2).astype(np.int64))
    assert diff.max() <= 2


@given(x=fixed_arrays((2, 4), lo=-100, hi=100))
@settings(max_examples=25, deadline=None)
def test_count_rows_positive_and_width_monotone(x):
    from repro.layers import ACTIVATION_LAYERS
    from repro.layers.base import LayoutChoices

    layer = ACTIVATION_LAYERS["relu"]()
    choices = LayoutChoices()
    narrow = layer.count_rows(6, [x.shape], choices, 6)
    wide = layer.count_rows(24, [x.shape], choices, 6)
    assert narrow >= wide >= 1
