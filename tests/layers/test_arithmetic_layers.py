"""Tests for elementwise arithmetic and reduction layers."""

import numpy as np
import pytest

from repro.layers import (
    AddLayer,
    DivLayer,
    MulLayer,
    ReduceMeanLayer,
    ReduceSumLayer,
    SquareLayer,
    SquaredDifferenceLayer,
    SubLayer,
)
from repro.layers.base import LayoutChoices

from tests.layers.harness import assert_close_to_float, run_layer

rng = np.random.default_rng(7)

CHOICES = [LayoutChoices(arithmetic="custom"), LayoutChoices(arithmetic="dotprod")]
IDS = ["custom", "dotprod"]


@pytest.mark.parametrize("choices", CHOICES, ids=IDS)
class TestBinaryLayers:
    def test_add(self, choices):
        a = rng.uniform(-2, 2, (3, 4))
        b = rng.uniform(-2, 2, (3, 4))
        got, _, _ = run_layer(AddLayer(), [a, b], choices=choices)
        assert_close_to_float(AddLayer(), [a, b], {}, got)

    def test_sub(self, choices):
        a = rng.uniform(-2, 2, (2, 5))
        b = rng.uniform(-2, 2, (2, 5))
        got, _, _ = run_layer(SubLayer(), [a, b], choices=choices)
        assert_close_to_float(SubLayer(), [a, b], {}, got)

    def test_mul(self, choices):
        a = rng.uniform(-1.5, 1.5, (4,))
        b = rng.uniform(-1.5, 1.5, (4,))
        got, _, _ = run_layer(MulLayer(), [a, b], choices=choices)
        assert_close_to_float(MulLayer(), [a, b], {}, got, tol=0.2)

    def test_squared_difference(self, choices):
        a = rng.uniform(-1, 1, (3, 3))
        b = rng.uniform(-1, 1, (3, 3))
        got, _, _ = run_layer(SquaredDifferenceLayer(), [a, b], choices=choices)
        assert_close_to_float(SquaredDifferenceLayer(), [a, b], {}, got, tol=0.2)

    def test_square(self, choices):
        a = rng.uniform(-1.5, 1.5, (6,))
        got, _, _ = run_layer(SquareLayer(), [a], choices=choices)
        assert_close_to_float(SquareLayer(), [a], {}, got, tol=0.2)

    def test_broadcasting(self, choices):
        a = rng.uniform(-1, 1, (3, 4))
        b = rng.uniform(-1, 1, (4,))
        got, ref, _ = run_layer(AddLayer(), [a, b], choices=choices)
        assert got.shape == (3, 4)


class TestDotprodCostsMoreRows:
    def test_add_row_blowup(self):
        shapes = [(8, 8)]
        custom = AddLayer().count_rows(10, shapes, LayoutChoices(), 5)
        dotprod = AddLayer().count_rows(
            10, shapes, LayoutChoices(arithmetic="dotprod"), 5
        )
        assert dotprod > 2 * custom

    def test_mul_row_blowup(self):
        shapes = [(8, 8)]
        custom = MulLayer().count_rows(10, shapes, LayoutChoices(), 5)
        dotprod = MulLayer().count_rows(
            10, shapes, LayoutChoices(arithmetic="dotprod"), 5
        )
        assert dotprod > 2 * custom


class TestDiv:
    def test_positive_divisor(self):
        a = rng.uniform(-2, 2, (5,))
        b = rng.uniform(0.5, 3, (5,))
        got, _, _ = run_layer(DivLayer(), [a, b])
        assert_close_to_float(DivLayer(), [a, b], {}, got, tol=0.3)


class TestReductions:
    def test_reduce_sum_all(self):
        a = rng.uniform(-1, 1, (4, 3))
        got, _, _ = run_layer(ReduceSumLayer(), [a])
        assert got.shape == ()
        assert_close_to_float(ReduceSumLayer(), [a], {}, got, tol=0.5)

    def test_reduce_sum_axis(self):
        a = rng.uniform(-1, 1, (4, 3))
        layer = ReduceSumLayer(axis=1)
        got, _, _ = run_layer(layer, [a])
        assert got.shape == (4,)
        assert_close_to_float(layer, [a], {}, got, tol=0.5)

    def test_reduce_mean_axis0(self):
        a = rng.uniform(-1, 1, (6, 2))
        layer = ReduceMeanLayer(axis=0)
        got, _, _ = run_layer(layer, [a])
        assert got.shape == (2,)
        assert_close_to_float(layer, [a], {}, got, tol=0.2)

    def test_reduce_mean_all(self):
        a = rng.uniform(-1, 1, (3, 3))
        layer = ReduceMeanLayer()
        got, _, _ = run_layer(layer, [a])
        assert_close_to_float(layer, [a], {}, got, tol=0.2)
