"""Shared harness: run a layer both as a circuit and as fixed-point
reference, and check they agree cell-for-cell, the MockProver passes, and
the closed-form row count is exact."""

import numpy as np

from repro.gadgets import CircuitBuilder
from repro.layers.base import LayoutChoices
from repro.tensor import Tensor


def run_layer(
    layer,
    float_inputs,
    float_params=None,
    choices=None,
    k=11,
    num_cols=10,
    scale_bits=5,
    lookup_bits=None,
    check_rows=True,
):
    """Returns (circuit_out_values, fixed_reference, builder)."""
    choices = choices or LayoutChoices()
    builder = CircuitBuilder(k=k, num_cols=num_cols, scale_bits=scale_bits,
                             lookup_bits=lookup_bits)
    fp = builder.fp
    float_params = float_params or {}

    fixed_inputs = [fp.encode_array(np.asarray(x)) for x in float_inputs]
    fixed_params = layer.quantize_params(
        {k_: np.asarray(v) for k_, v in float_params.items()}, fp
    ) if float_params else {}

    reference = layer.forward_fixed(fixed_inputs, fixed_params, fp)

    input_tensors = [Tensor.from_values(x) for x in fixed_inputs]
    param_tensors = {k_: Tensor.from_values(v) for k_, v in fixed_params.items()}
    start_rows = builder.rows_used
    out = layer.synthesize(builder, input_tensors, param_tensors, choices)
    rows_spent = builder.rows_used - start_rows

    builder.mock_check()

    got = out.values()
    ref = np.asarray(reference, dtype=object)
    assert got.shape == tuple(np.shape(ref)), (
        "shape mismatch: circuit %r vs reference %r" % (got.shape, np.shape(ref))
    )
    mism = [
        (idx, got[idx], ref[idx])
        for idx in np.ndindex(got.shape)
        if got[idx] != ref[idx]
    ]
    assert not mism, "circuit/reference mismatch at %s" % mism[:5]

    if check_rows:
        predicted = layer.count_rows(
            num_cols, [np.shape(x) for x in fixed_inputs], choices, scale_bits
        )
        assert predicted == rows_spent, (
            "row count drift for %s: predicted %d, actual %d"
            % (layer.kind, predicted, rows_spent)
        )

    expected_shape = layer.output_shape([np.shape(x) for x in fixed_inputs])
    assert tuple(expected_shape) == got.shape
    return got, ref, builder


def assert_close_to_float(layer, float_inputs, float_params, got_fixed,
                          scale_bits=5, tol=None):
    """The decoded circuit output approximates the float semantics."""
    from repro.quantize import FixedPoint

    fp = FixedPoint(scale_bits)
    reference = layer.forward_float(
        [np.asarray(x, dtype=np.float64) for x in float_inputs],
        {k: np.asarray(v, dtype=np.float64) for k, v in (float_params or {}).items()},
    )
    decoded = fp.decode_array(got_fixed)
    tol = tol if tol is not None else 4 / fp.factor
    assert np.allclose(decoded, reference, atol=tol), (
        "float drift: max err %.4f" % np.max(np.abs(decoded - reference))
    )
