"""Tests for pooling, softmax, and normalization layers."""

import numpy as np
import pytest

from repro.layers import (
    AvgPool2DLayer,
    BatchNormLayer,
    GlobalAvgPoolLayer,
    LayerNormLayer,
    MaxPool2DLayer,
    RMSNormLayer,
    SoftmaxLayer,
)

from tests.layers.harness import assert_close_to_float, run_layer

rng = np.random.default_rng(23)


class TestPooling:
    def test_max_pool(self):
        layer = MaxPool2DLayer(pool=2, stride=2)
        x = rng.uniform(-2, 2, (4, 4, 3))
        got, _, _ = run_layer(layer, [x])
        assert got.shape == (2, 2, 3)
        assert_close_to_float(layer, [x], {}, got)

    def test_max_pool_stride1(self):
        layer = MaxPool2DLayer(pool=2, stride=1)
        x = rng.uniform(-2, 2, (3, 3, 1))
        got, _, _ = run_layer(layer, [x])
        assert got.shape == (2, 2, 1)

    def test_avg_pool(self):
        layer = AvgPool2DLayer(pool=2, stride=2)
        x = rng.uniform(-2, 2, (4, 4, 2))
        got, _, _ = run_layer(layer, [x])
        assert got.shape == (2, 2, 2)
        assert_close_to_float(layer, [x], {}, got, tol=0.1)

    def test_global_avg_pool(self):
        layer = GlobalAvgPoolLayer()
        x = rng.uniform(-2, 2, (3, 3, 4))
        got, _, _ = run_layer(layer, [x])
        assert got.shape == (4,)
        assert_close_to_float(layer, [x], {}, got, tol=0.1)


class TestSoftmax:
    def test_vector(self):
        layer = SoftmaxLayer()
        x = rng.uniform(-2, 2, (4,))
        got, _, _ = run_layer(layer, [x], scale_bits=5, num_cols=10)
        assert_close_to_float(layer, [x], {}, got, tol=0.1)

    def test_rows_sum_to_one(self):
        layer = SoftmaxLayer()
        x = rng.uniform(-2, 2, (3, 4))
        got, _, _ = run_layer(layer, [x], scale_bits=5)
        sums = got.astype(np.float64).sum(axis=-1) / 32.0
        assert np.allclose(sums, 1.0, atol=0.15)

    def test_shift_invariance(self):
        layer = SoftmaxLayer()
        x = np.array([0.5, -0.25, 1.0, 0.0])
        got1, _, _ = run_layer(layer, [x])
        got2, _, _ = run_layer(layer, [x + 1.0])
        assert np.abs(got1.astype(np.int64) - got2.astype(np.int64)).max() <= 2

    def test_batched(self):
        layer = SoftmaxLayer()
        x = rng.uniform(-1, 1, (2, 3))
        got, _, _ = run_layer(layer, [x])
        assert got.shape == (2, 3)


class TestNormalization:
    def test_batch_norm(self):
        layer = BatchNormLayer(eps=1e-3)
        x = rng.uniform(-2, 2, (3, 4))
        params = {
            "gamma": rng.uniform(0.5, 1.5, (4,)),
            "beta": rng.uniform(-0.5, 0.5, (4,)),
            "mean": rng.uniform(-0.5, 0.5, (4,)),
            "variance": rng.uniform(0.5, 2.0, (4,)),
        }
        got, _, _ = run_layer(layer, [x], params)
        assert_close_to_float(layer, [x], params, got, tol=0.3)

    def test_layer_norm(self):
        layer = LayerNormLayer(eps=1e-2)
        x = rng.uniform(-1, 1, (2, 6))
        params = {"gamma": np.ones(6), "beta": np.zeros(6)}
        got, _, _ = run_layer(layer, [x], params, scale_bits=5, k=11)
        assert_close_to_float(layer, [x], params, got, tol=0.6)

    def test_rms_norm(self):
        layer = RMSNormLayer(eps=1e-2)
        x = rng.uniform(-1, 1, (2, 5))
        params = {"gamma": np.ones(5)}
        got, _, _ = run_layer(layer, [x], params, scale_bits=5, k=11)
        assert_close_to_float(layer, [x], params, got, tol=0.6)
