"""Tests for the linear layers across all three implementations."""

import numpy as np
import pytest

from repro.layers import (
    BatchMatMulLayer,
    Conv2DLayer,
    DepthwiseConv2DLayer,
    FullyConnectedLayer,
)
from repro.layers.base import LayoutChoices

from tests.layers.harness import assert_close_to_float, run_layer

rng = np.random.default_rng(11)

LINEAR_CHOICES = [
    LayoutChoices(linear="dot_bias"),
    LayoutChoices(linear="dot_sum"),
    LayoutChoices(linear="freivalds"),
]
IDS = ["dot_bias", "dot_sum", "freivalds"]


@pytest.mark.parametrize("choices", LINEAR_CHOICES, ids=IDS)
class TestFullyConnected:
    def test_matvec(self, choices):
        layer = FullyConnectedLayer(units=3)
        x = rng.uniform(-1, 1, (1, 5))
        params = {"weight": rng.uniform(-1, 1, (5, 3)),
                  "bias": rng.uniform(-0.5, 0.5, (3,))}
        got, _, _ = run_layer(layer, [x], params, choices=choices)
        assert_close_to_float(layer, [x], params, got, tol=0.3)

    def test_matmul_batch(self, choices):
        layer = FullyConnectedLayer(units=4)
        x = rng.uniform(-1, 1, (3, 6))
        params = {"weight": rng.uniform(-1, 1, (6, 4)),
                  "bias": rng.uniform(-0.5, 0.5, (4,))}
        got, _, _ = run_layer(layer, [x], params, choices=choices)
        assert got.shape == (3, 4)
        assert_close_to_float(layer, [x], params, got, tol=0.3)

    def test_long_inner_dimension(self, choices):
        layer = FullyConnectedLayer(units=2)
        x = rng.uniform(-0.5, 0.5, (1, 23))  # forces multi-row dots
        params = {"weight": rng.uniform(-0.5, 0.5, (23, 2)),
                  "bias": np.zeros(2)}
        got, _, _ = run_layer(layer, [x], params, choices=choices)
        assert_close_to_float(layer, [x], params, got, tol=0.4)


@pytest.mark.parametrize("choices", LINEAR_CHOICES, ids=IDS)
class TestConv2D:
    def test_same_padding(self, choices):
        layer = Conv2DLayer(kernel=(3, 3), filters=2, stride=1, padding="same")
        x = rng.uniform(-1, 1, (4, 4, 2))
        params = {"weight": rng.uniform(-0.5, 0.5, (3, 3, 2, 2)),
                  "bias": rng.uniform(-0.2, 0.2, (2,))}
        got, _, _ = run_layer(layer, [x], params, choices=choices)
        assert got.shape == (4, 4, 2)
        assert_close_to_float(layer, [x], params, got, tol=0.5)

    def test_valid_padding_stride2(self, choices):
        layer = Conv2DLayer(kernel=(2, 2), filters=3, stride=2, padding="valid")
        x = rng.uniform(-1, 1, (4, 4, 1))
        params = {"weight": rng.uniform(-0.5, 0.5, (2, 2, 1, 3)),
                  "bias": np.zeros(3)}
        got, _, _ = run_layer(layer, [x], params, choices=choices)
        assert got.shape == (2, 2, 3)
        assert_close_to_float(layer, [x], params, got, tol=0.4)


class TestDepthwiseConv2D:
    @pytest.mark.parametrize("choices", LINEAR_CHOICES, ids=IDS)
    def test_depthwise(self, choices):
        layer = DepthwiseConv2DLayer(kernel=(3, 3), multiplier=1, stride=1,
                                     padding="same")
        x = rng.uniform(-1, 1, (4, 4, 2))
        params = {"weight": rng.uniform(-0.5, 0.5, (3, 3, 2, 1)),
                  "bias": rng.uniform(-0.2, 0.2, (2,))}
        got, _, _ = run_layer(layer, [x], params, choices=choices)
        assert got.shape == (4, 4, 2)
        assert_close_to_float(layer, [x], params, got, tol=0.4)

    def test_multiplier(self):
        layer = DepthwiseConv2DLayer(kernel=(2, 2), multiplier=2, stride=1,
                                     padding="valid")
        x = rng.uniform(-1, 1, (3, 3, 2))
        params = {"weight": rng.uniform(-0.5, 0.5, (2, 2, 2, 2)),
                  "bias": np.zeros(4)}
        got, _, _ = run_layer(layer, [x], params)
        assert got.shape == (2, 2, 4)


@pytest.mark.parametrize("choices", LINEAR_CHOICES, ids=IDS)
class TestBatchMatMul:
    def test_batched(self, choices):
        layer = BatchMatMulLayer()
        a = rng.uniform(-1, 1, (2, 3, 4))
        b = rng.uniform(-1, 1, (2, 4, 2))
        got, _, _ = run_layer(layer, [a, b], choices=choices)
        assert got.shape == (2, 3, 2)
        assert_close_to_float(layer, [a, b], {}, got, tol=0.4)


class TestFreivaldsEconomics:
    def test_freivalds_uses_fewer_rows_for_large_matmul(self):
        layer = BatchMatMulLayer()
        shapes = [(32, 32), (32, 32)]
        naive = layer.count_rows(10, shapes, LayoutChoices(linear="dot_bias"), 5)
        freivalds = layer.count_rows(
            10, shapes, LayoutChoices(linear="freivalds"), 5
        )
        assert freivalds < naive / 3

    def test_freivalds_catches_wrong_product(self):
        # corrupt one output cell of the freivalds-verified product and the
        # copy/gate system must reject
        from repro.gadgets import CircuitBuilder
        from repro.halo2 import MockProver
        from repro.tensor import Tensor

        layer = BatchMatMulLayer()
        builder = CircuitBuilder(k=11, num_cols=10, scale_bits=5)
        a = Tensor.from_values(builder.fp.encode_array(rng.uniform(-1, 1, (1, 3, 3))))
        b = Tensor.from_values(builder.fp.encode_array(rng.uniform(-1, 1, (1, 3, 3))))
        out = layer.synthesize(builder, [a, b], {},
                               LayoutChoices(linear="freivalds"))
        victim = out.entries()[0]
        builder.asg.assign_advice(victim.cell.column, victim.cell.row,
                                  victim.value + 1)
        failures = MockProver(builder.cs, builder.asg).verify()
        assert failures
