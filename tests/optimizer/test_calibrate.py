"""Tests for hardware-profile serialization and cost-model calibration."""

import math
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.optimizer import (
    PROFILES,
    R6I_8XLARGE,
    calibrate_hardware,
    load_profile,
    probe_drift,
    resolve_profile,
    save_profile,
)
from repro.optimizer.calibrate import fit_scaling
from repro.optimizer.hardware import ENV_PROFILE


class TestFit:
    def test_exact_curve_recovers_constant(self):
        c = 3.5e-8
        measured = {k: c * k * (1 << k) for k in (8, 9, 10)}
        fitted, residuals = fit_scaling(measured, "fft")
        assert fitted == pytest.approx(c)
        assert all(r == pytest.approx(1.0) for r in residuals.values())

    def test_geometric_mean_balances_outliers(self):
        # one point 4x over, one 4x under: the log-space fit lands on the
        # true constant instead of being dragged by the big absolute value
        c = 1e-7
        measured = {10: 4 * c * (1 << 10), 12: c * (1 << 12) / 4}
        fitted, _ = fit_scaling(measured, "msm")
        assert fitted == pytest.approx(c)

    def test_rejects_empty_and_zero(self):
        with pytest.raises(ValueError):
            fit_scaling({}, "fft")
        with pytest.raises(ValueError):
            fit_scaling({8: 0.0}, "fft")


class TestCalibration:
    @pytest.fixture(scope="class")
    def calibration(self):
        return calibrate_hardware(ks=(8, 9, 10))

    def test_measured_points_kept_exact(self, calibration):
        for op, attr in (("fft", "t_fft"), ("msm", "t_msm"),
                         ("lookup", "t_lookup")):
            table = getattr(calibration.profile, attr)
            for k, secs in calibration.measured[op].items():
                assert table[k] == secs

    def test_fitted_curve_fills_larger_k(self, calibration):
        # 2^16 was never measured; the fitted curve extrapolates smoothly
        # (tabulated, so the interpolator never hits its 2.1^dk fallback)
        fft = calibration.profile.t_fft
        assert 16 in fft
        assert fft[16] == pytest.approx(
            calibration.constants["fft"] * 16 * (1 << 16))

    def test_render_and_meta(self, calibration):
        text = calibration.render()
        assert "t_fft" in text and "residuals" in text
        meta = calibration.meta()
        assert meta["calibrated"] and meta["benchmark_ks"] == [8, 9, 10]

    def test_probe_drift_improves_over_static_default(self, calibration):
        # the acceptance bar: a calibrated profile predicts this Python
        # prover better than the paper's AWS constants, and the drift
        # metric lands in the registry for both profiles
        registry = MetricsRegistry()
        report = probe_drift(calibration, probe_model="mnist",
                             registry=registry)
        assert report["improved"]
        assert report["calibrated_drift"] < report["static_drift"]
        static_drift = registry.value(
            "zkml_costmodel_drift", model="mnist-mini",
            profile=report["static_profile"])
        calib_drift = registry.value(
            "zkml_costmodel_drift", model="mnist-mini",
            profile=calibration.profile.name)
        assert math.isclose(calib_drift, report["calibrated_drift"],
                            abs_tol=1e-3)
        assert calib_drift < static_drift
        assert calibration.drift is report


class TestProfileIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "hw.json")
        save_profile(R6I_8XLARGE, path, meta={"note": "test"})
        loaded = load_profile(path)
        assert loaded.name == R6I_8XLARGE.name
        assert loaded.t_fft == R6I_8XLARGE.t_fft
        assert loaded.t_field == R6I_8XLARGE.t_field
        assert loaded.fft(20) == pytest.approx(R6I_8XLARGE.fft(20))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            load_profile(str(path))

    def test_resolve_precedence(self, tmp_path, monkeypatch):
        path = str(tmp_path / "hw.json")
        save_profile(R6I_8XLARGE, path)
        monkeypatch.delenv(ENV_PROFILE, raising=False)
        # built-in name
        assert resolve_profile("r6i.16xlarge") is PROFILES["r6i.16xlarge"]
        # file path
        assert resolve_profile(path).name == R6I_8XLARGE.name
        # env var default
        monkeypatch.setenv(ENV_PROFILE, path)
        assert resolve_profile().name == R6I_8XLARGE.name
        # explicit arg beats env
        assert resolve_profile("r6i.32xlarge").name == "r6i.32xlarge"
        # per-model fallback when nothing is set
        monkeypatch.delenv(ENV_PROFILE)
        assert resolve_profile(model_name="gpt2").name == "r6i.32xlarge"
        assert resolve_profile().name == "r6i.8xlarge"

    def test_resolve_unknown_raises(self, monkeypatch):
        monkeypatch.delenv(ENV_PROFILE, raising=False)
        with pytest.raises(ValueError):
            resolve_profile("no-such-profile-or-file")


class TestCalibrateCommand:
    def test_cli_writes_profile_and_improves(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import log as obs_log

        out = str(tmp_path / "hw.json")
        rc = main(["calibrate", "--ks", "8", "9", "--out", out,
                   "--probe", "mnist", "--strict"])
        obs_log.set_level(obs_log.INFO)
        assert rc == 0
        assert os.path.exists(out)
        loaded = load_profile(out)
        assert loaded.name == "local-calibrated"
        text = capsys.readouterr().out
        assert "improved" in text
