"""Tests for the Eq. 1-2 cost model."""

import pytest

from repro.compiler import build_physical_layout
from repro.layers.base import LayoutChoices
from repro.model import get_model
from repro.optimizer import (
    R6I_8XLARGE,
    estimate_cost,
    estimate_proof_size,
    estimate_verification_time,
    extended_k,
    num_ffts,
    num_msms,
)


@pytest.fixture(scope="module")
def layout():
    return build_physical_layout(get_model("mnist", "paper"),
                                 LayoutChoices(), 12, scale_bits=8)


class TestFFTCounts:
    def test_eq2_formula(self, layout):
        d = layout.d_max
        expected = (layout.num_instance + layout.num_advice
                    + 3 * layout.num_lookups
                    + (layout.num_permutation_columns + d - 3) / (d - 2))
        assert num_ffts(layout) == expected

    def test_extended_k(self, layout):
        # d_max = 4 (lookups present) -> k' = k + 2
        assert layout.d_max == 4
        assert extended_k(layout) == layout.k + 2

    def test_msm_counts_backend_difference(self, layout):
        assert num_msms(layout, "ipa") == num_msms(layout, "kzg") + 1


class TestCostEstimates:
    def test_breakdown_positive(self, layout):
        cost = estimate_cost(layout, R6I_8XLARGE, "kzg")
        assert cost.fft > 0 and cost.msm > 0 and cost.lookup > 0
        assert cost.total == cost.fft + cost.msm + cost.lookup + cost.residual

    def test_cost_grows_with_rows(self):
        spec = get_model("mnist", "paper")
        small = build_physical_layout(spec, LayoutChoices(), 40, scale_bits=8)
        big = build_physical_layout(spec, LayoutChoices(), 8, scale_bits=8)
        assert big.k >= small.k
        if big.k > small.k:
            assert (estimate_cost(big, R6I_8XLARGE).total
                    > estimate_cost(small, R6I_8XLARGE).total * 0.5)

    def test_power_of_two_cliff(self):
        """One extra row past a power of two nearly doubles cost (§9.3)."""
        spec = get_model("mnist", "paper")
        layout = build_physical_layout(spec, LayoutChoices(), 12, scale_bits=8)
        bumped = build_physical_layout(spec, LayoutChoices(), 12, scale_bits=8)
        bumped.k = layout.k + 1
        ratio = (estimate_cost(bumped, R6I_8XLARGE).total
                 / estimate_cost(layout, R6I_8XLARGE).total)
        assert 1.7 < ratio < 2.6


class TestVerificationModel:
    def test_kzg_much_cheaper_than_ipa_at_scale(self, layout):
        kzg = estimate_verification_time(layout, R6I_8XLARGE, "kzg")
        ipa = estimate_verification_time(layout, R6I_8XLARGE, "ipa")
        assert ipa > 5 * kzg

    def test_verification_orders_below_proving(self, layout):
        prove = estimate_cost(layout, R6I_8XLARGE, "kzg").total
        verify = estimate_verification_time(layout, R6I_8XLARGE, "kzg")
        assert verify < prove / 100


class TestProofSizeModel:
    def test_ipa_larger_than_kzg(self, layout):
        assert (estimate_proof_size(layout, "ipa")
                > estimate_proof_size(layout, "kzg"))

    def test_fewer_columns_smaller_proof(self):
        spec = get_model("mnist", "paper")
        narrow = build_physical_layout(spec, LayoutChoices(), 10, scale_bits=8)
        wide = build_physical_layout(spec, LayoutChoices(), 30, scale_bits=8)
        assert (estimate_proof_size(narrow, "kzg")
                < estimate_proof_size(wide, "kzg"))

    def test_magnitude_matches_paper_ballpark(self, layout):
        # Table 6 proof sizes are 6-30 KB
        size = estimate_proof_size(layout, "kzg")
        assert 2_000 < size < 60_000
