"""Edge cases of the cost model and proof-size accounting."""

import pytest

from repro.commit import scheme_by_name
from repro.compiler import build_physical_layout
from repro.field import GOLDILOCKS
from repro.layers.base import LayoutChoices
from repro.model import GraphBuilder, get_model
from repro.optimizer import (
    R6I_8XLARGE,
    estimate_cost,
    estimate_proof_size,
    num_ffts,
)


def lookup_free_model():
    """A model whose default layout needs no lookup tables at all."""
    gb = GraphBuilder("lookup-free", materialize=False)
    x = gb.input("x", (4, 4))
    y = gb.add_layer("reduce_sum", [x], {"axis": 1})
    return gb.build([y])


class TestDegreeThree:
    def test_lookup_free_circuit_has_degree_three(self):
        layout = build_physical_layout(lookup_free_model(), LayoutChoices(),
                                       8, scale_bits=5)
        assert layout.num_lookups == 0
        assert layout.d_max == 3

    def test_lookup_free_has_fewer_quotient_ffts(self):
        free = build_physical_layout(lookup_free_model(), LayoutChoices(),
                                     8, scale_bits=5)
        with_lookups = build_physical_layout(get_model("mnist", "paper"),
                                             LayoutChoices(), 8,
                                             scale_bits=5)
        # 3 FFTs per lookup argument dominate the delta (Eq. 2)
        assert num_ffts(free) < num_ffts(with_lookups)


class TestProofSizeInvariants:
    def test_modeled_size_matches_estimator_magnitude(self):
        """Real proof accounting and analytic estimator agree within 2x."""
        import numpy as np

        from repro.runtime import prove_model

        spec = get_model("mnist", "mini")
        rng = np.random.default_rng(0)
        inputs = {k: rng.uniform(-0.5, 0.5, s)
                  for k, s in spec.inputs.items()}
        result = prove_model(spec, inputs, num_cols=10, scale_bits=5)
        layout = build_physical_layout(spec, LayoutChoices(), 10,
                                       scale_bits=5)
        analytic = estimate_proof_size(layout, "kzg")
        assert analytic / 2 < result.modeled_proof_bytes < analytic * 2

    def test_cost_breakdown_sums(self):
        layout = build_physical_layout(get_model("dlrm", "paper"),
                                       LayoutChoices(), 16, scale_bits=10)
        cost = estimate_cost(layout, R6I_8XLARGE, "kzg")
        assert cost.total == pytest.approx(
            cost.fft + cost.msm + cost.lookup + cost.residual)

    def test_kzg_trusted_setup_bound_enforced_in_commit(self):
        scheme = scheme_by_name("kzg", GOLDILOCKS)
        with pytest.raises(ValueError, match="trusted setup"):
            scheme.commit([0] * ((1 << 28) + 1))
