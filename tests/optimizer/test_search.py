"""Tests for Algorithm 1 (optimize_layout) and the hardware profiles."""

import pytest

from repro.compiler import LayoutInfeasible
from repro.model import get_model
from repro.optimizer import (
    PROFILES,
    R6I_8XLARGE,
    R6I_32XLARGE,
    benchmark_operations,
    fixed_configuration_cost,
    optimize_layout,
    profile_for_model,
)


class TestHardwareProfiles:
    def test_profiles_registered(self):
        assert set(PROFILES) == {"r6i.8xlarge", "r6i.16xlarge", "r6i.32xlarge"}

    def test_more_cores_faster(self):
        assert R6I_32XLARGE.fft(20) < R6I_8XLARGE.fft(20)

    def test_interpolation_and_extrapolation(self):
        assert R6I_8XLARGE.fft(29) > R6I_8XLARGE.fft(28)
        assert R6I_8XLARGE.msm(9) < R6I_8XLARGE.msm(10)

    def test_paper_machine_assignment(self):
        assert profile_for_model("gpt2").name == "r6i.32xlarge"
        assert profile_for_model("mobilenet").name == "r6i.16xlarge"
        assert profile_for_model("mnist").name == "r6i.8xlarge"

    def test_memory_model(self):
        assert not R6I_8XLARGE.fits_memory(28, 100, 4)
        assert R6I_8XLARGE.fits_memory(16, 50, 4)

    def test_local_benchmark_measures(self):
        profile = benchmark_operations(ks=(8, 9))
        assert profile.fft(9) > profile.fft(8) > 0
        assert profile.t_field > 0
        # cached on second call
        assert benchmark_operations(ks=(8, 9)) is profile


class TestOptimizeLayout:
    def test_finds_a_layout(self):
        res = optimize_layout(get_model("mnist", "paper"), R6I_8XLARGE,
                              scale_bits=10)
        assert res.best.cost.total > 0
        assert res.layout.num_cols >= 6
        assert len(res.candidates) > 50

    def test_beats_fixed_configuration(self):
        spec = get_model("mnist", "paper")
        res = optimize_layout(spec, R6I_8XLARGE, scale_bits=10)
        fixed = fixed_configuration_cost(spec, R6I_8XLARGE, num_cols=40,
                                         scale_bits=10)
        assert res.proving_time <= fixed.cost.total

    def test_size_objective_minimizes_columns(self):
        spec = get_model("mnist", "paper")
        time_opt = optimize_layout(spec, R6I_8XLARGE, scale_bits=10,
                                   objective="time")
        size_opt = optimize_layout(spec, R6I_8XLARGE, scale_bits=10,
                                   objective="size")
        assert size_opt.layout.num_cols <= time_opt.layout.num_cols
        assert size_opt.proof_size <= time_opt.proof_size

    def test_bad_objective(self):
        with pytest.raises(ValueError):
            optimize_layout(get_model("mnist", "paper"), R6I_8XLARGE,
                            objective="vibes")

    def test_pruning_reduces_work_same_plan(self):
        spec = get_model("mnist", "paper")
        pruned = optimize_layout(spec, R6I_8XLARGE, scale_bits=10, prune=True)
        full = optimize_layout(spec, R6I_8XLARGE, scale_bits=10, prune=False)
        assert len(full.candidates) > len(pruned.candidates)
        assert full.layout.num_cols == pruned.layout.num_cols
        assert full.layout.k == pruned.layout.k
        assert full.best.layout.plan.is_uniform

    def test_restricted_gadgets_slower(self):
        spec = get_model("dlrm", "paper")
        best = optimize_layout(spec, R6I_8XLARGE, scale_bits=10)
        restricted = optimize_layout(spec, R6I_8XLARGE, scale_bits=10,
                                     restrict_gadgets=True)
        assert restricted.proving_time > best.proving_time

    def test_infeasible_when_memory_too_small(self):
        from repro.optimizer.hardware import HardwareProfile

        tiny = HardwareProfile(
            name="tiny", cores=1, ram_gb=0,
            t_fft={k: 1.0 for k in range(10, 31)},
            t_msm={k: 1.0 for k in range(10, 29)},
            t_lookup={k: 1.0 for k in range(10, 29)},
            t_field=1e-9,
        )
        with pytest.raises(LayoutInfeasible):
            optimize_layout(get_model("mnist", "paper"), tiny, scale_bits=10)

    def test_freivalds_helps_gpt2(self):
        spec = get_model("gpt2", "paper")
        with_f = optimize_layout(spec, R6I_32XLARGE, scale_bits=10)
        without = optimize_layout(spec, R6I_32XLARGE, scale_bits=10,
                                  include_freivalds=False)
        assert with_f.proving_time < without.proving_time
