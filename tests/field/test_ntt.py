"""Tests for the NTT and its coset variants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import GOLDILOCKS
from repro.field.ntt import coset_intt, coset_ntt, intt, ntt
from repro.field.poly import poly_eval

F = GOLDILOCKS


def test_ntt_length_must_be_power_of_two():
    with pytest.raises(ValueError):
        ntt(F, [1, 2, 3], F.root_of_unity(2))


def test_ntt_singleton():
    assert ntt(F, [7], 1) == [7]


def test_ntt_matches_naive_evaluation():
    k = 3
    n = 1 << k
    root = F.root_of_unity(k)
    coeffs = [random.randrange(F.p) for _ in range(n)]
    evals = ntt(F, coeffs, root)
    for i in range(n):
        x = F.pow(root, i)
        assert evals[i] == poly_eval(F, coeffs, x)


def test_intt_inverts_ntt():
    k = 6
    n = 1 << k
    root = F.root_of_unity(k)
    coeffs = [random.randrange(F.p) for _ in range(n)]
    assert intt(F, ntt(F, coeffs, root), root) == coeffs


def test_coset_ntt_matches_naive():
    k = 3
    n = 1 << k
    root = F.root_of_unity(k)
    shift = F.generator
    coeffs = [random.randrange(F.p) for _ in range(n)]
    evals = coset_ntt(F, coeffs, root, shift)
    for i in range(n):
        x = F.mul(shift, F.pow(root, i))
        assert evals[i] == poly_eval(F, coeffs, x)


def test_coset_intt_inverts_coset_ntt():
    k = 5
    n = 1 << k
    root = F.root_of_unity(k)
    shift = F.generator
    coeffs = [random.randrange(F.p) for _ in range(n)]
    assert coset_intt(F, coset_ntt(F, coeffs, root, shift), root, shift) == coeffs


@given(
    k=st.integers(min_value=0, max_value=7),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25)
def test_ntt_roundtrip_property(k, seed):
    rng = random.Random(seed)
    n = 1 << k
    root = F.root_of_unity(k) if k else 1
    coeffs = [rng.randrange(F.p) for _ in range(n)]
    assert intt(F, ntt(F, coeffs, root), root) == coeffs


def test_ntt_linearity():
    k = 4
    n = 1 << k
    root = F.root_of_unity(k)
    a = [random.randrange(F.p) for _ in range(n)]
    b = [random.randrange(F.p) for _ in range(n)]
    fa, fb = ntt(F, a, root), ntt(F, b, root)
    summed = ntt(F, [F.add(x, y) for x, y in zip(a, b)], root)
    assert summed == [F.add(x, y) for x, y in zip(fa, fb)]


def test_bn254_ntt_roundtrip():
    from repro.field import BN254_FR

    k = 5
    n = 1 << k
    root = BN254_FR.root_of_unity(k)
    coeffs = [random.randrange(BN254_FR.p) for _ in range(n)]
    assert intt(BN254_FR, ntt(BN254_FR, coeffs, root), root) == coeffs


def test_bn254_coset_roundtrip():
    from repro.field import BN254_FR

    k = 4
    root = BN254_FR.root_of_unity(k)
    shift = BN254_FR.generator
    coeffs = [random.randrange(BN254_FR.p) for _ in range(1 << k)]
    assert coset_intt(BN254_FR, coset_ntt(BN254_FR, coeffs, root, shift),
                      root, shift) == coeffs
