"""Unit and property tests for prime-field arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import BN254_FR, GOLDILOCKS, PrimeField, field_by_name

FIELDS = [GOLDILOCKS, BN254_FR]


def elements(field):
    return st.integers(min_value=0, max_value=field.p - 1)


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
class TestBasicOps:
    def test_add_wraps(self, field):
        assert field.add(field.p - 1, 1) == 0

    def test_sub_wraps(self, field):
        assert field.sub(0, 1) == field.p - 1

    def test_neg_zero(self, field):
        assert field.neg(0) == 0

    def test_neg_roundtrip(self, field):
        assert field.add(5, field.neg(5)) == 0

    def test_mul_identity(self, field):
        assert field.mul(1, 12345) == 12345

    def test_inv(self, field):
        for v in (1, 2, 7, field.p - 1):
            assert field.mul(v, field.inv(v)) == 1

    def test_inv_zero_raises(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_div(self, field):
        assert field.div(field.mul(3, 17), 17) == 3

    def test_reduce(self, field):
        assert field.reduce(field.p + 5) == 5
        assert field.reduce(-1) == field.p - 1


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
class TestRootsOfUnity:
    def test_root_has_exact_order(self, field):
        for k in (1, 4, 10):
            root = field.root_of_unity(k)
            assert field.pow(root, 1 << k) == 1
            assert field.pow(root, 1 << (k - 1)) == field.p - 1

    def test_excessive_two_adicity_raises(self, field):
        with pytest.raises(ValueError):
            field.root_of_unity(field.two_adicity + 1)

    def test_root_cache_consistent(self, field):
        assert field.root_of_unity(8) == field.root_of_unity(8)


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
class TestSignedEncoding:
    def test_roundtrip_negative(self, field):
        assert field.decode_signed(field.encode_signed(-42)) == -42

    def test_roundtrip_positive(self, field):
        assert field.decode_signed(field.encode_signed(42)) == 42

    def test_zero(self, field):
        assert field.encode_signed(0) == 0
        assert field.decode_signed(0) == 0


class TestBatchInv:
    def test_empty(self):
        assert GOLDILOCKS.batch_inv([]) == []

    def test_matches_single_inv(self):
        values = [1, 2, 3, 999, GOLDILOCKS.p - 2]
        batch = GOLDILOCKS.batch_inv(values)
        assert batch == [GOLDILOCKS.inv(v) for v in values]

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GOLDILOCKS.batch_inv([1, 0, 2])


class TestFieldRegistry:
    def test_lookup(self):
        assert field_by_name("goldilocks") is GOLDILOCKS
        assert field_by_name("bn254-fr") is BN254_FR

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            field_by_name("nope")

    def test_bad_two_adicity_rejected(self):
        with pytest.raises(ValueError):
            PrimeField(name="bad", p=7, generator=3, two_adicity=5)


@given(a=elements(GOLDILOCKS), b=elements(GOLDILOCKS), c=elements(GOLDILOCKS))
@settings(max_examples=50)
def test_field_axioms(a, b, c):
    f = GOLDILOCKS
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.sub(f.add(a, b), b) == a


@given(a=elements(GOLDILOCKS))
@settings(max_examples=50)
def test_inverse_property(a):
    f = GOLDILOCKS
    if a != 0:
        assert f.mul(a, f.inv(a)) == 1
