"""Property tests for the numpy Goldilocks kernels against PrimeField."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import GOLDILOCKS
from repro.field import gl64
from repro.field.ntt import ntt as py_ntt
from repro.field.ntt import stage_twiddles

F = GOLDILOCKS
P = F.p

# adversarial residues: zero, one, 32-bit limb boundaries, top of the field
EDGES = [0, 1, 2**32 - 1, 2**32, 2**32 + 1, P - 2, P - 1]

elements = st.integers(min_value=0, max_value=P - 1)
vectors = st.lists(elements, min_size=1, max_size=32)


def test_is_goldilocks():
    assert gl64.is_goldilocks(P)
    assert not gl64.is_goldilocks(2**61 - 1)


def test_roundtrip_edges():
    vec = gl64.from_ints(EDGES)
    assert gl64.to_ints(vec) == EDGES
    assert all(isinstance(v, int) for v in gl64.to_ints(vec))


@given(vectors, vectors)
@settings(max_examples=100, deadline=None)
def test_elementwise_ops_match_prime_field(xs, ys):
    n = min(len(xs), len(ys))
    xs, ys = xs[:n], ys[:n]
    a, b = gl64.from_ints(xs), gl64.from_ints(ys)
    assert gl64.to_ints(gl64.add(a, b)) == [F.add(x, y) for x, y in zip(xs, ys)]
    assert gl64.to_ints(gl64.sub(a, b)) == [F.sub(x, y) for x, y in zip(xs, ys)]
    assert gl64.to_ints(gl64.mul(a, b)) == [F.mul(x, y) for x, y in zip(xs, ys)]
    assert gl64.to_ints(gl64.neg(a)) == [F.neg(x) for x in xs]


def test_mul_edge_cross_product():
    a = gl64.from_ints([x for x in EDGES for _ in EDGES])
    b = gl64.from_ints(EDGES * len(EDGES))
    expect = [F.mul(x, y) for x in EDGES for y in EDGES]
    assert gl64.to_ints(gl64.mul(a, b)) == expect


@given(vectors, elements, vectors)
@settings(max_examples=50, deadline=None)
def test_fold_matches_scalar_recurrence(accs, y, vals):
    n = min(len(accs), len(vals))
    accs, vals = accs[:n], vals[:n]
    got = gl64.to_ints(gl64.fold(gl64.from_ints(accs), np.uint64(y), gl64.from_ints(vals)))
    assert got == [F.add(F.mul(a, y), v) for a, v in zip(accs, vals)]


@given(vectors)
@settings(max_examples=50, deadline=None)
def test_serialize_matches_int_to_bytes(xs):
    vec = gl64.from_ints(xs)
    expect = b"".join(x.to_bytes(32, "little") for x in xs)
    assert gl64.serialize_scalars(vec) == expect


@pytest.mark.parametrize("k", [0, 1, 2, 3, 5, 8])
def test_ntt_matches_pure_python(k):
    n = 1 << k
    root = F.root_of_unity(k)
    rng = np.random.default_rng(k)
    values = [int(v) % P for v in rng.integers(0, 2**63, size=n)]
    stages = [gl64.from_ints(tw) for tw in stage_twiddles(P, root, n)]
    rev = gl64.bit_reverse_indices(n)
    got = gl64.to_ints(gl64.ntt(gl64.from_ints(values), stages, rev))
    assert got == py_ntt(F, values, root)


def test_bit_reverse_indices():
    assert gl64.bit_reverse_indices(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]
    assert gl64.bit_reverse_indices(1).tolist() == [0]
