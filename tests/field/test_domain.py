"""Tests for evaluation domains."""

import random

import pytest

from repro.field import GOLDILOCKS, EvaluationDomain
from repro.field.poly import poly_eval

F = GOLDILOCKS


def test_sizes():
    d = EvaluationDomain(F, 4, max_degree=3)
    assert d.n == 16
    assert d.extended_n >= d.n * 2


def test_bad_params():
    with pytest.raises(ValueError):
        EvaluationDomain(F, -1)
    with pytest.raises(ValueError):
        EvaluationDomain(F, 3, max_degree=1)


def test_lagrange_coeff_roundtrip():
    d = EvaluationDomain(F, 5)
    evals = [random.randrange(F.p) for _ in range(d.n)]
    assert d.coeff_to_lagrange(d.lagrange_to_coeff(evals)) == evals


def test_coeff_to_extended_consistent_with_eval():
    d = EvaluationDomain(F, 3, max_degree=3)
    coeffs = [random.randrange(F.p) for _ in range(d.n)]
    ext = d.coeff_to_extended(coeffs)
    x0 = d.coset_shift
    assert ext[0] == poly_eval(F, coeffs, x0)
    x1 = F.mul(d.coset_shift, d.extended_omega)
    assert ext[1] == poly_eval(F, coeffs, x1)


def test_extended_roundtrip():
    d = EvaluationDomain(F, 4, max_degree=5)
    coeffs = [random.randrange(F.p) for _ in range(d.n)]
    padded = coeffs + [0] * (d.extended_n - d.n)
    assert d.extended_to_coeff(d.coeff_to_extended(coeffs)) == padded


def test_vanishing_zero_on_domain_nonzero_on_coset():
    d = EvaluationDomain(F, 3)
    for i in range(d.n):
        assert d.vanishing_eval(F.pow(d.omega, i)) == 0
    for v in d.vanishing_on_extended():
        assert v != 0


def test_vanishing_on_extended_matches_pointwise():
    d = EvaluationDomain(F, 3, max_degree=4)
    vals = d.vanishing_on_extended()
    for i in (0, 1, 7):
        x = F.mul(d.coset_shift, F.pow(d.extended_omega, i))
        assert vals[i] == d.vanishing_eval(x)


def test_rotate():
    d = EvaluationDomain(F, 4)
    x = random.randrange(1, F.p)
    assert d.rotate(x, 1) == F.mul(x, d.omega)
    assert d.rotate(d.rotate(x, 1), -1) == x
    assert d.rotate(x, 0) == x
