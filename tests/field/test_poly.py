"""Tests for dense polynomial arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import GOLDILOCKS
from repro.field.poly import (
    divide_by_vanishing,
    poly_add,
    poly_degree,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
    poly_sub,
    poly_trim,
)

F = GOLDILOCKS


def rand_poly(deg, rng=random):
    return [rng.randrange(F.p) for _ in range(deg + 1)]


def test_trim():
    assert poly_trim([1, 2, 0, 0]) == [1, 2]
    assert poly_trim([0, 0]) == []


def test_degree():
    assert poly_degree([]) == -1
    assert poly_degree([5]) == 0
    assert poly_degree([0, 0, 3, 0]) == 2


def test_add_sub_roundtrip():
    a, b = rand_poly(5), rand_poly(3)
    assert poly_trim(poly_sub(F, poly_add(F, a, b), b)) == poly_trim(a)


def test_scale():
    a = [1, 2, 3]
    assert poly_scale(F, a, 2) == [2, 4, 6]


def test_mul_small_matches_eval():
    a, b = rand_poly(4), rand_poly(6)
    prod = poly_mul(F, a, b)
    for _ in range(5):
        x = random.randrange(F.p)
        assert poly_eval(F, prod, x) == F.mul(poly_eval(F, a, x), poly_eval(F, b, x))


def test_mul_large_uses_ntt_and_is_correct():
    a, b = rand_poly(40), rand_poly(50)
    prod = poly_mul(F, a, b)
    assert len(poly_trim(prod)) == 91
    x = random.randrange(F.p)
    assert poly_eval(F, prod, x) == F.mul(poly_eval(F, a, x), poly_eval(F, b, x))


def test_mul_by_zero():
    assert poly_mul(F, [1, 2], []) == []


def test_divmod_reconstructs():
    a, b = rand_poly(9), rand_poly(3)
    q, r = poly_divmod(F, a, b)
    recon = poly_add(F, poly_mul(F, q, b), r)
    assert poly_trim(recon) == poly_trim(a)
    assert poly_degree(r) < poly_degree(b)


def test_divmod_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        poly_divmod(F, [1, 2], [])


def test_divide_by_vanishing_exact():
    n = 8
    q = rand_poly(5)
    # a = q * (X^n - 1)
    a = poly_sub(F, [0] * n + q, q)
    recovered = divide_by_vanishing(F, a, n)
    assert poly_trim(recovered) == poly_trim(q)


def test_divide_by_vanishing_rejects_nondivisible():
    with pytest.raises(ValueError):
        divide_by_vanishing(F, [1, 2, 3], 8)


@given(
    deg_a=st.integers(min_value=0, max_value=12),
    deg_b=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25)
def test_mul_commutative_property(deg_a, deg_b, seed):
    rng = random.Random(seed)
    a = rand_poly(deg_a, rng)
    b = rand_poly(deg_b, rng)
    assert poly_mul(F, a, b) == poly_mul(F, b, a)
