"""Six-step (Bailey) NTT equivalence: byte-for-byte against radix-2.

The blocked transform is only a legal prover substitution if it is
*exact* — same canonical Goldilocks values at every index, no
reassociation drift.  These tests sweep k in {4..14} with seeded random
inputs and random coset shifts on both implementations (pure python and
the numpy gl64 kernels), and check the ``ZKML_SIXSTEP_MIN_K`` dispatch
knob routes ``ntt()`` through the blocked path.
"""

import random

import numpy as np
import pytest

from repro.field import GOLDILOCKS, gl64
from repro.field.ntt import (
    coset_ntt,
    ntt,
    power_table,
    sixstep_ntt,
    stage_twiddles,
)

F = GOLDILOCKS

KS = range(4, 15)


def _random_vector(k: int, seed: int):
    rng = random.Random(seed)
    return [rng.randrange(F.p) for _ in range(1 << k)]


def _random_shift(k: int, seed: int) -> int:
    return random.Random(10_000 + seed).randrange(1, F.p)


@pytest.mark.parametrize("k", KS)
def test_python_sixstep_matches_radix2(k):
    values = _random_vector(k, seed=k)
    root = F.root_of_unity(k)
    assert sixstep_ntt(F, values, root) == ntt(F, values, root)


@pytest.mark.parametrize("k", KS)
def test_python_sixstep_coset_matches_coset_ntt(k):
    values = _random_vector(k, seed=100 + k)
    root = F.root_of_unity(k)
    shift = _random_shift(k, seed=k)
    assert (sixstep_ntt(F, values, root, shift)
            == coset_ntt(F, values, root, shift))


@pytest.mark.parametrize("k", KS)
def test_numpy_sixstep_matches_radix2(k):
    n = 1 << k
    root = F.root_of_unity(k)
    values = gl64.from_ints(_random_vector(k, seed=200 + k))
    stages = [np.array(tw, dtype=np.uint64)
              for tw in stage_twiddles(F.p, root, n)]
    rev = gl64.bit_reverse_indices(n)
    reference = gl64.ntt(values, stages, rev)
    plan = gl64.build_sixstep_plan(root, n)
    np.testing.assert_array_equal(gl64.sixstep_ntt(values, plan), reference)


@pytest.mark.parametrize("k", KS)
def test_numpy_sixstep_fused_coset_matches_scaled_radix2(k):
    n = 1 << k
    root = F.root_of_unity(k)
    shift = _random_shift(k, seed=300 + k)
    values = gl64.from_ints(_random_vector(k, seed=300 + k))
    # reference: explicit full-width coset scale, then plain radix-2
    scale = np.array(power_table(F.p, shift, n), dtype=np.uint64)
    stages = [np.array(tw, dtype=np.uint64)
              for tw in stage_twiddles(F.p, root, n)]
    rev = gl64.bit_reverse_indices(n)
    reference = gl64.ntt(gl64.mul(values, scale), stages, rev)
    plan = gl64.build_sixstep_plan(root, n, shift=shift)
    np.testing.assert_array_equal(gl64.sixstep_ntt(values, plan), reference)


def test_numpy_plan_rejects_tiny_or_non_power_sizes():
    root = F.root_of_unity(4)
    with pytest.raises(ValueError):
        gl64.build_sixstep_plan(root, 3)
    with pytest.raises(ValueError):
        gl64.build_sixstep_plan(root, 2)


def test_ntt_dispatches_to_sixstep_at_threshold(monkeypatch):
    # Lowering the knob must not change values — only the code path.
    k = 6
    values = _random_vector(k, seed=42)
    root = F.root_of_unity(k)
    expected = ntt(F, values, root)
    monkeypatch.setenv("ZKML_SIXSTEP_MIN_K", "4")
    assert ntt(F, values, root) == expected
