"""Tests for the numpy trainer and synthetic datasets."""

import numpy as np
import pytest

from repro.ml import MLPClassifier, synthetic_cifar, synthetic_digits
from repro.model import fixed_outputs_decoded, run_float


class TestDatasets:
    def test_shapes(self):
        x, y = synthetic_digits(50)
        assert x.shape == (50, 8, 8, 1)
        assert y.shape == (50,)
        assert set(np.unique(y)) <= set(range(10))

    def test_deterministic(self):
        x1, y1 = synthetic_digits(20, seed=5)
        x2, y2 = synthetic_digits(20, seed=5)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_cifar_variant(self):
        x, y = synthetic_cifar(30)
        assert x.shape == (30, 10, 10, 3)

    def test_classes_distinguishable(self):
        x, y = synthetic_digits(200, seed=2)
        # nearest-template classification should beat chance easily
        means = np.stack([x[y == c].mean(axis=0) for c in range(10)])
        preds = np.array([
            np.argmin(((means - img) ** 2).sum(axis=(1, 2, 3))) for img in x
        ])
        assert (preds == y).mean() > 0.5


class TestTraining:
    def test_mlp_learns(self):
        x, y = synthetic_digits(400, seed=1)
        clf = MLPClassifier([64, 48, 10]).fit(x, y, epochs=40)
        assert clf.accuracy(x, y) > 0.9

    def test_generalizes(self):
        x, y = synthetic_digits(400, seed=1)
        xt, yt = synthetic_digits(100, seed=99)
        clf = MLPClassifier([64, 48, 10]).fit(x, y, epochs=40)
        assert clf.accuracy(xt, yt) > 0.8

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier([10])


class TestExport:
    def test_exported_spec_matches_logits(self):
        x, y = synthetic_digits(100, seed=3)
        clf = MLPClassifier([64, 16, 10]).fit(x, y, epochs=5)
        spec = clf.to_model_spec("digits", (8, 8, 1))
        sample = x[0]
        expected = clf.logits(sample[None])[0]
        got = run_float(spec, {"image": sample})[spec.outputs[0]][0]
        assert np.allclose(got, expected, atol=1e-9)

    def test_fixed_point_accuracy_close(self):
        # the Table 8 experiment in miniature
        x, y = synthetic_digits(150, seed=4)
        clf = MLPClassifier([64, 24, 10]).fit(x, y, epochs=15)
        spec = clf.to_model_spec("digits", (8, 8, 1))
        float_acc = clf.accuracy(x, y)
        hits = 0
        for img, label in zip(x[:40], y[:40]):
            out = fixed_outputs_decoded(spec, {"image": img}, 12)
            pred = np.argmax(out[spec.outputs[0]])
            hits += int(pred == label)
        fixed_acc = hits / 40
        assert abs(fixed_acc - float_acc) < 0.15
