"""Tests for the end-to-end audit flow (paper Figure 2)."""

import numpy as np
import pytest

from repro.model import GraphBuilder, get_model
from repro.runtime import AuditLog, ModelCommitment, audit

rng = np.random.default_rng(51)


def scoring_model(seed=1):
    gb = GraphBuilder("audited", materialize=True, seed=seed)
    x = gb.input("features", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 1)
    return gb.build([out])


@pytest.fixture(scope="module")
def served_log():
    spec = scoring_model()
    log = AuditLog(spec, scheme_name="kzg", num_cols=10, scale_bits=5)
    for _ in range(3):
        log.serve({"features": rng.uniform(-1, 1, (1, 4))})
    return spec, log


class TestModelCommitment:
    def test_deterministic(self):
        spec = scoring_model()
        assert (ModelCommitment.commit(spec).digest
                == ModelCommitment.commit(scoring_model()).digest)

    def test_binds_weights(self):
        a = ModelCommitment.commit(scoring_model(seed=1))
        b = ModelCommitment.commit(scoring_model(seed=2))
        assert a.digest != b.digest

    def test_shape_only_rejected(self):
        with pytest.raises(ValueError):
            ModelCommitment.commit(get_model("gpt2", "paper"))

    def test_hex(self):
        assert len(ModelCommitment.commit(scoring_model()).hex()) == 64


class TestCleanAudit:
    def test_no_findings(self, served_log):
        spec, log = served_log
        findings = audit(log, ModelCommitment.commit(spec))
        assert findings == []

    def test_entries_chained(self, served_log):
        _, log = served_log
        digests = [e.chain_digest for e in log.entries]
        assert len(set(digests)) == len(digests)


class TestDishonestProvider:
    def test_wrong_model_commitment_flagged(self, served_log):
        _, log = served_log
        other = ModelCommitment.commit(scoring_model(seed=9))
        findings = audit(log, other)
        assert any(f.kind == "model" for f in findings)

    def test_forged_output_flagged(self, served_log):
        spec, log = served_log
        victim = log.entries[1].result
        original = victim.instance
        victim.instance = [list(col) for col in original]
        victim.instance[0][0] += 1
        findings = audit(log, ModelCommitment.commit(spec))
        victim.instance = original
        assert any(f.kind == "proof" and f.index == 1 for f in findings)

    def test_dropped_entry_breaks_chain(self, served_log):
        spec, log = served_log
        removed = log.entries.pop(1)
        try:
            findings = audit(log, ModelCommitment.commit(spec))
        finally:
            log.entries.insert(1, removed)
        assert any(f.kind == "chain" for f in findings)

    def test_swapped_circuit_flagged(self):
        spec = scoring_model()
        log = AuditLog(spec, num_cols=10, scale_bits=5)
        log.serve({"features": rng.uniform(-1, 1, (1, 4))})
        other_log = AuditLog(scoring_model(seed=9), num_cols=10,
                             scale_bits=5)
        foreign = other_log.serve({"features": rng.uniform(-1, 1, (1, 4))})
        log.entries.append(foreign)
        findings = audit(log, ModelCommitment.commit(spec))
        assert any("different circuits" in f.detail for f in findings)

    def test_finding_str(self, served_log):
        spec, log = served_log
        findings = audit(log, ModelCommitment.commit(scoring_model(seed=9)))
        assert "model" in str(findings[0])
