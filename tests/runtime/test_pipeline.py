"""Tests for the end-to-end prove/verify pipeline."""

import numpy as np
import pytest

from repro.model import get_model
from repro.resilience.errors import VerificationFailure
from repro.runtime import prove_model, verify_model_proof

rng = np.random.default_rng(41)


def mini_inputs(spec):
    return {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}


@pytest.fixture(scope="module")
def mnist_result():
    spec = get_model("mnist", "mini")
    return spec, prove_model(spec, mini_inputs(spec), scheme_name="kzg",
                             num_cols=10, scale_bits=5)


class TestProveModel:
    def test_proof_verifies(self, mnist_result):
        _, result = mnist_result
        assert result.verification_seconds() > 0  # raises if invalid

    def test_outputs_are_public(self, mnist_result):
        spec, result = mnist_result
        flat_outputs = [
            int(v) for name in spec.outputs
            for v in result.outputs[name].reshape(-1)
        ]
        exposed = result.instance[0][: len(flat_outputs)]
        field_p = result.vk.field.p
        decoded = [v - field_p if v > field_p // 2 else v for v in exposed]
        assert decoded == flat_outputs

    def test_wrong_instance_rejected(self, mnist_result):
        _, result = mnist_result
        instance = [list(col) for col in result.instance]
        instance[0][0] += 1
        with pytest.raises(VerificationFailure):
            verify_model_proof(result.vk, result.proof, instance,
                               result.scheme_name)
        assert not verify_model_proof(result.vk, result.proof, instance,
                                      result.scheme_name, strict=False)

    def test_times_recorded(self, mnist_result):
        _, result = mnist_result
        assert result.proving_seconds > 0
        assert result.keygen_seconds > 0
        assert result.modeled_proof_bytes > 1000

    def test_ipa_backend_roundtrip(self):
        spec = get_model("dlrm", "mini")
        result = prove_model(spec, mini_inputs(spec), scheme_name="ipa",
                             num_cols=10, scale_bits=5)
        assert verify_model_proof(result.vk, result.proof, result.instance,
                                  "ipa")
