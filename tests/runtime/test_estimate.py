"""Tests for the full-scale end-to-end estimator."""

import pytest

from repro.optimizer import R6I_8XLARGE
from repro.runtime import estimate_model
from repro.runtime.estimate import EndToEndEstimate


class TestEstimateModel:
    def test_defaults_use_paper_hardware(self):
        est = estimate_model("mnist", "kzg", scale_bits=10)
        assert est.hardware == "r6i.8xlarge"
        assert est.model == "mnist"
        assert est.scheme_name == "kzg"

    def test_custom_hardware(self):
        est = estimate_model("gpt2", "kzg", scale_bits=10,
                             hardware=R6I_8XLARGE, include_freivalds=True)
        assert est.hardware == "r6i.8xlarge"

    def test_row_formats(self):
        est = estimate_model("dlrm", "kzg", scale_bits=10)
        row = est.row()
        assert "dlrm" in row and "bytes" in row

    def test_size_objective(self):
        t = estimate_model("dlrm", "kzg", scale_bits=10, objective="time")
        s = estimate_model("dlrm", "kzg", scale_bits=10, objective="size")
        assert s.proof_bytes <= t.proof_bytes

    def test_freivalds_flag_plumbs_through(self):
        with_f = estimate_model("gpt2", "kzg", scale_bits=10,
                                include_freivalds=True)
        without = estimate_model("gpt2", "kzg", scale_bits=10,
                                 include_freivalds=False)
        assert with_f.proving_seconds <= without.proving_seconds

    def test_optimizer_runtime_recorded(self):
        est = estimate_model("mnist", "kzg", scale_bits=10)
        assert est.optimizer_seconds > 0
        assert len(est.result.candidates) > 10
