"""Tests for prior-work baselines and the CLI."""

import pickle

import pytest

from repro.cli import main
from repro.model import get_model
from repro.runtime import (
    estimate_model,
    supports_cnn_only,
    vcnn_estimate,
    zkcnn_estimate,
)
from repro.runtime.baselines import UnsupportedModel


class TestBaselines:
    def test_vgg16_anchors(self):
        spec = get_model("vgg16", "paper")
        zk = zkcnn_estimate(spec)
        # anchored near the published 88.3 s / 59 ms / 341 KB
        assert 50 < zk.proving_seconds < 150
        assert 100_000 < zk.proof_bytes < 500_000
        v = vcnn_estimate(spec)
        assert 20 * 3600 < v.proving_seconds < 45 * 3600
        assert v.proof_bytes < 1000

    def test_cnn_support_detection(self):
        assert supports_cnn_only(get_model("vgg16", "paper"))
        assert supports_cnn_only(get_model("mnist", "paper"))
        assert not supports_cnn_only(get_model("gpt2", "paper"))
        assert not supports_cnn_only(get_model("twitter", "paper"))

    def test_transformers_rejected_by_prior_work(self):
        with pytest.raises(UnsupportedModel, match="only CNNs"):
            zkcnn_estimate(get_model("gpt2", "paper"))
        with pytest.raises(UnsupportedModel):
            vcnn_estimate(get_model("dlrm", "paper"))

    def test_resnet_cheaper_than_vgg_for_zkcnn(self):
        resnet = zkcnn_estimate(get_model("resnet18", "paper"))
        vgg = zkcnn_estimate(get_model("vgg16", "paper"))
        assert resnet.proving_seconds < vgg.proving_seconds


class TestEstimateModel:
    def test_mnist_magnitude(self):
        est = estimate_model("mnist", "kzg", scale_bits=12)
        # paper: 2.45 s; same order of magnitude
        assert 0.2 < est.proving_seconds < 30

    def test_gpt2_is_largest(self):
        gpt2 = estimate_model("gpt2", "kzg", scale_bits=12)
        mnist = estimate_model("mnist", "kzg", scale_bits=12)
        assert gpt2.proving_seconds > 20 * mnist.proving_seconds


class TestCLI:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt2" in out and "mnist" in out

    def test_optimize_command(self, capsys):
        assert main(["optimize", "--model", "dlrm"]) == 0
        out = capsys.readouterr().out
        assert "est. proving" in out

    def test_prove_and_verify_roundtrip(self, tmp_path, capsys):
        artifact = str(tmp_path / "proof.pkl")
        assert main(["prove", "--model", "mnist", "--out", artifact]) == 0
        assert main(["verify", "--artifact", artifact]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_verify_rejects_tampered_artifact(self, tmp_path, capsys):
        artifact = str(tmp_path / "proof.pkl")
        assert main(["prove", "--model", "mnist", "--out", artifact]) == 0
        with open(artifact, "rb") as f:
            data = pickle.load(f)
        # strip the canonical envelope so the deprecated loose path —
        # the one reading data["instance"] — is what gets tampered
        data.pop("envelope", None)
        data["instance"][0][0] += 1
        with open(artifact, "wb") as f:
            pickle.dump(data, f)
        assert main(["verify", "--artifact", artifact]) == 1


class TestInspectAndTranspileCLI:
    def test_inspect_paper_model(self, capsys):
        assert main(["inspect", "--model", "dlrm"]) == 0
        out = capsys.readouterr().out
        assert "weight columns" in out and "constraint deg" in out

    def test_inspect_mini_model(self, capsys):
        assert main(["inspect", "--model", "mnist", "--scale", "mini",
                     "--scale-bits", "5"]) == 0
        out = capsys.readouterr().out
        assert "gadget rows" in out

    def test_transpile_json_file(self, tmp_path, capsys):
        import json

        from repro.model import export

        flat = export(get_model("mnist", "mini"))
        path = tmp_path / "model.json"
        path.write_text(json.dumps(flat))
        assert main(["transpile", "--flat", str(path),
                     "--scale-bits", "5"]) == 0
        out = capsys.readouterr().out
        assert "transpiled 'mnist-mini'" in out
