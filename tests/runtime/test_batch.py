"""Tests for batch proving (one proof, many inferences)."""

import numpy as np
import pytest

from repro.model import GraphBuilder, run_fixed
from repro.runtime import prove_batch

rng = np.random.default_rng(61)


def small_model():
    gb = GraphBuilder("batched", materialize=True, seed=2)
    x = gb.input("x", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 2)
    return gb.build([out])


@pytest.fixture(scope="module")
def batch_result():
    spec = small_model()
    inputs = [{"x": rng.uniform(-1, 1, (1, 4))} for _ in range(3)]
    return spec, inputs, prove_batch(spec, inputs, num_cols=10, scale_bits=6)


class TestBatchProve:
    def test_single_proof_verifies(self, batch_result):
        _, _, result = batch_result
        assert result.batch_size == 3
        assert result.verify()

    def test_outputs_match_fixed_reference(self, batch_result):
        spec, inputs, result = batch_result
        for i, inp in enumerate(inputs):
            reference = run_fixed(spec, inp, 6)
            for name in spec.outputs:
                got = result.outputs[i][name]
                want = np.asarray(reference[name], dtype=object)
                assert (got == want).all()

    def test_each_inference_has_instance_column(self, batch_result):
        _, _, result = batch_result
        assert len(result.instance) == result.batch_size

    def test_tampering_any_inference_rejected(self, batch_result):
        _, _, result = batch_result
        for victim in range(result.batch_size):
            forged = [list(col) for col in result.instance]
            forged[victim][0] = (forged[victim][0] + 1) % result.vk.field.p
            from repro.runtime import verify_model_proof

            assert not verify_model_proof(result.vk, result.proof, forged,
                                          result.scheme_name, strict=False)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            prove_batch(small_model(), [], num_cols=10, scale_bits=6)

    def test_weights_shared_across_batch(self, batch_result):
        # the batch circuit holds the parameters once: its weight fixed
        # columns match a single-inference circuit's
        spec, inputs, result = batch_result
        from repro.runtime import prove_model

        single = prove_model(spec, inputs[0], num_cols=10, scale_bits=6)
        assert result.vk.cs.num_fixed == single.vk.cs.num_fixed
