"""Tests for batch proving (one proof, many inferences)."""

import numpy as np
import pytest

from repro.model import GraphBuilder, run_fixed
from repro.runtime import prove_batch

rng = np.random.default_rng(61)


def small_model():
    gb = GraphBuilder("batched", materialize=True, seed=2)
    x = gb.input("x", (1, 4))
    h = gb.fully_connected(x, 4, 3)
    h = gb.activation(h, "relu")
    out = gb.fully_connected(h, 3, 2)
    return gb.build([out])


@pytest.fixture(scope="module")
def batch_result():
    spec = small_model()
    inputs = [{"x": rng.uniform(-1, 1, (1, 4))} for _ in range(3)]
    return spec, inputs, prove_batch(spec, inputs, num_cols=10, scale_bits=6)


class TestBatchProve:
    def test_single_proof_verifies(self, batch_result):
        _, _, result = batch_result
        assert result.batch_size == 3
        assert result.verify()

    def test_outputs_match_fixed_reference(self, batch_result):
        spec, inputs, result = batch_result
        for i, inp in enumerate(inputs):
            reference = run_fixed(spec, inp, 6)
            for name in spec.outputs:
                got = result.outputs[i][name]
                want = np.asarray(reference[name], dtype=object)
                assert (got == want).all()

    def test_each_inference_has_instance_column(self, batch_result):
        _, _, result = batch_result
        assert len(result.instance) == result.batch_size

    def test_tampering_any_inference_rejected(self, batch_result):
        _, _, result = batch_result
        for victim in range(result.batch_size):
            forged = [list(col) for col in result.instance]
            forged[victim][0] = (forged[victim][0] + 1) % result.vk.field.p
            from repro.runtime import verify_model_proof

            assert not verify_model_proof(result.vk, result.proof, forged,
                                          result.scheme_name, strict=False)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            prove_batch(small_model(), [], num_cols=10, scale_bits=6)

    def test_weights_shared_across_batch(self, batch_result):
        # the batch circuit holds the parameters once: its weight fixed
        # columns match a single-inference circuit's
        spec, inputs, result = batch_result
        from repro.runtime import prove_model

        single = prove_model(spec, inputs[0], num_cols=10, scale_bits=6)
        assert result.vk.cs.num_fixed == single.vk.cs.num_fixed


class TestBatchHardening:
    """The batch path must be as trustworthy as the single-proof path."""

    def test_serial_and_parallel_proofs_byte_identical(self, batch_result):
        from repro.halo2.proof import proof_to_bytes

        spec, inputs, serial = batch_result
        parallel = prove_batch(spec, inputs, num_cols=10, scale_bits=6,
                               jobs=2)
        assert proof_to_bytes(parallel.proof) == proof_to_bytes(serial.proof)
        assert parallel.instance == serial.instance

    def test_batch_of_one_matches_prove_model(self, batch_result):
        from repro.runtime import prove_model

        spec, inputs, _ = batch_result
        single = prove_model(spec, inputs[0], num_cols=10, scale_bits=6)
        batch = prove_batch(spec, inputs[:1], num_cols=10, scale_bits=6)
        assert batch.batch_size == 1
        for name in spec.outputs:
            assert (batch.outputs[0][name] == single.outputs[name]).all()
        assert batch.instance[0] == single.instance[0]

    def test_strict_verify_raises_on_tampered_instance(self, batch_result):
        import dataclasses

        from repro.resilience.errors import VerificationFailure

        _, _, result = batch_result
        forged = [list(col) for col in result.instance]
        forged[1][0] = (forged[1][0] + 1) % result.vk.field.p
        mutant = dataclasses.replace(result, instance=forged)
        with pytest.raises(VerificationFailure):
            mutant.verify()  # strict is the default
        assert mutant.verify(strict=False) is False  # legacy escape hatch

    def test_fuzzed_batch_proofs_all_rejected(self, batch_result):
        from repro.resilience.fuzz import run_proof_fuzz
        from repro.runtime.pipeline import scheme_by_name

        _, _, result = batch_result
        scheme = scheme_by_name(result.scheme_name, result.vk.field)
        report = run_proof_fuzz(result.vk, result.proof, result.instance,
                                scheme, iterations=40, seed=7)
        assert report.ok, (report.accepted, report.escapes)
        assert report.iterations == 40

    def test_keygen_cache_hit_on_repeat_shape(self, batch_result):
        from repro.halo2.proof import proof_to_bytes
        from repro.perf.pkcache import GLOBAL_PK_CACHE

        spec, inputs, _ = batch_result
        GLOBAL_PK_CACHE.clear()
        cold = prove_batch(spec, inputs, num_cols=10, scale_bits=6)
        warm = prove_batch(spec, inputs, num_cols=10, scale_bits=6)
        assert not cold.keygen_cache_hit
        assert warm.keygen_cache_hit
        assert proof_to_bytes(warm.proof) == proof_to_bytes(cold.proof)

    def test_checkpoint_resume_reproduces_proof(self, batch_result, tmp_path):
        from repro.halo2.proof import proof_to_bytes

        spec, inputs, reference = batch_result
        first = prove_batch(spec, inputs, num_cols=10, scale_bits=6,
                            checkpoint_dir=str(tmp_path))
        resumed = prove_batch(spec, inputs, num_cols=10, scale_bits=6,
                              checkpoint_dir=str(tmp_path), resume=True)
        assert proof_to_bytes(first.proof) == proof_to_bytes(reference.proof)
        assert proof_to_bytes(resumed.proof) == proof_to_bytes(first.proof)
