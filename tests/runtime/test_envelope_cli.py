"""The envelope flow end to end: pipeline API, CLI exit codes, registry.

Covers the public surfaces PR-level acceptance names: ``prove_model``/
``prove_batch`` emit envelopes, ``verify_model_proof`` accepts them
(loose bytes only behind a deprecation shim), and ``zkml verify`` exits
3 — distinctly — when the envelope's key is absent from the registry.
"""

import os
import pickle

import numpy as np
import pytest

from repro.cli import main
from repro.envelope import decode_envelope, is_envelope
from repro.model import get_model
from repro.obs import log as obs_log
from repro.runtime import prove_batch, prove_model, verify_model_proof

rng = np.random.default_rng(53)


@pytest.fixture(autouse=True)
def reset_log_level():
    yield
    obs_log.set_level("info")  # `-q` runs mute the shared logger


@pytest.fixture(scope="module")
def proven():
    spec = get_model("dlrm", "mini")
    inputs = {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
    return prove_model(spec, inputs, scheme_name="kzg", num_cols=10,
                       scale_bits=5)


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """One prove run shared by the CLI tests: artifact, envelope,
    populated registry."""
    root = tmp_path_factory.mktemp("envelope-cli")
    paths = {
        "artifact": str(root / "proof.pkl"),
        "envelope": str(root / "proof.env"),
        "registry": str(root / "registry"),
        "root": str(root),
    }
    rc = main(["prove", "--model", "dlrm", "--out", paths["artifact"],
               "--envelope", paths["envelope"],
               "--registry", paths["registry"], "-q"])
    obs_log.set_level("info")
    assert rc == 0
    return paths


class TestPipelineEnvelopeApi:
    def test_prove_result_envelope_is_self_consistent(self, proven):
        env = proven.envelope()
        assert env.model == proven.spec_name
        assert env.scheme_name == proven.scheme_name
        assert env.vk_hash == proven.vk.digest()
        assert env.instance == [list(col) for col in proven.instance]
        assert is_envelope(proven.envelope_bytes())

    def test_verify_model_proof_accepts_envelope_bytes(self, proven):
        verify_model_proof(proven.vk, proven.envelope_bytes())

    def test_verify_model_proof_accepts_envelope_object(self, proven):
        verify_model_proof(proven.vk, proven.envelope())

    def test_loose_bytes_warn_deprecation(self, proven):
        from repro.halo2.proof import proof_to_bytes

        with pytest.warns(DeprecationWarning, match="envelope"):
            verify_model_proof(proven.vk, proof_to_bytes(proven.proof),
                               proven.instance, proven.scheme_name)

    def test_envelope_bytes_deterministic(self, proven):
        assert proven.envelope_bytes() == proven.envelope_bytes()

    def test_prove_batch_emits_envelopes(self):
        spec = get_model("dlrm", "mini")
        batch = [
            {k: rng.uniform(-0.5, 0.5, s) for k, s in spec.inputs.items()}
            for _ in range(2)
        ]
        result = prove_batch(spec, batch, scheme_name="kzg", num_cols=10,
                             scale_bits=5)
        env = result.envelope()  # one envelope covers the whole batch
        assert env.model == spec.name
        assert env.vk_hash == result.vk.digest()
        assert env.instance == [list(col) for col in result.instance]
        verify_model_proof(result.vk, result.envelope_bytes())


class TestProveCli:
    def test_artifact_carries_envelope(self, workspace):
        with open(workspace["artifact"], "rb") as f:
            doc = pickle.load(f)
        env = decode_envelope(doc["envelope"])
        assert env.model == "dlrm-mini"
        assert env.vk_hash == doc["vk"].digest()

    def test_envelope_file_is_raw_wire_bytes(self, workspace):
        with open(workspace["envelope"], "rb") as f:
            data = f.read()
        assert is_envelope(data)
        assert decode_envelope(data).model == "dlrm-mini"

    def test_registry_was_populated(self, workspace):
        rc = main(["registry", "list", "--registry", workspace["registry"],
                   "-q"])
        assert rc == 0
        rc = main(["registry", "check", "--registry", workspace["registry"],
                   "-q"])
        assert rc == 0


class TestVerifyCliExitCodes:
    def test_envelope_with_registry_exit_zero(self, workspace):
        assert main(["verify", "--envelope", workspace["envelope"],
                     "--registry", workspace["registry"], "-q"]) == 0

    def test_artifact_envelope_path_exit_zero(self, workspace):
        assert main(["verify", "--artifact", workspace["artifact"],
                     "-q"]) == 0

    def test_unknown_vk_exits_three_with_hint(self, workspace, tmp_path,
                                              capsys):
        empty = str(tmp_path / "empty-registry")
        rc = main(["verify", "--envelope", workspace["envelope"],
                   "--registry", empty, "-q"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "unknown_vk" in err
        assert "zkml registry publish" in err  # the remediation hint

    def test_publish_then_retry_clears_exit_three(self, workspace,
                                                  tmp_path):
        fresh = str(tmp_path / "fresh-registry")
        assert main(["verify", "--envelope", workspace["envelope"],
                     "--registry", fresh, "-q"]) == 3
        assert main(["registry", "publish",
                     "--artifact", workspace["artifact"],
                     "--registry", fresh, "-q"]) == 0
        assert main(["verify", "--envelope", workspace["envelope"],
                     "--registry", fresh, "-q"]) == 0

    def test_tampered_envelope_exit_one(self, workspace, tmp_path, capsys):
        with open(workspace["envelope"], "rb") as f:
            data = bytearray(f.read())
        data[-1] ^= 0xFF
        bad = str(tmp_path / "tampered.env")
        with open(bad, "wb") as f:
            f.write(bytes(data))
        rc = main(["verify", "--envelope", bad,
                   "--registry", workspace["registry"], "-q"])
        assert rc == 1
        assert "EnvelopeChecksumError" in capsys.readouterr().err

    def test_envelope_without_registry_exit_one(self, workspace, capsys):
        rc = main(["verify", "--envelope", workspace["envelope"], "-q"])
        assert rc == 1
        assert "registry" in capsys.readouterr().err

    def test_registry_check_detects_corruption_exit_one(self, workspace,
                                                        tmp_path):
        import shutil

        broken = str(tmp_path / "broken-registry")
        shutil.copytree(workspace["registry"], broken)
        vk_dir = os.path.join(broken, "vk")
        victim = os.path.join(vk_dir, os.listdir(vk_dir)[0])
        with open(victim, "ab") as f:
            f.write(b"rot")
        assert main(["registry", "check", "--registry", broken, "-q"]) == 1

    def test_publish_rejects_envelope_free_artifact(self, workspace,
                                                    tmp_path, capsys):
        with open(workspace["artifact"], "rb") as f:
            doc = pickle.load(f)
        doc.pop("envelope")
        legacy = str(tmp_path / "legacy.pkl")
        with open(legacy, "wb") as f:
            pickle.dump(doc, f)
        rc = main(["registry", "publish", "--artifact", legacy,
                   "--registry", str(tmp_path / "reg"), "-q"])
        assert rc == 1
        assert "re-prove" in capsys.readouterr().err


class TestChaosEnvelopeFuzz:
    def test_chaos_envelope_fuzz_smoke(self):
        rc = main(["chaos", "--model", "dlrm", "--sites", "transcript",
                   "--envelope-fuzz", "25", "-q"])
        assert rc == 0
