"""Tier-1 smoke test for the prover benchmark harness.

Proves the smallest mini model through ``repro.perf.bench`` once, with a
deliberately generous wall-clock ceiling (this guards against pathological
regressions, not jitter), and validates the ``BENCH_prover.json`` schema.
"""

import io
import json

import pytest

from repro.perf.bench import SCHEMA, SEED_BASELINE_SECONDS, run_bench

#: Far above the expected ~0.5 s — only catastrophic slowdowns trip this.
PROVE_CEILING_SECONDS = 60.0

PHASES = {"commit", "helpers", "quotient", "openings"}


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_prover.json"
    stream = io.StringIO()
    run_bench(models=["dlrm"], output_path=str(out), stream=stream)
    with open(out) as fh:
        return json.load(fh), stream.getvalue()


def test_report_schema(report):
    data, _ = report
    assert data["schema"] == SCHEMA
    assert data["config"]["scheme"] == "kzg"
    assert data["total_prove_seconds"] > 0
    (record,) = data["models"]
    assert record["model"] == "dlrm"
    assert record["k"] >= 1
    assert record["keygen_seconds"] >= 0
    assert record["verify_seconds"] > 0
    assert record["modeled_proof_bytes"] > 0


def test_phase_breakdown_recorded(report):
    data, _ = report
    (record,) = data["models"]
    phases = record["phase_seconds"]
    assert set(phases) == PHASES
    assert all(secs >= 0 for secs in phases.values())
    # the phases account for most of the prove wall-clock
    assert sum(phases.values()) <= record["prove_seconds"] + 0.5


def test_prove_under_ceiling(report):
    data, _ = report
    (record,) = data["models"]
    assert record["prove_seconds"] < PROVE_CEILING_SECONDS


def test_speedup_vs_seed_reported(report):
    data, _ = report
    (record,) = data["models"]
    assert record["seed_baseline_seconds"] == SEED_BASELINE_SECONDS["dlrm"]
    assert record["speedup_vs_seed"] > 0


def test_breakdown_printed(report):
    _, printed = report
    assert "dlrm" in printed
    assert "wrote" in printed
