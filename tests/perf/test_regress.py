"""Tests for the benchmark regression gate."""

import json
import subprocess
import sys

import pytest

from repro.perf.regress import (
    DEFAULT_TIME_THRESHOLD,
    _threshold_for,
    compare_files,
    compare_reports,
    flatten_metrics,
    parse_thresholds,
)


def prover_report(prove=1.0, commitments=10, k=9):
    """A minimal zkml-bench-prover/v1 shaped report."""
    return {
        "schema": "zkml-bench-prover/v1",
        "python": "3.11",
        "seed": 0,
        "models": [
            {"model": "dlrm", "k": k, "num_cols": 10,
             "prove_seconds": prove, "verify_seconds": 0.01,
             "modeled_proof_bytes": 4000,
             "observed_ops": {"commitments": commitments, "ntt_base": 40},
             "phase_seconds": {"commit": prove * 0.5}},
        ],
    }


class TestFlatten:
    def test_models_rekeyed_by_name_and_prefix_stripped(self):
        flat = flatten_metrics(prover_report())
        assert "dlrm.prove_seconds" in flat
        assert "dlrm.observed_ops.commitments" in flat
        assert not any(key.startswith("models.") for key in flat)

    def test_reordering_models_is_stable(self):
        doc = prover_report()
        doc["models"].append({"model": "mnist", "k": 8, "prove_seconds": 2.0})
        reordered = {**doc, "models": list(reversed(doc["models"]))}
        assert flatten_metrics(doc) == flatten_metrics(reordered)

    def test_skip_keys_and_bools_dropped(self):
        flat = flatten_metrics(
            {"schema": "x", "seed": 7, "jobs": 2, "ok": True, "n": 3})
        assert flat == {"n": 3.0}

    def test_positional_lists(self):
        flat = flatten_metrics({"xs": [1, 2]})
        assert flat == {"xs.0": 1.0, "xs.1": 2.0}


class TestThresholds:
    def test_parse(self):
        assert parse_thresholds(["time=4.0", "dlrm.k=0.1"]) == {
            "time": 4.0, "dlrm.k": 0.1}
        with pytest.raises(ValueError):
            parse_thresholds(["nonsense"])

    def test_resolution_order(self):
        thresholds = {"time": 2.0, "prove_seconds": 1.0,
                      "dlrm.prove_seconds": 0.25}
        # exact key beats suffix beats "time" beats deterministic default
        assert _threshold_for("dlrm.prove_seconds", thresholds) == 0.25
        assert _threshold_for("mnist.prove_seconds", thresholds) == 1.0
        assert _threshold_for("mnist.phase_seconds.commit", thresholds) == 2.0
        assert _threshold_for("dlrm.k", thresholds) == 0.0

    def test_timing_default(self):
        assert _threshold_for("a.prove_seconds", {}) == \
            DEFAULT_TIME_THRESHOLD
        assert _threshold_for("a.observed_ops.commitments", {}) == 0.0


class TestGate:
    def test_identical_reports_pass(self):
        report = compare_reports(prover_report(), prover_report())
        assert report.ok
        assert all(d.status == "ok" for d in report.diffs)

    def test_deterministic_increase_fails_exactly(self):
        # one extra commitment is a real circuit regression: no slack
        report = compare_reports(prover_report(commitments=10),
                                 prover_report(commitments=11))
        (bad,) = report.regressions
        assert bad.metric == "dlrm.observed_ops.commitments"
        assert not report.ok

    def test_deterministic_decrease_is_improvement(self):
        report = compare_reports(prover_report(k=9), prover_report(k=8))
        assert report.ok
        assert {d.metric for d in report.improvements} == {"dlrm.k"}

    def test_timing_within_slack_passes(self):
        report = compare_reports(prover_report(prove=1.0),
                                 prover_report(prove=1.4))
        assert report.ok  # +40% < default +50%

    def test_timing_beyond_slack_fails(self):
        report = compare_reports(prover_report(prove=1.0),
                                 prover_report(prove=1.6))
        assert not report.ok
        assert any(d.metric == "dlrm.prove_seconds"
                   for d in report.regressions)

    def test_threshold_override_loosens_gate(self):
        report = compare_reports(prover_report(prove=1.0),
                                 prover_report(prove=3.0),
                                 thresholds={"time": 4.0})
        assert report.ok

    def test_missing_metric_is_a_regression(self):
        current = prover_report()
        del current["models"][0]["observed_ops"]["ntt_base"]
        report = compare_reports(prover_report(), current)
        (bad,) = report.regressions
        assert bad.status == "missing"
        assert bad.metric == "dlrm.observed_ops.ntt_base"

    def test_new_metric_is_informational(self):
        current = prover_report()
        current["models"][0]["observed_ops"]["extra"] = 3
        report = compare_reports(prover_report(), current)
        assert report.ok
        assert any(d.status == "new" for d in report.diffs)

    def test_throughput_drop_beyond_slack_fails(self):
        # higher-is-better: the gate flips to catch *decreases*
        base = {"runs": [{"mode": "service", "throughput_rps": 30.0}]}
        report = compare_reports(
            base, {"runs": [{"mode": "service", "throughput_rps": 15.0}]})
        assert not report.ok
        (bad,) = report.regressions
        assert bad.metric == "runs.0.throughput_rps"
        assert "limit -" in bad.render()

    def test_throughput_drop_within_slack_passes(self):
        base = {"runs": [{"throughput_rps": 30.0}]}
        report = compare_reports(base, {"runs": [{"throughput_rps": 25.0}]})
        assert report.ok  # -17% is inside the default 50% slack

    def test_throughput_increase_is_improvement_not_regression(self):
        base = {"runs": [{"speedup_vs_independent": 2.0,
                          "mean_occupancy": 4.0}]}
        current = {"runs": [{"speedup_vs_independent": 9.0,
                             "mean_occupancy": 8.0}]}
        report = compare_reports(base, current)
        assert report.ok
        assert {d.metric for d in report.improvements} == {
            "runs.0.speedup_vs_independent", "runs.0.mean_occupancy"}

    def test_occupancy_collapse_fails(self):
        base = {"runs": [{"mean_occupancy": 8.0}]}
        report = compare_reports(base, {"runs": [{"mean_occupancy": 1.0}]})
        assert not report.ok

    def test_render_and_dict(self):
        report = compare_reports(prover_report(commitments=10),
                                 prover_report(commitments=12),
                                 baseline_path="b.json")
        text = report.render()
        assert "REGRESSED" in text and "b.json" in text
        doc = report.as_dict()
        assert doc["schema"] == "zkml-regress/v1"
        assert doc["ok"] is False
        assert doc["regressions"] == ["dlrm.observed_ops.commitments"]


class TestCompareFiles:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_compare_files(self, tmp_path):
        base = self.write(tmp_path, "base.json", prover_report())
        cur = self.write(tmp_path, "cur.json", prover_report(commitments=11))
        report = compare_files(base, cur)
        assert not report.ok
        assert report.baseline_path == base

    def test_regress_script_exit_codes(self, tmp_path):
        base = self.write(tmp_path, "base.json", prover_report())
        good = self.write(tmp_path, "good.json", prover_report())
        bad = self.write(tmp_path, "bad.json", prover_report(commitments=11))
        script = "benchmarks/regress.py"
        ok = subprocess.run([sys.executable, script, base, good],
                            capture_output=True, text=True)
        assert ok.returncode == 0, ok.stdout + ok.stderr
        out = str(tmp_path / "diff.json")
        fail = subprocess.run(
            [sys.executable, script, base, bad, "--json", out],
            capture_output=True, text=True)
        assert fail.returncode == 1
        assert "REGRESSED" in fail.stdout
        doc = json.loads(open(out).read())
        assert doc["ok"] is False
