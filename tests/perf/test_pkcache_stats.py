"""Exact accounting tests for :class:`ProvingKeyCache` counters.

The invariant under test: every ``get_or_create`` increments **exactly
one** of ``hits`` / ``misses`` / ``rebuilds`` (so
``lookups == hits + misses + rebuilds`` and the hit rate is honest), a
strict corruption probe mutates *nothing*, and ``clear()`` resets the
counters along with the entries.
"""

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.perf.pkcache import ProvingKeyCache, circuit_digest
from repro.resilience import events
from repro.resilience.errors import CacheCorruptionError

from tests.halo2.circuits import mul_circuit, range_check_circuit

F = GOLDILOCKS


def _scheme():
    return scheme_by_name("kzg", F)


def _corrupt(cache: ProvingKeyCache, digest: str) -> None:
    """Tamper with a cached entry's stored checksum (simulated bit rot)."""
    pk, vk, _checksum = cache._entries[digest]
    cache._entries[digest] = (pk, vk, "corrupted")


def _assert_partition(cache: ProvingKeyCache) -> None:
    stats = cache.stats()
    assert stats["lookups"] == stats["hits"] + stats["misses"] \
        + stats["rebuilds"]
    if stats["lookups"]:
        assert stats["hit_rate"] == pytest.approx(
            stats["hits"] / stats["lookups"], abs=1e-4)
    else:
        assert stats["hit_rate"] == 0.0


class TestCounterPartition:
    def test_miss_then_hits_count_exactly(self):
        cs, asg = mul_circuit()
        cache = ProvingKeyCache()
        cache.get_or_create(cs, asg, _scheme())
        cache.get_or_create(cs, asg, _scheme())
        cache.get_or_create(cs, asg, _scheme())
        assert (cache.hits, cache.misses, cache.rebuilds) == (2, 1, 0)
        assert cache.stats()["lookups"] == 3
        assert cache.stats()["hit_rate"] == pytest.approx(2 / 3, abs=1e-4)
        _assert_partition(cache)

    def test_rebuild_counts_once_not_as_miss_too(self):
        # the original bug: a corruption rebuild bumped BOTH rebuilds and
        # misses, double-counting the lookup and skewing hit-rate math
        events.reset()
        cs, asg = mul_circuit()
        scheme = _scheme()
        cache = ProvingKeyCache()
        digest = circuit_digest(cs, asg, scheme.name)
        cache.get_or_create(cs, asg, scheme)          # miss
        _corrupt(cache, digest)
        pk, vk, skipped = cache.get_or_create(cs, asg, scheme)  # rebuild
        assert not skipped  # keygen re-ran
        assert (cache.hits, cache.misses, cache.rebuilds) == (0, 1, 1)
        assert cache.stats()["lookups"] == 2
        _assert_partition(cache)
        assert events.counts().get(
            'recovered{reason="pk_cache_rebuild"}') == 1
        # the rebuilt entry is intact: next lookup is a plain hit
        cache.get_or_create(cs, asg, scheme)
        assert (cache.hits, cache.misses, cache.rebuilds) == (1, 1, 1)

    def test_distinct_circuits_each_miss_once(self):
        cache = ProvingKeyCache()
        cs1, asg1 = mul_circuit()
        cs2, asg2 = range_check_circuit()
        cache.get_or_create(cs1, asg1, _scheme())
        cache.get_or_create(cs2, asg2, _scheme())
        cache.get_or_create(cs1, asg1, _scheme())
        assert (cache.hits, cache.misses, cache.rebuilds) == (1, 2, 0)
        _assert_partition(cache)


class TestStrictDoesNotMutate:
    def test_strict_corruption_raises_without_touching_state(self):
        cs, asg = mul_circuit()
        scheme = _scheme()
        cache = ProvingKeyCache()
        digest = circuit_digest(cs, asg, scheme.name)
        cache.get_or_create(cs, asg, scheme)
        _corrupt(cache, digest)
        before = cache.stats()
        entries_before = dict(cache._entries)
        with pytest.raises(CacheCorruptionError):
            cache.get_or_create(cs, asg, scheme, strict=True)
        # nothing moved: no eviction, no counter bump, no rebuild
        assert cache.stats() == before
        assert dict(cache._entries) == entries_before
        assert digest in cache._entries

    def test_strict_probe_then_nonstrict_rebuild(self):
        cs, asg = mul_circuit()
        scheme = _scheme()
        cache = ProvingKeyCache()
        digest = circuit_digest(cs, asg, scheme.name)
        cache.get_or_create(cs, asg, scheme)
        _corrupt(cache, digest)
        with pytest.raises(CacheCorruptionError):
            cache.get_or_create(cs, asg, scheme, strict=True)
        # the corrupt entry is still there; a non-strict call rebuilds it
        pk, vk, skipped = cache.get_or_create(cs, asg, scheme)
        assert not skipped
        assert (cache.hits, cache.misses, cache.rebuilds) == (0, 1, 1)
        _assert_partition(cache)

    def test_strict_clean_hit_still_counts(self):
        cs, asg = mul_circuit()
        cache = ProvingKeyCache()
        cache.get_or_create(cs, asg, _scheme())
        _, _, skipped = cache.get_or_create(cs, asg, _scheme(), strict=True)
        assert skipped
        assert (cache.hits, cache.misses, cache.rebuilds) == (1, 1, 0)


class TestClearResets:
    def test_clear_resets_entries_and_counters(self):
        cs, asg = mul_circuit()
        cache = ProvingKeyCache()
        cache.get_or_create(cs, asg, _scheme())
        cache.get_or_create(cs, asg, _scheme())
        assert cache.stats()["lookups"] == 2
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == 0
        assert (stats["hits"], stats["misses"], stats["rebuilds"]) \
            == (0, 0, 0)
        assert stats["lookups"] == 0 and stats["hit_rate"] == 0.0
        # post-clear traffic starts counting from zero: one miss, one hit
        cache.get_or_create(cs, asg, _scheme())
        cache.get_or_create(cs, asg, _scheme())
        assert (cache.hits, cache.misses, cache.rebuilds) == (1, 1, 0)
        _assert_partition(cache)
