"""Disk-backed proving-key cache: concurrency and corruption safety.

The properties the serve cluster depends on:

* two worker processes racing the same circuit perform at most one
  keygen (the digest's advisory file lock covers the whole
  load-miss -> keygen -> store window);
* a corrupted artifact is evicted and rebuilt, never served;
* a reader concurrent with a writer only ever observes intact
  artifacts (tmp-file + ``os.replace`` atomicity);
* a persistent write failure raises after bounded retries and leaves no
  tmp litter behind.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.perf.pkcache import (
    DISK_MAGIC,
    DiskPKCache,
    ProvingKeyCache,
    circuit_digest,
)
from repro.resilience import events, faults
from repro.resilience.errors import CacheCorruptionError

from tests.halo2.circuits import mul_circuit

F = GOLDILOCKS


@pytest.fixture
def scheme():
    return scheme_by_name("kzg", F)


@pytest.fixture
def circuit():
    return mul_circuit()


def _keys(circuit, scheme, tmp_path):
    """Generate (digest, pk, vk) once via a throwaway cache."""
    cs, asg = circuit
    cache = ProvingKeyCache(disk=DiskPKCache(str(tmp_path / "seed")))
    pk, vk, _ = cache.get_or_create(cs, asg, scheme)
    return circuit_digest(cs, asg, scheme.name), pk, vk


def _race_child(barrier, queue, root, circuit, scheme_name):
    """Fork target: one synchronized lookup against the shared disk dir."""
    cs, asg = circuit
    sch = scheme_by_name(scheme_name, F)
    cache = ProvingKeyCache(disk=DiskPKCache(root))
    barrier.wait(timeout=30)
    _pk, _vk, keygen_skipped = cache.get_or_create(cs, asg, sch)
    queue.put((os.getpid(), keygen_skipped, cache.disk.stores))


class TestKeygenRace:
    def test_two_processes_same_digest_at_most_one_keygen(
            self, tmp_path, circuit):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        root = str(tmp_path / "shared")
        procs = [ctx.Process(target=_race_child,
                             args=(barrier, queue, root, circuit, "kzg"))
                 for _ in range(2)]
        for p in procs:
            p.start()
        reports = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        # the flock serializes the keygen window: exactly one process ran
        # keygen (and stored), the loser got a disk hit instead
        stores = sum(r[2] for r in reports)
        assert stores == 1
        keygen_runs = sum(1 for r in reports if not r[1])
        assert keygen_runs == 1
        cs, asg = circuit
        digest = circuit_digest(cs, asg, "kzg")
        assert os.path.exists(DiskPKCache(root).path(digest))


class TestCorruptionEviction:
    @pytest.mark.parametrize("mangle", [
        pytest.param(lambda blob: b"not-a-cache-file" + blob[16:],
                     id="bad_magic"),
        pytest.param(lambda blob: blob[:len(DISK_MAGIC) + 4],
                     id="truncated"),
        pytest.param(lambda blob: blob[:-8] + bytes(8),
                     id="flipped_tail"),
        pytest.param(
            lambda blob: blob[:len(DISK_MAGIC)]
            + blob[len(DISK_MAGIC):len(DISK_MAGIC) + 16]
            + b"\x80\x04garbage.",
            id="unpicklable"),
    ])
    def test_corrupt_artifact_evicted_never_served(
            self, tmp_path, circuit, scheme, mangle):
        events.reset()
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        disk = DiskPKCache(str(tmp_path / "disk"))
        disk.store(digest, pk, vk)
        path = disk.path(digest)
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(mangle(blob))
        assert disk.load(digest) is None
        assert disk.evictions == 1
        assert not os.path.exists(path)  # evicted, not left to rot
        assert any(k.startswith('recovered{reason="pk_disk_evict"')
                   or 'pk_disk_evict' in k for k in events.counts())

    def test_wrong_digest_inside_is_corruption(self, tmp_path, circuit,
                                               scheme):
        # an artifact renamed to another digest's path must not be served
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        disk = DiskPKCache(str(tmp_path / "disk"))
        disk.store(digest, pk, vk)
        other = "0" * len(digest)
        os.rename(disk.path(digest), disk.path(other))
        assert disk.load(other) is None
        assert disk.evictions == 1

    def test_evicted_entry_is_rebuilt_on_next_lookup(self, tmp_path,
                                                     circuit, scheme):
        cs, asg = circuit
        disk = DiskPKCache(str(tmp_path / "disk"))
        cache = ProvingKeyCache(disk=disk)
        cache.get_or_create(cs, asg, scheme)
        digest = circuit_digest(cs, asg, scheme.name)
        with open(disk.path(digest), "r+b") as fh:
            fh.write(b"\x00" * 8)  # stomp the magic
        fresh = ProvingKeyCache(disk=disk)  # cold memory tier
        pk, vk, skipped = fresh.get_or_create(cs, asg, scheme)
        assert not skipped  # keygen re-ran; corrupt keys never served
        assert disk.evictions == 1
        # and the store repaired the artifact for the next reader
        assert disk.load(digest) is not None


class TestAtomicity:
    def test_reader_never_observes_partial_write(self, tmp_path, circuit,
                                                 scheme):
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        root = str(tmp_path / "disk")
        ctx = multiprocessing.get_context("fork")

        def writer():
            d = DiskPKCache(root)
            for _ in range(30):
                d.store(digest, pk, vk)

        proc = ctx.Process(target=writer)
        proc.start()
        reader = DiskPKCache(root)
        observed = 0
        while proc.is_alive():
            if reader.load(digest) is not None:
                observed += 1
        proc.join(timeout=30)
        assert proc.exitcode == 0
        # every load during the write storm was either a clean miss
        # (file not yet created) or a fully-valid artifact — os.replace
        # never exposes a half-written blob
        assert reader.evictions == 0
        assert observed > 0 or reader.load(digest) is not None

    def test_tmp_files_are_per_process(self, tmp_path, circuit, scheme):
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        disk = DiskPKCache(str(tmp_path / "disk"))
        disk.store(digest, pk, vk)
        pk_dir = os.path.dirname(disk.path(digest))
        leftovers = [n for n in os.listdir(pk_dir) if ".tmp." in n]
        assert leftovers == []


class TestWriteFailure:
    def test_persistent_write_failure_raises_and_cleans_tmp(
            self, tmp_path, circuit, scheme):
        events.reset()
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        disk = DiskPKCache(str(tmp_path / "disk"), backoff_seconds=0.001)
        with faults.use_faults("disk_write:3"):
            with pytest.raises(CacheCorruptionError):
                disk.store(digest, pk, vk)
        pk_dir = os.path.join(disk.root, "pk")
        assert [n for n in os.listdir(pk_dir) if ".tmp." in n] == []
        assert not os.path.exists(disk.path(digest))
        assert disk.stores == 0

    def test_transient_write_failure_retries_through(self, tmp_path,
                                                     circuit, scheme):
        events.reset()
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        disk = DiskPKCache(str(tmp_path / "disk"), backoff_seconds=0.001)
        with faults.use_faults("disk_write:2"):  # 2 failures, 3 attempts
            disk.store(digest, pk, vk)
        assert disk.stores == 1
        assert disk.load(digest) is not None


class TestMemoryDiskLayering:
    def test_attach_disk_by_path_and_disk_hit_accounting(
            self, tmp_path, circuit, scheme):
        cs, asg = circuit
        root = str(tmp_path / "disk")
        warm = ProvingKeyCache()
        warm.attach_disk(root)  # a path string creates the DiskPKCache
        assert isinstance(warm.disk, DiskPKCache)
        warm.get_or_create(cs, asg, scheme)
        assert warm.disk.stores == 1

        # a second process-alike (cold memory, same dir) skips keygen
        cold = ProvingKeyCache()
        cold.attach_disk(root)
        _pk, _vk, skipped = cold.get_or_create(cs, asg, scheme)
        assert skipped
        stats = cold.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 1  # memory tier still missed
        assert stats["disk"]["load_hits"] == 1

    def test_roundtrip_payload_is_the_same_object_graph(
            self, tmp_path, circuit, scheme):
        digest, pk, vk = _keys(circuit, scheme, tmp_path)
        disk = DiskPKCache(str(tmp_path / "disk"))
        disk.store(digest, pk, vk)
        loaded_pk, loaded_vk = disk.load(digest)
        assert pickle.dumps(loaded_pk) == pickle.dumps(pk)
        assert pickle.dumps(loaded_vk) == pickle.dumps(vk)
