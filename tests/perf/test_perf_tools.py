"""Unit tests for the perf substrate: timer, parallel map, pk cache."""

import os
import pickle

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.perf import (
    NULL_TIMER,
    PhaseTimer,
    ProvingKeyCache,
    circuit_digest,
    parallel_map,
    resolve_jobs,
)
from repro.perf.parallel import JOBS_ENV

from tests.halo2.circuits import mul_circuit, range_check_circuit

F = GOLDILOCKS


def test_phase_timer_accumulates():
    timer = PhaseTimer()
    with timer.phase("a"):
        pass
    with timer.phase("a"):
        pass
    with timer.phase("b"):
        pass
    assert set(timer.seconds) == {"a", "b"}
    assert timer.total == pytest.approx(sum(timer.seconds.values()))
    assert "a" in timer.breakdown()


def test_null_timer_is_inert():
    with NULL_TIMER.phase("anything"):
        pass
    assert NULL_TIMER.total == 0.0


def _square(x):
    return x * x


def test_parallel_map_serial_and_parallel_agree():
    items = list(range(20))
    expect = [x * x for x in items]
    assert parallel_map(_square, items, jobs=1) == expect
    assert parallel_map(_square, items, jobs=2) == expect


def test_parallel_map_runs_initializer_in_serial_path():
    calls = []
    parallel_map(_square, [1, 2], jobs=1, initializer=calls.append, initargs=(7,))
    assert calls == [7]


def test_parallel_map_ships_worker_spans_back():
    # with an enabled tracer, each worker task records spans in its own
    # process and the parent re-ingests them keeping the worker's pid —
    # a --jobs 2 trace must show real worker lanes, not one main lane
    from repro.obs.trace import Tracer, use_tracer
    from repro.resilience import events

    events.reset()
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("dispatch"):
            out = parallel_map(_square, list(range(8)), jobs=2)
    assert out == [x * x for x in range(8)]
    if 'degraded{reason="parallel_pool_unavailable"}' in events.counts():
        pytest.skip("process pool unavailable in this environment")
    worker_spans = [s for s in tracer.spans() if s.name == "_square"]
    assert len(worker_spans) == 8
    worker_pids = {s.pid for s in worker_spans}
    assert worker_pids and os.getpid() not in worker_pids
    # every shipped-back span hangs off the dispatching span
    dispatch = next(s for s in tracer.spans() if s.name == "dispatch")
    assert all(s.parent_id == dispatch.span_id for s in worker_spans)
    # the chrome export keeps the worker pids as separate lanes
    doc = tracer.to_chrome_trace()
    x_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert x_pids == worker_pids | {os.getpid()}


def test_parallel_map_untraced_has_no_wrapping():
    # NULL_TRACER (the default) must not wrap tasks: results come back
    # raw, and nothing is recorded anywhere
    from repro.obs.trace import NULL_TRACER, get_tracer

    assert get_tracer() is NULL_TRACER
    assert parallel_map(_square, [3, 4], jobs=2) == [9, 16]


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv(JOBS_ENV, "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(2) == 2
    monkeypatch.setenv(JOBS_ENV, "junk")
    assert resolve_jobs(None) == 1


def test_resolve_jobs_malformed_env_counts_a_degradation(monkeypatch):
    from repro.perf import parallel
    from repro.resilience import events

    events.reset()
    parallel._warned_jobs_env.clear()
    monkeypatch.setenv(JOBS_ENV, "four")
    assert resolve_jobs(None) == 1
    assert resolve_jobs(None) == 1  # second call: same value, no re-warn
    counts = events.counts()
    assert counts['degraded{reason="invalid_jobs_env"}'] == 1
    monkeypatch.setenv(JOBS_ENV, "many")  # a *new* bad value warns again
    assert resolve_jobs(None) == 1
    assert events.counts()['degraded{reason="invalid_jobs_env"}'] == 2


def test_pk_cache_hits_on_same_circuit():
    cs, asg = mul_circuit()
    scheme = scheme_by_name("kzg", F)
    cache = ProvingKeyCache()
    pk1, vk1, hit1 = cache.get_or_create(cs, asg, scheme)
    pk2, vk2, hit2 = cache.get_or_create(cs, asg, scheme)
    assert (hit1, hit2) == (False, True)
    assert pk1 is pk2 and vk1 is vk2
    assert cache.hits == 1 and cache.misses == 1


def test_pk_cache_digest_ignores_witness():
    cs, asg1 = mul_circuit(rows=[(2, 3)])
    _, asg2 = mul_circuit(rows=[(5, 6)])
    d1 = circuit_digest(cs, asg1, "kzg")
    d2 = circuit_digest(cs, asg2, "kzg")
    assert d1 == d2  # advice/instance differ, keygen inputs do not


def test_pk_cache_digest_separates_circuits_and_schemes():
    cs1, asg1 = mul_circuit()
    cs2, asg2 = range_check_circuit()
    assert circuit_digest(cs1, asg1, "kzg") != circuit_digest(cs2, asg2, "kzg")
    assert circuit_digest(cs1, asg1, "kzg") != circuit_digest(cs1, asg1, "ipa")


def test_pk_cache_lru_eviction():
    scheme = scheme_by_name("kzg", F)
    cache = ProvingKeyCache(maxsize=1)
    cs1, asg1 = mul_circuit()
    cs2, asg2 = range_check_circuit()
    cache.get_or_create(cs1, asg1, scheme)
    cache.get_or_create(cs2, asg2, scheme)
    _, _, hit = cache.get_or_create(cs1, asg1, scheme)
    assert not hit  # evicted by the range circuit
