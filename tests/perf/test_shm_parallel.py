"""Shared-memory row transport: round-trip, parity, and loud fallback.

``parallel_row_map`` is only safe to use on the proving hot path if the
shared-memory transport is invisible: workers must see exactly the rows
the parent wrote, results must match the serial path bit for bit, and
any environment where shared memory or a worker pool is unavailable must
degrade to serial — counted, never silent.
"""

import numpy as np
import pytest

from repro.field import GOLDILOCKS
from repro.perf import shm
from repro.perf.parallel import parallel_row_map
from repro.resilience import events, faults

F = GOLDILOCKS


@pytest.fixture(autouse=True)
def _clean_events():
    events.reset()
    faults.uninstall()
    yield
    faults.uninstall()
    events.reset()


def test_shm_block_round_trip():
    shape = (3, 8)
    owner, arr = shm.create_block(shape)
    try:
        rng = np.random.default_rng(0)
        data = rng.integers(0, F.p, size=shape, dtype=np.uint64)
        arr[:] = data
        attached, view = shm.attach_block(owner.name, shape)
        try:
            np.testing.assert_array_equal(view, data)
            # writes through the attached view land in the owner's array
            view[0, 0] = np.uint64(7)
            assert arr[0, 0] == 7
        finally:
            attached.close()
    finally:
        shm.destroy_block(owner)


def test_destroy_block_is_idempotent():
    owner, _ = shm.create_block((2, 2))
    shm.destroy_block(owner)
    shm.destroy_block(owner)  # already gone: must not raise


def _double_rows(rows, row_offset):
    # aux entries record (global_row, first_element) so the test can see
    # that workers observed the right offsets and the right data
    out = (rows * np.uint64(2)) % np.uint64(F.p)
    aux = [(row_offset + i, int(rows[i, 0])) for i in range(len(rows))]
    return out, aux


def _make_matrix(m=8, n=16):
    rng = np.random.default_rng(1)
    return rng.integers(0, F.p, size=(m, n), dtype=np.uint64)


def test_parallel_row_map_matches_serial():
    matrix = _make_matrix()
    serial_out, serial_aux = parallel_row_map(_double_rows, matrix, jobs=1)
    parallel_out, parallel_aux = parallel_row_map(_double_rows, matrix, jobs=2)
    np.testing.assert_array_equal(parallel_out, serial_out)
    assert parallel_aux == serial_aux
    assert events.counts().get("degraded", 0) == 0


def test_parallel_row_map_aux_preserves_row_order():
    matrix = _make_matrix(m=7)
    _, aux = parallel_row_map(_double_rows, matrix, jobs=3)
    assert [row for row, _ in aux] == list(range(7))
    assert [first for _, first in aux] == [int(r[0]) for r in matrix]


def test_parallel_row_map_degrades_to_serial_on_worker_fault():
    matrix = _make_matrix()
    reference, ref_aux = parallel_row_map(_double_rows, matrix, jobs=1)
    with faults.use_faults("worker"):
        out, aux = parallel_row_map(_double_rows, matrix, jobs=2)
    np.testing.assert_array_equal(out, reference)
    assert aux == ref_aux
    # the fallback is loud: one counted degradation, reason recorded
    assert events.counts().get("degraded", 0) == 1


def test_parallel_row_map_degrades_when_shared_memory_missing(monkeypatch):
    import repro.perf.shm as shm_mod

    def _no_shm(shape):
        raise OSError("shared memory unavailable")

    monkeypatch.setattr(shm_mod, "create_block", _no_shm)
    matrix = _make_matrix()
    reference, ref_aux = parallel_row_map(_double_rows, matrix, jobs=1)
    out, aux = parallel_row_map(_double_rows, matrix, jobs=2)
    np.testing.assert_array_equal(out, reference)
    assert aux == ref_aux
    assert events.counts().get("degraded", 0) == 1
