"""Tests for arithmetic gadgets against fixed-point reference semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gadgets import (
    AddGadget,
    CircuitBuilder,
    DivRoundConstGadget,
    MulGadget,
    SquareGadget,
    SquaredDiffGadget,
    SubGadget,
    SumGadget,
)
from repro.halo2 import MockProver
from repro.quantize import div_round
from repro.tensor import Entry


def builder(k=9, num_cols=10, scale_bits=6):
    return CircuitBuilder(k=k, num_cols=num_cols, scale_bits=scale_bits)


class TestAddSub:
    def test_add(self):
        b = builder()
        g = b.gadget(AddGadget)
        (z,) = g.assign_row([(Entry(5), Entry(7))])
        assert z.value == 12
        b.mock_check()

    def test_add_packs_slots(self):
        b = builder(num_cols=9)
        g = b.gadget(AddGadget)
        outs = g.assign_row([(Entry(1), Entry(2)), (Entry(3), Entry(4)),
                             (Entry(-5), Entry(5))])
        assert [o.value for o in outs] == [3, 7, 0]
        assert b.rows_used == 1
        b.mock_check()

    def test_assign_many_spills_rows(self):
        b = builder(num_cols=6)  # 2 slots per row
        g = b.gadget(AddGadget)
        outs = g.assign_many([(Entry(i), Entry(i)) for i in range(5)])
        assert [o.value for o in outs] == [0, 2, 4, 6, 8]
        assert b.rows_used == 3
        b.mock_check()

    def test_sub_negative_result(self):
        b = builder()
        g = b.gadget(SubGadget)
        (z,) = g.assign_row([(Entry(3), Entry(10))])
        assert z.value == -7
        b.mock_check()

    def test_tampered_output_fails_mock(self):
        b = builder()
        g = b.gadget(AddGadget)
        (z,) = g.assign_row([(Entry(5), Entry(7))])
        b.asg.assign_advice(z.cell.column, z.cell.row, 13)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "gate" for f in failures)


class TestMulRescale:
    def test_mul_matches_reference(self):
        b = builder(scale_bits=6)
        sf = b.fp.factor
        g = b.gadget(MulGadget)
        x, y = b.fp.encode(1.5), b.fp.encode(2.25)
        (z,) = g.assign_row([(Entry(x), Entry(y))])
        assert z.value == div_round(x * y, sf)
        b.mock_check()

    def test_mul_negative(self):
        b = builder(scale_bits=6)
        g = b.gadget(MulGadget)
        x, y = b.fp.encode(-1.5), b.fp.encode(2.0)
        (z,) = g.assign_row([(Entry(x), Entry(y))])
        assert b.fp.decode(z.value) == pytest.approx(-3.0, abs=0.05)
        b.mock_check()

    def test_square(self):
        b = builder(scale_bits=6)
        g = b.gadget(SquareGadget)
        x = b.fp.encode(-2.5)
        (z,) = g.assign_row([(Entry(x),)])
        assert b.fp.decode(z.value) == pytest.approx(6.25, abs=0.05)
        b.mock_check()

    def test_squared_diff(self):
        b = builder(scale_bits=6)
        g = b.gadget(SquaredDiffGadget)
        x, y = b.fp.encode(3.0), b.fp.encode(1.0)
        (z,) = g.assign_row([(Entry(x), Entry(y))])
        assert b.fp.decode(z.value) == pytest.approx(4.0, abs=0.05)
        b.mock_check()

    def test_wrong_quotient_fails_mock(self):
        b = builder(scale_bits=6)
        g = b.gadget(MulGadget)
        (z,) = g.assign_row([(Entry(64), Entry(64))])
        b.asg.assign_advice(z.cell.column, z.cell.row, z.value + 1)
        failures = MockProver(b.cs, b.asg).verify()
        assert failures  # either the gate or the remainder range breaks

    @given(a=st.integers(-500, 500), c=st.integers(-500, 500))
    @settings(max_examples=15, deadline=None)
    def test_mul_property(self, a, c):
        b = builder(scale_bits=4)
        g = b.gadget(MulGadget)
        (z,) = g.assign_row([(Entry(a), Entry(c))])
        assert z.value == div_round(a * c, 16)
        b.mock_check()


class TestSum:
    def test_single_row(self):
        b = builder(num_cols=6)
        g = b.gadget(SumGadget)
        (z,) = g.assign_row([[Entry(v) for v in (1, 2, 3, 4, 5)]])
        assert z.value == 15
        b.mock_check()

    def test_too_many_terms_rejected(self):
        b = builder(num_cols=4)
        g = b.gadget(SumGadget)
        with pytest.raises(ValueError):
            g.assign_row([[Entry(v) for v in range(5)]])

    def test_sum_vector_chains(self):
        b = builder(num_cols=5)  # 4 terms per row
        g = b.gadget(SumGadget)
        z = g.sum_vector([Entry(v) for v in range(10)])
        assert z.value == 45
        assert b.rows_used > 1
        b.mock_check()

    def test_sum_vector_length_one(self):
        b = builder()
        g = b.gadget(SumGadget)
        e = Entry(7)
        assert g.sum_vector([e]) is e


class TestDivRoundConst:
    def test_basic(self):
        b = builder()
        g = b.gadget(DivRoundConstGadget, divisor=10)
        (z,) = g.assign_row([(Entry(25),)])
        assert z.value == 3  # 2.5 rounds up
        b.mock_check()

    def test_negative(self):
        b = builder()
        g = b.gadget(DivRoundConstGadget, divisor=10)
        (z,) = g.assign_row([(Entry(-26),)])
        assert z.value == div_round(-26, 10)
        b.mock_check()

    def test_bad_divisor(self):
        b = builder()
        with pytest.raises(ValueError):
            b.gadget(DivRoundConstGadget, divisor=0)

    def test_distinct_divisors_are_distinct_gadgets(self):
        b = builder()
        g2 = b.gadget(DivRoundConstGadget, divisor=2)
        g3 = b.gadget(DivRoundConstGadget, divisor=3)
        assert g2 is not g3
        (a,) = g2.assign_row([(Entry(7),)])
        (c,) = g3.assign_row([(Entry(7),)])
        assert (a.value, c.value) == (4, 2)
        b.mock_check()
