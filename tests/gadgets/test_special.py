"""Tests for the max and variable-division gadgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gadgets import CircuitBuilder, MaxGadget, VarDivGadget
from repro.halo2 import MockProver
from repro.quantize import div_round
from repro.tensor import Entry


def builder(k=9, num_cols=9, scale_bits=5, lookup_bits=8):
    return CircuitBuilder(k=k, num_cols=num_cols, scale_bits=scale_bits,
                          lookup_bits=lookup_bits)


class TestMax:
    def test_basic(self):
        b = builder()
        g = b.gadget(MaxGadget)
        (c,) = g.assign_row([(Entry(5), Entry(9))])
        assert c.value == 9
        b.mock_check()

    def test_negative_operands(self):
        b = builder()
        g = b.gadget(MaxGadget)
        (c,) = g.assign_row([(Entry(-5), Entry(-9))])
        assert c.value == -5
        b.mock_check()

    def test_equal_operands(self):
        b = builder()
        g = b.gadget(MaxGadget)
        (c,) = g.assign_row([(Entry(4), Entry(4))])
        assert c.value == 4
        b.mock_check()

    def test_claiming_smaller_value_fails(self):
        b = builder()
        g = b.gadget(MaxGadget)
        (c,) = g.assign_row([(Entry(5), Entry(9))])
        b.asg.assign_advice(c.cell.column, c.cell.row, 5)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "lookup" for f in failures)

    def test_claiming_unrelated_value_fails(self):
        b = builder()
        g = b.gadget(MaxGadget)
        (c,) = g.assign_row([(Entry(5), Entry(9))])
        b.asg.assign_advice(c.cell.column, c.cell.row, 11)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "gate" for f in failures)

    def test_max_vector_tournament(self):
        b = builder()
        g = b.gadget(MaxGadget)
        values = [3, -2, 17, 0, 5, 16, -9]
        m = g.max_vector([Entry(v) for v in values])
        assert m.value == 17
        b.mock_check()

    def test_operand_gap_beyond_table_raises(self):
        b = builder(lookup_bits=4)
        g = b.gadget(MaxGadget)
        with pytest.raises(ValueError, match="range table bound"):
            g.assign_row([(Entry(-100), Entry(100))])


class TestVarDiv:
    def test_rounded_division(self):
        b = builder()
        g = b.gadget(VarDivGadget)
        (c,) = g.assign_row([(Entry(7), Entry(25))])
        assert c.value == div_round(25, 7)
        b.mock_check()

    def test_rounds_half_up(self):
        b = builder()
        g = b.gadget(VarDivGadget)
        (c,) = g.assign_row([(Entry(2), Entry(5))])
        assert c.value == 3
        b.mock_check()

    def test_zero_divisor_rejected(self):
        b = builder()
        g = b.gadget(VarDivGadget)
        with pytest.raises(ValueError, match="positive"):
            g.assign_row([(Entry(0), Entry(5))])

    def test_large_divisor_rejected(self):
        b = builder(lookup_bits=4)
        g = b.gadget(VarDivGadget)
        with pytest.raises(ValueError, match="limbs"):
            g.assign_row([(Entry(100), Entry(5))])

    def test_wrong_quotient_fails_mock(self):
        b = builder()
        g = b.gadget(VarDivGadget)
        (c,) = g.assign_row([(Entry(7), Entry(25))])
        b.asg.assign_advice(c.cell.column, c.cell.row, c.value + 1)
        failures = MockProver(b.cs, b.asg).verify()
        assert failures

    @given(a=st.integers(1, 100), num=st.integers(0, 120))
    @settings(max_examples=20, deadline=None)
    def test_vardiv_property(self, a, num):
        b = builder(lookup_bits=8)
        g = b.gadget(VarDivGadget)
        (c,) = g.assign_row([(Entry(a), Entry(num))])
        assert c.value == div_round(num, a)
        b.mock_check()
