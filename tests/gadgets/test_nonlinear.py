"""Tests for lookup-table pointwise non-linearities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gadgets import CircuitBuilder, NONLINEAR_FUNCTIONS, PointwiseGadget
from repro.halo2 import MockProver
from repro.tensor import Entry


def builder(k=9, num_cols=8, scale_bits=5, lookup_bits=8):
    return CircuitBuilder(k=k, num_cols=num_cols, scale_bits=scale_bits,
                          lookup_bits=lookup_bits)


class TestRelu:
    def test_positive_passthrough(self):
        b = builder()
        g = b.gadget(PointwiseGadget, fn_name="relu")
        (y,) = g.assign_row([(Entry(17),)])
        assert y.value == 17
        b.mock_check()

    def test_negative_clamped(self):
        b = builder()
        g = b.gadget(PointwiseGadget, fn_name="relu")
        (y,) = g.assign_row([(Entry(-17),)])
        assert y.value == 0
        b.mock_check()

    def test_packs_pairs_per_row(self):
        b = builder(num_cols=8)
        g = b.gadget(PointwiseGadget, fn_name="relu")
        outs = g.apply_vector([Entry(v) for v in (-3, -1, 0, 2, 9)])
        assert [o.value for o in outs] == [0, 0, 0, 2, 9]
        assert b.rows_used == 2  # 4 pairs per row
        b.mock_check()

    def test_cheating_output_fails_mock(self):
        b = builder()
        g = b.gadget(PointwiseGadget, fn_name="relu")
        (y,) = g.assign_row([(Entry(-5),)])
        b.asg.assign_advice(y.cell.column, y.cell.row, b.field.p - 5)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "lookup" for f in failures)

    def test_out_of_range_input_raises(self):
        b = builder(lookup_bits=4)
        g = b.gadget(PointwiseGadget, fn_name="relu")
        with pytest.raises(ValueError, match="table range"):
            g.assign_row([(Entry(100),)])


@pytest.mark.parametrize(
    "fn_name,x,expected",
    [
        ("sigmoid", 0.0, 0.5),
        ("tanh", 1.0, math.tanh(1.0)),
        ("exp", 0.5, math.exp(0.5)),
        ("exp", -2.0, math.exp(-2.0)),
        ("elu", -1.0, math.expm1(-1.0)),
        ("gelu", 1.0, 0.5 * (1 + math.erf(1 / math.sqrt(2)))),
        ("relu6", 3.0, 3.0),
        ("silu", 1.0, 1 / (1 + math.exp(-1))),
        ("sqrt", 2.25, 1.5),
        ("rsqrt", 1.0, 1.0),
        ("softplus", 0.0, math.log(2)),
        ("leaky_relu", -2.0, -0.2),
    ],
)
def test_functions_match_float_reference(fn_name, x, expected):
    b = builder(k=10, scale_bits=5, lookup_bits=9)
    g = b.gadget(PointwiseGadget, fn_name=fn_name)
    x_fixed = b.fp.encode(x)
    (y,) = g.assign_row([(Entry(x_fixed),)])
    assert b.fp.decode(y.value) == pytest.approx(expected, abs=2 / b.fp.factor)
    b.mock_check()


def test_unknown_function_rejected():
    b = builder()
    with pytest.raises(KeyError):
        b.gadget(PointwiseGadget, fn_name="warp_drive")


def test_two_functions_share_grid():
    b = builder()
    relu = b.gadget(PointwiseGadget, fn_name="relu")
    sig = b.gadget(PointwiseGadget, fn_name="sigmoid")
    relu.assign_row([(Entry(-2),)])
    sig.assign_row([(Entry(0),)])
    b.mock_check()


def test_registry_contents():
    assert {"relu", "sigmoid", "tanh", "exp", "elu", "gelu"} <= set(
        NONLINEAR_FUNCTIONS
    )


@given(x=st.integers(-128, 127))
@settings(max_examples=20, deadline=None)
def test_relu_property(x):
    b = builder(lookup_bits=8)
    g = b.gadget(PointwiseGadget, fn_name="relu")
    (y,) = g.assign_row([(Entry(x),)])
    assert y.value == max(x, 0)
    b.mock_check()
