"""Edge-case tests for builder weight columns and public exposure."""

import pytest

from repro.gadgets import AddGadget, CircuitBuilder
from repro.halo2 import MockProver
from repro.halo2.column import ColumnType
from repro.tensor import Entry


class TestWeightColumns:
    def test_weights_live_in_fixed_columns(self):
        b = CircuitBuilder(k=4, num_cols=6, scale_bits=4)
        entries = b.weight_entries([1, 2, 3])
        assert all(e.cell.column.kind == ColumnType.FIXED for e in entries)
        assert [e.value for e in entries] == [1, 2, 3]

    def test_overflow_spills_to_next_column(self):
        b = CircuitBuilder(k=3, num_cols=6, scale_bits=4)  # 8 rows
        entries = b.weight_entries(list(range(20)))
        columns = {e.cell.column.index for e in entries}
        assert len(columns) == 3  # ceil(20 / 8)

    def test_weight_use_is_copy_constrained(self):
        b = CircuitBuilder(k=4, num_cols=6, scale_bits=4)
        (w,) = b.weight_entries([5])
        add = b.gadget(AddGadget)
        (z,) = add.assign_row([(w, Entry(2))])
        assert z.value == 7
        assert len(b.asg.copies) == 1
        b.mock_check()

    def test_cheating_on_a_weight_fails(self):
        b = CircuitBuilder(k=4, num_cols=6, scale_bits=4)
        (w,) = b.weight_entries([5])
        add = b.gadget(AddGadget)
        (z,) = add.assign_row([(w, Entry(2))])
        # prover swaps the weight's advice copy for a different value
        b.asg.assign_advice(b.columns[0], z.cell.row, 9)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "copy" for f in failures)

    def test_vk_digest_binds_weights(self):
        from repro.commit import scheme_by_name
        from repro.field import GOLDILOCKS
        from repro.halo2 import keygen

        scheme = scheme_by_name("kzg", GOLDILOCKS)
        digests = []
        for value in (5, 6):
            b = CircuitBuilder(k=4, num_cols=6, scale_bits=4)
            (w,) = b.weight_entries([value])
            add = b.gadget(AddGadget)
            add.assign_row([(w, Entry(2))])
            _, vk = keygen(b.cs, b.asg, scheme)
            digests.append(vk.digest())
        assert digests[0] != digests[1]


class TestExpose:
    def test_exposed_values_become_instance(self):
        b = CircuitBuilder(k=4, num_cols=6, scale_bits=4)
        add = b.gadget(AddGadget)
        (z,) = add.assign_row([(Entry(3), Entry(4))])
        b.expose([z])
        assert b.cs.num_instance == 1
        assert b.asg.instance_values()[0][0] == 7
        b.mock_check()

    def test_unplaced_entry_rejected(self):
        b = CircuitBuilder(k=4, num_cols=6, scale_bits=4)
        with pytest.raises(ValueError, match="unplaced"):
            b.expose([Entry(1)])

    def test_too_many_public_values(self):
        b = CircuitBuilder(k=1, num_cols=6, scale_bits=2, lookup_bits=1)
        add = b.gadget(AddGadget)
        outs = add.assign_row([(Entry(1), Entry(1))])
        outs += add.assign_row([(Entry(1), Entry(1))])
        with pytest.raises(ValueError, match="too many"):
            b.expose(outs + outs)
