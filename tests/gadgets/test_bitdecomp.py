"""Tests for the bit-decomposition ReLU alternative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gadgets import BitDecompReluGadget, CircuitBuilder, PointwiseGadget
from repro.halo2 import MockProver
from repro.tensor import Entry


def builder(num_cols=12, **kw):
    kw.setdefault("k", 9)
    kw.setdefault("scale_bits", 4)
    return CircuitBuilder(num_cols=num_cols, **kw)


class TestBitDecompRelu:
    def test_positive(self):
        b = builder()
        g = b.gadget(BitDecompReluGadget, bits=8)
        (y,) = g.assign_row([(Entry(17),)])
        assert y.value == 17
        b.mock_check()

    def test_negative(self):
        b = builder()
        g = b.gadget(BitDecompReluGadget, bits=8)
        (y,) = g.assign_row([(Entry(-17),)])
        assert y.value == 0
        b.mock_check()

    def test_boundary_values(self):
        b = builder(num_cols=20)
        g = b.gadget(BitDecompReluGadget, bits=8)
        for v in (-128, -1, 0, 127):
            (y,) = g.assign_row([(Entry(v),)])
            assert y.value == max(v, 0)
        b.mock_check()

    def test_out_of_range_rejected(self):
        b = builder()
        g = b.gadget(BitDecompReluGadget, bits=8)
        with pytest.raises(ValueError, match="two's complement"):
            g.assign_row([(Entry(128),)])

    def test_needs_no_lookup_table(self):
        b = builder()
        b.gadget(BitDecompReluGadget, bits=8)
        assert not b.cs.lookups

    def test_too_narrow_row_rejected(self):
        b = builder(num_cols=4)
        with pytest.raises(ValueError, match="columns"):
            b.gadget(BitDecompReluGadget, bits=8)

    def test_nonbinary_bit_fails_mock(self):
        b = builder()
        g = b.gadget(BitDecompReluGadget, bits=8)
        (y,) = g.assign_row([(Entry(-3),)])
        # overwrite the sign bit with 0 and the output with the raw value
        sign_col = b.columns[2 + 7]
        b.asg.assign_advice(sign_col, y.cell.row, 0)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "gate" for f in failures)

    def test_apply_vector_packs(self):
        b = builder(num_cols=20, k=9)
        g = b.gadget(BitDecompReluGadget, bits=8)  # 2 slots per row
        outs = g.apply_vector([Entry(v) for v in (-4, 4, -1, 9, 3)])
        assert [o.value for o in outs] == [0, 4, 0, 9, 3]
        assert b.rows_used == 3
        b.mock_check()

    def test_rows_for_ops_bits(self):
        assert BitDecompReluGadget.rows_for_ops_bits(10, 20, 8) == 5
        with pytest.raises(ValueError):
            BitDecompReluGadget.rows_for_ops_bits(10, 4, 8)

    @given(x=st.integers(-128, 127))
    @settings(max_examples=20, deadline=None)
    def test_matches_lookup_relu(self, x):
        b = builder(num_cols=12, lookup_bits=8)
        bd = b.gadget(BitDecompReluGadget, bits=8)
        lk = b.gadget(PointwiseGadget, fn_name="relu")
        (y1,) = bd.assign_row([(Entry(x),)])
        (y2,) = lk.assign_row([(Entry(x),)])
        assert y1.value == y2.value == max(x, 0)
        b.mock_check()
