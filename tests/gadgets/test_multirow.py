"""Tests for the multi-row gadget variants (Table 13's counterfactual)."""

import pytest

from repro.gadgets import (
    AddGadget,
    CircuitBuilder,
    DotProdGadget,
    MaxGadget,
    MultiRowAddGadget,
    MultiRowDotGadget,
    MultiRowMaxGadget,
)
from repro.halo2 import MockProver
from repro.tensor import Entry


def builder(**kw):
    kw.setdefault("k", 9)
    kw.setdefault("num_cols", 10)
    kw.setdefault("scale_bits", 5)
    kw.setdefault("lookup_bits", 8)
    return CircuitBuilder(**kw)


class TestMultiRowAdd:
    def test_matches_single_row(self):
        b = builder()
        multi = b.gadget(MultiRowAddGadget)
        single = b.gadget(AddGadget)
        (z1,) = multi.assign_row([(Entry(5), Entry(7))])
        (z2,) = single.assign_row([(Entry(5), Entry(7))])
        assert z1.value == z2.value == 12
        b.mock_check()

    def test_uses_two_rows(self):
        b = builder()
        g = b.gadget(MultiRowAddGadget)
        g.assign_row([(Entry(1), Entry(2))])
        assert b.rows_used == 2

    def test_tampered_next_row_fails(self):
        b = builder()
        g = b.gadget(MultiRowAddGadget)
        (z,) = g.assign_row([(Entry(5), Entry(7))])
        b.asg.assign_advice(z.cell.column, z.cell.row, 13)
        assert MockProver(b.cs, b.asg).verify()


class TestMultiRowMax:
    def test_matches_single_row(self):
        b = builder()
        multi = b.gadget(MultiRowMaxGadget)
        single = b.gadget(MaxGadget)
        (c1,) = multi.assign_row([(Entry(-4), Entry(9))])
        (c2,) = single.assign_row([(Entry(-4), Entry(9))])
        assert c1.value == c2.value == 9
        b.mock_check()

    def test_cheat_fails(self):
        b = builder()
        g = b.gadget(MultiRowMaxGadget)
        (c,) = g.assign_row([(Entry(5), Entry(9))])
        b.asg.assign_advice(c.cell.column, c.cell.row, 5)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "lookup" for f in failures)


class TestMultiRowDot:
    def test_matches_single_row(self):
        b = builder()
        multi = b.gadget(MultiRowDotGadget)
        single = b.gadget(DotProdGadget)
        xs = [Entry(v) for v in (1, 2, 3)]
        ys = [Entry(v) for v in (4, 5, 6)]
        (z1,) = multi.assign_row([(xs, ys)])
        (z2,) = single.assign_row([([Entry(1), Entry(2), Entry(3)],
                                    [Entry(4), Entry(5), Entry(6)])])
        assert z1.value == z2.value == 32
        b.mock_check()

    def test_capacity_is_full_width(self):
        # multi-row dot fits N-1 terms vs single-row's (N-1)//2
        assert MultiRowDotGadget.terms_per_row(10) == 9
        assert DotProdGadget.terms_per_row(10) == 4

    def test_misaligned_rejected(self):
        b = builder()
        g = b.gadget(MultiRowDotGadget)
        with pytest.raises(ValueError):
            g.assign_row([([Entry(1)], [Entry(1), Entry(2)])])


def test_mixed_single_and_multi_row_circuit_proves():
    from repro.commit import scheme_by_name
    from repro.field import GOLDILOCKS
    from repro.halo2 import create_proof, keygen, verify_proof

    b = builder(k=9)
    add = b.gadget(MultiRowAddGadget)
    mx = b.gadget(MultiRowMaxGadget)
    dot = b.gadget(MultiRowDotGadget)
    (s,) = add.assign_row([(Entry(3), Entry(4))])
    (m,) = mx.assign_row([(s, Entry(5))])
    (z,) = dot.assign_row([([s, m], [Entry(2), Entry(3)])])
    assert z.value == 7 * 2 + 7 * 3
    b.mock_check()
    scheme = scheme_by_name("kzg", GOLDILOCKS)
    pk, vk = keygen(b.cs, b.asg, scheme)
    proof = create_proof(pk, b.asg, scheme)
    assert verify_proof(vk, proof, b.asg.instance_values(), scheme)
