"""Tests for the limb-decomposed wide variable division (paper §5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gadgets import CircuitBuilder, VarDivGadget, VarDivWideGadget
from repro.halo2 import MockProver
from repro.quantize import div_round
from repro.tensor import Entry


def builder(num_cols=10, lookup_bits=6, k=8):
    return CircuitBuilder(k=k, num_cols=num_cols, scale_bits=4,
                          lookup_bits=lookup_bits)


class TestVarDivWide:
    def test_divisor_beyond_narrow_table(self):
        b = builder(lookup_bits=6)  # narrow table bound = 64
        wide = b.gadget(VarDivWideGadget)
        # divisor 500 >> 64: narrow vardiv would refuse, wide handles it
        (c,) = wide.assign_row([(Entry(500), Entry(12345))])
        assert c.value == div_round(12345, 500)
        b.mock_check()

    def test_narrow_gadget_refuses_same_divisor(self):
        b = builder(lookup_bits=6)
        narrow = b.gadget(VarDivGadget)
        with pytest.raises(ValueError, match="limbs"):
            narrow.assign_row([(Entry(500), Entry(12345))])

    def test_small_divisors_also_work(self):
        b = builder()
        wide = b.gadget(VarDivWideGadget)
        (c,) = wide.assign_row([(Entry(3), Entry(10))])
        assert c.value == div_round(10, 3)
        b.mock_check()

    def test_capacity_limit(self):
        b = builder(lookup_bits=4)  # two-limb capacity = 2^8 / 2 = 128
        wide = b.gadget(VarDivWideGadget)
        with pytest.raises(ValueError, match="capacity"):
            wide.assign_row([(Entry(200), Entry(5))])

    def test_zero_divisor_rejected(self):
        b = builder()
        wide = b.gadget(VarDivWideGadget)
        with pytest.raises(ValueError, match="positive"):
            wide.assign_row([(Entry(0), Entry(5))])

    def test_wrong_quotient_fails_mock(self):
        b = builder()
        wide = b.gadget(VarDivWideGadget)
        (c,) = wide.assign_row([(Entry(300), Entry(10000))])
        b.asg.assign_advice(c.cell.column, c.cell.row, c.value + 1)
        assert MockProver(b.cs, b.asg).verify()

    def test_remainder_ge_divisor_fails_mock(self):
        # forging r >= 2a (i.e. claiming a smaller quotient) breaks the
        # d = 2a - r - 1 limb range checks
        b = builder(lookup_bits=6)
        wide = b.gadget(VarDivWideGadget)
        (c,) = wide.assign_row([(Entry(100), Entry(1000))])
        row = c.cell.row
        # claim c-1 and stuff the remainder with +2a
        b.asg.assign_advice(b.columns[2], row, c.value - 1)
        r = 2 * 1000 + 100 - 2 * 100 * (c.value - 1)
        b.asg.assign_advice(b.columns[3], row, r % 64)
        b.asg.assign_advice(b.columns[4], row, r // 64)
        failures = MockProver(b.cs, b.asg).verify()
        assert failures

    def test_end_to_end_proof(self):
        from repro.commit import scheme_by_name
        from repro.field import GOLDILOCKS
        from repro.halo2 import create_proof, keygen, verify_proof

        b = builder()
        wide = b.gadget(VarDivWideGadget)
        wide.assign_row([(Entry(777), Entry(123456))])
        b.mock_check()
        scheme = scheme_by_name("kzg", GOLDILOCKS)
        pk, vk = keygen(b.cs, b.asg, scheme)
        proof = create_proof(pk, b.asg, scheme)
        assert verify_proof(vk, proof, b.asg.instance_values(), scheme)

    @given(a=st.integers(1, 2000), num=st.integers(0, 100000))
    @settings(max_examples=20, deadline=None)
    def test_wide_vardiv_property(self, a, num):
        b = builder(lookup_bits=6)
        wide = b.gadget(VarDivWideGadget)
        (c,) = wide.assign_row([(Entry(a), Entry(num))])
        assert c.value == div_round(num, a)
        b.mock_check()


class TestSoftmaxUsesWideDivision:
    def test_many_classes_softmax_still_exact(self):
        import numpy as np

        from repro.layers import SoftmaxLayer
        from tests.layers.harness import run_layer

        layer = SoftmaxLayer()
        x = np.random.default_rng(5).uniform(-2, 2, (16,))
        got, ref, b = run_layer(layer, [x], scale_bits=5, num_cols=10, k=11)
        # wide division gadget was actually configured
        assert any("var_div_wide" in g.name for g in b.cs.gates)

    def test_few_classes_use_narrow(self):
        import numpy as np

        from repro.layers import SoftmaxLayer
        from tests.layers.harness import run_layer

        layer = SoftmaxLayer()
        x = np.random.default_rng(5).uniform(-2, 2, (3,))
        got, ref, b = run_layer(layer, [x], scale_bits=5, num_cols=10, k=11)
        assert any(g.name == "var_div" for g in b.cs.gates)
        assert not any("var_div_wide" in g.name for g in b.cs.gates)
