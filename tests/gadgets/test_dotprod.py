"""Tests for the dot-product gadgets."""

import pytest

from repro.gadgets import CircuitBuilder, DotProdBiasGadget, DotProdGadget, SumGadget
from repro.halo2 import MockProver
from repro.tensor import Entry


def entries(values):
    return [Entry(v) for v in values]


class TestDotProd:
    def test_single_row(self):
        b = CircuitBuilder(k=8, num_cols=9, scale_bits=4)
        g = b.gadget(DotProdGadget)
        assert g.terms_per_row(9) == 4
        (z,) = g.assign_row([(entries([1, 2, 3, 4]), entries([5, 6, 7, 8]))])
        assert z.value == 1 * 5 + 2 * 6 + 3 * 7 + 4 * 8
        b.mock_check()

    def test_partial_row(self):
        b = CircuitBuilder(k=8, num_cols=9, scale_bits=4)
        g = b.gadget(DotProdGadget)
        (z,) = g.assign_row([(entries([2, 3]), entries([10, 10]))])
        assert z.value == 50
        b.mock_check()

    def test_misaligned_rejected(self):
        b = CircuitBuilder(k=8, num_cols=9, scale_bits=4)
        g = b.gadget(DotProdGadget)
        with pytest.raises(ValueError):
            g.assign_row([(entries([1]), entries([1, 2]))])

    def test_long_dot_product_with_sum(self):
        # paper §5.2: split into ceil(m/n) partials, combine with Sum
        b = CircuitBuilder(k=8, num_cols=7, scale_bits=4)  # 3 terms/row
        dot = b.gadget(DotProdGadget)
        summed = b.gadget(SumGadget)
        xs, ys = list(range(1, 11)), list(range(10, 0, -1))
        partials = []
        for s in range(0, 10, 3):
            (z,) = dot.assign_row([(entries(xs[s:s + 3]), entries(ys[s:s + 3]))])
            partials.append(z)
        total = summed.sum_vector(partials)
        assert total.value == sum(x * y for x, y in zip(xs, ys))
        b.mock_check()


class TestDotProdBias:
    def test_single_row_with_bias(self):
        b = CircuitBuilder(k=8, num_cols=10, scale_bits=4)
        g = b.gadget(DotProdBiasGadget)
        assert g.terms_per_row(10) == 4
        (z,) = g.assign_row([(entries([1, 2]), entries([3, 4]), Entry(100))])
        assert z.value == 100 + 3 + 8
        b.mock_check()

    def test_chained_accumulation(self):
        # paper §5.2: first bias is the real bias, then chain accumulators
        b = CircuitBuilder(k=8, num_cols=8, scale_bits=4)  # 3 terms/row
        g = b.gadget(DotProdBiasGadget)
        xs, ys = list(range(1, 8)), list(range(7, 0, -1))
        z = g.dot(entries(xs), entries(ys), Entry(1000))
        assert z.value == 1000 + sum(x * y for x, y in zip(xs, ys))
        assert b.rows_used == 3
        b.mock_check()

    def test_tampered_accumulator_fails(self):
        b = CircuitBuilder(k=8, num_cols=8, scale_bits=4)
        g = b.gadget(DotProdBiasGadget)
        z = g.dot(entries([1, 2, 3, 4]), entries([1, 1, 1, 1]), Entry(0))
        assert z.value == 10
        b.asg.assign_advice(z.cell.column, z.cell.row, 11)
        failures = MockProver(b.cs, b.asg).verify()
        assert any(f.kind == "gate" for f in failures)


def test_both_variants_agree():
    b = CircuitBuilder(k=8, num_cols=11, scale_bits=4)
    xs, ys = list(range(1, 14)), [3] * 13
    dot = b.gadget(DotProdGadget)
    summed = b.gadget(SumGadget)
    n = dot.terms_per_row(11)
    partials = []
    for s in range(0, 13, n):
        (z,) = dot.assign_row([(entries(xs[s:s + n]), entries(ys[s:s + n]))])
        partials.append(z)
    via_sum = summed.sum_vector(partials)
    bias_g = b.gadget(DotProdBiasGadget)
    via_chain = bias_g.dot(entries(xs), entries(ys), b.zero())
    assert via_sum.value == via_chain.value == sum(x * 3 for x in xs)
    b.mock_check()
