"""Tests for CircuitBuilder bookkeeping and end-to-end gadget proofs."""

import pytest

from repro.commit import scheme_by_name
from repro.field import GOLDILOCKS
from repro.gadgets import (
    AddGadget,
    CircuitBuilder,
    MaxGadget,
    MulGadget,
    PointwiseGadget,
)
from repro.halo2 import create_proof, keygen, verify_proof
from repro.tensor import Entry


class TestBuilderBasics:
    def test_too_few_columns(self):
        with pytest.raises(ValueError):
            CircuitBuilder(k=6, num_cols=2, scale_bits=4)

    def test_gadget_instances_cached(self):
        b = CircuitBuilder(k=6, num_cols=6, scale_bits=4)
        assert b.gadget(AddGadget) is b.gadget(AddGadget)

    def test_constants_deduplicated(self):
        b = CircuitBuilder(k=6, num_cols=6, scale_bits=4)
        assert b.constant(5) is b.constant(5)
        assert b.constant(5) is not b.constant(6)

    def test_row_overflow_raises(self):
        b = CircuitBuilder(k=1, num_cols=6, scale_bits=2, lookup_bits=1)
        g = b.gadget(AddGadget)
        g.assign_row([(Entry(1), Entry(1))])
        g.assign_row([(Entry(1), Entry(1))])
        with pytest.raises(ValueError, match="overflow"):
            g.assign_row([(Entry(1), Entry(1))])

    def test_reused_entry_copy_constrained(self):
        b = CircuitBuilder(k=6, num_cols=6, scale_bits=4)
        g = b.gadget(AddGadget)
        x = Entry(5)
        (z1,) = g.assign_row([(x, Entry(1))])
        (z2,) = g.assign_row([(x, Entry(2))])  # x placed twice -> copy
        assert len(b.asg.copies) == 1
        assert (z1.value, z2.value) == (6, 7)
        b.mock_check()

    def test_table_too_large_for_grid(self):
        with pytest.raises(ValueError, match="rows"):
            b = CircuitBuilder(k=4, num_cols=6, scale_bits=4, lookup_bits=6)
            b.gadget(PointwiseGadget, fn_name="relu")

    def test_min_k_accounts_for_tables(self):
        b = CircuitBuilder(k=9, num_cols=6, scale_bits=4, lookup_bits=8)
        b.gadget(PointwiseGadget, fn_name="relu")
        assert b.min_k() == 9  # table needs 257 rows -> k=9


class TestEndToEndProofs:
    @pytest.mark.parametrize("backend", ["kzg", "ipa"])
    def test_mixed_gadget_circuit_proves(self, backend):
        b = CircuitBuilder(k=7, num_cols=8, scale_bits=4, lookup_bits=6)
        add = b.gadget(AddGadget)
        mul = b.gadget(MulGadget)
        mx = b.gadget(MaxGadget)
        relu = b.gadget(PointwiseGadget, fn_name="relu")
        (s,) = add.assign_row([(Entry(b.fp.encode(0.5)), Entry(b.fp.encode(0.25)))])
        (m,) = mul.assign_row([(s, Entry(b.fp.encode(-2.0)))])
        (r,) = relu.assign_row([(m,)])
        (c,) = mx.assign_row([(r, s)])
        assert b.fp.decode(c.value) == pytest.approx(0.75, abs=0.1)
        b.mock_check()

        scheme = scheme_by_name(backend, GOLDILOCKS)
        pk, vk = keygen(b.cs, b.asg, scheme)
        proof = create_proof(pk, b.asg, scheme)
        assert verify_proof(vk, proof, b.asg.instance_values(), scheme)

    def test_tampered_gadget_proof_rejected(self):
        b = CircuitBuilder(k=7, num_cols=8, scale_bits=4, lookup_bits=6)
        mul = b.gadget(MulGadget)
        (z,) = mul.assign_row([(Entry(32), Entry(32))])
        # cheat: claim a different product
        b.asg.assign_advice(z.cell.column, z.cell.row, z.value + 16)
        scheme = scheme_by_name("kzg", GOLDILOCKS)
        pk, vk = keygen(b.cs, b.asg, scheme)
        proof = create_proof(pk, b.asg, scheme)
        assert not verify_proof(vk, proof, b.asg.instance_values(), scheme)
