"""Tensors of grid-cell entries with free shape operations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.halo2.column import Column


@dataclass(frozen=True)
class Cell:
    """A concrete cell of the circuit grid."""

    column: Column
    row: int


class Entry:
    """One tensor element: a fixed-point value plus its grid cell.

    ``cell`` is None until a gadget first materializes the value in the
    grid; because shape operations share Entry objects, materializing a
    value once makes every view of it copy-constrainable.
    """

    __slots__ = ("value", "cell")

    def __init__(self, value: int, cell: Optional[Cell] = None):
        self.value = value
        self.cell = cell

    def __repr__(self) -> str:
        return "Entry(%d%s)" % (self.value, ", placed" if self.cell else "")


class Tensor:
    """An n-dimensional array of shared :class:`Entry` references."""

    def __init__(self, entries: np.ndarray):
        if entries.dtype != object:
            raise TypeError("entries must be an object ndarray of Entry")
        self._entries = entries

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_values(cls, values, shape: Optional[Sequence[int]] = None) -> "Tensor":
        """Build a tensor of fresh entries from integer values."""
        arr = np.asarray(values, dtype=object)
        if shape is not None:
            arr = arr.reshape(shape)
        out = np.empty(arr.shape, dtype=object)
        for idx in np.ndindex(arr.shape):
            out[idx] = Entry(int(arr[idx]))
        return cls(out)

    @classmethod
    def from_entries(cls, entries: Sequence[Entry], shape: Sequence[int]) -> "Tensor":
        """Wrap existing entries (row-major) into a tensor view."""
        arr = np.empty(len(entries), dtype=object)
        for i, e in enumerate(entries):
            arr[i] = e
        return cls(arr.reshape(tuple(shape)))

    @classmethod
    def filled(cls, entry: Entry, shape: Sequence[int]) -> "Tensor":
        """A tensor where every element references the *same* entry."""
        out = np.empty(tuple(shape), dtype=object)
        out[...] = entry
        return cls(out)

    # -- basic properties --------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._entries.shape

    @property
    def size(self) -> int:
        return int(self._entries.size)

    @property
    def ndim(self) -> int:
        return self._entries.ndim

    def entries(self) -> List[Entry]:
        """Entries in row-major order."""
        return list(self._entries.reshape(-1))

    def entry(self, *index: int) -> Entry:
        return self._entries[tuple(index)]

    def values(self) -> np.ndarray:
        """Signed fixed-point values as an object ndarray."""
        out = np.empty(self.shape, dtype=object)
        for idx in np.ndindex(self.shape):
            out[idx] = self._entries[idx].value
        return out

    def values_i64(self) -> np.ndarray:
        """Values as int64 (raises on overflow) for numpy math."""
        return self.values().astype(np.int64)

    # -- free shape operations (paper §5.1) ----------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(self._entries.reshape(shape))

    def flatten(self) -> "Tensor":
        return Tensor(self._entries.reshape(-1))

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        return Tensor(np.transpose(self._entries, axes))

    def __getitem__(self, index) -> "Tensor":
        sub = self._entries[index]
        if not isinstance(sub, np.ndarray):
            sub = np.array(sub, dtype=object).reshape(())
        return Tensor(sub)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        return Tensor(np.squeeze(self._entries, axis=axis))

    def expand_dims(self, axis: int) -> "Tensor":
        return Tensor(np.expand_dims(self._entries, axis))

    def pad(self, pad_width, pad_entry: Entry) -> "Tensor":
        """Pad with references to a shared constant entry (free)."""
        padded = np.pad(
            self._entries,
            pad_width,
            mode="constant",
            constant_values=pad_entry,
        )
        return Tensor(padded)

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t._entries for t in tensors]
        return Tensor(np.concatenate(arrays, axis=axis))

    def split(self, sections: int, axis: int = 0) -> List["Tensor"]:
        return [Tensor(part) for part in np.split(self._entries, sections, axis)]

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t._entries for t in tensors]
        return Tensor(np.stack(arrays, axis=axis))

    def broadcast_to(self, shape: Sequence[int]) -> "Tensor":
        return Tensor(np.broadcast_to(self._entries, tuple(shape)).copy())

    def __repr__(self) -> str:
        return "Tensor(shape=%r)" % (self.shape,)
