"""Cell-reference tensors.

A :class:`Tensor` is an n-dimensional view over *entries*, where each
entry carries a fixed-point value and (once materialized) the grid cell
holding it.  Shape operations — reshape, transpose, slice, concat, pad,
split — only rearrange entry references and are therefore free with
respect to proving time (paper §5.1, "shape operations").
"""

from repro.tensor.tensor import Cell, Entry, Tensor

__all__ = ["Cell", "Entry", "Tensor"]
