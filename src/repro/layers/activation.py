"""Activation layers: pointwise non-linearities applied to a tensor.

Every registered non-linearity becomes a layer kind (``relu``,
``sigmoid``, ...).  ReLU additionally honours the ``relu`` layout choice:
the lookup table or the bit-decomposition alternative (paper §3).
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.gadgets import BitDecompReluGadget, CircuitBuilder, PointwiseGadget
from repro.gadgets.nonlinear import NONLINEAR_FUNCTIONS, fixed_eval
from repro.layers.base import Layer, LayoutChoices, ceil_div
from repro.quantize import FixedPoint
from repro.tensor import Tensor


class ActivationLayer(Layer):
    """Apply a registered pointwise function elementwise."""

    kind = "abstract"  # concrete subclasses register per fn_name
    fn_name = ""  # set by subclasses

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        fn = np.vectorize(NONLINEAR_FUNCTIONS[self.fn_name], otypes=[np.float64])
        return fn(np.asarray(inputs[0], dtype=np.float64))

    def forward_fixed(self, inputs, params, fp: FixedPoint):
        arr = inputs[0]
        out = np.empty(arr.shape, dtype=object)
        flat_in, flat_out = arr.reshape(-1), out.reshape(-1)
        for i in range(flat_in.size):
            flat_out[i] = fixed_eval(self.fn_name, int(flat_in[i]), fp)
        return out

    def _use_bitdecomp(self, choices: LayoutChoices) -> bool:
        return self.fn_name == "relu" and choices.relu == "bitdecomp"

    def synthesize(self, builder: CircuitBuilder, inputs: List[Tensor],
                   params, choices: LayoutChoices) -> Tensor:
        x = inputs[0]
        entries = x.entries()
        if self._use_bitdecomp(choices):
            gadget = builder.gadget(BitDecompReluGadget, bits=choices.relu_bits)
            outs = gadget.apply_vector(entries)
        else:
            gadget = builder.gadget(PointwiseGadget, fn_name=self.fn_name)
            outs = gadget.apply_vector(entries)
        return Tensor.from_entries(outs, x.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = int(np.prod(input_shapes[0]))
        if self._use_bitdecomp(choices):
            return BitDecompReluGadget.rows_for_ops_bits(
                n, num_cols, choices.relu_bits
            )
        return ceil_div(n, PointwiseGadget.slots_per_row(num_cols))

    def tables(self, choices, scale_bits, input_shapes) -> Set[Tuple[str, object]]:
        if self._use_bitdecomp(choices):
            return set()
        return {("nl", self.fn_name)}


def _make_activation(fn_name: str):
    cls = type(
        "%sLayer" % fn_name.title().replace("_", ""),
        (ActivationLayer,),
        {"kind": fn_name, "fn_name": fn_name},
    )
    return cls


#: One layer class per registered non-linearity.
ACTIVATION_LAYERS = {
    name: _make_activation(name) for name in sorted(NONLINEAR_FUNCTIONS)
}
