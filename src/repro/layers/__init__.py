"""ML layers composed from gadgets (paper §6).

ZKML supports 43 layer kinds across six families: linear layers (with the
Freivalds option), arithmetic layers (with the dot-product-reuse option),
pointwise activations (with the ReLU bit-decomposition option), pooling,
normalization, softmax, and free shape operations.  ``layer_registry``
maps kind names to classes; ``supported_layer_kinds()`` enumerates them.
"""

from repro.layers.base import Layer, LayoutChoices, layer_registry
from repro.layers.activation import ACTIVATION_LAYERS, ActivationLayer
from repro.layers.arithmetic import (
    AddLayer,
    DivLayer,
    MulLayer,
    ReduceMeanLayer,
    ReduceSumLayer,
    SquareLayer,
    SquaredDifferenceLayer,
    SubLayer,
)
from repro.layers.linear import (
    BatchMatMulLayer,
    Conv2DLayer,
    DepthwiseConv2DLayer,
    FullyConnectedLayer,
)
from repro.layers.normalization import BatchNormLayer, LayerNormLayer, RMSNormLayer
from repro.layers.pooling import AvgPool2DLayer, GlobalAvgPoolLayer, MaxPool2DLayer
from repro.layers.shape import (
    ConcatLayer,
    ExpandDimsLayer,
    FlattenLayer,
    GatherLayer,
    IdentityLayer,
    PadLayer,
    ReshapeLayer,
    SliceLayer,
    SplitLayer,
    SqueezeLayer,
    TransposeLayer,
)
from repro.layers.softmax import SoftmaxLayer


def supported_layer_kinds():
    """All registered layer kinds, sorted."""
    return sorted(layer_registry)


__all__ = [
    "Layer",
    "LayoutChoices",
    "layer_registry",
    "supported_layer_kinds",
    "ActivationLayer",
    "ACTIVATION_LAYERS",
    "AddLayer",
    "SubLayer",
    "MulLayer",
    "DivLayer",
    "SquareLayer",
    "SquaredDifferenceLayer",
    "ReduceSumLayer",
    "ReduceMeanLayer",
    "FullyConnectedLayer",
    "Conv2DLayer",
    "DepthwiseConv2DLayer",
    "BatchMatMulLayer",
    "BatchNormLayer",
    "LayerNormLayer",
    "RMSNormLayer",
    "MaxPool2DLayer",
    "AvgPool2DLayer",
    "GlobalAvgPoolLayer",
    "SoftmaxLayer",
    "ReshapeLayer",
    "FlattenLayer",
    "TransposeLayer",
    "SqueezeLayer",
    "ExpandDimsLayer",
    "ConcatLayer",
    "SliceLayer",
    "PadLayer",
    "GatherLayer",
    "IdentityLayer",
    "SplitLayer",
]
