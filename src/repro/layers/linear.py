"""Linear layers: FullyConnected, Conv2D, DepthwiseConv2D, BatchMatMul.

All of them reduce to a shared matmul core with three implementations
(the ``linear`` layout choice, paper §6):

- ``dot_bias`` — chain the accumulator through DotProdBias rows (the
  paper's "first bias is zero, remaining biases are the accumulation");
- ``dot_sum``  — DotProd partials combined with the Sum gadget;
- ``freivalds`` — compute the product outside the circuit and verify
  ``C r = A (B r)`` with a random vector (Freivalds' algorithm, §6.1),
  turning an O(m·k·p) layout into three matrix–vector products.

Inputs and weights are at scale SF, biases at SF^2; the raw product is
rescaled once at the end (one DivRound row block), which is both cheaper
and more precise than rescaling each partial.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from repro.gadgets import (
    AddGadget,
    CircuitBuilder,
    DivRoundConstGadget,
    DotProdBiasGadget,
    DotProdGadget,
    SumGadget,
)
from repro.layers.base import (
    Layer,
    LayoutChoices,
    arr_div_round,
    ceil_div,
    sum_rows_for_vector,
)
from repro.quantize import FixedPoint
from repro.resilience import faults
from repro.resilience.errors import FreivaldsCheckError
from repro.tensor import Entry, Tensor

#: Freivalds challenge entries are bounded to keep raw values well below p.
_FREIVALDS_BITS = 16


def _freivalds_challenges(builder: CircuitBuilder, a: Tensor, b: Tensor,
                          count: int) -> List[Entry]:
    """Derive the random vector r from the committed operand values.

    Real halo2 would sample r from the transcript *after* committing A, B
    and C; we derive it from a hash of the operand values, which models
    the same "r is fixed only once the matrices are" property.
    """
    h = hashlib.blake2b(b"freivalds")
    for t in (a, b):
        for e in t.entries():
            h.update(int(e.value).to_bytes(16, "little", signed=True))
    seed = h.digest()
    out = []
    counter = 0
    while len(out) < count:
        block = hashlib.blake2b(seed + counter.to_bytes(4, "little")).digest()
        counter += 1
        for i in range(0, len(block) - 1, 2):
            if len(out) >= count:
                break
            r = 1 + (int.from_bytes(block[i : i + 2], "little") % ((1 << _FREIVALDS_BITS) - 1))
            out.append(builder.constant(r))
    return out


def _dot_raw(builder: CircuitBuilder, choices: LayoutChoices,
             xs: List[Entry], ys: List[Entry], bias: Optional[Entry]) -> Entry:
    """One full-length dot product at raw scale, per the layout choice."""
    if choices.linear == "dot_sum":
        dot = builder.gadget(DotProdGadget)
        n = dot.terms_per_row(builder.num_cols)
        partials = []
        for s in range(0, len(xs), n):
            (z,) = dot.assign_row([(xs[s : s + n], ys[s : s + n])])
            partials.append(z)
        if bias is not None:
            partials.append(bias)
        return builder.gadget(SumGadget).sum_vector(partials)
    dot = builder.gadget(DotProdBiasGadget)
    return dot.dot(xs, ys, bias if bias is not None else builder.zero())


def _dot_rows(choices: LayoutChoices, length: int, num_cols: int,
              with_bias: bool) -> int:
    """Row count of :func:`_dot_raw`."""
    if choices.linear == "dot_sum":
        n = DotProdGadget.terms_per_row(num_cols)
        partials = ceil_div(length, n) + (1 if with_bias else 0)
        return ceil_div(length, n) + sum_rows_for_vector(partials, num_cols)
    n = DotProdBiasGadget.terms_per_row(num_cols)
    return ceil_div(length, n)


def matmul_synthesize(
    builder: CircuitBuilder,
    choices: LayoutChoices,
    a: Tensor,
    b: Tensor,
    bias: Optional[Tensor],
) -> Tensor:
    """C = A @ B (+ bias), rescaled to scale_bits; A is (m, k), B is (k, p)."""
    m, k = a.shape
    k2, p = b.shape
    if k != k2:
        raise ValueError("matmul shape mismatch: %r @ %r" % (a.shape, b.shape))
    sf = builder.fp.factor
    rescale = builder.gadget(DivRoundConstGadget, divisor=sf)

    if choices.linear == "freivalds":
        raw = _freivalds_synthesize(builder, a, b, bias)
    else:
        raw = np.empty((m, p), dtype=object)
        a_rows = [a[i].entries() for i in range(m)]
        b_cols = [b[:, j].entries() for j in range(p)]
        for i in range(m):
            for j in range(p):
                bias_e = bias.entries()[j] if bias is not None else None
                raw[i, j] = _dot_raw(builder, choices, a_rows[i], b_cols[j], bias_e)
    flat = [raw[i, j] for i in range(m) for j in range(p)]
    outs = rescale.assign_many([(e,) for e in flat])
    return Tensor.from_entries(outs, (m, p))


def _freivalds_synthesize(builder, a: Tensor, b: Tensor,
                          bias: Optional[Tensor]) -> np.ndarray:
    """Raw C entries verified with Freivalds' check C r = A (B r) + bias r."""
    m, k = a.shape
    _, p = b.shape
    av = a.values()
    bv = b.values()
    raw_vals = av @ bv
    if bias is not None:
        raw_vals = raw_vals + np.asarray(bias.values()).reshape(1, p)
    c_entries = np.empty((m, p), dtype=object)
    for i in range(m):
        for j in range(p):
            c_entries[i, j] = Entry(int(raw_vals[i, j]))

    r = _freivalds_challenges(builder, a, b, p)
    # Br: one dot of length p per row of B
    br = [
        _dot_raw(builder, choices_dot_sum_free(), b[i].entries(), r, None)
        for i in range(k)
    ]
    # A(Br): one dot of length k per row of A
    abr = [
        _dot_raw(builder, choices_dot_sum_free(), a[i].entries(), br, None)
        for i in range(m)
    ]
    # bias . r
    bias_r = None
    if bias is not None:
        bias_r = _dot_raw(builder, choices_dot_sum_free(), bias.entries(), r, None)
    # Cr: one dot of length p per row of C (this materializes C's entries)
    crs = [
        _dot_raw(builder, choices_dot_sum_free(), list(c_entries[i]), r, None)
        for i in range(m)
    ]
    if bias_r is not None:
        add = builder.gadget(AddGadget)
        rhs = add.assign_many([(abr[i], bias_r) for i in range(m)])
    else:
        rhs = abr
    try:
        faults.maybe_inject("freivalds")
    except faults.InjectedFault as exc:
        raise FreivaldsCheckError(
            "Freivalds challenge check failed: C r != A (B r)",
            rows=m,
        ) from exc
    for i, (cr, expected) in enumerate(zip(crs, rhs)):
        # the copy constraint enforces the identity in-circuit; checking
        # the witness values here surfaces a mismatch as a typed error the
        # supervisor can degrade on, instead of a failed proof later
        if int(cr.value) != int(expected.value):
            raise FreivaldsCheckError(
                "Freivalds challenge check failed: C r != A (B r)",
                matrix_row=i,
            )
        builder.asg.copy(cr.cell.column, cr.cell.row,
                         expected.cell.column, expected.cell.row)
    return c_entries


def choices_dot_sum_free() -> LayoutChoices:
    """Internal dots inside Freivalds use the chained-accumulator layout."""
    return LayoutChoices(linear="dot_bias")


def matmul_rows(
    choices: LayoutChoices,
    m: int,
    k: int,
    p: int,
    num_cols: int,
    with_bias: bool,
) -> int:
    """Row count of :func:`matmul_synthesize`."""
    rescale_rows = ceil_div(m * p, DivRoundConstGadget.slots_per_row(num_cols))
    if choices.linear == "freivalds":
        inner = choices_dot_sum_free()
        rows = k * _dot_rows(inner, p, num_cols, False)       # Br
        rows += m * _dot_rows(inner, k, num_cols, False)      # A(Br)
        if with_bias:
            rows += _dot_rows(inner, p, num_cols, False)      # bias.r
            rows += ceil_div(m, AddGadget.slots_per_row(num_cols))
        rows += m * _dot_rows(inner, p, num_cols, False)      # Cr
        return rows + rescale_rows
    return m * p * _dot_rows(choices, k, num_cols, with_bias) + rescale_rows


def matmul_fixed(a: np.ndarray, b: np.ndarray, bias: Optional[np.ndarray],
                 fp: FixedPoint) -> np.ndarray:
    """Exact fixed-point reference of the matmul core."""
    raw = np.asarray(a, dtype=object) @ np.asarray(b, dtype=object)
    if bias is not None:
        raw = raw + np.asarray(bias, dtype=object).reshape(1, -1)
    return arr_div_round(raw, fp.factor)


class FullyConnectedLayer(Layer):
    """y = x @ W + b with W of shape (in, units)."""

    kind = "fully_connected"
    param_names = ("weight", "bias")

    @property
    def units(self) -> int:
        return self.attrs["units"]

    def output_shape(self, input_shapes):
        return tuple(input_shapes[0][:-1]) + (self.units,)

    def quantize_params(self, params, fp):
        out = {"weight": fp.encode_array(params["weight"])}
        fp2 = FixedPoint(2 * fp.scale_bits)
        out["bias"] = fp2.encode_array(params["bias"])
        return out

    def forward_float(self, inputs, params):
        return inputs[0] @ params["weight"] + params["bias"]

    def forward_fixed(self, inputs, params, fp):
        x = inputs[0]
        lead = x.shape[:-1]
        flat = np.asarray(x, dtype=object).reshape(-1, x.shape[-1])
        out = matmul_fixed(flat, params["weight"], params["bias"], fp)
        return out.reshape(lead + (self.units,))

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        lead = x.shape[:-1]
        m = int(np.prod(lead)) if lead else 1
        a = x.reshape(m, x.shape[-1])
        out = matmul_synthesize(builder, choices, a, params["weight"],
                                params["bias"])
        return out.reshape(*(lead + (self.units,)))

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        shape = input_shapes[0]
        m = int(np.prod(shape[:-1])) if len(shape) > 1 else 1
        return matmul_rows(choices, m, shape[-1], self.units, num_cols, True)

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


def _conv_geometry(h, w, kh, kw, stride, padding):
    if padding == "same":
        oh, ow = ceil_div(h, stride), ceil_div(w, stride)
        pad_h = max((oh - 1) * stride + kh - h, 0)
        pad_w = max((ow - 1) * stride + kw - w, 0)
        pads = (pad_h // 2, pad_h - pad_h // 2, pad_w // 2, pad_w - pad_w // 2)
    elif padding == "valid":
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
        pads = (0, 0, 0, 0)
    else:
        raise ValueError("padding must be 'same' or 'valid'")
    return oh, ow, pads


def _im2col_values(x: np.ndarray, kh, kw, stride, pads):
    top, bottom, left, right = pads
    x = np.pad(x, ((top, bottom), (left, right), (0, 0)),
               constant_values=0)
    h, w, c = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = np.empty((oh * ow, kh * kw * c), dtype=object)
    idx = 0
    for i in range(oh):
        for j in range(ow):
            patch = x[i * stride : i * stride + kh,
                      j * stride : j * stride + kw, :]
            cols[idx] = patch.reshape(-1)
            idx += 1
    return cols, oh, ow


class Conv2DLayer(Layer):
    """2D convolution, NHWC without the batch dim: input (h, w, c_in)."""

    kind = "conv2d"
    param_names = ("weight", "bias")

    @property
    def stride(self):
        return self.attrs.get("stride", 1)

    @property
    def padding(self):
        return self.attrs.get("padding", "same")

    def _geometry(self, input_shape, weight_shape):
        h, w, _ = input_shape
        kh, kw = weight_shape[:2]
        return _conv_geometry(h, w, kh, kw, self.stride, self.padding)

    def output_shape(self, input_shapes):
        kh = self.attrs["kernel"][0]
        kw = self.attrs["kernel"][1]
        cout = self.attrs["filters"]
        h, w, _ = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, kh, kw, self.stride, self.padding)
        return (oh, ow, cout)

    def quantize_params(self, params, fp):
        fp2 = FixedPoint(2 * fp.scale_bits)
        return {
            "weight": fp.encode_array(params["weight"]),
            "bias": fp2.encode_array(params["bias"]),
        }

    def forward_float(self, inputs, params):
        x = np.asarray(inputs[0], dtype=np.float64)
        w = np.asarray(params["weight"], dtype=np.float64)
        kh, kw, cin, cout = w.shape
        oh, ow, pads = self._geometry(x.shape, w.shape)
        cols, oh, ow = _im2col_values(x, kh, kw, self.stride, pads)
        out = cols.astype(np.float64) @ w.reshape(-1, cout) + params["bias"]
        return out.reshape(oh, ow, cout)

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        w = params["weight"]
        kh, kw, cin, cout = w.shape
        oh, ow, pads = self._geometry(x.shape, w.shape)
        cols, oh, ow = _im2col_values(x, kh, kw, self.stride, pads)
        out = matmul_fixed(cols, np.asarray(w, dtype=object).reshape(-1, cout),
                           params["bias"], fp)
        return out.reshape(oh, ow, cout)

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        w = params["weight"]
        kh, kw, cin, cout = w.shape
        oh, ow, pads = self._geometry(x.shape, w.shape)
        top, bottom, left, right = pads
        padded = x.pad(((top, bottom), (left, right), (0, 0)), builder.zero())
        patches = []
        for i in range(oh):
            for j in range(ow):
                patch = padded[
                    i * self.stride : i * self.stride + kh,
                    j * self.stride : j * self.stride + kw,
                    :,
                ]
                patches.append(patch.flatten())
        a = Tensor.stack(patches, axis=0)  # (oh*ow, kh*kw*cin)
        b = w.reshape(kh * kw * cin, cout)
        out = matmul_synthesize(builder, choices, a, b, params["bias"])
        return out.reshape(oh, ow, cout)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        kh, kw = self.attrs["kernel"]
        cout = self.attrs["filters"]
        h, w, cin = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, kh, kw, self.stride, self.padding)
        return matmul_rows(choices, oh * ow, kh * kw * cin, cout, num_cols, True)

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


class DepthwiseConv2DLayer(Layer):
    """Depthwise 2D convolution: weight (kh, kw, c_in, multiplier)."""

    kind = "depthwise_conv2d"
    param_names = ("weight", "bias")

    @property
    def stride(self):
        return self.attrs.get("stride", 1)

    @property
    def padding(self):
        return self.attrs.get("padding", "same")

    def output_shape(self, input_shapes):
        kh, kw = self.attrs["kernel"]
        mult = self.attrs.get("multiplier", 1)
        h, w, cin = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, kh, kw, self.stride, self.padding)
        return (oh, ow, cin * mult)

    def quantize_params(self, params, fp):
        fp2 = FixedPoint(2 * fp.scale_bits)
        return {
            "weight": fp.encode_array(params["weight"]),
            "bias": fp2.encode_array(params["bias"]),
        }

    def _forward(self, x, w, bias, fixed, fp=None):
        kh, kw, cin, mult = w.shape
        h, w_in, _ = x.shape
        oh, ow, pads = _conv_geometry(h, w_in, kh, kw, self.stride, self.padding)
        top, bottom, left, right = pads
        xp = np.pad(x, ((top, bottom), (left, right), (0, 0)), constant_values=0)
        out = np.empty((oh, ow, cin * mult), dtype=object if fixed else np.float64)
        for c in range(cin):
            for q in range(mult):
                kernel = w[:, :, c, q].reshape(-1)
                for i in range(oh):
                    for j in range(ow):
                        patch = xp[i * self.stride : i * self.stride + kh,
                                   j * self.stride : j * self.stride + kw,
                                   c].reshape(-1)
                        raw = int(np.dot(patch, kernel)) if fixed else float(
                            np.dot(patch.astype(np.float64),
                                   kernel.astype(np.float64)))
                        if fixed:
                            from repro.quantize import div_round

                            out[i, j, c * mult + q] = div_round(
                                raw + int(bias[c * mult + q]), fp.factor)
                        else:
                            out[i, j, c * mult + q] = raw + bias[c * mult + q]
        return out

    def forward_float(self, inputs, params):
        return self._forward(
            np.asarray(inputs[0], dtype=np.float64),
            np.asarray(params["weight"], dtype=np.float64),
            np.asarray(params["bias"], dtype=np.float64),
            fixed=False,
        )

    def forward_fixed(self, inputs, params, fp):
        return self._forward(
            np.asarray(inputs[0], dtype=object),
            np.asarray(params["weight"], dtype=object),
            np.asarray(params["bias"], dtype=object),
            fixed=True,
            fp=fp,
        )

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        w = params["weight"]
        kh, kw, cin, mult = w.shape
        h, w_in, _ = x.shape
        oh, ow, pads = _conv_geometry(h, w_in, kh, kw, self.stride, self.padding)
        top, bottom, left, right = pads
        padded = x.pad(((top, bottom), (left, right), (0, 0)), builder.zero())
        rescale = builder.gadget(DivRoundConstGadget, divisor=builder.fp.factor)
        bias_entries = params["bias"].entries()
        inner = choices if choices.linear != "freivalds" else choices_dot_sum_free()
        raws = []
        for i in range(oh):
            for j in range(ow):
                for c in range(cin):
                    patch = padded[i * self.stride : i * self.stride + kh,
                                   j * self.stride : j * self.stride + kw,
                                   c].flatten().entries()
                    for q in range(mult):
                        kernel = w[:, :, c, q].flatten().entries()
                        raws.append(_dot_raw(builder, inner, patch, kernel,
                                             bias_entries[c * mult + q]))
        outs = rescale.assign_many([(e,) for e in raws])
        # raws were produced channel-major within each position; reorder to
        # (oh, ow, cin*mult) row-major, which is exactly their order already.
        return Tensor.from_entries(outs, (oh, ow, cin * mult))

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        kh, kw = self.attrs["kernel"]
        mult = self.attrs.get("multiplier", 1)
        h, w, cin = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, kh, kw, self.stride, self.padding)
        inner = choices if choices.linear != "freivalds" else choices_dot_sum_free()
        dots = oh * ow * cin * mult
        rows = dots * _dot_rows(inner, kh * kw, num_cols, True)
        rows += ceil_div(dots, DivRoundConstGadget.slots_per_row(num_cols))
        return rows

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


class BatchMatMulLayer(Layer):
    """C[b] = A[b] @ B[b] for stacked matrices; no bias."""

    kind = "batch_matmul"

    def output_shape(self, input_shapes):
        a, b = input_shapes
        return tuple(a[:-1]) + (b[-1],)

    def forward_float(self, inputs, params):
        return np.matmul(np.asarray(inputs[0], dtype=np.float64),
                         np.asarray(inputs[1], dtype=np.float64))

    def forward_fixed(self, inputs, params, fp):
        a = np.asarray(inputs[0], dtype=object)
        b = np.asarray(inputs[1], dtype=object)
        lead = a.shape[:-2]
        m, k = a.shape[-2:]
        p = b.shape[-1]
        fa = a.reshape((-1, m, k))
        fb = b.reshape((-1, k, p))
        out = np.empty((fa.shape[0], m, p), dtype=object)
        for i in range(fa.shape[0]):
            out[i] = matmul_fixed(fa[i], fb[i], None, fp)
        return out.reshape(lead + (m, p))

    def synthesize(self, builder, inputs, params, choices):
        a, b = inputs
        lead = a.shape[:-2]
        m, k = a.shape[-2:]
        p = b.shape[-1]
        batch = int(np.prod(lead)) if lead else 1
        fa = a.reshape(batch, m, k)
        fb = b.reshape(batch, k, p)
        outs = [
            matmul_synthesize(builder, choices, fa[i], fb[i], None)
            for i in range(batch)
        ]
        stacked = Tensor.stack(outs, axis=0)
        return stacked.reshape(*(lead + (m, p)))

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        a, b = input_shapes
        m, k = a[-2:]
        p = b[-1]
        batch = int(np.prod(a[:-2])) if len(a) > 2 else 1
        return batch * matmul_rows(choices, m, k, p, num_cols, False)

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}
