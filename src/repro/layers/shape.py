"""Shape layers: free operations that only rearrange cell references.

Because tensors hold references to previously assigned cells, these
layers consume no rows and no new cells (paper §5.1, "shape operations");
``count_rows`` is zero for all of them.
"""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer
from repro.tensor import Tensor


class _FreeLayer(Layer):
    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        return 0

    def forward_fixed(self, inputs, params, fp):
        return self.forward_float(inputs, params)


class ReshapeLayer(_FreeLayer):
    kind = "reshape"

    @property
    def shape(self):
        return tuple(self.attrs["shape"])

    def output_shape(self, input_shapes):
        target = list(self.shape)
        if -1 in target:
            total = int(np.prod(input_shapes[0]))
            known = -int(np.prod(target))
            target[target.index(-1)] = total // known
        return tuple(target)

    def forward_float(self, inputs, params):
        return np.reshape(inputs[0], self.output_shape([np.shape(inputs[0])]))

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0].reshape(self.output_shape([inputs[0].shape]))


class FlattenLayer(_FreeLayer):
    kind = "flatten"

    def output_shape(self, input_shapes):
        return (int(np.prod(input_shapes[0])),)

    def forward_float(self, inputs, params):
        return np.reshape(inputs[0], -1)

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0].flatten()


class TransposeLayer(_FreeLayer):
    kind = "transpose"

    @property
    def axes(self):
        return self.attrs.get("axes")

    def output_shape(self, input_shapes):
        shape = input_shapes[0]
        axes = self.axes or tuple(reversed(range(len(shape))))
        return tuple(shape[a] for a in axes)

    def forward_float(self, inputs, params):
        return np.transpose(inputs[0], self.axes)

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0].transpose(self.axes)


class SqueezeLayer(_FreeLayer):
    kind = "squeeze"

    def output_shape(self, input_shapes):
        axis = self.attrs.get("axis")
        shape = list(input_shapes[0])
        if axis is None:
            return tuple(s for s in shape if s != 1)
        shape.pop(axis)
        return tuple(shape)

    def forward_float(self, inputs, params):
        return np.squeeze(inputs[0], axis=self.attrs.get("axis"))

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0].squeeze(self.attrs.get("axis"))


class ExpandDimsLayer(_FreeLayer):
    kind = "expand_dims"

    def output_shape(self, input_shapes):
        shape = list(input_shapes[0])
        shape.insert(self.attrs["axis"], 1)
        return tuple(shape)

    def forward_float(self, inputs, params):
        return np.expand_dims(inputs[0], self.attrs["axis"])

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0].expand_dims(self.attrs["axis"])


class ConcatLayer(_FreeLayer):
    kind = "concat"

    @property
    def axis(self):
        return self.attrs.get("axis", 0)

    def output_shape(self, input_shapes):
        out = list(input_shapes[0])
        out[self.axis] = sum(s[self.axis] for s in input_shapes)
        return tuple(out)

    def forward_float(self, inputs, params):
        return np.concatenate(inputs, axis=self.axis)

    def synthesize(self, builder, inputs, params, choices):
        return Tensor.concat(inputs, axis=self.axis)


class SliceLayer(_FreeLayer):
    """Slice with per-axis (start, stop) pairs; None keeps the axis."""

    kind = "slice"

    def _slices(self, ndim):
        spec = self.attrs["slices"]
        out = []
        for i in range(ndim):
            if i < len(spec) and spec[i] is not None:
                out.append(slice(spec[i][0], spec[i][1]))
            else:
                out.append(slice(None))
        return tuple(out)

    def output_shape(self, input_shapes):
        dummy = np.empty(input_shapes[0], dtype=np.int8)
        return dummy[self._slices(len(input_shapes[0]))].shape

    def forward_float(self, inputs, params):
        return inputs[0][self._slices(np.ndim(inputs[0]))]

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0][self._slices(inputs[0].ndim)]


class PadLayer(_FreeLayer):
    """Zero padding; references a single shared zero cell."""

    kind = "pad"

    @property
    def pad_width(self):
        return tuple(tuple(p) for p in self.attrs["pad_width"])

    def output_shape(self, input_shapes):
        return tuple(
            s + a + b for s, (a, b) in zip(input_shapes[0], self.pad_width)
        )

    def forward_float(self, inputs, params):
        return np.pad(inputs[0], self.pad_width, constant_values=0)

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0].pad(self.pad_width, builder.zero())


class GatherLayer(_FreeLayer):
    """Embedding lookup: select rows of the weight matrix by fixed indices.

    The token ids are circuit-shaping data (fixed-length NLP inputs,
    §4.1), so the gather is a pure reference selection over the embedding
    parameter tensor — free, like every shape operation.
    """

    kind = "gather"
    param_names = ("table",)

    @property
    def indices(self):
        return list(self.attrs["indices"])

    def output_shape(self, input_shapes):
        return (len(self.indices),) + tuple(self.attrs["table_shape"][1:])

    def forward_float(self, inputs, params):
        return np.asarray(params["table"])[self.indices]

    def forward_fixed(self, inputs, params, fp):
        return np.asarray(params["table"], dtype=object)[self.indices]

    def synthesize(self, builder, inputs, params, choices):
        table = params["table"]
        rows = [table[i] for i in self.indices]
        return Tensor.stack(rows, axis=0)


class IdentityLayer(_FreeLayer):
    kind = "identity"

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        return inputs[0]

    def synthesize(self, builder, inputs, params, choices):
        return inputs[0]


class SplitLayer(_FreeLayer):
    """Keep one section of an even split (multi-output graphs route each
    section through its own SplitLayer)."""

    kind = "split"

    def output_shape(self, input_shapes):
        axis = self.attrs.get("axis", 0)
        sections = self.attrs["sections"]
        shape = list(input_shapes[0])
        shape[axis] //= sections
        return tuple(shape)

    def forward_float(self, inputs, params):
        axis = self.attrs.get("axis", 0)
        parts = np.split(inputs[0], self.attrs["sections"], axis=axis)
        return parts[self.attrs.get("index", 0)]

    def synthesize(self, builder, inputs, params, choices):
        parts = inputs[0].split(self.attrs["sections"],
                                self.attrs.get("axis", 0))
        return parts[self.attrs.get("index", 0)]
