"""The softmax layer (paper §6.1, "Softmax").

A vector-valued non-linearity that cannot be a lookup table (the table
would need SF^n rows), so it is composed from the specialized gadgets:

1. shift by the vector max (numeric stability; softmax is shift
   invariant) — Max gadget tournament;
2. scaled exponential e^(x - max) * SF — the ``exp`` lookup table;
3. sum of the exponentials — Sum gadget;
4. divide with the *numerator scaled by SF* (not the sum divided by SF,
   which would destroy precision) — ScaleConst + VarDiv gadgets.
"""

from __future__ import annotations

import numpy as np
from repro.resilience.errors import LayoutError

from repro.gadgets import (
    MaxGadget,
    PointwiseGadget,
    ScaleConstGadget,
    SubGadget,
    SumGadget,
    VarDivGadget,
    VarDivWideGadget,
)
from repro.gadgets.nonlinear import fixed_eval
from repro.layers.base import Layer, ceil_div, sum_rows_for_vector
from repro.quantize import div_round
from repro.tensor import Tensor


def max_tournament_rows(length: int, num_cols: int) -> int:
    slots = MaxGadget.slots_per_row(num_cols)
    rows, work = 0, length
    while work > 1:
        pairs = work // 2
        rows += ceil_div(pairs, slots)
        work = pairs + (work % 2)
    return rows


def needs_wide_division(classes: int, scale_bits: int) -> bool:
    """Whether the sum of exponentials outgrows the shared range table.

    The table covers [0, 2^(scale_bits+3)); the divisor is at most
    classes * SF, so more than four classes needs the limb-decomposed
    division (paper §5.1's "decompose a into limbs").
    """
    return 2 * classes * (1 << scale_bits) > (1 << (scale_bits + 3))


class SoftmaxLayer(Layer):
    """Softmax over the last axis."""

    kind = "softmax"

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        x = np.asarray(inputs[0], dtype=np.float64)
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        out = np.empty(x.shape, dtype=object)
        flat = x.reshape(-1, x.shape[-1])
        flat_out = out.reshape(-1, x.shape[-1])
        for row in range(flat.shape[0]):
            vec = [int(v) for v in flat[row]]
            m = max(vec)
            exps = [fixed_eval("exp", v - m, fp) for v in vec]
            total = sum(exps)
            for i, e in enumerate(exps):
                flat_out[row, i] = div_round(e * fp.factor, total)
        return out

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        length = x.shape[-1]
        lead = int(np.prod(x.shape[:-1])) if x.ndim > 1 else 1
        flat = x.reshape(lead, length)
        mx = builder.gadget(MaxGadget)
        sub = builder.gadget(SubGadget)
        exp = builder.gadget(PointwiseGadget, fn_name="exp")
        summed = builder.gadget(SumGadget)
        scale = builder.gadget(ScaleConstGadget, factor=builder.fp.factor)
        if needs_wide_division(length, builder.scale_bits):
            vdiv = builder.gadget(VarDivWideGadget)
        else:
            vdiv = builder.gadget(VarDivGadget)
        outs = []
        for row in range(lead):
            vec = flat[row].entries()
            m = mx.max_vector(vec)
            shifted = sub.assign_many([(v, m) for v in vec])
            exps = exp.apply_vector(shifted)
            total = summed.sum_vector(exps)
            nums = scale.assign_many([(e,) for e in exps])
            outs.extend(vdiv.assign_many([(total, n) for n in nums]))
        return Tensor.from_entries(outs, x.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        shape = input_shapes[0]
        length = shape[-1]
        lead = int(np.prod(shape[:-1])) if len(shape) > 1 else 1
        rows = max_tournament_rows(length, num_cols)
        rows += ceil_div(length, SubGadget.slots_per_row(num_cols))
        rows += ceil_div(length, PointwiseGadget.slots_per_row(num_cols))
        rows += sum_rows_for_vector(length, num_cols)
        rows += ceil_div(length, ScaleConstGadget.slots_per_row(num_cols))
        vdiv = (VarDivWideGadget if needs_wide_division(length, scale_bits)
                else VarDivGadget)
        slots = vdiv.slots_per_row(num_cols)
        if slots == 0:
            raise LayoutError(
                "softmax needs at least %d columns for %s"
                % (vdiv.cells_per_op, vdiv.name),
                num_cols=num_cols, gadget=vdiv.name,
            )
        rows += ceil_div(length, slots)
        return lead * rows

    def tables(self, choices, scale_bits, input_shapes):
        return {("nl", "exp"), ("range", "lookup")}
