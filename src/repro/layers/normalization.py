"""Normalization layers: BatchNorm (folded), LayerNorm, RMSNorm."""

from __future__ import annotations

import numpy as np

from repro.gadgets import (
    AddGadget,
    DivRoundConstGadget,
    MulGadget,
    PointwiseGadget,
    SquareGadget,
    SubGadget,
    SumGadget,
)
from repro.gadgets.nonlinear import fixed_eval
from repro.layers.base import (
    Layer,
    arr_div_round,
    ceil_div,
    sum_rows_for_vector,
)
from repro.quantize import FixedPoint, div_round
from repro.tensor import Tensor


class BatchNormLayer(Layer):
    """Inference-time batch normalization, folded to y = x*scale + offset.

    The folding happens at quantization time: scale = gamma/sqrt(var+eps),
    offset = beta - mean*scale, so the circuit is one Mul and one Add per
    element.
    """

    kind = "batch_norm"
    param_names = ("gamma", "beta", "mean", "variance")

    @property
    def eps(self) -> float:
        return self.attrs.get("eps", 1e-3)

    def _folded(self, params):
        scale = params["gamma"] / np.sqrt(params["variance"] + self.eps)
        offset = params["beta"] - params["mean"] * scale
        return scale, offset

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        scale, offset = self._folded(params)
        return inputs[0] * scale + offset

    def quantize_params(self, params, fp):
        scale, offset = self._folded(params)
        return {"scale": fp.encode_array(scale), "offset": fp.encode_array(offset)}

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        scale = np.broadcast_to(params["scale"], x.shape)
        offset = np.broadcast_to(params["offset"], x.shape)
        return arr_div_round(x * scale, fp.factor) + offset

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        scale = params["scale"].broadcast_to(x.shape)
        offset = params["offset"].broadcast_to(x.shape)
        mul = builder.gadget(MulGadget)
        add = builder.gadget(AddGadget)
        scaled = mul.assign_many(list(zip(x.entries(), scale.entries())))
        outs = add.assign_many(list(zip(scaled, offset.entries())))
        return Tensor.from_entries(outs, x.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = int(np.prod(input_shapes[0]))
        return (ceil_div(n, MulGadget.slots_per_row(num_cols))
                + ceil_div(n, AddGadget.slots_per_row(num_cols)))

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


class LayerNormLayer(Layer):
    """Layer normalization over the last axis with learned gamma/beta."""

    kind = "layer_norm"
    param_names = ("gamma", "beta")

    @property
    def eps(self) -> float:
        return self.attrs.get("eps", 1e-3)

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        x = np.asarray(inputs[0], dtype=np.float64)
        mean = x.mean(axis=-1, keepdims=True)
        var = ((x - mean) ** 2).mean(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + self.eps) * params["gamma"] + params["beta"]

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        length = x.shape[-1]
        eps_fixed = fp.encode(self.eps)
        flat = x.reshape(-1, length)
        out = np.empty(flat.shape, dtype=object)
        gamma, beta = params["gamma"], params["beta"]
        for row in range(flat.shape[0]):
            vec = [int(v) for v in flat[row]]
            mean = div_round(sum(vec), length)
            d = [v - mean for v in vec]
            sq = [div_round(v * v, fp.factor) for v in d]
            var = div_round(sum(sq), length)
            r = fixed_eval("rsqrt", var + eps_fixed, fp)
            for i in range(length):
                normed = div_round(d[i] * r, fp.factor)
                scaled = div_round(normed * int(gamma[i]), fp.factor)
                out[row, i] = scaled + int(beta[i])
        return out.reshape(x.shape)

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        length = x.shape[-1]
        lead = int(np.prod(x.shape[:-1])) if x.ndim > 1 else 1
        flat = x.reshape(lead, length)
        summed = builder.gadget(SumGadget)
        mean_div = builder.gadget(DivRoundConstGadget, divisor=length)
        sub = builder.gadget(SubGadget)
        square = builder.gadget(SquareGadget)
        rsqrt = builder.gadget(PointwiseGadget, fn_name="rsqrt")
        mul = builder.gadget(MulGadget)
        add = builder.gadget(AddGadget)
        eps_entry = builder.constant(builder.fp.encode(self.eps))
        gamma = params["gamma"].entries()
        beta = params["beta"].entries()
        outs = []
        for row in range(lead):
            vec = flat[row].entries()
            (mean,) = mean_div.assign_row([(summed.sum_vector(vec),)])
            d = sub.assign_many([(v, mean) for v in vec])
            sq = square.assign_many([(v,) for v in d])
            (var,) = mean_div.assign_row([(summed.sum_vector(sq),)])
            (var_eps,) = add.assign_row([(var, eps_entry)])
            (r,) = rsqrt.assign_row([(var_eps,)])
            normed = mul.assign_many([(v, r) for v in d])
            scaled = mul.assign_many(list(zip(normed, gamma)))
            outs.extend(add.assign_many(list(zip(scaled, beta))))
        return Tensor.from_entries(outs, x.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        shape = input_shapes[0]
        length = shape[-1]
        lead = int(np.prod(shape[:-1])) if len(shape) > 1 else 1
        rows = sum_rows_for_vector(length, num_cols) + 1
        rows += ceil_div(length, SubGadget.slots_per_row(num_cols))
        rows += ceil_div(length, SquareGadget.slots_per_row(num_cols))
        rows += sum_rows_for_vector(length, num_cols) + 1
        rows += 1  # var + eps
        rows += 1  # rsqrt
        rows += 2 * ceil_div(length, MulGadget.slots_per_row(num_cols))
        rows += ceil_div(length, AddGadget.slots_per_row(num_cols))
        return lead * rows

    def tables(self, choices, scale_bits, input_shapes):
        return {("nl", "rsqrt"), ("range", 2 << scale_bits),
                ("range", 2 * input_shapes[0][-1])}


class RMSNormLayer(Layer):
    """Root-mean-square normalization (no mean subtraction)."""

    kind = "rms_norm"
    param_names = ("gamma",)

    @property
    def eps(self) -> float:
        return self.attrs.get("eps", 1e-3)

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        x = np.asarray(inputs[0], dtype=np.float64)
        ms = (x ** 2).mean(axis=-1, keepdims=True)
        return x / np.sqrt(ms + self.eps) * params["gamma"]

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        length = x.shape[-1]
        eps_fixed = fp.encode(self.eps)
        flat = x.reshape(-1, length)
        out = np.empty(flat.shape, dtype=object)
        gamma = params["gamma"]
        for row in range(flat.shape[0]):
            vec = [int(v) for v in flat[row]]
            sq = [div_round(v * v, fp.factor) for v in vec]
            ms = div_round(sum(sq), length)
            r = fixed_eval("rsqrt", ms + eps_fixed, fp)
            for i in range(length):
                normed = div_round(vec[i] * r, fp.factor)
                out[row, i] = div_round(normed * int(gamma[i]), fp.factor)
        return out.reshape(x.shape)

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        length = x.shape[-1]
        lead = int(np.prod(x.shape[:-1])) if x.ndim > 1 else 1
        flat = x.reshape(lead, length)
        summed = builder.gadget(SumGadget)
        mean_div = builder.gadget(DivRoundConstGadget, divisor=length)
        square = builder.gadget(SquareGadget)
        rsqrt = builder.gadget(PointwiseGadget, fn_name="rsqrt")
        mul = builder.gadget(MulGadget)
        add = builder.gadget(AddGadget)
        eps_entry = builder.constant(builder.fp.encode(self.eps))
        gamma = params["gamma"].entries()
        outs = []
        for row in range(lead):
            vec = flat[row].entries()
            sq = square.assign_many([(v,) for v in vec])
            (ms,) = mean_div.assign_row([(summed.sum_vector(sq),)])
            (ms_eps,) = add.assign_row([(ms, eps_entry)])
            (r,) = rsqrt.assign_row([(ms_eps,)])
            normed = mul.assign_many([(v, r) for v in vec])
            outs.extend(mul.assign_many(list(zip(normed, gamma))))
        return Tensor.from_entries(outs, x.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        shape = input_shapes[0]
        length = shape[-1]
        lead = int(np.prod(shape[:-1])) if len(shape) > 1 else 1
        rows = ceil_div(length, SquareGadget.slots_per_row(num_cols))
        rows += sum_rows_for_vector(length, num_cols) + 1
        rows += 2  # +eps, rsqrt
        rows += 2 * ceil_div(length, MulGadget.slots_per_row(num_cols))
        return lead * rows

    def tables(self, choices, scale_bits, input_shapes):
        return {("nl", "rsqrt"), ("range", 2 << scale_bits),
                ("range", 2 * input_shapes[0][-1])}
