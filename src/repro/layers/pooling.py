"""Pooling layers: MaxPool2D, AvgPool2D, GlobalAvgPool (paper Table 3)."""

from __future__ import annotations

import numpy as np

from repro.gadgets import DivRoundConstGadget, MaxGadget, SumGadget
from repro.layers.base import Layer, arr_div_round, ceil_div, sum_rows_for_vector
from repro.layers.linear import _conv_geometry
from repro.tensor import Tensor


class _Pool2D(Layer):
    @property
    def pool(self):
        return self.attrs.get("pool", 2)

    @property
    def stride(self):
        return self.attrs.get("stride", self.pool)

    def output_shape(self, input_shapes):
        h, w, c = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, self.pool, self.pool, self.stride,
                                   "valid")
        return (oh, ow, c)

    def _windows_values(self, x: np.ndarray):
        h, w, c = x.shape
        oh, ow, _ = _conv_geometry(h, w, self.pool, self.pool, self.stride,
                                   "valid")
        for i in range(oh):
            for j in range(ow):
                for ch in range(c):
                    yield (i, j, ch), x[
                        i * self.stride : i * self.stride + self.pool,
                        j * self.stride : j * self.stride + self.pool,
                        ch,
                    ].reshape(-1)

    def _windows_entries(self, x: Tensor):
        h, w, c = x.shape
        oh, ow, _ = _conv_geometry(h, w, self.pool, self.pool, self.stride,
                                   "valid")
        for i in range(oh):
            for j in range(ow):
                for ch in range(c):
                    yield x[
                        i * self.stride : i * self.stride + self.pool,
                        j * self.stride : j * self.stride + self.pool,
                        ch,
                    ].flatten().entries()


class MaxPool2DLayer(_Pool2D):
    kind = "max_pool2d"

    def forward_float(self, inputs, params):
        x = np.asarray(inputs[0], dtype=np.float64)
        out = np.empty(self.output_shape([x.shape]), dtype=np.float64)
        for (i, j, ch), window in self._windows_values(x):
            out[i, j, ch] = window.max()
        return out

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        out = np.empty(self.output_shape([x.shape]), dtype=object)
        for (i, j, ch), window in self._windows_values(x):
            out[i, j, ch] = max(int(v) for v in window)
        return out

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        g = builder.gadget(MaxGadget)
        outs = [g.max_vector(window) for window in self._windows_entries(x)]
        return Tensor.from_entries(outs, self.output_shape([x.shape]))

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        h, w, c = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, self.pool, self.pool, self.stride,
                                   "valid")
        slots = MaxGadget.slots_per_row(num_cols)
        window = self.pool * self.pool
        # tournament: each round halves (pairing), rows = ceil(pairs/slots)
        rows_per_window = 0
        work = window
        while work > 1:
            pairs = work // 2
            rows_per_window += ceil_div(pairs, slots)
            work = pairs + (work % 2)
        return oh * ow * c * rows_per_window

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", "lookup")}


class AvgPool2DLayer(_Pool2D):
    kind = "avg_pool2d"

    def forward_float(self, inputs, params):
        x = np.asarray(inputs[0], dtype=np.float64)
        out = np.empty(self.output_shape([x.shape]), dtype=np.float64)
        for (i, j, ch), window in self._windows_values(x):
            out[i, j, ch] = window.mean()
        return out

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        out = np.empty(self.output_shape([x.shape]), dtype=object)
        count = self.pool * self.pool
        sums = np.empty(out.shape, dtype=object)
        for (i, j, ch), window in self._windows_values(x):
            sums[i, j, ch] = sum(int(v) for v in window)
        return arr_div_round(sums, count)

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        summed = builder.gadget(SumGadget)
        div = builder.gadget(DivRoundConstGadget, divisor=self.pool * self.pool)
        sums = [summed.sum_vector(w) for w in self._windows_entries(x)]
        outs = div.assign_many([(s,) for s in sums])
        return Tensor.from_entries(outs, self.output_shape([x.shape]))

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        h, w, c = input_shapes[0]
        oh, ow, _ = _conv_geometry(h, w, self.pool, self.pool, self.stride,
                                   "valid")
        window = self.pool * self.pool
        rows = oh * ow * c * sum_rows_for_vector(window, num_cols)
        rows += ceil_div(oh * ow * c, DivRoundConstGadget.slots_per_row(num_cols))
        return rows

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 * self.pool * self.pool)}


class GlobalAvgPoolLayer(Layer):
    """Mean over the spatial dims: (h, w, c) -> (c,)."""

    kind = "global_avg_pool"

    def output_shape(self, input_shapes):
        return (input_shapes[0][-1],)

    def forward_float(self, inputs, params):
        return np.asarray(inputs[0], dtype=np.float64).mean(axis=(0, 1))

    def forward_fixed(self, inputs, params, fp):
        x = np.asarray(inputs[0], dtype=object)
        h, w, c = x.shape
        sums = x.sum(axis=(0, 1))
        return arr_div_round(np.asarray(sums, dtype=object), h * w)

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        h, w, c = x.shape
        summed = builder.gadget(SumGadget)
        div = builder.gadget(DivRoundConstGadget, divisor=h * w)
        sums = [
            summed.sum_vector(x[:, :, ch].flatten().entries())
            for ch in range(c)
        ]
        outs = div.assign_many([(s,) for s in sums])
        return Tensor.from_entries(outs, (c,))

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        h, w, c = input_shapes[0]
        rows = c * sum_rows_for_vector(h * w, num_cols)
        rows += ceil_div(c, DivRoundConstGadget.slots_per_row(num_cols))
        return rows

    def tables(self, choices, scale_bits, input_shapes):
        h, w, _ = input_shapes[0]
        return {("range", 2 * h * w)}
