"""Arithmetic layers: elementwise tensor ops and reductions (paper §6.1).

Each elementwise layer supports two implementations, matching the paper's
observation that arithmetic layers "can be implemented with custom
gadgets or by repurposing the dot product gadget":

- ``custom``  — the packed arithmetic gadgets (several ops per row);
- ``dotprod`` — reuse the dot-product constraint (one op per row, plus a
  rescale row where needed), trading rows for fewer distinct constraints.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.gadgets import (
    AddGadget,
    CircuitBuilder,
    DivRoundConstGadget,
    DotProdBiasGadget,
    DotProdGadget,
    MulGadget,
    ScaleConstGadget,
    SquareGadget,
    SquaredDiffGadget,
    SubGadget,
    SumGadget,
    VarDivGadget,
)
from repro.layers.base import (
    Layer,
    LayoutChoices,
    arr_div_round,
    ceil_div,
    sum_rows_for_vector,
)
from repro.quantize import FixedPoint, div_round
from repro.tensor import Tensor


def _broadcast_pair(a: Tensor, b: Tensor) -> Tuple[Tensor, Tensor]:
    shape = np.broadcast_shapes(a.shape, b.shape)
    return a.broadcast_to(shape), b.broadcast_to(shape)


class _ElementwiseBinary(Layer):
    """Shared machinery for binary elementwise layers."""

    def output_shape(self, input_shapes):
        return tuple(np.broadcast_shapes(*input_shapes))

    def _pairs(self, inputs: List[Tensor]):
        a, b = _broadcast_pair(inputs[0], inputs[1])
        return list(zip(a.entries(), b.entries())), a.shape

    def _num_ops(self, input_shapes) -> int:
        return int(np.prod(np.broadcast_shapes(*input_shapes)))


class AddLayer(_ElementwiseBinary):
    kind = "add"

    def forward_float(self, inputs, params):
        return inputs[0] + inputs[1]

    def forward_fixed(self, inputs, params, fp):
        return inputs[0] + inputs[1]

    def synthesize(self, builder, inputs, params, choices):
        pairs, shape = self._pairs(inputs)
        if choices.arithmetic == "dotprod":
            g = builder.gadget(DotProdBiasGadget)
            one = builder.constant(1)
            outs = [g.assign_row([([x], [one], y)])[0] for x, y in pairs]
        else:
            g = builder.gadget(AddGadget)
            outs = g.assign_many(pairs)
        return Tensor.from_entries(outs, shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = self._num_ops(input_shapes)
        if choices.arithmetic == "dotprod":
            return n
        return ceil_div(n, AddGadget.slots_per_row(num_cols))


class SubLayer(_ElementwiseBinary):
    kind = "sub"

    def forward_float(self, inputs, params):
        return inputs[0] - inputs[1]

    def forward_fixed(self, inputs, params, fp):
        return inputs[0] - inputs[1]

    def synthesize(self, builder, inputs, params, choices):
        pairs, shape = self._pairs(inputs)
        if choices.arithmetic == "dotprod":
            g = builder.gadget(DotProdBiasGadget)
            minus_one = builder.constant(-1)
            outs = [g.assign_row([([y], [minus_one], x)])[0] for x, y in pairs]
        else:
            g = builder.gadget(SubGadget)
            outs = g.assign_many(pairs)
        return Tensor.from_entries(outs, shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = self._num_ops(input_shapes)
        if choices.arithmetic == "dotprod":
            return n
        return ceil_div(n, SubGadget.slots_per_row(num_cols))


class MulLayer(_ElementwiseBinary):
    kind = "mul"

    def forward_float(self, inputs, params):
        return inputs[0] * inputs[1]

    def forward_fixed(self, inputs, params, fp):
        raw = inputs[0] * inputs[1]
        return arr_div_round(raw, fp.factor)

    def synthesize(self, builder, inputs, params, choices):
        pairs, shape = self._pairs(inputs)
        if choices.arithmetic == "dotprod":
            dot = builder.gadget(DotProdGadget)
            rescale = builder.gadget(DivRoundConstGadget, divisor=builder.fp.factor)
            outs = []
            for x, y in pairs:
                (raw,) = dot.assign_row([([x], [y])])
                outs.extend(rescale.assign_row([(raw,)]))
        else:
            g = builder.gadget(MulGadget)
            outs = g.assign_many(pairs)
        return Tensor.from_entries(outs, shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = self._num_ops(input_shapes)
        if choices.arithmetic == "dotprod":
            return 2 * n
        return ceil_div(n, MulGadget.slots_per_row(num_cols))

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


class DivLayer(_ElementwiseBinary):
    """Elementwise fixed-point division; the divisor must be positive."""

    kind = "div"

    def forward_float(self, inputs, params):
        return inputs[0] / inputs[1]

    def forward_fixed(self, inputs, params, fp):
        a, b = inputs
        out = np.empty(np.broadcast_shapes(a.shape, b.shape), dtype=object)
        a = np.broadcast_to(a, out.shape)
        b = np.broadcast_to(b, out.shape)
        flat_a, flat_b = a.reshape(-1), b.reshape(-1)
        flat_o = out.reshape(-1)
        for i in range(flat_o.size):
            flat_o[i] = div_round(int(flat_a[i]) * fp.factor, int(flat_b[i]))
        return out

    def synthesize(self, builder, inputs, params, choices):
        pairs, shape = self._pairs(inputs)
        scale = builder.gadget(ScaleConstGadget, factor=builder.fp.factor)
        vdiv = builder.gadget(VarDivGadget)
        outs = []
        for x, y in pairs:
            (num,) = scale.assign_row([(x,)])
            outs.extend(vdiv.assign_row([(y, num)]))
        return Tensor.from_entries(outs, shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        return 2 * self._num_ops(input_shapes)

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", "lookup")}


class SquareLayer(Layer):
    kind = "square"

    def output_shape(self, input_shapes):
        return input_shapes[0]

    def forward_float(self, inputs, params):
        return inputs[0] ** 2

    def forward_fixed(self, inputs, params, fp):
        return arr_div_round(inputs[0] * inputs[0], fp.factor)

    def synthesize(self, builder, inputs, params, choices):
        x = inputs[0]
        ops = [(e,) for e in x.entries()]
        if choices.arithmetic == "dotprod":
            dot = builder.gadget(DotProdGadget)
            rescale = builder.gadget(DivRoundConstGadget, divisor=builder.fp.factor)
            outs = []
            for (e,) in ops:
                (raw,) = dot.assign_row([([e], [e])])
                outs.extend(rescale.assign_row([(raw,)]))
        else:
            g = builder.gadget(SquareGadget)
            outs = g.assign_many(ops)
        return Tensor.from_entries(outs, x.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = int(np.prod(input_shapes[0]))
        if choices.arithmetic == "dotprod":
            return 2 * n
        return ceil_div(n, SquareGadget.slots_per_row(num_cols))

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


class SquaredDifferenceLayer(_ElementwiseBinary):
    kind = "squared_difference"

    def forward_float(self, inputs, params):
        return (inputs[0] - inputs[1]) ** 2

    def forward_fixed(self, inputs, params, fp):
        diff = inputs[0] - inputs[1]
        return arr_div_round(diff * diff, fp.factor)

    def synthesize(self, builder, inputs, params, choices):
        pairs, shape = self._pairs(inputs)
        if choices.arithmetic == "dotprod":
            bias_dot = builder.gadget(DotProdBiasGadget)
            dot = builder.gadget(DotProdGadget)
            rescale = builder.gadget(DivRoundConstGadget, divisor=builder.fp.factor)
            minus_one = builder.constant(-1)
            outs = []
            for x, y in pairs:
                (diff,) = bias_dot.assign_row([([y], [minus_one], x)])
                (raw,) = dot.assign_row([([diff], [diff])])
                outs.extend(rescale.assign_row([(raw,)]))
        else:
            g = builder.gadget(SquaredDiffGadget)
            outs = g.assign_many(pairs)
        return Tensor.from_entries(outs, shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        n = self._num_ops(input_shapes)
        if choices.arithmetic == "dotprod":
            return 3 * n
        return ceil_div(n, SquaredDiffGadget.slots_per_row(num_cols))

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 << scale_bits)}


class ReduceSumLayer(Layer):
    """Sum over one axis (or everything when axis is None)."""

    kind = "reduce_sum"

    @property
    def axis(self):
        return self.attrs.get("axis")

    def output_shape(self, input_shapes):
        shape = input_shapes[0]
        if self.axis is None:
            return ()
        return tuple(s for i, s in enumerate(shape) if i != self.axis % len(shape))

    def forward_float(self, inputs, params):
        return np.sum(inputs[0], axis=self.axis)

    def forward_fixed(self, inputs, params, fp):
        return np.sum(inputs[0], axis=self.axis)

    def _vectors(self, x: Tensor) -> Tuple[List[List], Tuple[int, ...]]:
        if self.axis is None:
            return [x.entries()], ()
        axis = self.axis % x.ndim
        moved = x.transpose(
            [i for i in range(x.ndim) if i != axis] + [axis]
        )
        out_shape = moved.shape[:-1]
        flat = moved.reshape(int(np.prod(out_shape or (1,))), moved.shape[-1])
        return [flat[i].entries() for i in range(flat.shape[0])], out_shape

    def synthesize(self, builder, inputs, params, choices):
        vectors, out_shape = self._vectors(inputs[0])
        g = builder.gadget(SumGadget)
        outs = [g.sum_vector(vec) for vec in vectors]
        return Tensor.from_entries(outs, out_shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        shape = input_shapes[0]
        if self.axis is None:
            return sum_rows_for_vector(int(np.prod(shape)), num_cols)
        axis = self.axis % len(shape)
        count = int(np.prod(shape)) // shape[axis]
        return count * sum_rows_for_vector(shape[axis], num_cols)


class ReduceMeanLayer(ReduceSumLayer):
    kind = "reduce_mean"

    def _count(self, shape):
        if self.axis is None:
            return int(np.prod(shape))
        return shape[self.axis % len(shape)]

    def forward_float(self, inputs, params):
        return np.mean(np.asarray(inputs[0], dtype=np.float64), axis=self.axis)

    def forward_fixed(self, inputs, params, fp):
        total = np.sum(inputs[0], axis=self.axis)
        return arr_div_round(np.asarray(total, dtype=object).reshape(
            np.shape(total)), self._count(inputs[0].shape))

    def synthesize(self, builder, inputs, params, choices):
        summed = super().synthesize(builder, inputs, params, choices)
        count = self._count(inputs[0].shape)
        g = builder.gadget(DivRoundConstGadget, divisor=count)
        outs = g.assign_many([(e,) for e in summed.entries()])
        return Tensor.from_entries(outs, summed.shape)

    def count_rows(self, num_cols, input_shapes, choices, scale_bits):
        rows = super().count_rows(num_cols, input_shapes, choices, scale_bits)
        n_out = max(int(np.prod(self.output_shape(input_shapes) or (1,))), 1)
        return rows + ceil_div(n_out, DivRoundConstGadget.slots_per_row(num_cols))

    def tables(self, choices, scale_bits, input_shapes):
        return {("range", 2 * self._count(input_shapes[0]))}
