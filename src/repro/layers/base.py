"""Layer base class, registry, and layout choices.

A layer owns four views of one ML operation:

- ``forward_float``  — numpy float32/64 reference semantics;
- ``forward_fixed``  — exact fixed-point reference semantics, bit-for-bit
  identical to what the circuit computes (tests enforce this);
- ``synthesize``     — lay the operation out as gadget rows;
- ``count_rows``     — closed-form row count for the physical-layout
  simulator (tests enforce it matches ``synthesize`` exactly).

The :class:`LayoutChoices` knobs select among equivalent gadget
implementations; the optimizer enumerates them as *logical layouts*
(paper §7.2), with the pruning heuristic of one choice per layer family.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Set, Tuple, Type

import numpy as np

from repro.gadgets import CircuitBuilder
from repro.quantize import FixedPoint, div_round
from repro.tensor import Tensor

#: kind -> layer class
layer_registry: Dict[str, Type["Layer"]] = {}


@dataclass(frozen=True)
class LayoutChoices:
    """One logical layout: an implementation choice per layer family.

    - ``linear``: 'dot_bias' (chained accumulator), 'dot_sum' (partials +
      Sum gadget), or 'freivalds' (randomized matmul verification).
    - ``relu``: 'lookup' table or 'bitdecomp' bit decomposition.
    - ``arithmetic``: 'custom' packed gadgets or 'dotprod' reusing the
      dot-product constraint (paper §5.1's trade-off).
    """

    linear: str = "dot_bias"
    relu: str = "lookup"
    arithmetic: str = "custom"
    relu_bits: int = 16

    def replace(self, **kw) -> "LayoutChoices":
        return replace(self, **kw)

    LINEAR_OPTIONS = ("dot_bias", "dot_sum", "freivalds")
    RELU_OPTIONS = ("lookup", "bitdecomp")
    ARITHMETIC_OPTIONS = ("custom", "dotprod")


class Layer:
    """Base class; subclasses register themselves by ``kind``."""

    kind = "abstract"
    #: names of parameter tensors (weights) this layer expects.
    param_names: Tuple[str, ...] = ()

    def __init__(self, name: str = "", **attrs):
        self.name = name or self.kind
        self.attrs = attrs

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.kind != "abstract":
            layer_registry[cls.kind] = cls

    # -- shape & reference semantics ----------------------------------------

    def output_shape(self, input_shapes: List[Tuple[int, ...]]) -> Tuple[int, ...]:
        raise NotImplementedError

    def forward_float(
        self, inputs: List[np.ndarray], params: Dict[str, np.ndarray]
    ) -> np.ndarray:
        raise NotImplementedError

    def forward_fixed(
        self,
        inputs: List[np.ndarray],
        params: Dict[str, np.ndarray],
        fp: FixedPoint,
    ) -> np.ndarray:
        raise NotImplementedError

    # -- circuit view -----------------------------------------------------------

    def synthesize(
        self,
        builder: CircuitBuilder,
        inputs: List[Tensor],
        params: Dict[str, Tensor],
        choices: LayoutChoices,
    ) -> Tensor:
        raise NotImplementedError

    def count_rows(
        self,
        num_cols: int,
        input_shapes: List[Tuple[int, ...]],
        choices: LayoutChoices,
        scale_bits: int,
    ) -> int:
        raise NotImplementedError

    def tables(
        self,
        choices: LayoutChoices,
        scale_bits: int,
        input_shapes: List[Tuple[int, ...]],
    ) -> Set[Tuple[str, object]]:
        """Lookup tables this layer needs.

        Entries are ('nl', fn_name) for non-linearity tables, ('range', n)
        for an exact range table of bound n, or ('range', 'lookup') for
        the shared 2^lookup_bits range table whose size the physical
        layout fixes globally.
        """
        return set()

    def quantize_params(
        self, params: Dict[str, np.ndarray], fp: FixedPoint
    ) -> Dict[str, np.ndarray]:
        """Default parameter quantization: everything at scale_bits."""
        return {k: fp.encode_array(v) for k, v in params.items()}

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self.name)


# -- shared fixed-point helpers ------------------------------------------------


def arr_div_round(arr: np.ndarray, divisor: int) -> np.ndarray:
    """Elementwise div_round on an object-int array."""
    out = np.empty(arr.shape, dtype=object)
    flat_in = arr.reshape(-1)
    flat_out = out.reshape(-1)
    for i in range(flat_in.size):
        flat_out[i] = div_round(int(flat_in[i]), divisor)
    return out


def arr_int(x) -> np.ndarray:
    """Coerce to an object-int ndarray."""
    return np.asarray(x, dtype=object)


def sum_rows_for_vector(length: int, num_cols: int) -> int:
    """Rows SumGadget.sum_vector uses for a vector of ``length`` terms."""
    terms = num_cols - 1
    rows = 0
    work = length
    while work > 1:
        full, rem = divmod(work, terms)
        rows += full + (1 if rem > 1 else 0)
        work = full + (1 if rem else 0)
    return rows


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)
