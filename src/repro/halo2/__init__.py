"""A from-scratch Plonkish proving system (the paper's halo2 substrate).

Circuits are 2^k-row grids of field elements constrained three ways
(paper §3, Table 1):

1. *Polynomial constraints* (custom gates): an arbitrary polynomial over
   the cells of a row, gated by a selector, must vanish on every row.
2. *Copy constraints*: arbitrary cells of the grid must be equal,
   enforced with a permutation argument.
3. *Lookup constraints*: a tuple of cells must appear in a table,
   enforced with a log-derivative (LogUp) argument.

The prover follows the halo2 recipe: commit to the witness columns,
derive Fiat–Shamir challenges, build the permutation/lookup helper
columns, fold every constraint with a challenge ``y``, divide by the
vanishing polynomial on an extended coset to get the quotient, commit to
its pieces, then open everything at a random point.  The verifier replays
the transcript and checks the folded constraint identity at that point.
"""

from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import Constant, Expression, Ref
from repro.halo2.gate import Gate
from repro.halo2.lookup import LookupArgument
from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.keygen import ProvingKey, VerifyingKey, keygen
from repro.halo2.mock import MockProver, VerifyFailure
from repro.halo2.proof import Proof, proof_from_bytes, proof_to_bytes
from repro.halo2.prover import create_proof
from repro.halo2.verifier import verify_proof

__all__ = [
    "Column",
    "ColumnType",
    "Constant",
    "Expression",
    "Ref",
    "Gate",
    "LookupArgument",
    "ConstraintSystem",
    "Assignment",
    "keygen",
    "ProvingKey",
    "VerifyingKey",
    "MockProver",
    "VerifyFailure",
    "Proof",
    "proof_to_bytes",
    "proof_from_bytes",
    "create_proof",
    "verify_proof",
]
