"""Column kinds of the Plonkish grid.

- *advice*: private witness values assigned by the prover.
- *fixed*: circuit constants baked in at keygen (lookup tables live here).
- *instance*: public inputs shared with the verifier.
- *selector*: 0/1 fixed columns that switch gates on per row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ColumnType(enum.Enum):
    ADVICE = "advice"
    FIXED = "fixed"
    INSTANCE = "instance"
    SELECTOR = "selector"


@dataclass(frozen=True, order=True)
class Column:
    """A column of the grid, identified by kind and per-kind index."""

    kind: ColumnType
    index: int

    def __repr__(self) -> str:
        return "%s[%d]" % (self.kind.value, self.index)
