"""MockProver: row-exact constraint checking with readable failures.

The analogue of halo2's ``MockProver``: instead of producing a proof it
walks the grid and checks every gate on every row, every copy constraint,
and every lookup, returning a :class:`FailureList` of
:class:`VerifyFailure` describing exactly what broke and where.  All
gadget and layer tests run through it.

When the caller supplies the synthesis *regions* (row ranges owned by
each model layer, recorded by :class:`~repro.gadgets.builder.CircuitBuilder`),
failures are attributed to the originating layer, and gate failures carry
the offending cell values — the raw material for ``zkml diagnose``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.column import Column


@dataclass(frozen=True)
class VerifyFailure:
    """One constraint violation found by the MockProver."""

    kind: str  # 'gate' | 'copy' | 'lookup'
    name: str
    row: int
    detail: str
    #: Originating region, e.g. "layer 'fc_1' (fully_connected)"; empty
    #: when the prover was not given a region map.
    region: str = ""
    #: The referenced cell values at the failing row (gate failures).
    cells: str = ""

    def __str__(self) -> str:
        where = " in %s" % self.region if self.region else ""
        text = "%s %r violated at row %d%s: %s" % (
            self.kind, self.name, self.row, where, self.detail,
        )
        if self.cells:
            text += " [%s]" % self.cells
        return text


class FailureList(List[VerifyFailure]):
    """A (possibly capped) list of failures that knows the true total."""

    def __init__(self, items: Sequence[VerifyFailure] = (),
                 total: Optional[int] = None):
        super().__init__(items)
        self.total = len(self) if total is None else total

    @property
    def truncated(self) -> bool:
        return self.total > len(self)

    def summary(self) -> str:
        """One failure per line, with an '…and N more' tail when capped."""
        lines = [str(f) for f in self]
        if self.truncated:
            lines.append("...and %d more failures (report capped at %d)"
                         % (self.total - len(self), len(self)))
        return "\n".join(lines)


class _Collector:
    """Gathers failures up to a cap while counting every violation."""

    __slots__ = ("items", "total", "cap")

    def __init__(self, cap: Optional[int]):
        self.items: List[VerifyFailure] = []
        self.total = 0
        self.cap = cap

    @property
    def full(self) -> bool:
        return self.cap is not None and len(self.items) >= self.cap

    def add(self, failure: VerifyFailure) -> None:
        self.total += 1
        if self.cap is None or len(self.items) < self.cap:
            self.items.append(failure)


def _region_label(regions, row: int) -> str:
    """The innermost recorded region containing ``row`` (or '')."""
    if not regions:
        return ""
    best = None
    for region in regions:
        if region.start <= row < region.end:
            best = region  # later regions are more specific (same order)
    if best is None:
        return ""
    if best.kind:
        return "layer %r (%s, rows %d..%d)" % (best.name, best.kind,
                                               best.start, best.end - 1)
    return "region %r (rows %d..%d)" % (best.name, best.start, best.end - 1)


class MockProver:
    """Checks an assignment against its constraint system, row by row."""

    def __init__(self, cs: ConstraintSystem, assignment: Assignment,
                 regions=None):
        if assignment.cs is not cs:
            raise ValueError("assignment belongs to a different constraint system")
        self.cs = cs
        self.assignment = assignment
        self.regions = regions

    def verify(self, max_failures: Optional[int] = 32) -> FailureList:
        """All constraint violations.

        The returned list materializes at most ``max_failures`` entries
        but keeps counting, so ``FailureList.total`` is exact and the
        summary can say how much was elided.
        """
        collector = _Collector(max_failures)
        self._check_gates(collector)
        self._check_copies(collector)
        self._check_lookups(collector)
        return FailureList(collector.items, total=collector.total)

    def assert_satisfied(self) -> None:
        """Raise AssertionError with a readable report if anything fails."""
        failures = self.verify()
        if failures:
            raise AssertionError(
                "circuit not satisfied (%d failures):\n%s"
                % (failures.total, failures.summary())
            )

    # -- internals ------------------------------------------------------------

    def _gate_cells(self, constraint, row: int) -> str:
        asg = self.assignment
        field = self.cs.field
        parts = []
        for col, rot in sorted(constraint.refs(),
                               key=lambda q: (q[0].kind.value, q[0].index, q[1])):
            value = asg.value(col, row + rot)
            at = row + rot if rot == 0 else "%d%+d" % (row, rot)
            parts.append("%r@%s=%d" % (col, at, field.decode_signed(value)))
        return ", ".join(parts)

    def _check_gates(self, collector: _Collector) -> None:
        field = self.cs.field
        asg = self.assignment
        for gate in self.cs.gates:
            active_rows = range(asg.n)
            if gate.selector is not None:
                sel = asg.selectors[gate.selector.index]
                active_rows = [row for row in range(asg.n) if sel[row]]
            for i, constraint in enumerate(gate.constraints):
                for row in active_rows:
                    def read(col: Column, rot: int, _row=row) -> int:
                        return asg.value(col, _row + rot)

                    value = constraint.evaluate(field, read)
                    if value != 0:
                        cells = ""
                        if not collector.full:
                            cells = self._gate_cells(constraint, row)
                        collector.add(
                            VerifyFailure(
                                kind="gate",
                                name="%s/%d" % (gate.name, i),
                                row=row,
                                detail="evaluates to %d"
                                % field.decode_signed(value),
                                region=_region_label(self.regions, row),
                                cells=cells,
                            )
                        )

    def _check_copies(self, collector: _Collector) -> None:
        asg = self.assignment
        for col_a, row_a, col_b, row_b in asg.copies:
            va, vb = asg.value(col_a, row_a), asg.value(col_b, row_b)
            if va != vb:
                collector.add(
                    VerifyFailure(
                        kind="copy",
                        name="%r@%d == %r@%d" % (col_a, row_a, col_b, row_b),
                        row=row_a,
                        detail="%d != %d" % (va, vb),
                        region=_region_label(self.regions, row_a),
                    )
                )

    def _check_lookups(self, collector: _Collector) -> None:
        field = self.cs.field
        asg = self.assignment
        for lookup in self.cs.lookups:
            table_rows = set()
            for row in range(asg.n):
                def read(col: Column, rot: int, _row=row) -> int:
                    return asg.value(col, _row + rot)

                table_rows.add(
                    tuple(e.evaluate(field, read) for e in lookup.table)
                )
            for row in range(asg.n):
                def read(col: Column, rot: int, _row=row) -> int:
                    return asg.value(col, _row + rot)

                inputs = tuple(e.evaluate(field, read) for e in lookup.inputs)
                if inputs not in table_rows:
                    collector.add(
                        VerifyFailure(
                            kind="lookup",
                            name=lookup.name,
                            row=row,
                            detail="tuple %s not in table"
                            % (tuple(field.decode_signed(v) for v in inputs),),
                            region=_region_label(self.regions, row),
                        )
                    )
