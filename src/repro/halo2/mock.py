"""MockProver: row-exact constraint checking with readable failures.

The analogue of halo2's ``MockProver``: instead of producing a proof it
walks the grid and checks every gate on every row, every copy constraint,
and every lookup, returning a list of :class:`VerifyFailure` describing
exactly what broke and where.  All gadget and layer tests run through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.column import Column


@dataclass(frozen=True)
class VerifyFailure:
    """One constraint violation found by the MockProver."""

    kind: str  # 'gate' | 'copy' | 'lookup'
    name: str
    row: int
    detail: str

    def __str__(self) -> str:
        return "%s %r violated at row %d: %s" % (
            self.kind,
            self.name,
            self.row,
            self.detail,
        )


class MockProver:
    """Checks an assignment against its constraint system, row by row."""

    def __init__(self, cs: ConstraintSystem, assignment: Assignment):
        if assignment.cs is not cs:
            raise ValueError("assignment belongs to a different constraint system")
        self.cs = cs
        self.assignment = assignment

    def verify(self, max_failures: Optional[int] = 32) -> List[VerifyFailure]:
        """All constraint violations (possibly truncated to max_failures)."""
        failures: List[VerifyFailure] = []
        self._check_gates(failures, max_failures)
        self._check_copies(failures, max_failures)
        self._check_lookups(failures, max_failures)
        return failures

    def assert_satisfied(self) -> None:
        """Raise AssertionError with a readable report if anything fails."""
        failures = self.verify()
        if failures:
            report = "\n".join(str(f) for f in failures)
            raise AssertionError(
                "circuit not satisfied (%d failures):\n%s" % (len(failures), report)
            )

    # -- internals ------------------------------------------------------------

    def _full(self, failures, max_failures) -> bool:
        return max_failures is not None and len(failures) >= max_failures

    def _check_gates(self, failures, max_failures) -> None:
        field = self.cs.field
        asg = self.assignment
        for gate in self.cs.gates:
            active_rows = range(asg.n)
            if gate.selector is not None:
                sel = asg.selectors[gate.selector.index]
                active_rows = [row for row in range(asg.n) if sel[row]]
            for i, constraint in enumerate(gate.constraints):
                for row in active_rows:
                    def read(col: Column, rot: int, _row=row) -> int:
                        return asg.value(col, _row + rot)

                    value = constraint.evaluate(field, read)
                    if value != 0:
                        failures.append(
                            VerifyFailure(
                                kind="gate",
                                name="%s/%d" % (gate.name, i),
                                row=row,
                                detail="evaluates to %d"
                                % field.decode_signed(value),
                            )
                        )
                        if self._full(failures, max_failures):
                            return

    def _check_copies(self, failures, max_failures) -> None:
        asg = self.assignment
        for col_a, row_a, col_b, row_b in asg.copies:
            va, vb = asg.value(col_a, row_a), asg.value(col_b, row_b)
            if va != vb:
                failures.append(
                    VerifyFailure(
                        kind="copy",
                        name="%r@%d == %r@%d" % (col_a, row_a, col_b, row_b),
                        row=row_a,
                        detail="%d != %d" % (va, vb),
                    )
                )
                if self._full(failures, max_failures):
                    return

    def _check_lookups(self, failures, max_failures) -> None:
        field = self.cs.field
        asg = self.assignment
        for lookup in self.cs.lookups:
            table_rows = set()
            for row in range(asg.n):
                def read(col: Column, rot: int, _row=row) -> int:
                    return asg.value(col, _row + rot)

                table_rows.add(
                    tuple(e.evaluate(field, read) for e in lookup.table)
                )
            for row in range(asg.n):
                def read(col: Column, rot: int, _row=row) -> int:
                    return asg.value(col, _row + rot)

                inputs = tuple(e.evaluate(field, read) for e in lookup.inputs)
                if inputs not in table_rows:
                    failures.append(
                        VerifyFailure(
                            kind="lookup",
                            name=lookup.name,
                            row=row,
                            detail="tuple %s not in table"
                            % (tuple(field.decode_signed(v) for v in inputs),),
                        )
                    )
                    if self._full(failures, max_failures):
                        return
