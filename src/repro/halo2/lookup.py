"""Lookup argument (log-derivative / LogUp flavour).

A lookup enforces that on every row the tuple of *input* expressions is
contained in the set of *table* tuples (paper §3, Table 1).  Rows where a
gadget is inactive must therefore evaluate to some tuple that is in the
table; gadgets arrange an all-zero default row in each table.

Soundness sketch: with tuple-compression challenge theta and shift alpha,
    sum_i 1/(alpha + f_i)  ==  sum_i m_i/(alpha + t_i)
holds iff the multiset of compressed inputs is covered by the table with
multiplicities m.  The prover materializes three helper columns per
lookup — multiplicities ``m``, the per-row difference
``h = 1/(alpha+f) - m/(alpha+t)``, and the running sum ``s`` — mirroring
halo2's three FFT-relevant columns per lookup in the paper's Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.halo2.expression import Expression


@dataclass(frozen=True)
class LookupArgument:
    """A named lookup of input expressions into table expressions."""

    name: str
    inputs: Tuple[Expression, ...]
    table: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.table):
            raise ValueError(
                "lookup %r: %d input expressions vs %d table expressions"
                % (self.name, len(self.inputs), len(self.table))
            )
        if not self.inputs:
            raise ValueError("lookup %r has no expressions" % self.name)

    def arity(self) -> int:
        return len(self.inputs)

    def input_degree(self) -> int:
        return max(e.degree() for e in self.inputs)

    def table_degree(self) -> int:
        return max(e.degree() for e in self.table)
