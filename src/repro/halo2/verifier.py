"""Proof verification.

The verifier replays the Fiat–Shamir transcript to re-derive every
challenge, checks each opening against its commitment, evaluates the
folded constraint expression at the challenge point ``x`` (fixed and
selector polynomials straight from the verifying key, instance columns
from the public inputs, advice from the proof's openings) and accepts iff

    sum_i y^i * C_i(x)  ==  Z_H(x) * (q_0(x) + x^n q_1(x) + ...).

A witness violating any gate, copy, or lookup constraint makes the left
side indivisible by the vanishing polynomial, so the identity fails at a
random ``x`` with overwhelming probability.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.commit.transcript import Transcript
from repro.field.poly import poly_eval
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import evaluate_from_openings
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA, VerifyingKey
from repro.halo2.proof import Proof


def verify_proof(
    vk: VerifyingKey,
    proof: Proof,
    instance: List[List[int]],
    scheme: CommitmentScheme,
) -> bool:
    """Check a proof against public inputs; True iff it verifies."""
    field = vk.field
    domain = vk.domain
    n = vk.n
    cs = vk.cs

    if len(instance) != cs.num_instance:
        return False
    if len(proof.advice_commitments) != cs.num_advice:
        return False
    if len(proof.helper_commitments) != vk.num_helper_advice:
        return False
    if len(proof.quotient_commitments) != vk.num_quotient_pieces:
        return False
    if len(proof.quotient_openings) != vk.num_quotient_pieces:
        return False

    # ---- replay the transcript ---------------------------------------------
    transcript = Transcript(field)
    transcript.append_message(b"vk", vk.digest())
    for col_values in instance:
        if len(col_values) != n:
            return False
        transcript.append_scalar_vector(b"instance", col_values)
    for com in proof.advice_commitments:
        transcript.append_commitment(b"advice", com.digest)
    challenges = {
        THETA: transcript.challenge_scalar(b"theta"),
        BETA: transcript.challenge_scalar(b"beta"),
        GAMMA: transcript.challenge_scalar(b"gamma"),
        ALPHA: transcript.challenge_scalar(b"alpha"),
    }
    for com in proof.helper_commitments:
        transcript.append_commitment(b"helper", com.digest)
    y = transcript.challenge_scalar(b"y")
    for com in proof.quotient_commitments:
        transcript.append_commitment(b"quotient", com.digest)
    x = transcript.challenge_nonzero(b"x")

    # ---- check the openings ---------------------------------------------------
    def commitment_for(col_index: int):
        if col_index < cs.num_advice:
            return proof.advice_commitments[col_index]
        return proof.helper_commitments[col_index - cs.num_advice]

    expected_queries = {(col.index, rot) for col, rot in vk.advice_queries}
    if expected_queries != set(proof.advice_openings):
        return False
    for (col_index, rot), opening in proof.advice_openings.items():
        if opening.point != domain.rotate(x, rot):
            return False
        if not scheme.verify_opening(commitment_for(col_index), opening):
            return False
    for com, opening in zip(proof.quotient_commitments, proof.quotient_openings):
        if opening.point != x:
            return False
        if not scheme.verify_opening(com, opening):
            return False

    # ---- evaluate the folded constraint at x -----------------------------------
    instance_polys = [domain.lagrange_to_coeff(col) for col in instance]

    openings: Dict[Tuple[Column, int], int] = {}
    refs = {
        (col, rot) for _, expr in vk.constraints for col, rot in expr.refs()
    }
    for col, rot in refs:
        point = domain.rotate(x, rot)
        if col.kind == ColumnType.ADVICE:
            openings[(col, rot)] = proof.advice_openings[(col.index, rot)].value
        elif col.kind == ColumnType.INSTANCE:
            openings[(col, rot)] = poly_eval(field, instance_polys[col.index], point)
        else:
            openings[(col, rot)] = poly_eval(field, vk.fixed_polys[col], point)

    folded = 0
    for _, expr in vk.constraints:
        value = evaluate_from_openings(expr, field, openings, challenges)
        folded = field.add(field.mul(folded, y), value)

    x_n = field.pow(x, n)
    q_at_x = 0
    for opening in reversed(proof.quotient_openings):
        q_at_x = field.add(field.mul(q_at_x, x_n), opening.value)

    return folded == field.mul(domain.vanishing_eval(x), q_at_x)
