"""Proof verification.

The verifier replays the Fiat–Shamir transcript to re-derive every
challenge, checks each opening against its commitment, evaluates the
folded constraint expression at the challenge point ``x`` (fixed and
selector polynomials straight from the verifying key, instance columns
from the public inputs, advice from the proof's openings) and accepts iff

    sum_i y^i * C_i(x)  ==  Z_H(x) * (q_0(x) + x^n q_1(x) + ...).

A witness violating any gate, copy, or lookup constraint makes the left
side indivisible by the vanishing polynomial, so the identity fails at a
random ``x`` with overwhelming probability.

Two entry points: :func:`verify_proof` is the permissive boolean check,
and :func:`verify_proof_strict` is the hardened front door — it runs
:func:`validate_proof_shape` (every count, digest width, and scalar range
checked against the verifying key, raising
:class:`~repro.resilience.errors.ProofFormatError` on violation) and then
maps *any* rejection or internal crash to a typed
:class:`~repro.resilience.errors.VerificationFailure`.  Untrusted proof
bytes should only ever meet the strict path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.commit.transcript import Transcript
from repro.field.poly import poly_eval
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import evaluate_from_openings
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA, VerifyingKey
from repro.halo2.proof import Proof
from repro.resilience.errors import ProofFormatError, VerificationFailure


def validate_proof_shape(
    vk: VerifyingKey,
    proof: Proof,
    instance: List[List[int]],
) -> None:
    """Validate structural bounds before any cryptographic work.

    Checks commitment counts against the verifying key, digest widths,
    scalar ranges (every field element must lie in ``[0, p)``), opening
    key bounds, and the public-input shape.  Raises
    :class:`ProofFormatError` on the first violation; returns ``None``
    when the proof is structurally plausible.
    """
    cs = vk.cs
    p = vk.field.p
    n = vk.n

    expected = (
        ("advice commitment", proof.advice_commitments, cs.num_advice),
        ("helper commitment", proof.helper_commitments, vk.num_helper_advice),
        ("quotient commitment", proof.quotient_commitments,
         vk.num_quotient_pieces),
    )
    for what, group, want in expected:
        if len(group) != want:
            raise ProofFormatError("expected %d %ss, proof has %d"
                                   % (want, what, len(group)))
        for i, com in enumerate(group):
            digest = getattr(com, "digest", None)
            if not isinstance(digest, bytes) or len(digest) != 32:
                raise ProofFormatError("%s %d has a malformed digest"
                                       % (what, i), index=i)

    if len(proof.quotient_openings) != vk.num_quotient_pieces:
        raise ProofFormatError("expected %d quotient openings, proof has %d"
                               % (vk.num_quotient_pieces,
                                  len(proof.quotient_openings)))

    max_col = cs.num_advice + vk.num_helper_advice
    for (col, rot), opening in proof.advice_openings.items():
        if not (0 <= col < max_col):
            raise ProofFormatError("advice opening names column %d (circuit "
                                   "has %d)" % (col, max_col), column=col)
        if not (-n < rot < n):
            raise ProofFormatError("advice opening rotation %d out of range "
                                   "for n=%d" % (rot, n), column=col)
        _check_opening_scalars("advice opening (%d,%d)" % (col, rot),
                               opening, p)
    for i, opening in enumerate(proof.quotient_openings):
        _check_opening_scalars("quotient opening %d" % i, opening, p)

    if len(instance) != cs.num_instance:
        raise ProofFormatError("expected %d instance columns, got %d"
                               % (cs.num_instance, len(instance)))
    for i, col_values in enumerate(instance):
        if len(col_values) != n:
            raise ProofFormatError("instance column %d has %d rows, circuit "
                                   "has %d" % (i, len(col_values), n), column=i)
        for v in col_values:
            if not (0 <= int(v) < p):
                raise ProofFormatError("instance column %d holds an "
                                       "out-of-field value" % i, column=i)


def _check_opening_scalars(what: str, opening, p: int) -> None:
    for name, value in (("point", opening.point), ("value", opening.value)):
        if not (0 <= int(value) < p):
            raise ProofFormatError("%s has out-of-field %s" % (what, name))
    for w in opening.witness:
        if not (0 <= int(w) < p):
            raise ProofFormatError("%s has an out-of-field witness scalar"
                                   % what)


def verify_proof_strict(
    vk: VerifyingKey,
    proof: Proof,
    instance: List[List[int]],
    scheme: CommitmentScheme,
) -> None:
    """Verify or raise — the hardened entry point for untrusted proofs.

    Raises :class:`ProofFormatError` for structural violations and
    :class:`VerificationFailure` for everything else: a clean rejection,
    or *any* internal exception the permissive path would have leaked
    (hostile bytes must never produce a raw traceback).  Returns ``None``
    on success.
    """
    validate_proof_shape(vk, proof, instance)
    try:
        ok = verify_proof(vk, proof, instance, scheme)
    except (ProofFormatError, VerificationFailure):
        raise
    except Exception as exc:  # noqa: BLE001 — hostile bytes must never leak a raw traceback
        raise VerificationFailure(
            "verifier crashed on a shape-valid proof",
            cause=type(exc).__name__, detail=str(exc)[:200],
        ) from exc
    if not ok:
        raise VerificationFailure("proof rejected")


def verify_proof(
    vk: VerifyingKey,
    proof: Proof,
    instance: List[List[int]],
    scheme: CommitmentScheme,
) -> bool:
    """Check a proof against public inputs; True iff it verifies."""
    field = vk.field
    domain = vk.domain
    n = vk.n
    cs = vk.cs

    if len(instance) != cs.num_instance:
        return False
    if len(proof.advice_commitments) != cs.num_advice:
        return False
    if len(proof.helper_commitments) != vk.num_helper_advice:
        return False
    if len(proof.quotient_commitments) != vk.num_quotient_pieces:
        return False
    if len(proof.quotient_openings) != vk.num_quotient_pieces:
        return False

    # ---- replay the transcript ---------------------------------------------
    transcript = Transcript(field)
    transcript.append_message(b"vk", vk.digest())
    for col_values in instance:
        if len(col_values) != n:
            return False
        transcript.append_scalar_vector(b"instance", col_values)
    for com in proof.advice_commitments:
        transcript.append_commitment(b"advice", com.digest)
    challenges = {
        THETA: transcript.challenge_scalar(b"theta"),
        BETA: transcript.challenge_scalar(b"beta"),
        GAMMA: transcript.challenge_scalar(b"gamma"),
        ALPHA: transcript.challenge_scalar(b"alpha"),
    }
    for com in proof.helper_commitments:
        transcript.append_commitment(b"helper", com.digest)
    y = transcript.challenge_scalar(b"y")
    for com in proof.quotient_commitments:
        transcript.append_commitment(b"quotient", com.digest)
    x = transcript.challenge_nonzero(b"x")

    # ---- check the openings ---------------------------------------------------
    def commitment_for(col_index: int):
        if col_index < cs.num_advice:
            return proof.advice_commitments[col_index]
        return proof.helper_commitments[col_index - cs.num_advice]

    expected_queries = {(col.index, rot) for col, rot in vk.advice_queries}
    if expected_queries != set(proof.advice_openings):
        return False
    for (col_index, rot), opening in proof.advice_openings.items():
        if opening.point != domain.rotate(x, rot):
            return False
        if not scheme.verify_opening(commitment_for(col_index), opening):
            return False
    for com, opening in zip(proof.quotient_commitments, proof.quotient_openings):
        if opening.point != x:
            return False
        if not scheme.verify_opening(com, opening):
            return False

    # ---- evaluate the folded constraint at x -----------------------------------
    instance_polys = [domain.lagrange_to_coeff(col) for col in instance]

    openings: Dict[Tuple[Column, int], int] = {}
    refs = {
        (col, rot) for _, expr in vk.constraints for col, rot in expr.refs()
    }
    for col, rot in refs:
        point = domain.rotate(x, rot)
        if col.kind == ColumnType.ADVICE:
            openings[(col, rot)] = proof.advice_openings[(col.index, rot)].value
        elif col.kind == ColumnType.INSTANCE:
            openings[(col, rot)] = poly_eval(field, instance_polys[col.index], point)
        else:
            openings[(col, rot)] = poly_eval(field, vk.fixed_polys[col], point)

    folded = 0
    for _, expr in vk.constraints:
        value = evaluate_from_openings(expr, field, openings, challenges)
        folded = field.add(field.mul(folded, y), value)

    x_n = field.pow(x, n)
    q_at_x = 0
    for opening in reversed(proof.quotient_openings):
        q_at_x = field.add(field.mul(q_at_x, x_n), opening.value)

    return folded == field.mul(domain.vanishing_eval(x), q_at_x)
