"""Constraint-expression AST.

Expressions are built with Python operators over :class:`Ref` (a column at
a row rotation) and :class:`Constant`.  The tree knows its polynomial
degree (a column reference is degree 1) and can evaluate itself either on
a concrete grid row (MockProver), pointwise on a domain (quotient
computation), or symbolically from a dict of opened values (verifier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.field.prime_field import PrimeField
from repro.halo2.column import Column


class Expression:
    """Base class; supports +, -, *, unary -, and scaling by ints."""

    def degree(self) -> int:
        raise NotImplementedError

    def refs(self) -> Set[Tuple[Column, int]]:
        """All (column, rotation) pairs the expression reads."""
        raise NotImplementedError

    def evaluate(
        self,
        field: PrimeField,
        read: Callable[[Column, int], int],
        challenges: Optional[Dict[str, int]] = None,
    ) -> int:
        """Evaluate with a callback supplying the value of (column, rotation)."""
        raise NotImplementedError

    # -- operator sugar -----------------------------------------------------

    def _lift(self, other) -> "Expression":
        if isinstance(other, Expression):
            return other
        if isinstance(other, int):
            return Constant(other)
        return NotImplemented

    def __add__(self, other):
        other = self._lift(other)
        return Sum(self, other) if other is not NotImplemented else other

    __radd__ = __add__

    def __sub__(self, other):
        other = self._lift(other)
        return Sum(self, Neg(other)) if other is not NotImplemented else other

    def __rsub__(self, other):
        other = self._lift(other)
        return Sum(other, Neg(self)) if other is not NotImplemented else other

    def __mul__(self, other):
        other = self._lift(other)
        return Product(self, other) if other is not NotImplemented else other

    __rmul__ = __mul__

    def __neg__(self):
        return Neg(self)


@dataclass(frozen=True)
class Constant(Expression):
    """A field constant."""

    value: int

    def degree(self) -> int:
        return 0

    def refs(self):
        return set()

    def evaluate(self, field, read, challenges=None):
        return field.reduce(self.value)


@dataclass(frozen=True)
class Challenge(Expression):
    """A Fiat-Shamir challenge, bound at evaluation time.

    Challenges let keygen build static constraint expressions (lookup and
    permutation arguments) whose random coefficients only exist once the
    transcript produces them.
    """

    label: str

    def degree(self) -> int:
        return 0

    def refs(self):
        return set()

    def evaluate(self, field, read, challenges=None):
        if not challenges or self.label not in challenges:
            raise KeyError("challenge %r not bound" % self.label)
        return challenges[self.label]


@dataclass(frozen=True)
class Ref(Expression):
    """A column read at a row rotation (0 = this row, 1 = next row, ...)."""

    column: Column
    rotation: int = 0

    def degree(self) -> int:
        return 1

    def refs(self):
        return {(self.column, self.rotation)}

    def evaluate(self, field, read, challenges=None):
        return read(self.column, self.rotation)


@dataclass(frozen=True)
class Sum(Expression):
    left: Expression
    right: Expression

    def degree(self) -> int:
        return max(self.left.degree(), self.right.degree())

    def refs(self):
        return self.left.refs() | self.right.refs()

    def evaluate(self, field, read, challenges=None):
        return field.add(
            self.left.evaluate(field, read, challenges),
            self.right.evaluate(field, read, challenges),
        )


@dataclass(frozen=True)
class Product(Expression):
    left: Expression
    right: Expression

    def degree(self) -> int:
        return self.left.degree() + self.right.degree()

    def refs(self):
        return self.left.refs() | self.right.refs()

    def evaluate(self, field, read, challenges=None):
        return field.mul(
            self.left.evaluate(field, read, challenges),
            self.right.evaluate(field, read, challenges),
        )


@dataclass(frozen=True)
class Neg(Expression):
    inner: Expression

    def degree(self) -> int:
        return self.inner.degree()

    def refs(self):
        return self.inner.refs()

    def evaluate(self, field, read, challenges=None):
        return field.neg(self.inner.evaluate(field, read, challenges))


def evaluate_from_openings(
    expr: Expression,
    field: PrimeField,
    openings: Dict[Tuple[Column, int], int],
    challenges: Optional[Dict[str, int]] = None,
) -> int:
    """Evaluate an expression from a dict of opened (column, rotation) values."""

    def read(column: Column, rotation: int) -> int:
        return openings[(column, rotation)]

    return expr.evaluate(field, read, challenges)


class VectorEvaluator:
    """Memoizing columnwise expression evaluator — the prover's hot loop.

    Evaluates expression trees over whole columns at once using a
    :mod:`repro.field.vector` backend.  Three things make it fast:

    - results are memoized by node identity, so subexpressions that keygen
      shares between constraints (compressed lookup inputs, permutation
      denominators) are evaluated once per proof phase;
    - constants and challenges stay *scalars* until they meet a column, so
      no ``size``-length constant vectors are ever allocated;
    - ``Sum(x, Neg(y))`` — how ``-`` desugars — is fused into a single
      subtraction pass instead of a negation pass plus an addition pass.

    ``read_vec(column, rotation)`` must return the rotated column as a
    backend vector; returned vectors are shared and must not be mutated.
    A node evaluates to either a Python int (scalar) or a backend vector.
    """

    def __init__(
        self,
        backend,
        size: int,
        read_vec: Callable[[Column, int], object],
        challenges: Optional[Dict[str, int]] = None,
    ):
        self.backend = backend
        self.field = backend.field
        self.size = size
        self.read_vec = read_vec
        self.challenges = challenges
        # id -> (node, result); keeping the node alive pins its id
        self._memo: Dict[int, tuple] = {}

    def evaluate(self, expr: Expression):
        """Evaluate to a scalar int or a backend vector."""
        key = id(expr)
        hit = self._memo.get(key)
        if hit is not None:
            return hit[1]
        result = self._compute(expr)
        self._memo[key] = (expr, result)
        return result

    def evaluate_vec(self, expr: Expression):
        """Evaluate, expanding a scalar result to a full vector."""
        result = self.evaluate(expr)
        if isinstance(result, int):
            if isinstance(self.size, tuple):
                return self.backend.add_scalar(self.backend.zeros(self.size), result)
            return self.backend.from_ints([result] * self.size)
        return result

    def fold(self, exprs, y: int):
        """Fold many constraints into one vector: ``sum_i y^i * C_i``.

        The accumulator is updated in place across constraints (one vector
        pass per constraint) exactly as the verifier folds openings.
        """
        acc = self.backend.zeros(self.size)
        for expr in exprs:
            value = self.evaluate(expr)
            if isinstance(value, int):
                acc = self.backend.fold_scalar(acc, y, value)
            else:
                acc = self.backend.fold(acc, y, value)
        return acc

    def _compute(self, expr: Expression):
        field = self.field
        backend = self.backend
        if isinstance(expr, Constant):
            return field.reduce(expr.value)
        if isinstance(expr, Challenge):
            return expr.evaluate(field, None, self.challenges)
        if isinstance(expr, Ref):
            return self.read_vec(expr.column, expr.rotation)
        if isinstance(expr, Sum):
            left, right = expr.left, expr.right
            # fuse a - b (desugared as Sum(a, Neg(b))) into one pass
            if isinstance(right, Neg):
                a, b = self.evaluate(left), self.evaluate(right.inner)
                if isinstance(a, int) and isinstance(b, int):
                    return field.sub(a, b)
                if isinstance(b, int):
                    return backend.add_scalar(a, field.neg(b))
                if isinstance(a, int):
                    return backend.scalar_sub(a, b)
                return backend.sub(a, b)
            if isinstance(left, Neg):
                a, b = self.evaluate(right), self.evaluate(left.inner)
                if isinstance(a, int) and isinstance(b, int):
                    return field.sub(a, b)
                if isinstance(b, int):
                    return backend.add_scalar(a, field.neg(b))
                if isinstance(a, int):
                    return backend.scalar_sub(a, b)
                return backend.sub(a, b)
            a, b = self.evaluate(left), self.evaluate(right)
            if isinstance(a, int) and isinstance(b, int):
                return field.add(a, b)
            if isinstance(b, int):
                return backend.add_scalar(a, b)
            if isinstance(a, int):
                return backend.add_scalar(b, a)
            return backend.add(a, b)
        if isinstance(expr, Product):
            a, b = self.evaluate(expr.left), self.evaluate(expr.right)
            if isinstance(a, int) and isinstance(b, int):
                return field.mul(a, b)
            if isinstance(b, int):
                a, b = b, a
            if isinstance(a, int):
                if a == 0:
                    return 0
                if a == 1:
                    return b
                return backend.mul_scalar(b, a)
            return backend.mul(a, b)
        if isinstance(expr, Neg):
            inner = self.evaluate(expr.inner)
            if isinstance(inner, int):
                return field.neg(inner)
            return backend.neg(inner)
        raise TypeError("unknown expression node %r" % type(expr).__name__)


def evaluate_on_domain(
    expr: Expression,
    field: PrimeField,
    read_vec: Callable[[Column, int], list],
    size: int,
    challenges: Optional[Dict[str, int]] = None,
) -> list:
    """Evaluate an expression pointwise over a whole evaluation domain.

    ``read_vec(column, rotation)`` must return the column's ``size``
    evaluations already rotated.  Thin wrapper over
    :class:`VectorEvaluator` on the list backend; always returns a fresh
    list of ints.
    """
    from repro.field.vector import ListBackend

    backend = ListBackend(field)
    ev = VectorEvaluator(backend, size, read_vec, challenges)
    return list(ev.evaluate_vec(expr))


def evaluate_on_lagrange(
    expr: Expression,
    backend,
    read_column: Callable[[Column], object],
    size: int,
    challenges: Optional[Dict[str, int]] = None,
) -> object:
    """Evaluate an expression columnwise over the *base* domain.

    The sibling of :func:`evaluate_on_domain` used for helper-column
    construction: ``read_column(col)`` returns the column's base-domain
    evaluations (a backend vector), and rotations are realized as cyclic
    row shifts of that vector.  Returns a backend vector.
    """
    rotated: Dict[tuple, object] = {}

    def read_vec(column: Column, rotation: int):
        key = (column, rotation)
        vec = rotated.get(key)
        if vec is None:
            vec = backend.rotate(read_column(column), rotation)
            rotated[key] = vec
        return vec

    ev = VectorEvaluator(backend, size, read_vec, challenges)
    return ev.evaluate_vec(expr)
