"""Constraint-expression AST.

Expressions are built with Python operators over :class:`Ref` (a column at
a row rotation) and :class:`Constant`.  The tree knows its polynomial
degree (a column reference is degree 1) and can evaluate itself either on
a concrete grid row (MockProver), pointwise on a domain (quotient
computation), or symbolically from a dict of opened values (verifier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.field.prime_field import PrimeField
from repro.halo2.column import Column


class Expression:
    """Base class; supports +, -, *, unary -, and scaling by ints."""

    def degree(self) -> int:
        raise NotImplementedError

    def refs(self) -> Set[Tuple[Column, int]]:
        """All (column, rotation) pairs the expression reads."""
        raise NotImplementedError

    def evaluate(
        self,
        field: PrimeField,
        read: Callable[[Column, int], int],
        challenges: Optional[Dict[str, int]] = None,
    ) -> int:
        """Evaluate with a callback supplying the value of (column, rotation)."""
        raise NotImplementedError

    # -- operator sugar -----------------------------------------------------

    def _lift(self, other) -> "Expression":
        if isinstance(other, Expression):
            return other
        if isinstance(other, int):
            return Constant(other)
        return NotImplemented

    def __add__(self, other):
        other = self._lift(other)
        return Sum(self, other) if other is not NotImplemented else other

    __radd__ = __add__

    def __sub__(self, other):
        other = self._lift(other)
        return Sum(self, Neg(other)) if other is not NotImplemented else other

    def __rsub__(self, other):
        other = self._lift(other)
        return Sum(other, Neg(self)) if other is not NotImplemented else other

    def __mul__(self, other):
        other = self._lift(other)
        return Product(self, other) if other is not NotImplemented else other

    __rmul__ = __mul__

    def __neg__(self):
        return Neg(self)


@dataclass(frozen=True)
class Constant(Expression):
    """A field constant."""

    value: int

    def degree(self) -> int:
        return 0

    def refs(self):
        return set()

    def evaluate(self, field, read, challenges=None):
        return field.reduce(self.value)


@dataclass(frozen=True)
class Challenge(Expression):
    """A Fiat-Shamir challenge, bound at evaluation time.

    Challenges let keygen build static constraint expressions (lookup and
    permutation arguments) whose random coefficients only exist once the
    transcript produces them.
    """

    label: str

    def degree(self) -> int:
        return 0

    def refs(self):
        return set()

    def evaluate(self, field, read, challenges=None):
        if not challenges or self.label not in challenges:
            raise KeyError("challenge %r not bound" % self.label)
        return challenges[self.label]


@dataclass(frozen=True)
class Ref(Expression):
    """A column read at a row rotation (0 = this row, 1 = next row, ...)."""

    column: Column
    rotation: int = 0

    def degree(self) -> int:
        return 1

    def refs(self):
        return {(self.column, self.rotation)}

    def evaluate(self, field, read, challenges=None):
        return read(self.column, self.rotation)


@dataclass(frozen=True)
class Sum(Expression):
    left: Expression
    right: Expression

    def degree(self) -> int:
        return max(self.left.degree(), self.right.degree())

    def refs(self):
        return self.left.refs() | self.right.refs()

    def evaluate(self, field, read, challenges=None):
        return field.add(
            self.left.evaluate(field, read, challenges),
            self.right.evaluate(field, read, challenges),
        )


@dataclass(frozen=True)
class Product(Expression):
    left: Expression
    right: Expression

    def degree(self) -> int:
        return self.left.degree() + self.right.degree()

    def refs(self):
        return self.left.refs() | self.right.refs()

    def evaluate(self, field, read, challenges=None):
        return field.mul(
            self.left.evaluate(field, read, challenges),
            self.right.evaluate(field, read, challenges),
        )


@dataclass(frozen=True)
class Neg(Expression):
    inner: Expression

    def degree(self) -> int:
        return self.inner.degree()

    def refs(self):
        return self.inner.refs()

    def evaluate(self, field, read, challenges=None):
        return field.neg(self.inner.evaluate(field, read, challenges))


def evaluate_from_openings(
    expr: Expression,
    field: PrimeField,
    openings: Dict[Tuple[Column, int], int],
    challenges: Optional[Dict[str, int]] = None,
) -> int:
    """Evaluate an expression from a dict of opened (column, rotation) values."""

    def read(column: Column, rotation: int) -> int:
        return openings[(column, rotation)]

    return expr.evaluate(field, read, challenges)


def evaluate_on_domain(
    expr: Expression,
    field: PrimeField,
    read_vec: Callable[[Column, int], list],
    size: int,
    challenges: Optional[Dict[str, int]] = None,
) -> list:
    """Evaluate an expression pointwise over a whole evaluation domain.

    ``read_vec(column, rotation)`` must return the column's ``size``
    evaluations already rotated.  Vectorized bottom-up traversal — this is
    the prover's hot loop when building the quotient polynomial.
    """
    p = field.p
    if isinstance(expr, Constant):
        v = field.reduce(expr.value)
        return [v] * size
    if isinstance(expr, Challenge):
        v = expr.evaluate(field, None, challenges)
        return [v] * size
    if isinstance(expr, Ref):
        return list(read_vec(expr.column, expr.rotation))
    if isinstance(expr, Sum):
        left = evaluate_on_domain(expr.left, field, read_vec, size, challenges)
        right = evaluate_on_domain(expr.right, field, read_vec, size, challenges)
        return [(a + b) % p for a, b in zip(left, right)]
    if isinstance(expr, Product):
        left = evaluate_on_domain(expr.left, field, read_vec, size, challenges)
        right = evaluate_on_domain(expr.right, field, read_vec, size, challenges)
        return [a * b % p for a, b in zip(left, right)]
    if isinstance(expr, Neg):
        inner = evaluate_on_domain(expr.inner, field, read_vec, size, challenges)
        return [(p - v) % p if v else 0 for v in inner]
    raise TypeError("unknown expression node %r" % type(expr).__name__)
