"""Proof container and modeled serialization size.

The in-memory proof carries the simulated opening witnesses (full
coefficient vectors — see ``repro.commit``), so its Python size is not
what a real halo2 proof would serialize to.  :meth:`Proof.modeled_size_bytes`
reports the size a real proof with this circuit shape would have: one
curve point per commitment, one scalar per opened evaluation, plus the
backend's multiopen argument.  Table 6/7/14 report this quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.commit.scheme import (
    COMMITMENT_BYTES,
    SCALAR_BYTES,
    Commitment,
    CommitmentScheme,
    OpeningProof,
)
from repro.resilience.errors import ProofFormatError


@dataclass
class Proof:
    """A ZK-SNARK proof for one circuit execution."""

    advice_commitments: List[Commitment]
    helper_commitments: List[Commitment]
    quotient_commitments: List[Commitment]
    #: (advice column index, rotation) -> opening at omega^rotation * x
    advice_openings: Dict[Tuple[int, int], OpeningProof]
    quotient_openings: List[OpeningProof]

    def num_commitments(self) -> int:
        return (
            len(self.advice_commitments)
            + len(self.helper_commitments)
            + len(self.quotient_commitments)
        )

    def num_evaluations(self) -> int:
        return len(self.advice_openings) + len(self.quotient_openings)

    def modeled_size_bytes(self, scheme: CommitmentScheme, k: int) -> int:
        """Serialized size of the equivalent real halo2 proof."""
        return (
            COMMITMENT_BYTES * self.num_commitments()
            + SCALAR_BYTES * self.num_evaluations()
            + scheme.opening_proof_bytes(k)
        )


#: Upper bound on any serialized count field.  Real proofs have at most a
#: few thousand commitments/openings; a count beyond this is always a
#: corrupted or hostile length prefix, and rejecting it up front keeps a
#: 4-byte mutation from driving a multi-gigabyte allocation loop.
_MAX_ITEMS = 1 << 20


def _write_scalar(out: bytearray, v: int) -> None:
    out += int(v).to_bytes(32, "little")


def _read_scalar(data: bytes, pos: int):
    if pos + 32 > len(data):
        raise ProofFormatError("truncated proof: scalar at offset %d runs past "
                               "end of data" % pos, offset=pos, length=len(data))
    return int.from_bytes(data[pos : pos + 32], "little"), pos + 32


def _write_u32(out: bytearray, v: int) -> None:
    out += int(v).to_bytes(4, "little")


def _read_u32(data: bytes, pos: int):
    if pos + 4 > len(data):
        raise ProofFormatError("truncated proof: u32 at offset %d runs past "
                               "end of data" % pos, offset=pos, length=len(data))
    return int.from_bytes(data[pos : pos + 4], "little"), pos + 4


def _read_count(data: bytes, pos: int, what: str):
    n, pos = _read_u32(data, pos)
    if n > _MAX_ITEMS:
        raise ProofFormatError("implausible %s count %d (max %d)"
                               % (what, n, _MAX_ITEMS), offset=pos - 4)
    # each counted item is at least 4 bytes; a count the remaining data
    # cannot possibly hold is rejected before any allocation
    if n * 4 > len(data) - pos:
        raise ProofFormatError("%s count %d exceeds remaining %d bytes"
                               % (what, n, len(data) - pos), offset=pos - 4)
    return n, pos


def _write_opening(out: bytearray, opening: OpeningProof) -> None:
    _write_scalar(out, opening.point)
    _write_scalar(out, opening.value)
    _write_u32(out, len(opening.witness))
    for w in opening.witness:
        _write_scalar(out, w)


def _read_opening(data: bytes, pos: int):
    point, pos = _read_scalar(data, pos)
    value, pos = _read_scalar(data, pos)
    n, pos = _read_count(data, pos, "opening witness")
    if n * 32 > len(data) - pos:
        raise ProofFormatError("opening witness of %d scalars exceeds "
                               "remaining %d bytes" % (n, len(data) - pos),
                               offset=pos)
    witness = []
    for _ in range(n):
        w, pos = _read_scalar(data, pos)
        witness.append(w)
    return OpeningProof(point=point, value=value, witness=tuple(witness)), pos


_MAGIC = b"ZKMLPRF1"


def proof_to_bytes(proof: Proof) -> bytes:
    """Serialize a proof to a portable byte string.

    Note the simulated opening witnesses make this much larger than the
    real halo2 serialization; :meth:`Proof.modeled_size_bytes` reports the
    real-system size.
    """
    out = bytearray(_MAGIC)
    for group in (proof.advice_commitments, proof.helper_commitments,
                  proof.quotient_commitments):
        _write_u32(out, len(group))
        for com in group:
            out += com.digest
    _write_u32(out, len(proof.advice_openings))
    for (col, rot) in sorted(proof.advice_openings):
        _write_u32(out, col)
        _write_u32(out, rot & 0xFFFFFFFF)
        _write_opening(out, proof.advice_openings[(col, rot)])
    _write_u32(out, len(proof.quotient_openings))
    for opening in proof.quotient_openings:
        _write_opening(out, opening)
    return bytes(out)


def proof_from_bytes(data: bytes) -> Proof:
    """Inverse of :func:`proof_to_bytes`.

    Every length prefix is validated against the remaining data before
    anything is allocated, so truncated, padded, or hostile inputs raise
    :class:`~repro.resilience.errors.ProofFormatError` (a ``ValueError``
    subclass) rather than producing a garbage proof or an unbounded
    allocation.
    """
    if data[: len(_MAGIC)] != _MAGIC:
        raise ProofFormatError("not a serialized proof (bad magic)",
                               length=len(data))
    pos = len(_MAGIC)
    groups = []
    for group_name in ("advice", "helper", "quotient"):
        n, pos = _read_count(data, pos, "%s commitment" % group_name)
        if n * 32 > len(data) - pos:
            raise ProofFormatError("%d %s commitments exceed remaining %d "
                                   "bytes" % (n, group_name, len(data) - pos),
                                   offset=pos)
        commitments = []
        for _ in range(n):
            commitments.append(Commitment(data[pos : pos + 32]))
            pos += 32
        groups.append(commitments)
    n, pos = _read_count(data, pos, "advice opening")
    advice_openings = {}
    for _ in range(n):
        col, pos = _read_u32(data, pos)
        rot_raw, pos = _read_u32(data, pos)
        rot = rot_raw - (1 << 32) if rot_raw >= (1 << 31) else rot_raw
        if (col, rot) in advice_openings:
            raise ProofFormatError("duplicate advice opening for column %d "
                                   "rotation %d" % (col, rot), offset=pos)
        opening, pos = _read_opening(data, pos)
        advice_openings[(col, rot)] = opening
    n, pos = _read_count(data, pos, "quotient opening")
    quotient_openings = []
    for _ in range(n):
        opening, pos = _read_opening(data, pos)
        quotient_openings.append(opening)
    if pos != len(data):
        raise ProofFormatError("trailing bytes in serialized proof",
                               offset=pos, length=len(data))
    return Proof(
        advice_commitments=groups[0],
        helper_commitments=groups[1],
        quotient_commitments=groups[2],
        advice_openings=advice_openings,
        quotient_openings=quotient_openings,
    )
