"""Key generation: preprocess a circuit into proving and verifying keys.

Keygen fixes everything that does not depend on the witness:

- coefficient forms of all fixed, selector, and permutation polynomials;
- the permutation itself (union-find over the recorded copy constraints,
  turned into id/sigma tag polynomials);
- the *extended constraint list*: user gates plus the lookup and
  permutation helper constraints, expressed over helper advice columns
  and :class:`~repro.halo2.expression.Challenge` placeholders.  Prover and
  verifier fold this list in the same order with the challenge ``y``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.field.domain import EvaluationDomain
from repro.field.prime_field import PrimeField
from repro.halo2.circuit import Assignment, ConstraintSystem
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import Challenge, Constant, Expression, Ref
from repro.halo2.lookup import LookupArgument
from repro.obs.trace import get_tracer

#: Challenge labels used by the helper arguments.
THETA, BETA, GAMMA, ALPHA = "theta", "beta", "gamma", "alpha"


@dataclass(frozen=True)
class LookupHelpers:
    """Helper advice columns for one lookup argument (3 per lookup)."""

    argument: LookupArgument
    m_col: Column
    h_col: Column
    s_col: Column


@dataclass(frozen=True)
class PermutationData:
    """Permutation argument layout: one helper per permuted column + sum."""

    columns: Tuple[Column, ...]
    id_cols: Tuple[Column, ...]
    sigma_cols: Tuple[Column, ...]
    helper_cols: Tuple[Column, ...]
    sum_col: Column


@dataclass
class VerifyingKey:
    """Everything the verifier needs (all of it public)."""

    field: PrimeField
    k: int
    cs: ConstraintSystem
    scheme_name: str
    domain: EvaluationDomain
    max_degree: int
    fixed_polys: Dict[Column, List[int]]
    l0_col: Column
    lookups: List[LookupHelpers]
    permutation: Optional[PermutationData]
    constraints: List[Tuple[str, Expression]]
    advice_queries: List[Tuple[Column, int]]
    num_helper_advice: int
    _digest: bytes = dc_field(default=b"", repr=False)

    @property
    def n(self) -> int:
        return 1 << self.k

    @property
    def num_quotient_pieces(self) -> int:
        return self.max_degree - 1

    def digest(self) -> bytes:
        """A binding digest of the preprocessed circuit."""
        if not self._digest:
            h = hashlib.blake2b(digest_size=32)
            h.update(b"vk:%d:%d:%s" % (self.k, self.max_degree, self.scheme_name.encode()))
            for col in sorted(self.fixed_polys, key=lambda c: (c.kind.value, c.index)):
                h.update(repr(col).encode())
                for c in self.fixed_polys[col]:
                    h.update(c.to_bytes(32, "little"))
            self._digest = h.digest()
        return self._digest

    def fixed_part_evals(self) -> Dict[Column, "object"]:
        """Per-coset-part extended evaluations of every fixed column.

        Goldilocks only.  Fixed and selector polynomials are circuit
        constants, so their quotient-phase coset-part NTTs run once —
        eagerly at keygen, riding the pk cache into later processes —
        and the prover reads ready ``(extension, n)`` part matrices
        instead of re-transforming constants on every proof.  Derived
        data: not part of :meth:`digest`, so proofs are unchanged.
        """
        cached = getattr(self, "_np_fixed_parts", None)
        if cached is None:
            import numpy as np

            from repro.field import gl64

            cols = sorted(self.fixed_polys, key=lambda c: (c.kind.value, c.index))
            extension = self.domain.extended_n // self.domain.n
            parts = np.empty((len(cols), extension, self.n), dtype=np.uint64)
            if cols:
                mat = np.stack(
                    [gl64.from_ints(self.fixed_polys[c]) for c in cols]
                )
                for r in range(extension):
                    parts[:, r, :] = self.domain.coeff_to_extended_part(mat, r)
            cached = {col: parts[i] for i, col in enumerate(cols)}
            self._np_fixed_parts = cached
        return cached


@dataclass
class ProvingKey:
    """Verifying key plus evaluation-form fixed data the prover uses."""

    vk: VerifyingKey
    fixed_evals: Dict[Column, List[int]]


def _compress(exprs: Tuple[Expression, ...], theta: Expression) -> Expression:
    """Random-linear-combine a tuple of expressions with powers of theta."""
    acc: Expression = exprs[-1]
    for e in reversed(exprs[:-1]):
        acc = acc * theta + e
    return acc


def _build_permutation_tags(
    assignment: Assignment, columns: List[Column]
) -> Tuple[List[List[int]], List[List[int]]]:
    """Union-find the copy constraints into id/sigma tag vectors.

    Tags are small distinct integers (slot * n + row + 1); sigma maps each
    cell to the next cell of its equality cycle, so the multiset
    {(value, id)} equals {(value, sigma)} exactly when values are constant
    along every cycle.
    """
    n = assignment.n
    slot = {col: j for j, col in enumerate(columns)}
    size = len(columns) * n

    parent = list(range(size))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    def cell_index(col: Column, row: int) -> int:
        return slot[col] * n + row

    for col_a, row_a, col_b, row_b in assignment.copies:
        union(cell_index(col_a, row_a), cell_index(col_b, row_b))

    groups: Dict[int, List[int]] = {}
    for idx in range(size):
        groups.setdefault(find(idx), []).append(idx)

    ids = [[j * n + i + 1 for i in range(n)] for j in range(len(columns))]
    sigmas = [list(col) for col in ids]
    for members in groups.values():
        if len(members) < 2:
            continue
        # sigma rotates the cycle: each cell points at the next member.
        for pos, idx in enumerate(members):
            nxt = members[(pos + 1) % len(members)]
            sigmas[idx // n][idx % n] = nxt + 1
    return ids, sigmas


def keygen(
    cs: ConstraintSystem, assignment: Assignment, scheme: CommitmentScheme
) -> Tuple[ProvingKey, VerifyingKey]:
    """Preprocess a circuit (with its fixed assignment) into keys."""
    field = cs.field
    n = assignment.n
    tracer = get_tracer()

    # ---- allocate helper columns beyond the user column space -------------
    next_advice = cs.num_advice
    next_fixed = cs.num_fixed

    def new_advice() -> Column:
        nonlocal next_advice
        col = Column(ColumnType.ADVICE, next_advice)
        next_advice += 1
        return col

    def new_fixed() -> Column:
        nonlocal next_fixed
        col = Column(ColumnType.FIXED, next_fixed)
        next_fixed += 1
        return col

    fixed_evals: Dict[Column, List[int]] = {}
    for i in range(cs.num_fixed):
        col = Column(ColumnType.FIXED, i)
        fixed_evals[col] = assignment.column_values(col)
    for i in range(cs.num_selectors):
        col = Column(ColumnType.SELECTOR, i)
        fixed_evals[col] = list(assignment.selectors[i])

    l0_col = new_fixed()
    fixed_evals[l0_col] = [1] + [0] * (n - 1)
    l0 = Ref(l0_col)

    constraints: List[Tuple[str, Expression]] = []
    for gate in cs.gates:
        for i, c in enumerate(gate.effective_constraints()):
            constraints.append(("%s/%d" % (gate.name, i), c))

    # ---- lookup helper constraints ----------------------------------------
    theta, alpha = Challenge(THETA), Challenge(ALPHA)
    lookups: List[LookupHelpers] = []
    for lk in cs.lookups:
        helpers = LookupHelpers(
            argument=lk, m_col=new_advice(), h_col=new_advice(), s_col=new_advice()
        )
        lookups.append(helpers)
        f = _compress(lk.inputs, theta)
        t = _compress(lk.table, theta)
        h, m, s = Ref(helpers.h_col), Ref(helpers.m_col), Ref(helpers.s_col)
        s_next = Ref(helpers.s_col, 1)
        # bind the shifted input/table once so both occurrences are the
        # *same* node — the prover's evaluator memoizes by node identity
        alpha_f = alpha + f
        alpha_t = alpha + t
        constraints.append(
            (
                "lookup:%s/inverse" % lk.name,
                h * alpha_f * alpha_t - alpha_t + m * alpha_f,
            )
        )
        constraints.append(("lookup:%s/sum" % lk.name, s_next - s - h))
        constraints.append(("lookup:%s/init" % lk.name, l0 * s))

    # ---- permutation helper constraints ------------------------------------
    permutation: Optional[PermutationData] = None
    perm_cols = cs.permuted_columns()
    if perm_cols:
        with tracer.span("keygen:permutation", columns=len(perm_cols),
                         copies=len(assignment.copies)):
            ids, sigmas = _build_permutation_tags(assignment, perm_cols)
        beta, gamma = Challenge(BETA), Challenge(GAMMA)
        id_cols, sigma_cols, helper_cols = [], [], []
        for j, col in enumerate(perm_cols):
            id_col, sigma_col = new_fixed(), new_fixed()
            fixed_evals[id_col] = ids[j]
            fixed_evals[sigma_col] = sigmas[j]
            id_cols.append(id_col)
            sigma_cols.append(sigma_col)
            helper_cols.append(new_advice())
        sum_col = new_advice()
        permutation = PermutationData(
            columns=tuple(perm_cols),
            id_cols=tuple(id_cols),
            sigma_cols=tuple(sigma_cols),
            helper_cols=tuple(helper_cols),
            sum_col=sum_col,
        )
        total_h: Expression = Constant(0)
        for col, id_col, sigma_col, h_col in zip(
            perm_cols, id_cols, sigma_cols, helper_cols
        ):
            v = Ref(col)
            d_id = gamma + v + beta * Ref(id_col)
            d_sigma = gamma + v + beta * Ref(sigma_col)
            h = Ref(h_col)
            constraints.append(
                (
                    "perm:%r/inverse" % col,
                    h * d_id * d_sigma - d_sigma + d_id,
                )
            )
            total_h = total_h + h
        s = Ref(sum_col)
        s_next = Ref(sum_col, 1)
        constraints.append(("perm/sum", s_next - s - total_h))
        constraints.append(("perm/init", l0 * s))

    max_degree = max([expr.degree() for _, expr in constraints] + [2])
    domain = EvaluationDomain(field, assignment.k, max_degree=max_degree)

    with tracer.span("keygen:fixed_polys", columns=len(fixed_evals),
                     max_degree=max_degree):
        fixed_polys = {
            col: domain.lagrange_to_coeff(evals)
            for col, evals in fixed_evals.items()
        }

    advice_queries = sorted(
        {
            (col, rot)
            for _, expr in constraints
            for col, rot in expr.refs()
            if col.kind == ColumnType.ADVICE
        },
        key=lambda q: (q[0].index, q[1]),
    )

    vk = VerifyingKey(
        field=field,
        k=assignment.k,
        cs=cs,
        scheme_name=scheme.name,
        domain=domain,
        max_degree=max_degree,
        fixed_polys=fixed_polys,
        l0_col=l0_col,
        lookups=lookups,
        permutation=permutation,
        constraints=constraints,
        advice_queries=advice_queries,
        num_helper_advice=next_advice - cs.num_advice,
    )
    if domain.uses_gl64:
        with tracer.span("keygen:fixed_parts", columns=len(fixed_polys)):
            # precompute the quotient's fixed-column coset parts now so
            # the pk cache carries them into every later prove
            vk.fixed_part_evals()
    pk = ProvingKey(vk=vk, fixed_evals=fixed_evals)
    return pk, vk
