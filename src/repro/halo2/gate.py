"""Custom gates: selector-switched polynomial constraints."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import Expression, Product, Ref


@dataclass(frozen=True)
class Gate:
    """A named set of polynomial constraints gated by an optional selector.

    The effective constraint enforced on every row is
    ``selector(row) * constraint(row) == 0``; without a selector the raw
    constraint must vanish everywhere.
    """

    name: str
    constraints: Tuple[Expression, ...]
    selector: Optional[Column] = None

    def __post_init__(self) -> None:
        if self.selector is not None and self.selector.kind != ColumnType.SELECTOR:
            raise ValueError("gate selector must be a selector column")

    def effective_constraints(self) -> List[Expression]:
        """Constraints with the selector factor applied."""
        if self.selector is None:
            return list(self.constraints)
        sel = Ref(self.selector)
        return [Product(sel, c) for c in self.constraints]

    def degree(self) -> int:
        """Maximum degree across effective constraints."""
        degrees = [c.degree() for c in self.effective_constraints()]
        return max(degrees) if degrees else 0
