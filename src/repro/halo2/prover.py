"""Proof creation.

Follows the halo2 recipe (paper §3 and §7.4):

1. commit to the user advice columns;
2. derive ``theta/beta/gamma/alpha`` and build the lookup (m, h, s) and
   permutation (h_c, s) helper columns; commit to them;
3. derive ``y``, fold every constraint, and divide by the vanishing
   polynomial on the extended coset to obtain the quotient polynomial,
   committed in ``d_max - 1`` pieces of degree < n;
4. derive ``x`` and open every queried polynomial.

The FFTs and commitments performed here are the operations the optimizer's
cost model counts (Eqs. 1–2).

Implementation notes: on Goldilocks every phase runs batched over whole
*matrices* of columns.  Phase 1 and the helper commits stack columns into
an ``(m, n)`` ``uint64`` matrix, interpolate with one batched NTT, and
commit row by row; all-zero columns (detected at synthesis by
:meth:`~repro.halo2.circuit.Assignment.advice_is_zero` or at commit time
by a row scan) skip both the transform and the digest.  Phase 2 stacks
every lookup and permutation denominator into a single flat
``gl64.batch_inv`` call and builds lookup multiplicities with sorted
numpy searches.  Phase 3 evaluates the quotient per *coset part* —
``extension`` interleaved base-width cosets — so no column is ever
materialized at extended width and the vanishing division is one scalar
per part; ``ZKML_QUOTIENT_STREAM=1`` processes one part at a time,
bounding peak memory to one ``(columns, n)`` matrix.  On other fields the
columnwise list-backend reference path runs instead, and the two produce
byte-identical proofs (asserted by the equivalence tests).

Independent column work fans out over worker processes (``jobs`` argument
or ``ZKML_JOBS``) through :func:`~repro.perf.parallel.parallel_row_map`,
which ships the stacked matrix through shared memory instead of the pool
pipe; chunk results are concatenated in row order, so parallel proofs are
byte-identical to serial ones.  A :class:`~repro.perf.timer.PhaseTimer`
may be passed to record the commit / helpers / quotient / openings phase
breakdown.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.commit.scheme import Commitment, CommitmentScheme
from repro.commit.transcript import Transcript
from repro.field import gl64
from repro.field.domain import EvaluationDomain
from repro.halo2.circuit import Assignment
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import VectorEvaluator, evaluate_on_lagrange
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA, ProvingKey
from repro.halo2.proof import Proof
from repro.obs.stats import STATS
# leaf-module imports: repro.perf's package init pulls in the pk cache,
# which imports repro.halo2 and would close an import cycle through here
from repro.perf.parallel import parallel_map, parallel_row_map, resolve_jobs
from repro.perf.timer import NULL_TIMER
# re-exported for callers that import ProvingError from here; the class
# now lives in the shared taxonomy and carries phase/layer/row context
from repro.resilience.errors import ProvingError

#: Elements (referenced columns x extended width) above which the quotient
#: streams one coset part at a time instead of holding every column's
#: (extension, n) part matrix at once.  ``ZKML_QUOTIENT_STREAM=1`` forces
#: streaming, ``=0`` forces the all-parts fast path.
QUOTIENT_STREAM_ELEMS = 1 << 25


def _sparsity_enabled() -> bool:
    """All-zero column skipping is on unless ``ZKML_SPARSITY`` disables it."""
    return os.environ.get("ZKML_SPARSITY", "1").lower() not in ("0", "false", "off")


def _quotient_streaming(num_cols: int, ext_n: int) -> bool:
    env = os.environ.get("ZKML_QUOTIENT_STREAM")
    if env:
        return env.lower() not in ("0", "false", "off")
    return num_cols * ext_n > QUOTIENT_STREAM_ELEMS


# -- multiprocess workers ----------------------------------------------------
#
# Workers get the (domain, scheme) pair once through the pool initializer;
# row-parallel payloads live in shared memory, so only chunk bounds and
# commitment digests cross the pipe.  Module level so they pickle by
# reference.  The serial path runs the same functions in-process.

_WORKER_DOMAIN: Optional[EvaluationDomain] = None
_WORKER_SCHEME: Optional[CommitmentScheme] = None


def _pool_init(domain: EvaluationDomain, scheme: CommitmentScheme) -> None:
    global _WORKER_DOMAIN, _WORKER_SCHEME
    _WORKER_DOMAIN = domain
    _WORKER_SCHEME = scheme


def _interpolate_and_commit(evals):
    """Base-domain column -> (coefficient vector, commitment)."""
    poly = _WORKER_DOMAIN.lagrange_to_coeff_vec(evals)
    return poly, _WORKER_SCHEME.commit(poly)


def _commit_piece(piece):
    """Quotient piece (coefficient vector) -> commitment."""
    return _WORKER_SCHEME.commit(piece)


def _interp_commit_rows_chunk(rows: np.ndarray, row_offset: int):
    """Row-parallel worker: batched interpolation + commits for a chunk.

    All-zero rows skip the transform (a zero column interpolates to the
    zero polynomial) and share one zero-polynomial commitment per chunk;
    both skips are counted in ``STATS.sparsity_skips``.  The chunk's
    nonzero rows go through a single batched inverse NTT.
    """
    domain, scheme = _WORKER_DOMAIN, _WORKER_SCHEME
    m = rows.shape[0]
    if _sparsity_enabled():
        nonzero = np.flatnonzero(np.any(rows != 0, axis=1))
    else:
        nonzero = np.arange(m)
    if nonzero.size == m:
        polys = domain.lagrange_to_coeff_rows(rows)
    else:
        polys = np.zeros_like(rows)
        if nonzero.size:
            polys[nonzero] = domain.lagrange_to_coeff_rows(rows[nonzero])
        STATS.sparsity_skips += m - nonzero.size
    zero_rows = frozenset(range(m)) - frozenset(nonzero.tolist())
    zero_digest = None
    coms = []
    for i in range(m):
        if i in zero_rows and zero_digest is not None:
            # reuse the memoized zero-polynomial digest, but as fresh
            # objects: pickle memoizes shared objects into back-references
            # and the proof bytes must match the share-nothing reference
            STATS.sparsity_skips += 1
            coms.append(Commitment(bytes(memoryview(zero_digest))))
        else:
            com = scheme.commit(polys[i])
            if i in zero_rows:
                zero_digest = com.digest
            coms.append(com)
    return polys, coms


def _interpolate_commit_rows(domain, scheme, mat: np.ndarray, jobs):
    """Interpolate + commit the rows of ``mat``; returns (polys, coms)."""
    return parallel_row_map(
        _interp_commit_rows_chunk,
        mat,
        jobs=jobs,
        initializer=_pool_init,
        initargs=(domain, scheme),
    )


# -- vectorized helper-column kernels ----------------------------------------


def _lookup_multiplicities(field, name: str, f_arr, t_arr) -> np.ndarray:
    """Vectorized lookup multiplicity counting (the ``m`` column).

    Matches the reference loop bit for bit: each input row maps to the
    *first* table row holding its value (stable argsort keeps the lowest
    original row first among duplicates), and a value missing from the
    table raises :class:`ProvingError` for the lowest offending row.
    """
    n = len(t_arr)
    order = np.argsort(t_arr, kind="stable")
    sorted_t = t_arr[order]
    uniq = np.empty(n, dtype=bool)
    uniq[0] = True
    uniq[1:] = sorted_t[1:] != sorted_t[:-1]
    uniq_vals = sorted_t[uniq]
    first_rows = order[uniq]
    pos = np.searchsorted(uniq_vals, f_arr)
    ok = pos < uniq_vals.size
    ok &= uniq_vals[np.minimum(pos, uniq_vals.size - 1)] == f_arr
    if not ok.all():
        row = int(np.argmax(~ok))
        raise ProvingError(
            "lookup %r: input %d at row %d is not in the table"
            % (name, field.decode_signed(int(f_arr[row])), row),
            row=row, lookup=name,
        )
    counts = np.bincount(first_rows[pos], minlength=n)
    return counts.astype(np.uint64)


def _prefix_sum_vec(field, h_arr) -> np.ndarray:
    """The running-sum column: ``s[0] = 0``, ``s[j+1] = s[j] + h[j]``.

    Mod-p prefix sums are inherently sequential, but they only *change* at
    nonzero ``h`` rows: the values at those change points accumulate in
    Python ints and ``np.repeat`` expands them back to row granularity.
    """
    n = len(h_arr)
    nz = np.flatnonzero(h_arr[: n - 1])
    if nz.size == 0:
        return np.zeros(n, dtype=np.uint64)
    p = field.p
    levels = [0]
    acc = 0
    for i in nz.tolist():
        acc = (acc + int(h_arr[i])) % p
        levels.append(acc)
    reps = np.diff(np.concatenate(([0], nz + 1, [n])))
    return np.repeat(np.array(levels, dtype=np.uint64), reps)


def _batched_inverses(field, denoms: List[np.ndarray]) -> List[np.ndarray]:
    """One flat ``batch_inv`` over many same-length denominator vectors.

    ``gl64.batch_inv`` costs ``2*log2(len)`` full-width passes regardless
    of content, so inverting every helper denominator of the proof in a
    single concatenated call amortizes the scans that would dominate at
    column width.  A zero denominator falls back to the per-vector
    reference so the raised index matches the unbatched path.
    """
    if not denoms:
        return []
    flat = np.concatenate(denoms)
    try:
        inv = gl64.batch_inv(flat)
    except ZeroDivisionError:
        return [
            gl64.from_ints(field.batch_inv(gl64.to_ints(d))) for d in denoms
        ]
    return list(inv.reshape(len(denoms), -1))


# -- coset-part quotient evaluation ------------------------------------------


def _quotient_extended_np(domain, vk, assignment, advice_polys, challenges, y):
    """The quotient's extended-coset evaluations, one base-width part at a time.

    Extended index ``j = t * extension + r`` splits the coset into
    ``extension`` interleaved parts; part ``r`` is itself a base-width
    coset with shift ``coset_shift * w_E^r``, and a rotation by
    ``rot * extension`` in the extended domain is a cyclic rotation by
    ``rot`` *within every part*.  Folding the constraints over the
    stacked ``(extension, n)`` part matrices therefore reproduces the
    reference extended-domain vector exactly, while every NTT runs at
    base width and the vanishing division collapses to one scalar
    multiply per part (``Z_H`` is constant on a part).

    The fast path holds all parts of every referenced column at once;
    streaming mode (``ZKML_QUOTIENT_STREAM=1`` or a large column set)
    loops over parts so peak extra memory is one ``(columns, n)`` matrix.
    """
    backend = domain.backend
    n = domain.n
    extension = domain.extended_n // domain.n
    cols = set()
    for _, expr in vk.constraints:
        cols |= {col for col, _ in expr.refs()}
    cols_order = sorted(cols, key=lambda c: (c.kind.value, c.index))
    col_ix = {col: i for i, col in enumerate(cols_order)}
    # fixed/selector parts are circuit constants precomputed at keygen;
    # only witness-dependent (advice, instance) columns transform here
    fixed_parts = vk.fixed_part_evals()
    dyn_pos: List[int] = []
    dyn_rows = []
    for i, col in enumerate(cols_order):
        if col.kind == ColumnType.ADVICE:
            poly = advice_polys[col.index]
        elif col.kind == ColumnType.INSTANCE:
            poly = domain.lagrange_to_coeff_vec(
                backend.from_ints(assignment.column_values(col))
            )
        else:
            continue
        dyn_pos.append(i)
        dyn_rows.append(poly if isinstance(poly, np.ndarray) else gl64.from_ints(poly))
    # all parts of one column together equal one logical extended NTT;
    # counted for every referenced column so the tally stays comparable
    # with the cost model whether or not the fixed parts were cached
    STATS.ntt_extended += len(cols_order)
    mat_dyn = (
        np.stack(dyn_rows) if dyn_rows else np.zeros((0, n), dtype=np.uint64)
    )
    inv_parts = domain.vanishing_part_inverses()
    exprs = [expr for _, expr in vk.constraints]

    if _quotient_streaming(len(cols_order), domain.extended_n):
        q_ext = np.empty(domain.extended_n, dtype=np.uint64)
        for r in range(extension):
            part = np.empty((len(cols_order), n), dtype=np.uint64)
            for i, col in enumerate(cols_order):
                if col.kind not in (ColumnType.ADVICE, ColumnType.INSTANCE):
                    part[i] = fixed_parts[col][r]
            if dyn_pos:
                part[dyn_pos] = domain.coeff_to_extended_part(mat_dyn, r)
            rotated: Dict[Tuple[Column, int], object] = {}

            def read_vec(col, rot, _part=part, _rotated=rotated):
                key = (col, rot)
                vec = _rotated.get(key)
                if vec is None:
                    vec = backend.rotate(_part[col_ix[col]], rot)
                    _rotated[key] = vec
                return vec

            folded = VectorEvaluator(backend, n, read_vec, challenges).fold(
                exprs, y
            )
            q_ext[r::extension] = gl64.mul(folded, np.uint64(inv_parts[r]))
        return q_ext

    parts = np.empty((len(cols_order), extension, n), dtype=np.uint64)
    for i, col in enumerate(cols_order):
        if col.kind not in (ColumnType.ADVICE, ColumnType.INSTANCE):
            parts[i] = fixed_parts[col]
    for r in range(extension):
        if dyn_pos:
            parts[dyn_pos, r, :] = domain.coeff_to_extended_part(mat_dyn, r)
    rotated: Dict[Tuple[Column, int], object] = {}

    def read_vec(col, rot):
        key = (col, rot)
        vec = rotated.get(key)
        if vec is None:
            vec = backend.rotate(parts[col_ix[col]], rot)
            rotated[key] = vec
        return vec

    evaluator = VectorEvaluator(backend, (extension, n), read_vec, challenges)
    folded = evaluator.fold(exprs, y)
    q_mat = gl64.mul(folded, np.array(inv_parts, dtype=np.uint64).reshape(-1, 1))
    # q_mat[r, t] is extended index t*extension + r
    return np.ascontiguousarray(q_mat.T).reshape(-1)


def create_proof(
    pk: ProvingKey,
    assignment: Assignment,
    scheme: CommitmentScheme,
    jobs: Optional[int] = None,
    timer=None,
) -> Proof:
    """Produce a proof that ``assignment`` satisfies the circuit.

    Args:
        pk: The proving key from keygen.
        assignment: The witness grid.
        scheme: The commitment backend.
        jobs: Worker processes for independent column work (default: the
            ``ZKML_JOBS`` environment variable, else serial).  Any value
            produces byte-identical proofs.
        timer: An optional :class:`repro.perf.PhaseTimer` that receives the
            commit/helpers/quotient/openings wall-clock breakdown.
    """
    vk = pk.vk
    field = vk.field
    domain = vk.domain
    n = vk.n
    cs = vk.cs
    if assignment.k != vk.k:
        raise ProvingError(
            "assignment has k=%d but keys expect k=%d" % (assignment.k, vk.k),
            assignment_k=assignment.k, key_k=vk.k,
        )
    timer = timer if timer is not None else NULL_TIMER
    jobs = resolve_jobs(jobs)
    backend = domain.backend
    use_np = domain.uses_gl64

    transcript = Transcript(field)
    transcript.append_message(b"vk", vk.digest())
    for col_values in assignment.instance_values():
        transcript.append_scalar_vector(b"instance", col_values)

    # ---- phase 1: user advice commitments ---------------------------------
    with timer.phase("commit"):
        advice_vecs: Dict[int, object] = {}
        for i in range(cs.num_advice):
            if use_np and _sparsity_enabled() and assignment.advice_is_zero(i):
                # synthesis never wrote a nonzero value: skip even the
                # row-by-row grid read; the zero row is then skipped again
                # at interpolation/commit time by the chunk worker
                advice_vecs[i] = np.zeros(n, dtype=np.uint64)
            else:
                col = Column(ColumnType.ADVICE, i)
                advice_vecs[i] = backend.from_ints(assignment.column_values(col))
        advice_polys: Dict[int, object] = {}
        advice_commitments = []
        if use_np and cs.num_advice:
            mat = np.stack([advice_vecs[i] for i in range(cs.num_advice)])
            polys, coms = _interpolate_commit_rows(domain, scheme, mat, jobs)
            for i, com in enumerate(coms):
                advice_polys[i] = polys[i]
                advice_commitments.append(com)
                transcript.append_commitment(b"advice", com.digest)
        else:
            results = parallel_map(
                _interpolate_and_commit,
                [advice_vecs[i] for i in range(cs.num_advice)],
                jobs=jobs,
                initializer=_pool_init,
                initargs=(domain, scheme),
            )
            for i, (poly, com) in enumerate(results):
                advice_polys[i] = poly
                advice_commitments.append(com)
                transcript.append_commitment(b"advice", com.digest)

    challenges = {
        THETA: transcript.challenge_scalar(b"theta"),
        BETA: transcript.challenge_scalar(b"beta"),
        GAMMA: transcript.challenge_scalar(b"gamma"),
        ALPHA: transcript.challenge_scalar(b"alpha"),
    }

    # ---- phase 2: helper columns -------------------------------------------
    with timer.phase("helpers"):
        lagrange_cache: Dict[Column, object] = {}

        def read_lagrange(col: Column):
            """Base-domain evaluations of a user column, as a backend vector."""
            cached = lagrange_cache.get(col)
            if cached is not None:
                return cached
            if col.kind == ColumnType.ADVICE:
                vec = advice_vecs.get(col.index)
                if vec is None:
                    raise ProvingError("helper expression reads helper column %r" % col)
            elif col.kind == ColumnType.INSTANCE:
                vec = backend.from_ints(assignment.column_values(col))
            else:
                vec = backend.from_ints(pk.fixed_evals[col])
            lagrange_cache[col] = vec
            return vec

        def compress_columns(exprs, theta: int):
            """Columnwise random-linear combination by powers of theta."""
            parts = [
                evaluate_on_lagrange(e, backend, read_lagrange, n, challenges)
                for e in exprs
            ]
            acc = parts[-1]
            for part in reversed(parts[:-1]):
                acc = backend.fold(acc, theta, part)
            return acc

        helper_evals: Dict[int, object] = {}

        if use_np:
            # every lookup and permutation denominator of the proof is
            # inverted in ONE flat batch_inv call; multiplicities and
            # running sums run through the vectorized kernels above
            theta = challenges[THETA]
            alpha = challenges[ALPHA]
            beta, gamma = challenges[BETA], challenges[GAMMA]
            denoms: List[np.ndarray] = []
            lookup_parts = []
            for helpers in vk.lookups:
                STATS.lookup_passes += 1
                lk = helpers.argument
                f_vec = compress_columns(lk.inputs, theta)
                t_vec = compress_columns(lk.table, theta)
                m_vec = _lookup_multiplicities(field, lk.name, f_vec, t_vec)
                lookup_parts.append((helpers, m_vec))
                denoms.append(backend.add_scalar(f_vec, alpha))
                denoms.append(backend.add_scalar(t_vec, alpha))
            perm_helper_cols = []
            if vk.permutation is not None:
                perm = vk.permutation
                for col, id_col, sigma_col, h_col in zip(
                    perm.columns, perm.id_cols, perm.sigma_cols, perm.helper_cols
                ):
                    v_vec = read_lagrange(col)
                    ids = backend.from_ints(pk.fixed_evals[id_col])
                    sigmas = backend.from_ints(pk.fixed_evals[sigma_col])
                    denoms.append(backend.add_scalar(
                        backend.add(v_vec, backend.mul_scalar(ids, beta)), gamma
                    ))
                    denoms.append(backend.add_scalar(
                        backend.add(v_vec, backend.mul_scalar(sigmas, beta)), gamma
                    ))
                    perm_helper_cols.append(h_col)
            invs = _batched_inverses(field, denoms)
            pos = 0
            for helpers, m_vec in lookup_parts:
                inv_f, inv_t = invs[pos], invs[pos + 1]
                pos += 2
                h_vec = backend.sub(inv_f, backend.mul(m_vec, inv_t))
                helper_evals[helpers.m_col.index] = m_vec
                helper_evals[helpers.h_col.index] = h_vec
                helper_evals[helpers.s_col.index] = _prefix_sum_vec(field, h_vec)
            if vk.permutation is not None:
                total_h = backend.zeros(n)
                for h_col in perm_helper_cols:
                    h_vec = backend.sub(invs[pos], invs[pos + 1])
                    pos += 2
                    helper_evals[h_col.index] = h_vec
                    total_h = backend.add(total_h, h_vec)
                helper_evals[vk.permutation.sum_col.index] = _prefix_sum_vec(
                    field, total_h
                )
        else:
            for helpers in vk.lookups:
                STATS.lookup_passes += 1
                lk = helpers.argument
                theta = challenges[THETA]
                f_vec = compress_columns(lk.inputs, theta)
                t_vec = compress_columns(lk.table, theta)
                f_vals = backend.to_ints(f_vec)
                t_vals = backend.to_ints(t_vec)
                first_row_of = {}
                for row, t in enumerate(t_vals):
                    first_row_of.setdefault(t, row)
                m_vals = [0] * n
                for row, f in enumerate(f_vals):
                    target = first_row_of.get(f)
                    if target is None:
                        raise ProvingError(
                            "lookup %r: input %d at row %d is not in the table"
                            % (lk.name, field.decode_signed(f), row),
                            row=row, lookup=lk.name,
                        )
                    m_vals[target] += 1
                alpha = challenges[ALPHA]
                inv_f = backend.batch_inv(backend.add_scalar(f_vec, alpha))
                inv_t = backend.batch_inv(backend.add_scalar(t_vec, alpha))
                m_vec = backend.from_ints(m_vals)
                h_vec = backend.sub(inv_f, backend.mul(m_vec, inv_t))
                h_vals = backend.to_ints(h_vec)
                s_vals = [0] * n
                for row in range(n - 1):
                    s_vals[row + 1] = field.add(s_vals[row], h_vals[row])
                helper_evals[helpers.m_col.index] = m_vec
                helper_evals[helpers.h_col.index] = h_vec
                helper_evals[helpers.s_col.index] = backend.from_ints(s_vals)

            if vk.permutation is not None:
                perm = vk.permutation
                beta, gamma = challenges[BETA], challenges[GAMMA]
                total_h = backend.zeros(n)
                for col, id_col, sigma_col, h_col in zip(
                    perm.columns, perm.id_cols, perm.sigma_cols, perm.helper_cols
                ):
                    v_vec = read_lagrange(col)
                    ids = backend.from_ints(pk.fixed_evals[id_col])
                    sigmas = backend.from_ints(pk.fixed_evals[sigma_col])
                    d_id = backend.add_scalar(
                        backend.add(v_vec, backend.mul_scalar(ids, beta)), gamma
                    )
                    d_sigma = backend.add_scalar(
                        backend.add(v_vec, backend.mul_scalar(sigmas, beta)), gamma
                    )
                    h_vec = backend.sub(
                        backend.batch_inv(d_id), backend.batch_inv(d_sigma)
                    )
                    helper_evals[h_col.index] = h_vec
                    total_h = backend.add(total_h, h_vec)
                total_vals = backend.to_ints(total_h)
                s_vals = [0] * n
                for row in range(n - 1):
                    s_vals[row + 1] = field.add(s_vals[row], total_vals[row])
                helper_evals[perm.sum_col.index] = backend.from_ints(s_vals)

        helper_order = sorted(helper_evals)
        if use_np and helper_order:
            hmat = np.stack([helper_evals[idx] for idx in helper_order])
            polys, coms = _interpolate_commit_rows(domain, scheme, hmat, jobs)
            results = list(zip(polys, coms))
        else:
            results = parallel_map(
                _interpolate_and_commit,
                [helper_evals[idx] for idx in helper_order],
                jobs=jobs,
                initializer=_pool_init,
                initargs=(domain, scheme),
            )
        helper_commitments = []
        for idx, (poly, com) in zip(helper_order, results):
            advice_polys[idx] = poly
            advice_vecs[idx] = helper_evals[idx]
            helper_commitments.append(com)
            transcript.append_commitment(b"helper", com.digest)

    y = transcript.challenge_scalar(b"y")

    # ---- phase 3: quotient ---------------------------------------------------
    with timer.phase("quotient"):
        ext_n = domain.extended_n
        extension = ext_n // n
        if use_np:
            q_ext = _quotient_extended_np(
                domain, vk, assignment, advice_polys, challenges, y
            )
        else:
            extended_cache: Dict[Column, object] = {}
            rotated_cache: Dict[Tuple[Column, int], object] = {}

            def extended_evals(col: Column):
                cached = extended_cache.get(col)
                if cached is not None:
                    return cached
                if col.kind == ColumnType.ADVICE:
                    poly = advice_polys[col.index]
                elif col.kind == ColumnType.INSTANCE:
                    poly = domain.lagrange_to_coeff_vec(
                        backend.from_ints(assignment.column_values(col))
                    )
                else:
                    poly = vk.fixed_polys[col]
                ext = domain.coeff_to_extended_vec(poly)
                extended_cache[col] = ext
                return ext

            def read_vec(col: Column, rot: int):
                key = (col, rot)
                cached = rotated_cache.get(key)
                if cached is not None:
                    return cached
                vec = backend.rotate(extended_evals(col), rot * extension)
                rotated_cache[key] = vec
                return vec

            evaluator = VectorEvaluator(backend, ext_n, read_vec, challenges)
            folded = evaluator.fold([expr for _, expr in vk.constraints], y)
            q_ext = backend.mul(folded, domain.vanishing_inverse_vec())

        q_coeffs = domain.extended_to_coeff_vec(q_ext)

        num_pieces = vk.num_quotient_pieces
        pieces = []
        for j in range(num_pieces):
            piece = q_coeffs[j * n : (j + 1) * n]
            if len(piece) < n:
                padded = backend.zeros(n)
                padded[: len(piece)] = piece
                piece = padded
            pieces.append(piece)

        quotient_commitments = parallel_map(
            _commit_piece,
            pieces,
            jobs=jobs,
            initializer=_pool_init,
            initargs=(domain, scheme),
        )
        for com in quotient_commitments:
            transcript.append_commitment(b"quotient", com.digest)

    x = transcript.challenge_nonzero(b"x")

    # ---- phase 4: openings -----------------------------------------------------
    with timer.phase("openings"):
        advice_openings: Dict[Tuple[int, int], "OpeningProof"] = {}
        if use_np:
            if vk.advice_queries:
                qrows = np.stack(
                    [advice_polys[col.index] for col, _ in vk.advice_queries]
                )
                points = [domain.rotate(x, rot) for _, rot in vk.advice_queries]
                for (col, rot), opening in zip(
                    vk.advice_queries, scheme.open_rows(qrows, points)
                ):
                    advice_openings[(col.index, rot)] = opening
            quotient_openings = scheme.open_rows(
                np.stack(pieces), [x] * len(pieces)
            )
        else:
            for col, rot in vk.advice_queries:
                point = domain.rotate(x, rot)
                advice_openings[(col.index, rot)] = scheme.open(
                    advice_polys[col.index], point
                )
            quotient_openings = [scheme.open(piece, x) for piece in pieces]

    return Proof(
        advice_commitments=advice_commitments,
        helper_commitments=helper_commitments,
        quotient_commitments=quotient_commitments,
        advice_openings=advice_openings,
        quotient_openings=quotient_openings,
    )
