"""Proof creation.

Follows the halo2 recipe (paper §3 and §7.4):

1. commit to the user advice columns;
2. derive ``theta/beta/gamma/alpha`` and build the lookup (m, h, s) and
   permutation (h_c, s) helper columns; commit to them;
3. derive ``y``, fold every constraint, and divide by the vanishing
   polynomial on the extended coset to obtain the quotient polynomial,
   committed in ``d_max - 1`` pieces of degree < n;
4. derive ``x`` and open every queried polynomial.

The FFTs and commitments performed here are the operations the optimizer's
cost model counts (Eqs. 1–2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.commit.transcript import Transcript
from repro.halo2.circuit import Assignment
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import evaluate_on_domain
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA, ProvingKey
from repro.halo2.proof import Proof


class ProvingError(ValueError):
    """Raised when the witness cannot satisfy the circuit (e.g. a lookup
    input that is missing from its table)."""


def _compress_row_values(field, values: List[int], theta: int) -> int:
    acc = values[-1]
    for v in reversed(values[:-1]):
        acc = (acc * theta + v) % field.p
    return acc


def create_proof(
    pk: ProvingKey, assignment: Assignment, scheme: CommitmentScheme
) -> Proof:
    """Produce a proof that ``assignment`` satisfies the circuit."""
    vk = pk.vk
    field = vk.field
    domain = vk.domain
    n = vk.n
    cs = vk.cs
    if assignment.k != vk.k:
        raise ValueError("assignment has k=%d but keys expect k=%d" % (assignment.k, vk.k))

    transcript = Transcript(field)
    transcript.append_message(b"vk", vk.digest())
    for col_values in assignment.instance_values():
        for v in col_values:
            transcript.append_scalar(b"instance", v)

    # ---- phase 1: user advice commitments ---------------------------------
    advice_evals: Dict[int, List[int]] = {}
    advice_polys: Dict[int, List[int]] = {}
    advice_commitments = []
    for i in range(cs.num_advice):
        evals = assignment.column_values(Column(ColumnType.ADVICE, i))
        advice_evals[i] = evals
        poly = domain.lagrange_to_coeff(evals)
        advice_polys[i] = poly
        com = scheme.commit(poly)
        advice_commitments.append(com)
        transcript.append_commitment(b"advice", com.digest)

    challenges = {
        THETA: transcript.challenge_scalar(b"theta"),
        BETA: transcript.challenge_scalar(b"beta"),
        GAMMA: transcript.challenge_scalar(b"gamma"),
        ALPHA: transcript.challenge_scalar(b"alpha"),
    }

    # ---- phase 2: helper columns -------------------------------------------
    def read_user(col: Column, row: int) -> int:
        if col.kind == ColumnType.ADVICE:
            evals = advice_evals.get(col.index)
            if evals is None:
                raise ProvingError("helper expression reads helper column %r" % col)
            return evals[row % n]
        if col.kind == ColumnType.INSTANCE:
            return assignment.value(col, row)
        return pk.fixed_evals[col][row % n]

    helper_evals: Dict[int, List[int]] = {}

    for helpers in vk.lookups:
        lk = helpers.argument
        theta = challenges[THETA]
        f_vals, t_vals = [], []
        for row in range(n):
            def read(col, rot, _row=row):
                return read_user(col, _row + rot)

            f_vals.append(
                _compress_row_values(
                    field, [e.evaluate(field, read) for e in lk.inputs], theta
                )
            )
            t_vals.append(
                _compress_row_values(
                    field, [e.evaluate(field, read) for e in lk.table], theta
                )
            )
        first_row_of = {}
        for row, t in enumerate(t_vals):
            first_row_of.setdefault(t, row)
        m_vals = [0] * n
        for row, f in enumerate(f_vals):
            target = first_row_of.get(f)
            if target is None:
                raise ProvingError(
                    "lookup %r: input %d at row %d is not in the table"
                    % (lk.name, field.decode_signed(f), row)
                )
            m_vals[target] += 1
        alpha = challenges[ALPHA]
        inv_f = field.batch_inv([field.add(alpha, f) for f in f_vals])
        inv_t = field.batch_inv([field.add(alpha, t) for t in t_vals])
        h_vals = [
            field.sub(fi, field.mul(m, ti))
            for fi, ti, m in zip(inv_f, inv_t, m_vals)
        ]
        s_vals = [0] * n
        for row in range(n - 1):
            s_vals[row + 1] = field.add(s_vals[row], h_vals[row])
        helper_evals[helpers.m_col.index] = m_vals
        helper_evals[helpers.h_col.index] = h_vals
        helper_evals[helpers.s_col.index] = s_vals

    if vk.permutation is not None:
        perm = vk.permutation
        beta, gamma = challenges[BETA], challenges[GAMMA]
        total_h = [0] * n
        for col, id_col, sigma_col, h_col in zip(
            perm.columns, perm.id_cols, perm.sigma_cols, perm.helper_cols
        ):
            v_vals = (
                advice_evals[col.index]
                if col.kind == ColumnType.ADVICE
                else [read_user(col, r) for r in range(n)]
            )
            ids = pk.fixed_evals[id_col]
            sigmas = pk.fixed_evals[sigma_col]
            d_id = [
                (gamma + v + beta * i) % field.p for v, i in zip(v_vals, ids)
            ]
            d_sigma = [
                (gamma + v + beta * s) % field.p for v, s in zip(v_vals, sigmas)
            ]
            inv_id = field.batch_inv(d_id)
            inv_sigma = field.batch_inv(d_sigma)
            h_vals = [field.sub(a, b) for a, b in zip(inv_id, inv_sigma)]
            helper_evals[h_col.index] = h_vals
            total_h = [field.add(a, b) for a, b in zip(total_h, h_vals)]
        s_vals = [0] * n
        for row in range(n - 1):
            s_vals[row + 1] = field.add(s_vals[row], total_h[row])
        helper_evals[perm.sum_col.index] = s_vals

    helper_commitments = []
    for idx in sorted(helper_evals):
        poly = domain.lagrange_to_coeff(helper_evals[idx])
        advice_polys[idx] = poly
        advice_evals[idx] = helper_evals[idx]
        com = scheme.commit(poly)
        helper_commitments.append(com)
        transcript.append_commitment(b"helper", com.digest)

    y = transcript.challenge_scalar(b"y")

    # ---- phase 3: quotient ---------------------------------------------------
    ext_n = domain.extended_n
    extension = ext_n // n
    extended_cache: Dict[Column, List[int]] = {}

    def extended_evals(col: Column) -> List[int]:
        cached = extended_cache.get(col)
        if cached is not None:
            return cached
        if col.kind == ColumnType.ADVICE:
            poly = advice_polys[col.index]
        elif col.kind == ColumnType.INSTANCE:
            poly = domain.lagrange_to_coeff(
                assignment.column_values(col)
            )
        else:
            poly = vk.fixed_polys[col]
        ext = domain.coeff_to_extended(poly)
        extended_cache[col] = ext
        return ext

    def read_vec(col: Column, rot: int) -> List[int]:
        ext = extended_evals(col)
        if rot == 0:
            return ext
        shift = (rot * extension) % ext_n
        return ext[shift:] + ext[:shift]

    p = field.p
    folded = [0] * ext_n
    for _, expr in vk.constraints:
        values = evaluate_on_domain(expr, field, read_vec, ext_n, challenges)
        folded = [(a * y + b) % p for a, b in zip(folded, values)]

    vanishing = domain.vanishing_on_extended()
    inv_vanishing = field.batch_inv(vanishing)
    q_ext = [a * b % p for a, b in zip(folded, inv_vanishing)]
    q_coeffs = domain.extended_to_coeff(q_ext)

    num_pieces = vk.num_quotient_pieces
    pieces = []
    for j in range(num_pieces):
        piece = q_coeffs[j * n : (j + 1) * n]
        piece += [0] * (n - len(piece))
        pieces.append(piece)

    quotient_commitments = []
    for piece in pieces:
        com = scheme.commit(piece)
        quotient_commitments.append(com)
        transcript.append_commitment(b"quotient", com.digest)

    x = transcript.challenge_nonzero(b"x")

    # ---- phase 4: openings -----------------------------------------------------
    advice_openings: Dict[Tuple[int, int], "OpeningProof"] = {}
    for col, rot in vk.advice_queries:
        point = domain.rotate(x, rot)
        advice_openings[(col.index, rot)] = scheme.open(
            advice_polys[col.index], point
        )
    quotient_openings = [scheme.open(piece, x) for piece in pieces]

    return Proof(
        advice_commitments=advice_commitments,
        helper_commitments=helper_commitments,
        quotient_commitments=quotient_commitments,
        advice_openings=advice_openings,
        quotient_openings=quotient_openings,
    )
