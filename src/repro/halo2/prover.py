"""Proof creation.

Follows the halo2 recipe (paper §3 and §7.4):

1. commit to the user advice columns;
2. derive ``theta/beta/gamma/alpha`` and build the lookup (m, h, s) and
   permutation (h_c, s) helper columns; commit to them;
3. derive ``y``, fold every constraint, and divide by the vanishing
   polynomial on the extended coset to obtain the quotient polynomial,
   committed in ``d_max - 1`` pieces of degree < n;
4. derive ``x`` and open every queried polynomial.

The FFTs and commitments performed here are the operations the optimizer's
cost model counts (Eqs. 1–2).

Implementation notes: every per-row loop runs columnwise through the
vector backend of the evaluation domain (numpy on Goldilocks, lists
elsewhere); helper columns are built with
:func:`~repro.halo2.expression.evaluate_on_lagrange`, the quotient with a
memoizing :class:`~repro.halo2.expression.VectorEvaluator`.  Independent
column interpolations/commitments can fan out over worker processes
(``jobs`` argument or ``ZKML_JOBS``); result order is fixed, so parallel
proofs are byte-identical to serial ones.  A
:class:`~repro.perf.timer.PhaseTimer` may be passed to record the
commit / helpers / quotient / openings phase breakdown.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.commit.scheme import CommitmentScheme
from repro.commit.transcript import Transcript
from repro.field.domain import EvaluationDomain
from repro.halo2.circuit import Assignment
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import VectorEvaluator, evaluate_on_lagrange
from repro.halo2.keygen import ALPHA, BETA, GAMMA, THETA, ProvingKey
from repro.halo2.proof import Proof
from repro.obs.stats import STATS
# leaf-module imports: repro.perf's package init pulls in the pk cache,
# which imports repro.halo2 and would close an import cycle through here
from repro.perf.parallel import parallel_map, resolve_jobs
from repro.perf.timer import NULL_TIMER
# re-exported for callers that import ProvingError from here; the class
# now lives in the shared taxonomy and carries phase/layer/row context
from repro.resilience.errors import ProvingError


# -- multiprocess workers ----------------------------------------------------
#
# Workers get the (domain, scheme) pair once through the pool initializer;
# per-item payloads are bare column vectors.  Module level so they pickle
# by reference.  The serial path runs the same functions in-process.

_WORKER_DOMAIN: Optional[EvaluationDomain] = None
_WORKER_SCHEME: Optional[CommitmentScheme] = None


def _pool_init(domain: EvaluationDomain, scheme: CommitmentScheme) -> None:
    global _WORKER_DOMAIN, _WORKER_SCHEME
    _WORKER_DOMAIN = domain
    _WORKER_SCHEME = scheme


def _interpolate_and_commit(evals):
    """Base-domain column -> (coefficient vector, commitment)."""
    poly = _WORKER_DOMAIN.lagrange_to_coeff_vec(evals)
    return poly, _WORKER_SCHEME.commit(poly)


def _commit_piece(piece):
    """Quotient piece (coefficient vector) -> commitment."""
    return _WORKER_SCHEME.commit(piece)


def create_proof(
    pk: ProvingKey,
    assignment: Assignment,
    scheme: CommitmentScheme,
    jobs: Optional[int] = None,
    timer=None,
) -> Proof:
    """Produce a proof that ``assignment`` satisfies the circuit.

    Args:
        pk: The proving key from keygen.
        assignment: The witness grid.
        scheme: The commitment backend.
        jobs: Worker processes for independent column work (default: the
            ``ZKML_JOBS`` environment variable, else serial).  Any value
            produces byte-identical proofs.
        timer: An optional :class:`repro.perf.PhaseTimer` that receives the
            commit/helpers/quotient/openings wall-clock breakdown.
    """
    vk = pk.vk
    field = vk.field
    domain = vk.domain
    n = vk.n
    cs = vk.cs
    if assignment.k != vk.k:
        raise ProvingError(
            "assignment has k=%d but keys expect k=%d" % (assignment.k, vk.k),
            assignment_k=assignment.k, key_k=vk.k,
        )
    timer = timer if timer is not None else NULL_TIMER
    jobs = resolve_jobs(jobs)
    backend = domain.backend

    transcript = Transcript(field)
    transcript.append_message(b"vk", vk.digest())
    for col_values in assignment.instance_values():
        transcript.append_scalar_vector(b"instance", col_values)

    # ---- phase 1: user advice commitments ---------------------------------
    with timer.phase("commit"):
        advice_vecs: Dict[int, object] = {}
        for i in range(cs.num_advice):
            col = Column(ColumnType.ADVICE, i)
            advice_vecs[i] = backend.from_ints(assignment.column_values(col))
        results = parallel_map(
            _interpolate_and_commit,
            [advice_vecs[i] for i in range(cs.num_advice)],
            jobs=jobs,
            initializer=_pool_init,
            initargs=(domain, scheme),
        )
        advice_polys: Dict[int, object] = {}
        advice_commitments = []
        for i, (poly, com) in enumerate(results):
            advice_polys[i] = poly
            advice_commitments.append(com)
            transcript.append_commitment(b"advice", com.digest)

    challenges = {
        THETA: transcript.challenge_scalar(b"theta"),
        BETA: transcript.challenge_scalar(b"beta"),
        GAMMA: transcript.challenge_scalar(b"gamma"),
        ALPHA: transcript.challenge_scalar(b"alpha"),
    }

    # ---- phase 2: helper columns -------------------------------------------
    with timer.phase("helpers"):
        lagrange_cache: Dict[Column, object] = {}

        def read_lagrange(col: Column):
            """Base-domain evaluations of a user column, as a backend vector."""
            cached = lagrange_cache.get(col)
            if cached is not None:
                return cached
            if col.kind == ColumnType.ADVICE:
                vec = advice_vecs.get(col.index)
                if vec is None:
                    raise ProvingError("helper expression reads helper column %r" % col)
            elif col.kind == ColumnType.INSTANCE:
                vec = backend.from_ints(assignment.column_values(col))
            else:
                vec = backend.from_ints(pk.fixed_evals[col])
            lagrange_cache[col] = vec
            return vec

        def compress_columns(exprs, theta: int):
            """Columnwise random-linear combination by powers of theta."""
            parts = [
                evaluate_on_lagrange(e, backend, read_lagrange, n, challenges)
                for e in exprs
            ]
            acc = parts[-1]
            for part in reversed(parts[:-1]):
                acc = backend.fold(acc, theta, part)
            return acc

        helper_evals: Dict[int, object] = {}

        for helpers in vk.lookups:
            STATS.lookup_passes += 1
            lk = helpers.argument
            theta = challenges[THETA]
            f_vec = compress_columns(lk.inputs, theta)
            t_vec = compress_columns(lk.table, theta)
            f_vals = backend.to_ints(f_vec)
            t_vals = backend.to_ints(t_vec)
            first_row_of = {}
            for row, t in enumerate(t_vals):
                first_row_of.setdefault(t, row)
            m_vals = [0] * n
            for row, f in enumerate(f_vals):
                target = first_row_of.get(f)
                if target is None:
                    raise ProvingError(
                        "lookup %r: input %d at row %d is not in the table"
                        % (lk.name, field.decode_signed(f), row),
                        row=row, lookup=lk.name,
                    )
                m_vals[target] += 1
            alpha = challenges[ALPHA]
            inv_f = backend.batch_inv(backend.add_scalar(f_vec, alpha))
            inv_t = backend.batch_inv(backend.add_scalar(t_vec, alpha))
            m_vec = backend.from_ints(m_vals)
            h_vec = backend.sub(inv_f, backend.mul(m_vec, inv_t))
            h_vals = backend.to_ints(h_vec)
            s_vals = [0] * n
            for row in range(n - 1):
                s_vals[row + 1] = field.add(s_vals[row], h_vals[row])
            helper_evals[helpers.m_col.index] = m_vec
            helper_evals[helpers.h_col.index] = h_vec
            helper_evals[helpers.s_col.index] = backend.from_ints(s_vals)

        if vk.permutation is not None:
            perm = vk.permutation
            beta, gamma = challenges[BETA], challenges[GAMMA]
            total_h = backend.zeros(n)
            for col, id_col, sigma_col, h_col in zip(
                perm.columns, perm.id_cols, perm.sigma_cols, perm.helper_cols
            ):
                v_vec = read_lagrange(col)
                ids = backend.from_ints(pk.fixed_evals[id_col])
                sigmas = backend.from_ints(pk.fixed_evals[sigma_col])
                d_id = backend.add_scalar(
                    backend.add(v_vec, backend.mul_scalar(ids, beta)), gamma
                )
                d_sigma = backend.add_scalar(
                    backend.add(v_vec, backend.mul_scalar(sigmas, beta)), gamma
                )
                h_vec = backend.sub(backend.batch_inv(d_id), backend.batch_inv(d_sigma))
                helper_evals[h_col.index] = h_vec
                total_h = backend.add(total_h, h_vec)
            total_vals = backend.to_ints(total_h)
            s_vals = [0] * n
            for row in range(n - 1):
                s_vals[row + 1] = field.add(s_vals[row], total_vals[row])
            helper_evals[perm.sum_col.index] = backend.from_ints(s_vals)

        helper_order = sorted(helper_evals)
        results = parallel_map(
            _interpolate_and_commit,
            [helper_evals[idx] for idx in helper_order],
            jobs=jobs,
            initializer=_pool_init,
            initargs=(domain, scheme),
        )
        helper_commitments = []
        for idx, (poly, com) in zip(helper_order, results):
            advice_polys[idx] = poly
            advice_vecs[idx] = helper_evals[idx]
            helper_commitments.append(com)
            transcript.append_commitment(b"helper", com.digest)

    y = transcript.challenge_scalar(b"y")

    # ---- phase 3: quotient ---------------------------------------------------
    with timer.phase("quotient"):
        ext_n = domain.extended_n
        extension = ext_n // n
        extended_cache: Dict[Column, object] = {}
        rotated_cache: Dict[Tuple[Column, int], object] = {}

        def extended_evals(col: Column):
            cached = extended_cache.get(col)
            if cached is not None:
                return cached
            if col.kind == ColumnType.ADVICE:
                poly = advice_polys[col.index]
            elif col.kind == ColumnType.INSTANCE:
                poly = domain.lagrange_to_coeff_vec(
                    backend.from_ints(assignment.column_values(col))
                )
            else:
                poly = vk.fixed_polys[col]
            ext = domain.coeff_to_extended_vec(poly)
            extended_cache[col] = ext
            return ext

        def read_vec(col: Column, rot: int):
            key = (col, rot)
            cached = rotated_cache.get(key)
            if cached is not None:
                return cached
            vec = backend.rotate(extended_evals(col), rot * extension)
            rotated_cache[key] = vec
            return vec

        evaluator = VectorEvaluator(backend, ext_n, read_vec, challenges)
        folded = evaluator.fold([expr for _, expr in vk.constraints], y)

        q_ext = backend.mul(folded, domain.vanishing_inverse_vec())
        q_coeffs = domain.extended_to_coeff_vec(q_ext)

        num_pieces = vk.num_quotient_pieces
        pieces = []
        for j in range(num_pieces):
            piece = q_coeffs[j * n : (j + 1) * n]
            if len(piece) < n:
                padded = backend.zeros(n)
                padded[: len(piece)] = piece
                piece = padded
            pieces.append(piece)

        quotient_commitments = parallel_map(
            _commit_piece,
            pieces,
            jobs=jobs,
            initializer=_pool_init,
            initargs=(domain, scheme),
        )
        for com in quotient_commitments:
            transcript.append_commitment(b"quotient", com.digest)

    x = transcript.challenge_nonzero(b"x")

    # ---- phase 4: openings -----------------------------------------------------
    with timer.phase("openings"):
        advice_openings: Dict[Tuple[int, int], "OpeningProof"] = {}
        for col, rot in vk.advice_queries:
            point = domain.rotate(x, rot)
            advice_openings[(col.index, rot)] = scheme.open(
                advice_polys[col.index], point
            )
        quotient_openings = [scheme.open(piece, x) for piece in pieces]

    return Proof(
        advice_commitments=advice_commitments,
        helper_commitments=helper_commitments,
        quotient_commitments=quotient_commitments,
        advice_openings=advice_openings,
        quotient_openings=quotient_openings,
    )
