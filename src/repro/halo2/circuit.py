"""Constraint system (circuit shape) and assignment (witness grid).

A :class:`ConstraintSystem` declares columns, gates, lookups, and which
columns participate in the permutation argument.  An :class:`Assignment`
holds the concrete 2^k-row grid of values plus the copy constraints
recorded while laying out a circuit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.field.prime_field import PrimeField
from repro.halo2.column import Column, ColumnType
from repro.halo2.expression import Expression
from repro.halo2.gate import Gate
from repro.halo2.lookup import LookupArgument

#: Degree of the permutation argument's helper constraint (see keygen).
PERMUTATION_CONSTRAINT_DEGREE = 3


class ConstraintSystem:
    """The static shape of a circuit: columns, gates, lookups, equality."""

    def __init__(self, field: PrimeField):
        self.field = field
        self.num_advice = 0
        self.num_fixed = 0
        self.num_instance = 0
        self.num_selectors = 0
        self.gates: List[Gate] = []
        self.lookups: List[LookupArgument] = []
        self.equality_columns: Set[Column] = set()

    # -- column allocation ---------------------------------------------------

    def advice_column(self) -> Column:
        col = Column(ColumnType.ADVICE, self.num_advice)
        self.num_advice += 1
        return col

    def fixed_column(self) -> Column:
        col = Column(ColumnType.FIXED, self.num_fixed)
        self.num_fixed += 1
        return col

    def instance_column(self) -> Column:
        col = Column(ColumnType.INSTANCE, self.num_instance)
        self.num_instance += 1
        return col

    def selector(self) -> Column:
        col = Column(ColumnType.SELECTOR, self.num_selectors)
        self.num_selectors += 1
        return col

    # -- constraint declaration ------------------------------------------------

    def create_gate(
        self,
        name: str,
        constraints: Sequence[Expression],
        selector: Optional[Column] = None,
    ) -> Gate:
        gate = Gate(name=name, constraints=tuple(constraints), selector=selector)
        self.gates.append(gate)
        return gate

    def add_lookup(
        self,
        name: str,
        inputs: Sequence[Expression],
        table: Sequence[Expression],
    ) -> LookupArgument:
        lookup = LookupArgument(name=name, inputs=tuple(inputs), table=tuple(table))
        self.lookups.append(lookup)
        return lookup

    def enable_equality(self, column: Column) -> None:
        """Mark a column as participating in the permutation argument."""
        if column.kind == ColumnType.SELECTOR:
            raise ValueError("selector columns cannot carry copy constraints")
        self.equality_columns.add(column)

    # -- shape statistics (consumed by the optimizer's cost model) -------------

    def permuted_columns(self) -> List[Column]:
        """Deterministically ordered equality-enabled columns."""
        return sorted(self.equality_columns, key=lambda c: (c.kind.value, c.index))

    def gate_degree(self) -> int:
        """Maximum degree over user gates (at least 2, halo2's floor)."""
        degrees = [g.degree() for g in self.gates]
        return max(degrees + [2])

    def max_degree(self) -> int:
        """Maximum constraint degree including lookup/permutation helpers."""
        d = self.gate_degree()
        for lk in self.lookups:
            # helper constraint: h * (alpha + f) * (alpha + t) - ... (keygen)
            d = max(d, 1 + lk.input_degree() + lk.table_degree())
        if self.equality_columns:
            d = max(d, PERMUTATION_CONSTRAINT_DEGREE)
        return d


class Assignment:
    """A concrete 2^k-row grid of values for a constraint system.

    Cells start unassigned (None) and are treated as zero by the prover;
    the MockProver reports reads of unassigned advice cells only when a
    gate actually constrains them.
    """

    def __init__(self, cs: ConstraintSystem, k: int):
        if k < 0:
            raise ValueError("k must be nonnegative")
        self.cs = cs
        self.k = k
        self.n = 1 << k
        self.advice: List[List[Optional[int]]] = [
            [None] * self.n for _ in range(cs.num_advice)
        ]
        self.fixed: List[List[Optional[int]]] = [
            [None] * self.n for _ in range(cs.num_fixed)
        ]
        self.instance: List[List[Optional[int]]] = [
            [None] * self.n for _ in range(cs.num_instance)
        ]
        self.selectors: List[List[int]] = [
            [0] * self.n for _ in range(cs.num_selectors)
        ]
        self.copies: List[Tuple[Column, int, Column, int]] = []
        # Advice columns that ever received a nonzero value.  Synthesis
        # writes advice only through assign_advice, so a column absent
        # from this set is identically zero — the prover skips its
        # interpolation and reuses the zero-polynomial commitment.
        self._advice_nonzero: set = set()

    # -- assignment ------------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n:
            raise IndexError("row %d out of range for 2^%d rows" % (row, self.k))
        self._grow()

    def _grow(self) -> None:
        """Track columns allocated on the constraint system after init.

        Circuit builders declare gadgets (and hence selectors, fixed table
        columns, ...) lazily during synthesis; the grid grows to match.
        """
        cs = self.cs
        while len(self.advice) < cs.num_advice:
            self.advice.append([None] * self.n)
        while len(self.fixed) < cs.num_fixed:
            self.fixed.append([None] * self.n)
        while len(self.instance) < cs.num_instance:
            self.instance.append([None] * self.n)
        while len(self.selectors) < cs.num_selectors:
            self.selectors.append([0] * self.n)

    def assign_advice(self, column: Column, row: int, value: int) -> None:
        if column.kind != ColumnType.ADVICE:
            raise ValueError("expected an advice column, got %r" % column)
        self._check_row(row)
        reduced = self.cs.field.reduce(value)
        self.advice[column.index][row] = reduced
        if reduced:
            self._advice_nonzero.add(column.index)

    def assign_fixed(self, column: Column, row: int, value: int) -> None:
        if column.kind != ColumnType.FIXED:
            raise ValueError("expected a fixed column, got %r" % column)
        self._check_row(row)
        self.fixed[column.index][row] = self.cs.field.reduce(value)

    def assign_instance(self, column: Column, row: int, value: int) -> None:
        if column.kind != ColumnType.INSTANCE:
            raise ValueError("expected an instance column, got %r" % column)
        self._check_row(row)
        self.instance[column.index][row] = self.cs.field.reduce(value)

    def enable_selector(self, column: Column, row: int) -> None:
        if column.kind != ColumnType.SELECTOR:
            raise ValueError("expected a selector column, got %r" % column)
        self._check_row(row)
        self.selectors[column.index][row] = 1

    def copy(self, col_a: Column, row_a: int, col_b: Column, row_b: int) -> None:
        """Record a copy constraint between two equality-enabled cells."""
        for col in (col_a, col_b):
            if col not in self.cs.equality_columns:
                raise ValueError(
                    "column %r is not equality-enabled; call enable_equality" % col
                )
        self._check_row(row_a)
        self._check_row(row_b)
        self.copies.append((col_a, row_a, col_b, row_b))

    # -- reads -------------------------------------------------------------------

    def value(self, column: Column, row: int) -> int:
        """Read a cell; unassigned advice/fixed/instance cells read as zero."""
        self._grow()
        row %= self.n
        if column.kind == ColumnType.ADVICE:
            v = self.advice[column.index][row]
        elif column.kind == ColumnType.FIXED:
            v = self.fixed[column.index][row]
        elif column.kind == ColumnType.INSTANCE:
            v = self.instance[column.index][row]
        else:
            return self.selectors[column.index][row]
        return 0 if v is None else v

    def column_values(self, column: Column) -> List[int]:
        """A column's full evaluation vector (unassigned cells as zero)."""
        self._grow()
        if column.kind == ColumnType.ADVICE:
            grid = self.advice[column.index]
        elif column.kind == ColumnType.FIXED:
            grid = self.fixed[column.index]
        elif column.kind == ColumnType.INSTANCE:
            grid = self.instance[column.index]
        else:
            return list(self.selectors[column.index])
        return [0 if v is None else v for v in grid]

    def advice_is_zero(self, index: int) -> bool:
        """True iff synthesis never assigned a nonzero value to the column.

        Conservative in the safe direction: a column overwritten back to
        zero still reads as nonzero here, costing only a missed skip.
        """
        return index not in self._advice_nonzero

    def instance_values(self) -> List[List[int]]:
        """Public inputs per instance column (the verifier's copy)."""
        return [
            [0 if v is None else v for v in col] for col in self.instance
        ]
