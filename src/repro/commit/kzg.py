"""KZG-style backend.

Real KZG commits with a structured reference string from a universal
trusted setup (the paper uses the Perpetual Powers of Tau ceremony, which
supports up to 2^28 rows) and verifies an opening with a single pairing.
Our simulation enforces the same *setup-bound degree limit* and models the
same proof-size/verification envelope: constant-size openings and
constant-work verification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.commit.scheme import SCALAR_BYTES, CommitmentScheme
from repro.field.prime_field import PrimeField

#: Largest circuit (log2 rows) the public trusted setup supports (§4.3).
TRUSTED_SETUP_MAX_K = 28


@dataclass(frozen=True)
class KZGSetup:
    """A (simulated) universal trusted setup bounding committable degree."""

    max_k: int = TRUSTED_SETUP_MAX_K

    @property
    def max_degree(self) -> int:
        return 1 << self.max_k


class KZGScheme(CommitmentScheme):
    """KZG-sim: trusted setup, O(1) openings, O(1) verification."""

    name = "kzg"
    requires_trusted_setup = True

    def __init__(self, field: PrimeField, setup: KZGSetup = KZGSetup()):
        super().__init__(field)
        self.setup = setup

    def _check_degree(self, length: int) -> None:
        if length > self.setup.max_degree:
            raise ValueError(
                "polynomial of length %d exceeds trusted setup bound 2^%d"
                % (length, self.setup.max_k)
            )

    def extra_msms(self, d_max: int) -> int:
        # n_MSM = n_FFT + d_max - 1 for KZG (§7.4): the extra MSMs commit to
        # the d_max - 1 quotient-polynomial pieces.
        return d_max - 1

    def opening_proof_bytes(self, k: int) -> int:
        # A multiopen argument in halo2-KZG is two G1 points regardless of n.
        return 2 * SCALAR_BYTES

    def verifier_group_ops(self, k: int) -> int:
        # One pairing check, modeled as a fixed handful of group operations.
        return 8
