"""Polynomial-commitment substrate.

The paper's halo2 backend supports two commitment schemes — KZG (one-time
universal trusted setup, constant-size openings, single pairing check) and
IPA (transparent, O(log n) proofs, O(n)-group-op verification).  Offline we
cannot link a pairing library, so both backends here commit with a binding
blake2b hash and open by revealing the polynomial; the verifier recomputes
the digest and the evaluation, so a dishonest opening is always rejected.
The *performance envelope* of each backend (proof bytes, verification
work, extra MSMs) is modeled explicitly with the formulas the paper's cost
model uses, so the optimizer sees the same trade-offs as on real halo2.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.commit.merkle import MerkleTree, verify_merkle_path
from repro.commit.scheme import (
    Commitment,
    CommitmentScheme,
    OpeningProof,
    scheme_by_name,
)
from repro.commit.kzg import KZGScheme, KZGSetup
from repro.commit.ipa import IPAScheme
from repro.commit.transcript import Transcript

__all__ = [
    "Commitment",
    "CommitmentScheme",
    "OpeningProof",
    "scheme_by_name",
    "KZGScheme",
    "KZGSetup",
    "IPAScheme",
    "MerkleTree",
    "verify_merkle_path",
    "Transcript",
]
