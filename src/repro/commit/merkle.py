"""Binary Merkle tree over byte leaves (blake2b-256)."""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.obs.stats import STATS

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    STATS.merkle_leaf_hashes += 1
    return hashlib.blake2b(_LEAF_PREFIX + data, digest_size=32).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    STATS.merkle_node_hashes += 1
    return hashlib.blake2b(_NODE_PREFIX + left + right, digest_size=32).digest()


class MerkleTree:
    """A Merkle tree with authentication paths.

    Leaves are arbitrary byte strings; the leaf count is padded to a power
    of two by repeating a fixed empty-leaf digest.
    """

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise ValueError("Merkle tree needs at least one leaf")
        self.num_leaves = len(leaves)
        n = 1
        while n < len(leaves):
            n <<= 1
        empty = _hash_leaf(b"")
        level = [empty] * n
        for i, leaf in enumerate(leaves):
            level[i] = _hash_leaf(leaf)
        self._levels: List[List[bytes]] = [level]
        while len(level) > 1:
            half = len(level) >> 1
            parents = [b""] * half
            for i in range(half):
                parents[i] = _hash_node(level[2 * i], level[2 * i + 1])
            level = parents
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def open(self, index: int) -> List[bytes]:
        """Authentication path (sibling hashes, leaf level first)."""
        if not 0 <= index < self.num_leaves:
            raise IndexError("leaf index %d out of range" % index)
        path = []
        for level in self._levels[:-1]:
            path.append(level[index ^ 1])
            index >>= 1
        return path


def verify_merkle_path(
    root: bytes, index: int, leaf: bytes, path: Sequence[bytes]
) -> bool:
    """Check an authentication path against a root."""
    node = _hash_leaf(leaf)
    for sibling in path:
        if index & 1:
            node = _hash_node(sibling, node)
        else:
            node = _hash_node(node, sibling)
        index >>= 1
    return node == root
