"""Common polynomial-commitment interface.

Both backends commit by hashing the coefficient vector (binding) and open
by revealing it (the simulated analogue of a PCS opening witness — see the
package docstring).  What distinguishes the backends is the *modeled*
performance envelope: proof bytes per object, MSM counts, and verifier
work, which follow the paper's halo2 accounting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.field.poly import poly_eval
from repro.field.prime_field import PrimeField
from repro.obs.stats import STATS

try:  # serialization fast path for numpy-backed coefficient vectors
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Size of one commitment (a compressed curve point on BN254) in bytes.
COMMITMENT_BYTES = 32
#: Size of one field element in a serialized proof, in bytes.
SCALAR_BYTES = 32


@dataclass(frozen=True)
class Commitment:
    """A binding commitment to a polynomial (32-byte digest)."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != COMMITMENT_BYTES:
            raise ValueError("commitment digest must be 32 bytes")


@dataclass(frozen=True)
class OpeningProof:
    """An opening of a committed polynomial at a point.

    ``witness`` is the revealed coefficient vector — the simulation stand-in
    for the KZG quotient witness / IPA folding rounds.
    """

    point: int
    value: int
    witness: Tuple[int, ...]


def _serialize_coeffs(coeffs: Sequence[int]) -> bytes:
    if _np is not None and isinstance(coeffs, _np.ndarray):
        from repro.field import gl64

        return gl64.serialize_scalars(coeffs)
    return b"".join(c.to_bytes(32, "little") for c in coeffs)


class CommitmentScheme:
    """Base class for the KZG-sim and IPA-sim backends."""

    #: Backend name used by the CLI, optimizer, and reports.
    name = "abstract"
    #: Whether a trusted setup is required (True for KZG).
    requires_trusted_setup = False

    def __init__(self, field: PrimeField):
        self.field = field

    # -- real (simulated-crypto) operations --------------------------------

    def commit(self, coeffs: Sequence[int]) -> Commitment:
        """Commit to a coefficient vector."""
        STATS.commitments += 1
        self._check_degree(len(coeffs))
        digest = hashlib.blake2b(
            self.name.encode() + _serialize_coeffs(coeffs), digest_size=32
        ).digest()
        return Commitment(digest)

    def open(self, coeffs: Sequence[int], point: int) -> OpeningProof:
        """Open a committed polynomial at ``point``."""
        STATS.openings += 1
        if _np is not None and isinstance(coeffs, _np.ndarray):
            # Proofs are pickled and compared byte-wise; the witness must
            # hold plain Python ints regardless of the prover's backend.
            coeffs = coeffs.tolist()
        value = poly_eval(self.field, coeffs, point)
        return OpeningProof(point=point, value=value, witness=tuple(coeffs))

    def open_rows(self, coeff_rows, points: Sequence[int]) -> list:
        """Open many same-length committed polynomials, one point per row.

        ``coeff_rows`` may be an ``(m, n)`` ``uint64`` matrix (Goldilocks),
        in which case all ``m`` evaluations run through one vectorized
        Estrin-style kernel, or any sequence of coefficient vectors, which
        falls back to per-polynomial :meth:`open`.  Values and proof
        objects are identical either way.
        """
        if (
            _np is not None
            and isinstance(coeff_rows, _np.ndarray)
            and coeff_rows.ndim == 2
        ):
            from repro.field import gl64

            if gl64.is_goldilocks(self.field.p) and coeff_rows.shape[0]:
                values = gl64.poly_eval_rows(
                    coeff_rows, _np.array(points, dtype=_np.uint64)
                )
                STATS.openings += len(points)
                return [
                    OpeningProof(
                        point=int(point),
                        value=int(value),
                        witness=tuple(row.tolist()),
                    )
                    for row, point, value in zip(coeff_rows, points, values)
                ]
        return [self.open(row, point) for row, point in zip(coeff_rows, points)]

    def verify_opening(self, commitment: Commitment, proof: OpeningProof) -> bool:
        """Check that an opening is consistent with the commitment."""
        if self.commit(proof.witness).digest != commitment.digest:
            return False
        return poly_eval(self.field, proof.witness, proof.point) == proof.value

    def _check_degree(self, length: int) -> None:
        """Hook for backends with bounded setups (KZG)."""

    # -- modeled accounting (paper cost-model inputs) -----------------------

    def extra_msms(self, d_max: int) -> int:
        """MSMs beyond n_FFT for quotient evaluation proofs (§7.4)."""
        raise NotImplementedError

    def opening_proof_bytes(self, k: int) -> int:
        """Serialized size of one multiopen argument at 2^k rows."""
        raise NotImplementedError

    def verifier_group_ops(self, k: int) -> int:
        """Group operations the verifier performs for the PCS check."""
        raise NotImplementedError


def scheme_by_name(name: str, field: PrimeField) -> CommitmentScheme:
    """Instantiate a backend by name ('kzg' or 'ipa')."""
    from repro.commit.ipa import IPAScheme
    from repro.commit.kzg import KZGScheme

    if name == "kzg":
        return KZGScheme(field)
    if name == "ipa":
        return IPAScheme(field)
    raise KeyError("unknown commitment scheme %r; available: ipa, kzg" % name)
