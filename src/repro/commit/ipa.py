"""IPA-style backend.

The inner-product-argument backend is transparent (no trusted setup) but
pays for it: openings are O(log n) group elements and verification costs
O(n) group operations (§4.3, §9.2).  Our simulation has no degree bound
and models that envelope.
"""

from __future__ import annotations

from repro.commit.scheme import SCALAR_BYTES, CommitmentScheme


class IPAScheme(CommitmentScheme):
    """IPA-sim: transparent, O(log n) openings, O(n)-group-op verification."""

    name = "ipa"
    requires_trusted_setup = False

    def extra_msms(self, d_max: int) -> int:
        # n_MSM = n_FFT + d_max for IPA (§7.4): one more than KZG because the
        # evaluation proof itself needs an extra MSM.
        return d_max

    def opening_proof_bytes(self, k: int) -> int:
        # log-round folding: two group elements per round plus the final
        # scalar pair.
        return 2 * k * SCALAR_BYTES + 2 * SCALAR_BYTES

    def verifier_group_ops(self, k: int) -> int:
        # The verifier recomputes the folded generator: O(n) group ops.
        return 1 << k
