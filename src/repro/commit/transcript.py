"""Fiat–Shamir transcript.

Prover and verifier both run a transcript; as long as they absorb the same
messages in the same order they derive identical challenges, which is what
makes the proof non-interactive.  We hash with blake2b and derive field
elements by rejection-free reduction (the bias from reducing a 512-bit
digest mod a <=256-bit prime is negligible).
"""

from __future__ import annotations

import hashlib

from repro.field.prime_field import PrimeField
from repro.obs.stats import STATS
from repro.resilience import faults


class Transcript:
    """An absorb/squeeze transcript over a prime field."""

    def __init__(self, field: PrimeField, label: bytes = b"zkml"):
        self.field = field
        self._state = hashlib.blake2b(label).digest()
        self._counter = 0

    def _absorb(self, data: bytes) -> None:
        STATS.transcript_absorbs += 1
        self._state = hashlib.blake2b(self._state + data).digest()

    def append_message(self, label: bytes, message: bytes) -> None:
        """Absorb an arbitrary byte string under a domain-separation label."""
        self._absorb(b"msg:" + label + b":" + len(message).to_bytes(8, "little"))
        self._absorb(message)

    def append_scalar(self, label: bytes, scalar: int) -> None:
        """Absorb a field element."""
        self.append_message(label, scalar.to_bytes(32, "little"))

    def append_scalar_vector(self, label: bytes, scalars) -> None:
        """Absorb a whole vector of field elements as one message.

        The payload is the element count (8-byte LE) followed by the
        concatenated 32-byte LE scalars — one ``append_message`` per column
        instead of one per scalar.  Note this domain-separates differently
        from a loop of :meth:`append_scalar`, so the two are not
        interchangeable mid-protocol.
        """
        payload = len(scalars).to_bytes(8, "little") + b"".join(
            int(s).to_bytes(32, "little") for s in scalars
        )
        self.append_message(label, payload)

    def append_commitment(self, label: bytes, digest: bytes) -> None:
        """Absorb a commitment digest."""
        self.append_message(label, digest)

    def challenge_scalar(self, label: bytes) -> int:
        """Squeeze a field-element challenge."""
        faults.maybe_inject("transcript")
        STATS.challenges += 1
        self._absorb(b"chal:" + label + b":" + self._counter.to_bytes(8, "little"))
        self._counter += 1
        wide = hashlib.blake2b(self._state, digest_size=64).digest()
        return int.from_bytes(wide, "little") % self.field.p

    def challenge_nonzero(self, label: bytes) -> int:
        """Squeeze a challenge guaranteed nonzero (e.g. evaluation points)."""
        while True:
            c = self.challenge_scalar(label)
            if c != 0:
                return c
