"""Gadget census: which gadget instances a layer configures, and how many
lookup arguments / selectors / fixed columns each contributes.

The physical-layout simulator needs the exact circuit *shape* (lookup
count, selector count, constraint degree) without synthesizing the
witness.  This module mirrors each gadget's ``_configure`` bookkeeping;
``tests/compiler`` asserts it matches a real synthesis exactly.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.layers.base import Layer, LayoutChoices

#: A gadget instance key: (gadget name, distinguishing param or None).
GadgetKey = Tuple[str, object]


def layer_gadgets(layer: Layer, choices: LayoutChoices, scale_bits: int,
                  input_shapes) -> Set[GadgetKey]:
    """The gadget instances a layer's synthesize() will configure."""
    kind = layer.kind
    sf = 1 << scale_bits
    arith_dot = choices.arithmetic == "dotprod"

    if kind in ("add",):
        return {("dot_prod_bias", None)} if arith_dot else {("add", None)}
    if kind == "sub":
        return {("dot_prod_bias", None)} if arith_dot else {("sub", None)}
    if kind == "mul":
        if arith_dot:
            return {("dot_prod", None), ("div_round_const", sf)}
        return {("mul", None)}
    if kind == "square":
        if arith_dot:
            return {("dot_prod", None), ("div_round_const", sf)}
        return {("square", None)}
    if kind == "squared_difference":
        if arith_dot:
            return {("dot_prod_bias", None), ("dot_prod", None),
                    ("div_round_const", sf)}
        return {("squared_diff", None)}
    if kind == "div":
        return {("scale_const", sf), ("var_div", None)}
    if kind == "reduce_sum":
        return {("sum", None)}
    if kind == "reduce_mean":
        count = layer._count(input_shapes[0])
        return {("sum", None), ("div_round_const", count)}
    if kind in ("fully_connected", "conv2d", "batch_matmul",
                "depthwise_conv2d"):
        out = {("div_round_const", sf)}
        if choices.linear == "dot_sum":
            out |= {("dot_prod", None), ("sum", None)}
        elif choices.linear == "freivalds" and kind != "depthwise_conv2d":
            out |= {("dot_prod_bias", None)}
            if kind != "batch_matmul":
                out |= {("add", None)}  # bias.r folded into the check
        else:
            out |= {("dot_prod_bias", None)}
        return out
    if kind == "max_pool2d":
        return {("max", None)}
    if kind == "avg_pool2d":
        return {("sum", None), ("div_round_const", layer.pool * layer.pool)}
    if kind == "global_avg_pool":
        h, w, _ = input_shapes[0]
        return {("sum", None), ("div_round_const", h * w)}
    if kind == "softmax":
        from repro.layers.softmax import needs_wide_division

        classes = input_shapes[0][-1]
        vdiv = ("var_div_wide" if needs_wide_division(classes, scale_bits)
                else "var_div")
        return {("max", None), ("sub", None), ("pointwise", "exp"),
                ("sum", None), ("scale_const", sf), (vdiv, None)}
    if kind == "batch_norm":
        return {("mul", None), ("add", None)}
    if kind == "layer_norm":
        length = input_shapes[0][-1]
        return {("sum", None), ("div_round_const", length), ("sub", None),
                ("square", None), ("pointwise", "rsqrt"), ("mul", None),
                ("add", None)}
    if kind == "rms_norm":
        length = input_shapes[0][-1]
        return {("square", None), ("sum", None),
                ("div_round_const", length), ("pointwise", "rsqrt"),
                ("mul", None), ("add", None)}
    if kind in ("reshape", "flatten", "transpose", "squeeze", "expand_dims",
                "concat", "slice", "pad", "gather", "identity", "split"):
        return set()
    # pointwise activations
    from repro.gadgets.nonlinear import NONLINEAR_FUNCTIONS

    if kind in NONLINEAR_FUNCTIONS:
        if kind == "relu" and choices.relu == "bitdecomp":
            return {("bit_decomp_relu", choices.relu_bits)}
        return {("pointwise", kind)}
    raise KeyError("no gadget census for layer kind %r" % kind)


def lookups_for_gadget(key: GadgetKey, num_cols: int) -> int:
    """Lookup arguments the gadget's _configure declares (exact mirror)."""
    name, param = key
    if name == "mul":
        return num_cols // 4
    if name == "square":
        return num_cols // 3
    if name == "squared_diff":
        return num_cols // 4
    if name == "div_round_const":
        return num_cols // 3
    if name == "pointwise":
        return num_cols // 2
    if name == "max":
        return 2 * (num_cols // 3)
    if name == "var_div":
        return 2 * (num_cols // 4)
    if name == "var_div_wide":
        return 4 * (num_cols // 7)
    return 0


def tables_for_gadget(key: GadgetKey, scale_bits: int,
                      lookup_bits: int) -> Set[Tuple[str, int]]:
    """Fixed lookup tables the gadget instantiates (kind, bound/bits)."""
    name, param = key
    if name in ("mul", "square", "squared_diff"):
        return {("range", 2 << scale_bits)}
    if name == "div_round_const":
        return {("range", 2 * int(param))}
    if name in ("max", "var_div", "var_div_wide"):
        return {("range", 1 << lookup_bits)}
    if name == "pointwise":
        return {("nl", param)}
    return set()


def constraint_degree(gadget_keys: Iterable[GadgetKey]) -> int:
    """Maximum effective constraint degree of the circuit.

    Every gadget gate is degree <= 2 before the selector, so gates reach
    degree 3; any lookup pushes d_max to 4 (selector-gated inputs have
    degree 2, so the LogUp helper constraint is 1 + 2 + 1).
    """
    keys = set(gadget_keys)
    has_lookup = any(lookups_for_gadget(k, 12) > 0 for k in keys)
    return 4 if has_lookup else 3
