"""Model synthesis: lay a whole model out as a circuit.

Walks the graph in topological order, quantizes inputs and parameters,
and calls each layer's ``synthesize``.  The resulting builder holds the
complete grid (gadget rows, lookup tables, copy constraints), ready for
keygen/prove.  Requires a materialized model (mini-scale); paper-scale
models are costed analytically via :mod:`repro.compiler.physical`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compiler.logical import LayoutPlan
from repro.compiler.physical import PhysicalLayout, build_physical_layout
from repro.gadgets import CircuitBuilder
from repro.layers.base import LayoutChoices
from repro.model.executor import run_fixed
from repro.model.spec import ModelSpec
from repro.obs.trace import get_tracer
from repro.resilience.errors import ResilienceError, SpecError
from repro.tensor import Tensor


@dataclass
class SynthesizedModel:
    """A fully laid-out model circuit plus its tensors."""

    spec: ModelSpec
    layout: PhysicalLayout
    builder: CircuitBuilder
    inputs: Dict[str, Tensor]
    outputs: Dict[str, Tensor]

    def output_values(self) -> Dict[str, np.ndarray]:
        return {name: t.values() for name, t in self.outputs.items()}


def synthesize_model(
    spec: ModelSpec,
    inputs: Dict[str, np.ndarray],
    plan=None,
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    k: Optional[int] = None,
    tracer=None,
) -> SynthesizedModel:
    """Lay the model out on a grid and fill in the witness.

    ``k`` defaults to the physical-layout simulator's minimal feasible
    grid; passing a larger ``k`` reproduces fixed-configuration ablations.
    Spans (layout / witness / one per layer) go to ``tracer``, defaulting
    to the process tracer (a no-op unless tracing is enabled).
    """
    if not spec.materialized:
        raise SpecError(
            "model %r has shape-only parameters; use a mini-scale model"
            % spec.name,
            model=spec.name,
        )
    tracer = tracer if tracer is not None else get_tracer()
    if plan is None:
        plan = LayoutPlan(LayoutChoices())
    elif isinstance(plan, LayoutChoices):
        plan = LayoutPlan(plan)
    with tracer.span("layout", model=spec.name, num_cols=num_cols) as sp:
        layout = build_physical_layout(spec, plan, num_cols, scale_bits,
                                       lookup_bits)
        sp.set_attr("k", layout.k)
        sp.set_attr("gadget_rows", layout.gadget_rows)
    k = k if k is not None else layout.k
    builder = CircuitBuilder(k=k, num_cols=num_cols, scale_bits=scale_bits,
                             lookup_bits=layout.lookup_bits)
    fp = builder.fp

    values: Dict[str, Tensor] = {}
    input_tensors: Dict[str, Tensor] = {}
    for name, arr in inputs.items():
        tensor = Tensor.from_values(fp.encode_array(np.asarray(arr)))
        values[name] = tensor
        input_tensors[name] = tensor
    missing = set(spec.inputs) - set(inputs)
    if missing:
        raise SpecError("missing model inputs: %s" % sorted(missing),
                        model=spec.name)

    from repro.compiler.physical import resolve_choices

    with tracer.span("witness", model=spec.name, layers=len(spec.layers)):
        for layer_spec in spec.layers:
            layer = layer_spec.layer()
            choices = resolve_choices(plan.for_layer(layer_spec.name),
                                      layout.lookup_bits)
            args = [values[i] for i in layer_spec.inputs]
            quantized = layer.quantize_params(
                {k_: np.asarray(v) for k_, v in layer_spec.params.items()}, fp
            )
            params = {
                k_: Tensor.from_entries(
                    builder.weight_entries(np.asarray(v, dtype=object)
                                           .reshape(-1)),
                    np.shape(v),
                )
                for k_, v in quantized.items()
            }
            with builder.region(layer_spec.name, layer_spec.kind), \
                    tracer.span("layer:%s" % layer_spec.name,
                                kind=layer_spec.kind) as sp:
                try:
                    values[layer_spec.name] = layer.synthesize(builder, args,
                                                               params, choices)
                except ResilienceError as exc:
                    raise exc.with_context(phase="synthesize",
                                           layer=layer_spec.name)
                sp.set_attr("rows_after", builder.rows_used)

    outputs = {name: values[name] for name in spec.outputs}
    return SynthesizedModel(spec=spec, layout=layout, builder=builder,
                            inputs=input_tensors, outputs=outputs)


def check_against_reference(result: SynthesizedModel,
                            raw_inputs: Dict[str, np.ndarray]) -> None:
    """Assert the circuit output equals the fixed-point executor exactly."""
    reference = run_fixed(result.spec, raw_inputs,
                          result.builder.scale_bits)
    for name, tensor in result.outputs.items():
        got = tensor.values()
        want = np.asarray(reference[name], dtype=object)
        if got.shape != want.shape or any(
            got[idx] != want[idx] for idx in np.ndindex(got.shape)
        ):
            raise AssertionError(
                "circuit output %r disagrees with fixed-point reference" % name
            )


def synthesize_batch(
    spec: ModelSpec,
    batch_inputs,
    plan=None,
    num_cols: int = 10,
    scale_bits: int = 5,
    lookup_bits: Optional[int] = None,
    k: Optional[int] = None,
    tracer=None,
) -> "BatchSynthesizedModel":
    """Lay out several inferences of one model in a single circuit.

    Weights are materialized once (in the vk-committed fixed columns) and
    the lookup tables are shared, so proving a batch amortizes everything
    but the per-inference gadget rows — the shape an audit log (or the
    proving service's coalesced micro-batches) wants.  Spans (layout /
    one per inference) go to ``tracer``, defaulting to the process
    tracer.
    """
    tracer = tracer if tracer is not None else get_tracer()
    if not spec.materialized:
        raise SpecError(
            "model %r has shape-only parameters; use a mini-scale model"
            % spec.name,
            model=spec.name,
        )
    if not batch_inputs:
        raise SpecError("batch must contain at least one input set",
                        model=spec.name)
    if plan is None:
        plan = LayoutPlan(LayoutChoices())
    elif isinstance(plan, LayoutChoices):
        plan = LayoutPlan(plan)
    with tracer.span("layout", model=spec.name, num_cols=num_cols,
                     batch_size=len(batch_inputs)) as sp:
        layout = build_physical_layout(spec, plan, num_cols, scale_bits,
                                       lookup_bits)
        sp.set_attr("gadget_rows", layout.gadget_rows)
    if k is None:
        import math

        needed = max(layout.gadget_rows * len(batch_inputs),
                     layout.table_rows, 2)
        k = max(int(math.ceil(math.log2(needed))), layout.lookup_bits + 1)
    builder = CircuitBuilder(k=k, num_cols=num_cols, scale_bits=scale_bits,
                             lookup_bits=layout.lookup_bits)
    fp = builder.fp

    from repro.compiler.physical import resolve_choices

    # quantize and place the parameters once; every inference copies from
    # the same fixed cells
    shared_params: Dict[str, Dict[str, Tensor]] = {}
    for layer_spec in spec.layers:
        layer = layer_spec.layer()
        quantized = layer.quantize_params(
            {k_: np.asarray(v) for k_, v in layer_spec.params.items()}, fp
        )
        shared_params[layer_spec.name] = {
            k_: Tensor.from_entries(
                builder.weight_entries(
                    np.asarray(v, dtype=object).reshape(-1)),
                np.shape(v),
            )
            for k_, v in quantized.items()
        }

    all_outputs = []
    for index, inputs in enumerate(batch_inputs):
        missing = set(spec.inputs) - set(inputs)
        if missing:
            raise SpecError("missing model inputs: %s" % sorted(missing),
                            model=spec.name)
        values: Dict[str, Tensor] = {
            name: Tensor.from_values(fp.encode_array(np.asarray(arr)))
            for name, arr in inputs.items()
        }
        with builder.region("inference[%d]" % index, "batch"), \
                tracer.span("inference[%d]" % index, model=spec.name):
            for layer_spec in spec.layers:
                layer = layer_spec.layer()
                choices = resolve_choices(plan.for_layer(layer_spec.name),
                                          layout.lookup_bits)
                args = [values[i] for i in layer_spec.inputs]
                with builder.region(layer_spec.name, layer_spec.kind):
                    try:
                        values[layer_spec.name] = layer.synthesize(
                            builder, args, shared_params[layer_spec.name],
                            choices)
                    except ResilienceError as exc:
                        raise exc.with_context(phase="synthesize",
                                               layer=layer_spec.name)
        all_outputs.append({name: values[name] for name in spec.outputs})

    return BatchSynthesizedModel(spec=spec, layout=layout, builder=builder,
                                 outputs=all_outputs)


@dataclass
class BatchSynthesizedModel:
    """A circuit holding several inferences of the same model."""

    spec: ModelSpec
    layout: PhysicalLayout
    builder: CircuitBuilder
    outputs: list

    def output_values(self, index: int) -> Dict[str, np.ndarray]:
        return {name: t.values() for name, t in self.outputs[index].items()}
