"""The ZKML compiler: logical layouts, physical layouts, model synthesis."""

from repro.compiler.gadget_census import (
    constraint_degree,
    layer_gadgets,
    lookups_for_gadget,
    tables_for_gadget,
)
from repro.compiler.logical import (
    LayoutPlan,
    generate_logical_layouts,
    model_families,
)
from repro.compiler.physical import (
    MIN_COLUMNS,
    LayoutInfeasible,
    PhysicalLayout,
    build_physical_layout,
)
from repro.compiler.visualize import render_breakdown, render_row_map
from repro.compiler.layouter import (
    BatchSynthesizedModel,
    SynthesizedModel,
    check_against_reference,
    synthesize_batch,
    synthesize_model,
)

__all__ = [
    "LayoutPlan",
    "generate_logical_layouts",
    "model_families",
    "PhysicalLayout",
    "build_physical_layout",
    "LayoutInfeasible",
    "MIN_COLUMNS",
    "SynthesizedModel",
    "synthesize_model",
    "BatchSynthesizedModel",
    "synthesize_batch",
    "check_against_reference",
    "render_breakdown",
    "render_row_map",
    "layer_gadgets",
    "lookups_for_gadget",
    "tables_for_gadget",
    "constraint_degree",
]
