"""Physical circuit layouts: row-exact simulation of a circuit's shape.

Given a model, a logical layout (gadget choices), and a column count, a
:class:`PhysicalLayout` computes *exactly* how many rows the grid needs
(gadget rows and lookup-table rows), the number of lookup arguments,
selectors, permutation columns, and the maximum constraint degree — all
the inputs the cost model (paper §7.4) needs, without ever allocating a
witness.  Because the number of rows must be a power of two, the layout
also fixes the minimal feasible ``k`` (paper §7.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.compiler.gadget_census import (
    constraint_degree,
    layer_gadgets,
    lookups_for_gadget,
    tables_for_gadget,
)
from repro.compiler.logical import LayoutPlan
from repro.layers.base import LayoutChoices
from repro.model.spec import ModelSpec
from repro.resilience.errors import LayoutError

#: Columns the size-objective minimum uses (paper §9.4: "the minimum
#: number of columns, which is 10 for our gadgets").
MIN_COLUMNS = 10


class LayoutInfeasible(LayoutError):
    """The layout cannot fit any supported grid (k beyond the setup)."""


def default_lookup_bits(spec: ModelSpec, scale_bits: int) -> int:
    """Default lookup-table width for a model's value ranges.

    This is the paper's §5.1 coupling: lookup tables live in the grid, so
    the ranges flowing into non-linearities bound the fixed-point
    precision and, through the table size, the grid size.  Divisors that
    outgrow the table (softmax sums over many classes) switch to the
    limb-decomposed VarDivWide gadget instead of inflating the table.
    """
    return scale_bits + 3


@dataclass
class PhysicalLayout:
    """One concrete circuit shape for a (model, choices, columns) triple."""

    spec: ModelSpec
    plan: LayoutPlan
    num_cols: int
    scale_bits: int
    lookup_bits: int
    k: int
    gadget_rows: int
    table_rows: int
    per_layer_rows: Dict[str, int]
    gadget_keys: Set[Tuple[str, object]]
    num_lookups: int
    num_fixed: int
    num_selectors: int
    d_max: int

    @property
    def n(self) -> int:
        return 1 << self.k

    @property
    def num_advice(self) -> int:
        return self.num_cols

    @property
    def num_instance(self) -> int:
        return max(len(self.spec.inputs), 1)

    #: fixed columns holding model parameters (set by the builder pass)
    num_weight_columns: int = 0

    @property
    def num_permutation_columns(self) -> int:
        # every advice column is equality-enabled, plus the constant column
        # and the weight columns (parameters are copy-constrained from
        # fixed cells, so they join the permutation argument)
        return self.num_cols + 1 + self.num_weight_columns

    def describe(self) -> str:
        return (
            "%s: %d cols x 2^%d rows (%d gadget rows, %d table rows), "
            "%d lookups, d_max=%d, plan=%s"
            % (self.spec.name, self.num_cols, self.k, self.gadget_rows,
               self.table_rows, self.num_lookups, self.d_max, self.plan)
        )


def resolve_choices(choices: LayoutChoices, lookup_bits: int) -> LayoutChoices:
    """Pin derived knobs: a bit-decomposition ReLU must cover the same
    value range as the lookup tables, so its width follows lookup_bits."""
    if choices.relu == "bitdecomp" and choices.relu_bits != lookup_bits + 1:
        return choices.replace(relu_bits=lookup_bits + 1)
    return choices


def build_physical_layout(
    spec: ModelSpec,
    plan,
    num_cols: int,
    scale_bits: int,
    lookup_bits: Optional[int] = None,
    max_k: int = 28,
) -> PhysicalLayout:
    """Simulate the circuit shape and pick the minimal feasible k.

    ``plan`` is a :class:`LayoutPlan` or a bare :class:`LayoutChoices`
    (treated as a uniform plan).  ``max_k`` defaults to the trusted
    setup's 2^28 bound (§4.3).
    """
    if isinstance(plan, LayoutChoices):
        plan = LayoutPlan(plan)
    if num_cols < 5:
        raise LayoutError("need at least 5 columns for the gadget set",
                          num_cols=num_cols)
    if lookup_bits is None:
        lookup_bits = default_lookup_bits(spec, scale_bits)

    input_shapes = spec.layer_input_shapes()
    per_layer_rows: Dict[str, int] = {}
    gadget_keys: Set[Tuple[str, object]] = set()
    tables: Set[Tuple[str, object]] = set()
    for layer_spec in spec.layers:
        layer = layer_spec.layer()
        shapes = input_shapes[layer_spec.name]
        choices = resolve_choices(plan.for_layer(layer_spec.name),
                                  lookup_bits)
        try:
            per_layer_rows[layer_spec.name] = layer.count_rows(
                num_cols, shapes, choices, scale_bits
            )
        except LayoutError as exc:
            # only *layout infeasibility* is a legal reason to discard this
            # (columns, choices) point during layout search — a bare
            # ValueError here would be a genuine bug and must propagate
            raise LayoutInfeasible(
                "%s at %d columns: %s" % (layer_spec.name, num_cols, exc),
                layer=layer_spec.name, num_cols=num_cols,
            ) from exc
        keys = layer_gadgets(layer, choices, scale_bits, shapes)
        gadget_keys |= keys
        for key in keys:
            tables |= tables_for_gadget(key, scale_bits, lookup_bits)

    gadget_rows = sum(per_layer_rows.values())
    table_rows = 0
    num_fixed = 1  # the shared constants column
    for kind, param in tables:
        if kind == "nl":
            table_rows = max(table_rows, (1 << lookup_bits) + 1)
            num_fixed += 2
        else:
            table_rows = max(table_rows, int(param) + 1)
            num_fixed += 1

    num_lookups = sum(
        lookups_for_gadget(key, num_cols) for key in gadget_keys
    )
    num_selectors = len(gadget_keys)
    d_max = constraint_degree(gadget_keys)

    needed = max(gadget_rows, table_rows, 2)
    k = max(int(math.ceil(math.log2(needed))), lookup_bits + 1)
    if k > max_k:
        raise LayoutInfeasible(
            "%s needs 2^%d rows at %d columns, beyond the 2^%d setup"
            % (spec.name, k, num_cols, max_k)
        )

    # model parameters live in fixed columns (the vk commits to them)
    num_weight_columns = -(-spec.param_count() // (1 << k)) if spec.param_count() else 0
    num_fixed += num_weight_columns

    return PhysicalLayout(
        spec=spec,
        plan=plan,
        num_cols=num_cols,
        scale_bits=scale_bits,
        lookup_bits=lookup_bits,
        k=k,
        gadget_rows=gadget_rows,
        table_rows=table_rows,
        per_layer_rows=per_layer_rows,
        gadget_keys=gadget_keys,
        num_lookups=num_lookups,
        num_fixed=num_fixed,
        num_selectors=num_selectors,
        d_max=d_max,
        num_weight_columns=num_weight_columns,
    )
