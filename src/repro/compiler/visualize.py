"""Circuit-layout visualization: what actually occupies the grid.

``render_row_map`` draws an ASCII strip of the grid showing which gadget
owns each band of rows (from a synthesized builder); ``render_breakdown``
prints the per-layer row budget from a physical layout.  Exposed through
``zkml inspect --per-layer``.
"""

from __future__ import annotations

from typing import List

from repro.compiler.physical import PhysicalLayout
from repro.gadgets import CircuitBuilder


def render_breakdown(layout: PhysicalLayout, top: int = 12) -> str:
    """Per-layer row budget, largest first, with a usage bar."""
    total = max(layout.gadget_rows, 1)
    items = sorted(layout.per_layer_rows.items(), key=lambda kv: -kv[1])
    lines = [
        "%s: %d columns x 2^%d rows; %s gadget rows (%.1f%% of grid), "
        "%s table rows"
        % (layout.spec.name, layout.num_cols, layout.k,
           "{:,}".format(layout.gadget_rows),
           100.0 * layout.gadget_rows / layout.n,
           "{:,}".format(layout.table_rows))
    ]
    shown = 0
    for name, rows in items:
        if rows == 0:
            continue
        if shown >= top:
            remaining = sum(r for _, r in items[shown:] if r)
            lines.append("  %-28s %10s rows (…)"
                         % ("(%d more layers)" % (len(items) - shown),
                            "{:,}".format(remaining)))
            break
        bar = "#" * max(int(40 * rows / total), 1)
        lines.append("  %-28s %10s rows  %s"
                     % (name[:28], "{:,}".format(rows), bar))
        shown += 1
    return "\n".join(lines)


def render_row_map(builder: CircuitBuilder, width: int = 64) -> str:
    """An ASCII strip of the grid: one character per band of rows.

    Each selector column is assigned a letter; a band's character is the
    selector active in most of its rows ('.' = unused rows).
    """
    n = builder.asg.n
    num_selectors = builder.cs.num_selectors
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    band = max(n // width, 1)
    chars: List[str] = []
    for start in range(0, n, band):
        counts = [0] * (num_selectors + 1)
        for row in range(start, min(start + band, n)):
            active = None
            for sel in range(num_selectors):
                if builder.asg.selectors[sel][row]:
                    active = sel
                    break
            if active is None:
                counts[num_selectors] += 1
            else:
                counts[active] += 1
        best = max(range(num_selectors + 1), key=lambda i: counts[i])
        chars.append("." if best == num_selectors
                     else letters[best % len(letters)])
    legend = ", ".join(
        "%s=sel%d" % (letters[i % len(letters)], i)
        for i in range(num_selectors)
    )
    return "rows [%s]\nlegend: %s, .=unused" % ("".join(chars), legend)
