"""Logical layout generation (paper §7.2).

A logical layout fixes how each layer is implemented, without the
physical grid size.  Exhaustive per-layer enumeration is exponential in
network depth, so ZKML prunes by enforcing one implementation per layer
family per configuration ("adding a constraint is more expensive than
adding a column, and the gains from mixed implementations are rarely
worth it").  The non-pruned mode additionally evaluates every
single-layer deviation from the default uniform layout — mixed plans the
cost model almost always rejects because they pay for the union of both
implementations' constraint sets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.layers.base import LayoutChoices
from repro.model.spec import ModelSpec

#: Families whose implementation a logical layout chooses.
LINEAR_KINDS = {"fully_connected", "conv2d", "depthwise_conv2d",
                "batch_matmul"}
ARITH_KINDS = {"add", "sub", "mul", "square", "squared_difference"}


@dataclass(frozen=True)
class LayoutPlan:
    """A logical layout: a uniform base plus optional per-layer overrides.

    Pruned plans have no overrides; the non-pruned search also explores
    plans where a single layer deviates from the uniform choice.
    """

    base: LayoutChoices
    overrides: Tuple[Tuple[str, LayoutChoices], ...] = ()

    def for_layer(self, layer_name: str) -> LayoutChoices:
        for name, choices in self.overrides:
            if name == layer_name:
                return choices
        return self.base

    @property
    def is_uniform(self) -> bool:
        return not self.overrides

    def __str__(self) -> str:
        tag = "" if self.is_uniform else " (+%d overrides)" % len(self.overrides)
        return "linear=%s relu=%s arith=%s%s" % (
            self.base.linear, self.base.relu, self.base.arithmetic, tag)


def family_of(kind: str) -> str:
    if kind in LINEAR_KINDS:
        return "linear"
    if kind == "relu":
        return "relu"
    if kind in ARITH_KINDS:
        return "arithmetic"
    return "other"


def model_families(spec: ModelSpec) -> Dict[str, int]:
    """How many layers of each choice-bearing family the model has."""
    counts = {"linear": 0, "relu": 0, "arithmetic": 0}
    for layer in spec.layers:
        fam = family_of(layer.kind)
        if fam in counts:
            counts[fam] += 1
    return counts


def _family_options(spec: ModelSpec, include_freivalds: bool = True):
    families = model_families(spec)
    linear_opts = LayoutChoices.LINEAR_OPTIONS if families["linear"] else ("dot_bias",)
    if not include_freivalds:
        linear_opts = tuple(o for o in linear_opts if o != "freivalds")
    return (
        linear_opts,
        LayoutChoices.RELU_OPTIONS if families["relu"] else ("lookup",),
        (LayoutChoices.ARITHMETIC_OPTIONS if families["arithmetic"]
         else ("custom",)),
    )


def generate_logical_layouts(
    spec: ModelSpec,
    prune: bool = True,
    restrict_gadgets: bool = False,
    include_freivalds: bool = True,
) -> List[LayoutPlan]:
    """Candidate logical layouts for a model.

    ``restrict_gadgets=True`` models the Table 11 ablation: every layer is
    pinned to its single baseline implementation, no alternatives.
    ``include_freivalds=False`` drops the randomized-matmul option, which
    mirrors the configurations the paper reports (its GPT-2 plan of 13
    columns x 2^25 rows is the plain dot-product layout).
    """
    if restrict_gadgets:
        # the single fixed implementation mirrors prior work's choices:
        # Sum-combined dot products, bit-decomposed ReLU (how ZEN/zkCNN
        # express it), and dot-product-based arithmetic
        return [LayoutPlan(LayoutChoices(linear="dot_sum", relu="bitdecomp",
                                         arithmetic="dotprod"))]
    linear_opts, relu_opts, arith_opts = _family_options(spec, include_freivalds)
    uniform = [
        LayoutPlan(LayoutChoices(linear=lin, relu=relu, arithmetic=ar))
        for lin, relu, ar in itertools.product(linear_opts, relu_opts,
                                               arith_opts)
    ]
    if prune:
        return uniform

    plans = list(uniform)
    default = uniform[0].base
    option_map = {
        "linear": linear_opts, "relu": relu_opts, "arithmetic": arith_opts
    }
    for layer in spec.layers:
        fam = family_of(layer.kind)
        if fam == "other":
            continue
        current = getattr(default, fam)
        for option in option_map[fam]:
            if option == current:
                continue
            plans.append(
                LayoutPlan(default,
                           overrides=((layer.name,
                                       default.replace(**{fam: option})),))
            )
    return plans
