"""Vectorized Goldilocks arithmetic on numpy ``uint64`` arrays.

The Goldilocks prime ``p = 2^64 - 2^32 + 1`` admits branch-light modular
arithmetic entirely inside 64-bit words: ``2^64 ≡ 2^32 - 1 (mod p)`` and
``2^96 ≡ -1 (mod p)``, so a 128-bit product folds back into one word with
two shifted adds.  That turns every per-row interpreter loop in the prover
into a handful of numpy passes — the same trick plonky2 uses to keep its
field arithmetic in scalar registers.

All functions are *exact*: results are canonical residues in ``[0, p)``
and agree bit-for-bit with the pure-Python reference in
:mod:`repro.field.prime_field` (property-tested in
``tests/field/test_gl64.py``).  Inputs must already be canonical.

Only Goldilocks gets this backend; other fields (BN254) fall back to the
list-based path everywhere.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: The Goldilocks modulus.
P = (1 << 64) - (1 << 32) + 1

_P = np.uint64(P)
#: 2^64 mod p — the correction term for wrapping adds/subs.
_EPS = np.uint64((1 << 32) - 1)
_MASK32 = np.uint64(0xFFFFFFFF)
_SH32 = np.uint64(32)
_ZERO = np.uint64(0)


def is_goldilocks(p: int) -> bool:
    """True iff ``p`` is the Goldilocks prime this module accelerates."""
    return p == P


def from_ints(values: Sequence[int]) -> np.ndarray:
    """Pack canonical residues into a ``uint64`` array."""
    if isinstance(values, np.ndarray) and values.dtype == np.uint64:
        return values
    return np.array(values, dtype=np.uint64)


def to_ints(vec: np.ndarray) -> List[int]:
    """Unpack a ``uint64`` array into plain Python ints."""
    return vec.tolist()


def add(a: np.ndarray, b) -> np.ndarray:
    """Elementwise ``(a + b) mod p``; ``b`` may be an array or a scalar."""
    if not isinstance(b, np.ndarray):
        b = np.uint64(b)
    t = a + b
    t = t + np.where(t < a, _EPS, _ZERO)
    return np.where(t >= _P, t - _P, t)


def sub(a, b) -> np.ndarray:
    """Elementwise ``(a - b) mod p``; either side may be a scalar."""
    if not isinstance(a, np.ndarray):
        a = np.uint64(a)
    if not isinstance(b, np.ndarray):
        b = np.uint64(b)
    d = a - b
    return d - np.where(a < b, _EPS, _ZERO)


def neg(a: np.ndarray) -> np.ndarray:
    """Elementwise ``-a mod p`` (canonical: ``-0 = 0``)."""
    return np.where(a == _ZERO, _ZERO, _P - a)


def mul(a: np.ndarray, b) -> np.ndarray:
    """Elementwise ``(a * b) mod p`` via 32-bit limb products.

    The 128-bit product ``x`` is assembled as ``(x_hi, x_lo)`` word pairs
    with explicit carry tracking, then folded using
    ``x ≡ x_lo + (x_hi mod 2^32)(2^32 - 1) - (x_hi >> 32)  (mod p)``.
    """
    if not isinstance(b, np.ndarray):
        b = np.uint64(b)
    a_lo = a & _MASK32
    a_hi = a >> _SH32
    b_lo = b & _MASK32
    b_hi = b >> _SH32
    ll = a_lo * b_lo
    hl = a_hi * b_lo
    lh = a_lo * b_hi
    hh = a_hi * b_hi
    mid = hl + lh
    carry_mid = (mid < hl).astype(np.uint64)
    x_lo = ll + ((mid & _MASK32) << _SH32)
    carry_lo = (x_lo < ll).astype(np.uint64)
    x_hi = hh + (mid >> _SH32) + (carry_mid << _SH32) + carry_lo
    # fold (x_hi, x_lo) mod p
    x_hi_hi = x_hi >> _SH32
    x_hi_lo = x_hi & _MASK32
    t0 = x_lo - x_hi_hi
    t0 = t0 - np.where(x_lo < x_hi_hi, _EPS, _ZERO)
    t1 = x_hi_lo * _EPS
    t2 = t0 + t1
    t2 = t2 + np.where(t2 < t1, _EPS, _ZERO)
    return np.where(t2 >= _P, t2 - _P, t2)


def fold(acc: np.ndarray, y: int, values) -> np.ndarray:
    """``acc * y + values`` elementwise — the constraint-folding step."""
    return add(mul(acc, y), values)


#: Sequential chain length of the blocked batch inversion.  Each of the
#: ``n / 16`` chains runs the Montgomery trick in ``3 * 16`` vectorized
#: multiply passes shared across all chains.
_INV_CHAIN = 16


def batch_inv(values: np.ndarray) -> np.ndarray:
    """Elementwise modular inverse via a blocked Montgomery trick.

    The input is split into ``G = ceil(n / 16)`` independent chains of 16
    elements (padded with ones); prefix products run down the chains with
    16 vectorized multiply passes of width ``G``, the ``G`` chain totals
    are inverted with the classic sequential trick in Python ints (one
    modular exponentiation total), and two more passes per chain level
    recover every elementwise inverse.  Inverses are unique, so the
    result matches ``PrimeField.batch_inv`` element for element; a zero
    raises the same ``ZeroDivisionError`` (at the first zero index).
    """
    n = len(values)
    if n == 0:
        return values.copy()
    zero_mask = values == _ZERO
    if zero_mask.any():
        raise ZeroDivisionError(
            "batch_inv of zero at index %d" % int(np.argmax(zero_mask))
        )
    levels = _INV_CHAIN
    chains = -(-n // levels)
    pad = levels * chains - n
    v = values
    if pad:
        v = np.concatenate([values, np.ones(pad, dtype=np.uint64)])
    v = v.reshape(levels, chains)
    prefix = np.empty_like(v)
    prefix[0] = v[0]
    for i in range(1, levels):
        prefix[i] = mul(prefix[i - 1], v[i])
    # invert the chain totals sequentially in Python ints
    totals = prefix[levels - 1].tolist()
    running = 1
    prefs = [1] * chains
    for g in range(chains):
        prefs[g] = running
        running = running * totals[g] % P
    inv_acc = pow(running, P - 2, P)
    tinv = [0] * chains
    for g in range(chains - 1, -1, -1):
        tinv[g] = prefs[g] * inv_acc % P
        inv_acc = inv_acc * totals[g] % P
    # walk each chain back up: c holds inv(prefix[i]) entering level i
    c = np.array(tinv, dtype=np.uint64)
    out = np.empty_like(v)
    for i in range(levels - 1, 0, -1):
        out[i] = mul(prefix[i - 1], c)
        c = mul(c, v[i])
    out[0] = c
    return out.reshape(-1)[:n]


def poly_eval_rows(coeffs: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate row ``i`` of ``coeffs`` at ``points[i]``, for all rows at once.

    Pairwise (Estrin-style) folding: each pass combines adjacent
    coefficients as ``c_even + x * c_odd`` and squares ``x``, halving the
    width, so a degree-(n-1) evaluation costs ``log2(n)`` vector passes
    instead of ``n`` sequential Horner steps.  Field-exact, so values
    match :func:`repro.field.poly.poly_eval`.
    """
    m, width = coeffs.shape
    if width & (width - 1):
        padded = 1 << width.bit_length()
        tmp = np.zeros((m, padded), dtype=np.uint64)
        tmp[:, :width] = coeffs
        coeffs = tmp
    acc = coeffs
    x = points.astype(np.uint64)
    while acc.shape[1] > 1:
        acc = add(acc[:, 0::2], mul(acc[:, 1::2], x[:, None]))
        x = mul(x, x)
    return acc[:, 0]


def serialize_scalars(vec: np.ndarray, width: int = 32) -> bytes:
    """Concatenated ``width``-byte little-endian encodings of each element.

    Matches ``b"".join(int(v).to_bytes(width, "little") for v in vec)``
    without the per-element Python loop.
    """
    n = len(vec)
    words = width // 8
    buf = np.zeros((n, words), dtype="<u8")
    buf[:, 0] = vec
    return buf.tobytes()


# -- NTT kernel --------------------------------------------------------------


def bit_reverse_indices(n: int) -> np.ndarray:
    """Permutation indices that bit-reverse ``log2(n)``-bit positions."""
    k = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(k):
        rev |= ((idx >> b) & 1) << (k - 1 - b)
    return rev


def ntt(
    values: np.ndarray,
    stages: Sequence[np.ndarray],
    rev: np.ndarray,
    scale_rev: np.ndarray = None,
) -> np.ndarray:
    """Iterative radix-2 NTT driven by precomputed per-stage twiddle rows.

    ``stages[s]`` holds the ``2^s`` twiddles of the stage with butterfly
    span ``2^s`` (so ``stages[0] == [1]``); ``rev`` is the bit-reversal
    permutation for the input ordering.  Both come from the caches on
    :class:`repro.field.domain.EvaluationDomain`.

    The transform runs along the *last* axis, so a ``(m, n)`` matrix is m
    independent size-n NTTs in one kernel call — that batching, not the
    butterfly math, is what removes the per-column numpy dispatch overhead
    that dominated the prover at bench sizes.

    ``scale_rev`` optionally fuses a coset scaling into the initial
    bit-reversal gather: it must be the per-index scale vector *already
    permuted by* ``rev`` so ``out = values[rev] * scale[rev]`` happens in
    the same pass that feeds stage 0, instead of a separate full-width
    multiply before the gather.  Permuting commutes with elementwise
    multiplication, so results are bit-identical to the unfused path.
    """
    out = values[..., rev]
    if scale_rev is not None:
        out = mul(out, scale_rev)
    length = 2
    for tw in stages:
        half = length >> 1
        m = out.reshape(out.shape[:-1] + (-1, length))
        u = m[..., :half]
        v = m[..., half:]
        if length > 2:
            v = mul(v, tw)
        else:
            v = v.copy()
        s = add(u, v)
        d = sub(u, v)
        m[..., :half] = s
        m[..., half:] = d
        length <<= 1
    return out


class SixStepPlan:
    """Precomputed tables for a six-step (Bailey) NTT of size ``n1 * n2``.

    The decomposition writes index ``i = i1 + n1*i2`` and output index
    ``j = j2 + n2*j1``, turning one size-n transform into ``n1`` size-n2
    row transforms, an ``(n1, n2)`` twiddle multiply, and ``n2`` size-n1
    row transforms — each batch a single kernel call on a matrix whose
    rows fit in cache, instead of one monolithic pass whose working set
    thrashes at large ``k``.  A coset shift ``s`` factors as
    ``s^i = s^{i1} * (s^{n1})^{i2}``: the ``i2`` part rides the inner
    transform's fused gather-scale and the ``i1`` part is folded into the
    middle twiddle matrix, so the shift never costs a separate pass.
    """

    __slots__ = (
        "n", "n1", "n2",
        "stages_inner", "rev_inner", "scale_inner_rev",
        "w_fused", "stages_outer", "rev_outer",
    )

    def __init__(self, n, n1, n2, stages_inner, rev_inner, scale_inner_rev,
                 w_fused, stages_outer, rev_outer):
        self.n = n
        self.n1 = n1
        self.n2 = n2
        self.stages_inner = stages_inner
        self.rev_inner = rev_inner
        self.scale_inner_rev = scale_inner_rev
        self.w_fused = w_fused
        self.stages_outer = stages_outer
        self.rev_outer = rev_outer


def build_sixstep_plan(root: int, n: int, shift: int = 1) -> SixStepPlan:
    """Tables for :func:`sixstep_ntt`; cache per ``(root, n, shift)`` upstream.

    ``root`` must be a primitive n-th root of unity mod the Goldilocks
    prime and ``n`` a power of two with ``n >= 4``.
    """
    if n & (n - 1) or n < 4:
        raise ValueError("six-step NTT needs a power-of-two size >= 4, got %d" % n)
    from repro.field.ntt import power_table, stage_twiddles

    k = n.bit_length() - 1
    n1 = 1 << (k >> 1)
    n2 = n // n1
    root_inner = pow(root, n1, P)
    root_outer = pow(root, n2, P)
    stages_inner = [np.array(tw, dtype=np.uint64)
                    for tw in stage_twiddles(P, root_inner, n2)]
    stages_outer = [np.array(tw, dtype=np.uint64)
                    for tw in stage_twiddles(P, root_outer, n1)]
    rev_inner = bit_reverse_indices(n2)
    rev_outer = bit_reverse_indices(n1)
    # middle twiddles w^{i1*j2}, with the coset factor s^{i1} folded in
    w_pows = np.array(power_table(P, root, n), dtype=np.uint64)
    exps = (np.arange(n1, dtype=np.int64)[:, None]
            * np.arange(n2, dtype=np.int64)[None, :]) % n
    w_fused = w_pows[exps]
    scale_inner_rev = None
    if shift != 1:
        s_inner = pow(shift, n1, P)
        inner_pows = np.array(power_table(P, s_inner, n2), dtype=np.uint64)
        scale_inner_rev = inner_pows[rev_inner]
        shift_pows = np.array(power_table(P, shift, n1), dtype=np.uint64)
        w_fused = mul(w_fused, shift_pows[:, None])
    return SixStepPlan(n, n1, n2, stages_inner, rev_inner, scale_inner_rev,
                       w_fused, stages_outer, rev_outer)


def sixstep_ntt(values: np.ndarray, plan: SixStepPlan) -> np.ndarray:
    """Cache-blocked six-step NTT (with the plan's coset shift fused in).

    Exact: every step is the same canonical Goldilocks arithmetic as the
    radix-2 kernel, so outputs match :func:`ntt` bit for bit
    (property-tested in ``tests/field/test_sixstep.py``).
    """
    n1, n2 = plan.n1, plan.n2
    m = values.reshape(n2, n1).T  # (n1, n2): rows vary i2 for fixed i1
    a = ntt(m, plan.stages_inner, plan.rev_inner, plan.scale_inner_rev)
    b = mul(a, plan.w_fused)
    c = ntt(b.T, plan.stages_outer, plan.rev_outer)  # rows indexed by j2
    # c[j2, j1] -> X[j2 + n2*j1]
    return np.ascontiguousarray(c.T).reshape(-1)
