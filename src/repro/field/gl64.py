"""Vectorized Goldilocks arithmetic on numpy ``uint64`` arrays.

The Goldilocks prime ``p = 2^64 - 2^32 + 1`` admits branch-light modular
arithmetic entirely inside 64-bit words: ``2^64 ≡ 2^32 - 1 (mod p)`` and
``2^96 ≡ -1 (mod p)``, so a 128-bit product folds back into one word with
two shifted adds.  That turns every per-row interpreter loop in the prover
into a handful of numpy passes — the same trick plonky2 uses to keep its
field arithmetic in scalar registers.

All functions are *exact*: results are canonical residues in ``[0, p)``
and agree bit-for-bit with the pure-Python reference in
:mod:`repro.field.prime_field` (property-tested in
``tests/field/test_gl64.py``).  Inputs must already be canonical.

Only Goldilocks gets this backend; other fields (BN254) fall back to the
list-based path everywhere.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: The Goldilocks modulus.
P = (1 << 64) - (1 << 32) + 1

_P = np.uint64(P)
#: 2^64 mod p — the correction term for wrapping adds/subs.
_EPS = np.uint64((1 << 32) - 1)
_MASK32 = np.uint64(0xFFFFFFFF)
_SH32 = np.uint64(32)
_ZERO = np.uint64(0)


def is_goldilocks(p: int) -> bool:
    """True iff ``p`` is the Goldilocks prime this module accelerates."""
    return p == P


def from_ints(values: Sequence[int]) -> np.ndarray:
    """Pack canonical residues into a ``uint64`` array."""
    if isinstance(values, np.ndarray) and values.dtype == np.uint64:
        return values
    return np.array(values, dtype=np.uint64)


def to_ints(vec: np.ndarray) -> List[int]:
    """Unpack a ``uint64`` array into plain Python ints."""
    return vec.tolist()


def add(a: np.ndarray, b) -> np.ndarray:
    """Elementwise ``(a + b) mod p``; ``b`` may be an array or a scalar."""
    if not isinstance(b, np.ndarray):
        b = np.uint64(b)
    t = a + b
    t = t + np.where(t < a, _EPS, _ZERO)
    return np.where(t >= _P, t - _P, t)


def sub(a, b) -> np.ndarray:
    """Elementwise ``(a - b) mod p``; either side may be a scalar."""
    if not isinstance(a, np.ndarray):
        a = np.uint64(a)
    if not isinstance(b, np.ndarray):
        b = np.uint64(b)
    d = a - b
    return d - np.where(a < b, _EPS, _ZERO)


def neg(a: np.ndarray) -> np.ndarray:
    """Elementwise ``-a mod p`` (canonical: ``-0 = 0``)."""
    return np.where(a == _ZERO, _ZERO, _P - a)


def mul(a: np.ndarray, b) -> np.ndarray:
    """Elementwise ``(a * b) mod p`` via 32-bit limb products.

    The 128-bit product ``x`` is assembled as ``(x_hi, x_lo)`` word pairs
    with explicit carry tracking, then folded using
    ``x ≡ x_lo + (x_hi mod 2^32)(2^32 - 1) - (x_hi >> 32)  (mod p)``.
    """
    if not isinstance(b, np.ndarray):
        b = np.uint64(b)
    a_lo = a & _MASK32
    a_hi = a >> _SH32
    b_lo = b & _MASK32
    b_hi = b >> _SH32
    ll = a_lo * b_lo
    hl = a_hi * b_lo
    lh = a_lo * b_hi
    hh = a_hi * b_hi
    mid = hl + lh
    carry_mid = (mid < hl).astype(np.uint64)
    x_lo = ll + ((mid & _MASK32) << _SH32)
    carry_lo = (x_lo < ll).astype(np.uint64)
    x_hi = hh + (mid >> _SH32) + (carry_mid << _SH32) + carry_lo
    # fold (x_hi, x_lo) mod p
    x_hi_hi = x_hi >> _SH32
    x_hi_lo = x_hi & _MASK32
    t0 = x_lo - x_hi_hi
    t0 = t0 - np.where(x_lo < x_hi_hi, _EPS, _ZERO)
    t1 = x_hi_lo * _EPS
    t2 = t0 + t1
    t2 = t2 + np.where(t2 < t1, _EPS, _ZERO)
    return np.where(t2 >= _P, t2 - _P, t2)


def fold(acc: np.ndarray, y: int, values) -> np.ndarray:
    """``acc * y + values`` elementwise — the constraint-folding step."""
    return add(mul(acc, y), values)


def serialize_scalars(vec: np.ndarray, width: int = 32) -> bytes:
    """Concatenated ``width``-byte little-endian encodings of each element.

    Matches ``b"".join(int(v).to_bytes(width, "little") for v in vec)``
    without the per-element Python loop.
    """
    n = len(vec)
    words = width // 8
    buf = np.zeros((n, words), dtype="<u8")
    buf[:, 0] = vec
    return buf.tobytes()


# -- NTT kernel --------------------------------------------------------------


def bit_reverse_indices(n: int) -> np.ndarray:
    """Permutation indices that bit-reverse ``log2(n)``-bit positions."""
    k = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(k):
        rev |= ((idx >> b) & 1) << (k - 1 - b)
    return rev


def ntt(values: np.ndarray, stages: Sequence[np.ndarray], rev: np.ndarray) -> np.ndarray:
    """Iterative radix-2 NTT driven by precomputed per-stage twiddle rows.

    ``stages[s]`` holds the ``2^s`` twiddles of the stage with butterfly
    span ``2^s`` (so ``stages[0] == [1]``); ``rev`` is the bit-reversal
    permutation for the input ordering.  Both come from the caches on
    :class:`repro.field.domain.EvaluationDomain`.
    """
    out = values[rev]
    length = 2
    for tw in stages:
        half = length >> 1
        m = out.reshape(-1, length)
        u = m[:, :half]
        v = m[:, half:]
        if length > 2:
            v = mul(v, tw[None, :])
        else:
            v = v.copy()
        s = add(u, v)
        d = sub(u, v)
        m[:, :half] = s
        m[:, half:] = d
        length <<= 1
    return out
