"""Dense polynomial arithmetic in coefficient form.

Polynomials are Python lists of field elements, index ``i`` holding the
coefficient of ``X^i``.  Trailing zeros are permitted; :func:`poly_trim`
normalizes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.field.ntt import intt, ntt
from repro.field.prime_field import PrimeField


def poly_trim(coeffs: Sequence[int]) -> List[int]:
    """Drop trailing zero coefficients (the zero polynomial becomes [])."""
    out = list(coeffs)
    while out and out[-1] == 0:
        out.pop()
    return out


def poly_degree(coeffs: Sequence[int]) -> int:
    """Degree of the polynomial; -1 for the zero polynomial."""
    return len(poly_trim(coeffs)) - 1


def poly_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = field.add(out[i], c)
    return out


def poly_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] = c
    for i, c in enumerate(b):
        out[i] = field.sub(out[i], c)
    return out


def poly_scale(field: PrimeField, a: Sequence[int], s: int) -> List[int]:
    p = field.p
    return [c * s % p for c in a]


def poly_mul(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Polynomial product; NTT-based when the result is large."""
    a = poly_trim(a)
    b = poly_trim(b)
    if not a or not b:
        return []
    result_len = len(a) + len(b) - 1
    if result_len <= 64:
        p = field.p
        out = [0] * result_len
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                out[i + j] = (out[i + j] + ca * cb) % p
        return out
    k = (result_len - 1).bit_length()
    n = 1 << k
    root = field.root_of_unity(k)
    fa = ntt(field, list(a) + [0] * (n - len(a)), root)
    fb = ntt(field, list(b) + [0] * (n - len(b)), root)
    p = field.p
    prod = [x * y % p for x, y in zip(fa, fb)]
    return intt(field, prod, root)[:result_len]


def poly_eval(field: PrimeField, coeffs: Sequence[int], x: int) -> int:
    """Evaluate by Horner's rule."""
    acc = 0
    p = field.p
    for c in reversed(coeffs):
        acc = (acc * x + c) % p
    return acc


def poly_divmod(
    field: PrimeField, a: Sequence[int], b: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Quotient and remainder of polynomial long division."""
    a = poly_trim(a)
    b = poly_trim(b)
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    if len(a) < len(b):
        return [], a
    p = field.p
    rem = list(a)
    quot = [0] * (len(a) - len(b) + 1)
    inv_lead = field.inv(b[-1])
    for i in range(len(quot) - 1, -1, -1):
        coeff = rem[i + len(b) - 1] * inv_lead % p
        quot[i] = coeff
        if coeff:
            for j, bc in enumerate(b):
                rem[i + j] = (rem[i + j] - coeff * bc) % p
    return quot, poly_trim(rem)


def divide_by_vanishing(
    field: PrimeField, coeffs: Sequence[int], n: int
) -> List[int]:
    """Divide by ``X^n - 1``; raises ValueError if not divisible.

    Used by the prover to form the quotient polynomial: a constraint
    polynomial vanishing on the whole domain is a multiple of the domain's
    vanishing polynomial.
    """
    a = poly_trim(coeffs)
    if not a:
        return []
    p = field.p
    quot = [0] * max(len(a) - n, 0)
    rem = list(a)
    # X^n - 1 division: q[i] = rem[i + n]; rem[i] += q[i]
    for i in range(len(rem) - n - 1, -1, -1):
        c = rem[i + n]
        if c:
            quot[i] = c
            rem[i] = (rem[i] + c) % p
            rem[i + n] = 0
    if poly_trim(rem[:n]):
        raise ValueError("polynomial is not divisible by X^%d - 1" % n)
    return quot
