"""Finite-field substrate: prime fields, polynomials, NTTs, evaluation domains.

The paper's halo2 backend works over the BN254 scalar field.  We default to
the Goldilocks field (2^64 - 2^32 + 1) for speed — it has two-adicity 32,
ample for every circuit size the optimizer considers — and keep BN254-Fr
available for parity with the paper.  All field elements are plain Python
ints in ``[0, p)``; a :class:`PrimeField` instance supplies the operations.
"""

from repro.field.prime_field import (
    BN254_FR,
    GOLDILOCKS,
    PrimeField,
    field_by_name,
)
from repro.field.domain import EvaluationDomain
from repro.field.ntt import intt, ntt
from repro.field.poly import (
    poly_add,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
    poly_sub,
)
from repro.field.vector import GL64Backend, ListBackend, vector_backend

__all__ = [
    "BN254_FR",
    "GOLDILOCKS",
    "PrimeField",
    "field_by_name",
    "EvaluationDomain",
    "ntt",
    "intt",
    "poly_add",
    "poly_sub",
    "poly_mul",
    "poly_scale",
    "poly_eval",
    "poly_divmod",
    "ListBackend",
    "GL64Backend",
    "vector_backend",
]
