"""Radix-2 number-theoretic transforms over a prime field.

The prover converts columns between coefficient and evaluation form with
these transforms; the optimizer's cost model charges ``t_FFT(k)`` for each.

Twiddle factors are precomputed once per ``(modulus, root, size)`` and
reused across every transform on the same domain (the tables are tiny:
``n - 1`` field elements).  The butterfly loops run as slice-based list
comprehensions — for stages with few distinct twiddles the butterflies are
strided across all blocks at once, for later stages they run block by
block — which is substantially faster than an index-juggling interpreted
loop.  Goldilocks-field callers normally go through the numpy kernel in
:mod:`repro.field.gl64` instead (see ``EvaluationDomain``); this module is
the exact reference path and serves every other field.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro.field.prime_field import PrimeField
from repro.obs.stats import STATS

#: Per-stage twiddle tables keyed by (modulus, root, size).
_TWIDDLE_CACHE: Dict[Tuple[int, int, int], List[List[int]]] = {}

#: Power tables (1, s, s^2, ..., s^(n-1)) keyed by (modulus, base, size).
_POWER_CACHE: Dict[Tuple[int, int, int], List[int]] = {}

#: Fused post-scale tables ``scale * base^i`` keyed by (modulus, base, size,
#: scale) — one multiply pass where :func:`coset_intt` used to spend two.
_SCALED_POWER_CACHE: Dict[Tuple[int, int, int, int], List[int]] = {}


def _sixstep_min_n() -> int:
    """Size at which transforms switch to the six-step decomposition."""
    try:
        return 1 << max(2, int(os.environ.get("ZKML_SIXSTEP_MIN_K", "16")))
    except ValueError:
        return 1 << 16


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def stage_twiddles(p: int, root: int, n: int) -> List[List[int]]:
    """Cached per-stage twiddle tables for a size-``n`` NTT.

    Entry ``s`` holds ``[w^0, w^1, ..., w^(2^s - 1)]`` for the stage with
    butterfly span ``2^s``, where ``w = root^(n / 2^(s+1))``.
    """
    key = (p, root, n)
    cached = _TWIDDLE_CACHE.get(key)
    if cached is not None:
        STATS.ntt_plan_hits += 1
        return cached
    stages: List[List[int]] = []
    length = 2
    while length <= n:
        half = length >> 1
        w_step = pow(root, n // length, p)
        tw = [1] * half
        for i in range(1, half):
            tw[i] = tw[i - 1] * w_step % p
        stages.append(tw)
        length <<= 1
    _TWIDDLE_CACHE[key] = stages
    return stages


def power_table(p: int, base: int, n: int) -> List[int]:
    """Cached ``[base^0, base^1, ..., base^(n-1)] mod p`` (coset scalings)."""
    key = (p, base, n)
    cached = _POWER_CACHE.get(key)
    if cached is not None:
        STATS.ntt_plan_hits += 1
        return cached
    powers = [1] * n
    for i in range(1, n):
        powers[i] = powers[i - 1] * base % p
    _POWER_CACHE[key] = powers
    return powers


def scaled_power_table(p: int, base: int, n: int, scale: int) -> List[int]:
    """Cached ``[scale * base^i] mod p`` — a power table with a constant
    folded in, so callers apply both in a single multiply pass."""
    key = (p, base, n, scale)
    cached = _SCALED_POWER_CACHE.get(key)
    if cached is not None:
        STATS.ntt_plan_hits += 1
        return cached
    fused = [v * scale % p for v in power_table(p, base, n)]
    _SCALED_POWER_CACHE[key] = fused
    return fused


def _ntt_core(out: List[int], p: int, stages: List[List[int]]) -> None:
    """In-place iterative NTT of a bit-reverse-permuted vector."""
    n = len(out)
    length = 2
    for tw in stages:
        half = length >> 1
        if length * length <= n:
            # Few distinct twiddles, many blocks: stride each twiddle's
            # butterflies across every block in one pass.
            for j in range(half):
                w = tw[j]
                a = out[j::length]
                b = out[j + half::length]
                if w != 1:
                    b = [x * w % p for x in b]
                out[j::length] = [
                    s - p if (s := x + y) >= p else s for x, y in zip(a, b)
                ]
                out[j + half::length] = [
                    d + p if (d := x - y) < 0 else d for x, y in zip(a, b)
                ]
        else:
            for start in range(0, n, length):
                mid = start + half
                a = out[start:mid]
                b = [x * w % p for x, w in zip(out[mid:start + length], tw)]
                out[start:mid] = [
                    s - p if (s := x + y) >= p else s for x, y in zip(a, b)
                ]
                out[mid:start + length] = [
                    d + p if (d := x - y) < 0 else d for x, y in zip(a, b)
                ]
        length <<= 1


def ntt(field: PrimeField, values: Sequence[int], root: int) -> List[int]:
    """Forward NTT of a power-of-two-length vector.

    Args:
        field: The field to work in.
        values: Coefficients (length must be a power of two).
        root: A primitive n-th root of unity for ``n = len(values)``.

    Returns:
        Evaluations at ``root^0, root^1, ..., root^(n-1)``.
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two, got %d" % n)
    out = list(values)
    if n == 1:
        return out
    if n >= _sixstep_min_n():
        return sixstep_ntt(field, out, root)
    _bit_reverse_permute(out)
    _ntt_core(out, field.p, stage_twiddles(field.p, root, n))
    return out


def sixstep_ntt(
    field: PrimeField, values: Sequence[int], root: int, shift: int = 1
) -> List[int]:
    """Six-step (Bailey) NTT: two passes of ``sqrt(n)``-sized transforms.

    Splitting ``i = i1 + n1*i2`` / ``j = j2 + n2*j1`` turns one size-n
    transform into ``n1`` inner transforms of size ``n2`` (root
    ``root^n1``), a twiddle multiply by ``root^(i1*j2)``, and ``n2`` outer
    transforms of size ``n1`` (root ``root^n2``) — each sub-transform's
    working set is ``sqrt(n)`` elements, so large-``k`` transforms stay
    cache-resident.  An optional coset ``shift`` is folded into the inner
    transforms (``shift^(n1*i2)`` rides their input scaling) and the
    twiddle step (``shift^i1``), never a separate full pass.  Exact:
    identical output to ``ntt(field, [v * shift^i], root)``.
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two, got %d" % n)
    p = field.p
    if n < 4:
        if shift != 1:
            powers = power_table(p, shift, n)
            values = [v * s % p for v, s in zip(values, powers)]
        out = list(values)
        if n == 2:
            _ntt_core(out, p, stage_twiddles(p, root, 2))
        return out
    k = n.bit_length() - 1
    n1 = 1 << (k >> 1)
    n2 = n // n1
    root_inner = pow(root, n1, p)
    root_outer = pow(root, n2, p)
    s_inner = pow(shift, n1, p) if shift != 1 else 1
    w_pows = power_table(p, root, n)
    shift_pows = power_table(p, shift, n1) if shift != 1 else None
    inner: List[List[int]] = []
    for i1 in range(n1):
        col = values[i1::n1]
        if s_inner != 1:
            col = coset_ntt(field, col, root_inner, s_inner)
        else:
            col = ntt(field, col, root_inner)
        if shift_pows is not None:
            si = shift_pows[i1]
            col = [
                c * w_pows[i1 * j2 % n] % p * si % p for j2, c in enumerate(col)
            ]
        else:
            col = [c * w_pows[i1 * j2 % n] % p for j2, c in enumerate(col)]
        inner.append(col)
    out = [0] * n
    for j2 in range(n2):
        row = ntt(field, [inner[i1][j2] for i1 in range(n1)], root_outer)
        out[j2::n2] = row
    return out


def intt(field: PrimeField, values: Sequence[int], root: int) -> List[int]:
    """Inverse NTT; exact inverse of :func:`ntt` with the same root."""
    n = len(values)
    inv_root = field.inv(root)
    out = ntt(field, values, inv_root)
    inv_n = field.inv(n)
    p = field.p
    return [v * inv_n % p for v in out]


def coset_ntt(field: PrimeField, values: Sequence[int], root: int, shift: int) -> List[int]:
    """Evaluate a coefficient vector on the coset ``shift * <root>``."""
    n = len(values)
    if n >= _sixstep_min_n():
        # the shift scaling is folded into the six-step inner stages
        return sixstep_ntt(field, values, root, shift)
    p = field.p
    powers = power_table(p, shift, n)
    shifted = [v * s % p for v, s in zip(values, powers)]
    return ntt(field, shifted, root)


def coset_intt(field: PrimeField, values: Sequence[int], root: int, shift: int) -> List[int]:
    """Inverse of :func:`coset_ntt`.

    The two post-passes of the textbook formulation — scale by ``1/n``,
    then by the cached inverse-shift power table — are fused into a single
    multiply against one cached ``scaled_power_table``, and the inverse
    shift itself comes from the field's inversion cache instead of being
    recomputed per call.
    """
    n = len(values)
    out = ntt(field, values, field.inv(root))
    p = field.p
    fused = scaled_power_table(p, field.inv(shift), n, field.inv(n))
    return [c * s % p for c, s in zip(out, fused)]
