"""Radix-2 number-theoretic transforms over a prime field.

The prover converts columns between coefficient and evaluation form with
these transforms; the optimizer's cost model charges ``t_FFT(k)`` for each.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.field.prime_field import PrimeField


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def ntt(field: PrimeField, values: Sequence[int], root: int) -> List[int]:
    """Forward NTT of a power-of-two-length vector.

    Args:
        field: The field to work in.
        values: Coefficients (length must be a power of two).
        root: A primitive n-th root of unity for ``n = len(values)``.

    Returns:
        Evaluations at ``root^0, root^1, ..., root^(n-1)``.
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two, got %d" % n)
    out = list(values)
    if n == 1:
        return out
    _bit_reverse_permute(out)
    p = field.p
    length = 2
    while length <= n:
        w_step = pow(root, n // length, p)
        half = length >> 1
        for start in range(0, n, length):
            w = 1
            for i in range(start, start + half):
                u = out[i]
                v = out[i + half] * w % p
                s = u + v
                out[i] = s - p if s >= p else s
                d = u - v
                out[i + half] = d + p if d < 0 else d
                w = w * w_step % p
        length <<= 1
    return out


def intt(field: PrimeField, values: Sequence[int], root: int) -> List[int]:
    """Inverse NTT; exact inverse of :func:`ntt` with the same root."""
    n = len(values)
    inv_root = field.inv(root)
    out = ntt(field, values, inv_root)
    inv_n = field.inv(n)
    p = field.p
    return [v * inv_n % p for v in out]


def coset_ntt(field: PrimeField, values: Sequence[int], root: int, shift: int) -> List[int]:
    """Evaluate a coefficient vector on the coset ``shift * <root>``."""
    p = field.p
    shifted = []
    power = 1
    for v in values:
        shifted.append(v * power % p)
        power = power * shift % p
    return ntt(field, shifted, root)


def coset_intt(field: PrimeField, values: Sequence[int], root: int, shift: int) -> List[int]:
    """Inverse of :func:`coset_ntt`."""
    coeffs = intt(field, values, root)
    p = field.p
    inv_shift = field.inv(shift)
    out = []
    power = 1
    for c in coeffs:
        out.append(c * power % p)
        power = power * inv_shift % p
    return out
