"""Radix-2 number-theoretic transforms over a prime field.

The prover converts columns between coefficient and evaluation form with
these transforms; the optimizer's cost model charges ``t_FFT(k)`` for each.

Twiddle factors are precomputed once per ``(modulus, root, size)`` and
reused across every transform on the same domain (the tables are tiny:
``n - 1`` field elements).  The butterfly loops run as slice-based list
comprehensions — for stages with few distinct twiddles the butterflies are
strided across all blocks at once, for later stages they run block by
block — which is substantially faster than an index-juggling interpreted
loop.  Goldilocks-field callers normally go through the numpy kernel in
:mod:`repro.field.gl64` instead (see ``EvaluationDomain``); this module is
the exact reference path and serves every other field.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.field.prime_field import PrimeField

#: Per-stage twiddle tables keyed by (modulus, root, size).
_TWIDDLE_CACHE: Dict[Tuple[int, int, int], List[List[int]]] = {}

#: Power tables (1, s, s^2, ..., s^(n-1)) keyed by (modulus, base, size).
_POWER_CACHE: Dict[Tuple[int, int, int], List[int]] = {}


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def stage_twiddles(p: int, root: int, n: int) -> List[List[int]]:
    """Cached per-stage twiddle tables for a size-``n`` NTT.

    Entry ``s`` holds ``[w^0, w^1, ..., w^(2^s - 1)]`` for the stage with
    butterfly span ``2^s``, where ``w = root^(n / 2^(s+1))``.
    """
    key = (p, root, n)
    cached = _TWIDDLE_CACHE.get(key)
    if cached is not None:
        return cached
    stages: List[List[int]] = []
    length = 2
    while length <= n:
        half = length >> 1
        w_step = pow(root, n // length, p)
        tw = [1] * half
        for i in range(1, half):
            tw[i] = tw[i - 1] * w_step % p
        stages.append(tw)
        length <<= 1
    _TWIDDLE_CACHE[key] = stages
    return stages


def power_table(p: int, base: int, n: int) -> List[int]:
    """Cached ``[base^0, base^1, ..., base^(n-1)] mod p`` (coset scalings)."""
    key = (p, base, n)
    cached = _POWER_CACHE.get(key)
    if cached is not None:
        return cached
    powers = [1] * n
    for i in range(1, n):
        powers[i] = powers[i - 1] * base % p
    _POWER_CACHE[key] = powers
    return powers


def _ntt_core(out: List[int], p: int, stages: List[List[int]]) -> None:
    """In-place iterative NTT of a bit-reverse-permuted vector."""
    n = len(out)
    length = 2
    for tw in stages:
        half = length >> 1
        if length * length <= n:
            # Few distinct twiddles, many blocks: stride each twiddle's
            # butterflies across every block in one pass.
            for j in range(half):
                w = tw[j]
                a = out[j::length]
                b = out[j + half::length]
                if w != 1:
                    b = [x * w % p for x in b]
                out[j::length] = [
                    s - p if (s := x + y) >= p else s for x, y in zip(a, b)
                ]
                out[j + half::length] = [
                    d + p if (d := x - y) < 0 else d for x, y in zip(a, b)
                ]
        else:
            for start in range(0, n, length):
                mid = start + half
                a = out[start:mid]
                b = [x * w % p for x, w in zip(out[mid:start + length], tw)]
                out[start:mid] = [
                    s - p if (s := x + y) >= p else s for x, y in zip(a, b)
                ]
                out[mid:start + length] = [
                    d + p if (d := x - y) < 0 else d for x, y in zip(a, b)
                ]
        length <<= 1


def ntt(field: PrimeField, values: Sequence[int], root: int) -> List[int]:
    """Forward NTT of a power-of-two-length vector.

    Args:
        field: The field to work in.
        values: Coefficients (length must be a power of two).
        root: A primitive n-th root of unity for ``n = len(values)``.

    Returns:
        Evaluations at ``root^0, root^1, ..., root^(n-1)``.
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two, got %d" % n)
    out = list(values)
    if n == 1:
        return out
    _bit_reverse_permute(out)
    _ntt_core(out, field.p, stage_twiddles(field.p, root, n))
    return out


def intt(field: PrimeField, values: Sequence[int], root: int) -> List[int]:
    """Inverse NTT; exact inverse of :func:`ntt` with the same root."""
    n = len(values)
    inv_root = field.inv(root)
    out = ntt(field, values, inv_root)
    inv_n = field.inv(n)
    p = field.p
    return [v * inv_n % p for v in out]


def coset_ntt(field: PrimeField, values: Sequence[int], root: int, shift: int) -> List[int]:
    """Evaluate a coefficient vector on the coset ``shift * <root>``."""
    p = field.p
    powers = power_table(p, shift, len(values))
    shifted = [v * s % p for v, s in zip(values, powers)]
    return ntt(field, shifted, root)


def coset_intt(field: PrimeField, values: Sequence[int], root: int, shift: int) -> List[int]:
    """Inverse of :func:`coset_ntt`."""
    coeffs = intt(field, values, root)
    p = field.p
    inv_shift = field.inv(shift)
    powers = power_table(p, inv_shift, len(coeffs))
    return [c * s % p for c, s in zip(coeffs, powers)]
