"""Columnwise field-vector operations with a numpy fast path.

The prover's hot loops all have the same shape: elementwise field
arithmetic over whole columns (helper construction, quotient folding).  A
:class:`VectorBackend` packages those operations so callers are agnostic
to the representation:

- :class:`ListBackend` — plain Python ints in lists; works for any field
  and is the bit-exact reference.
- :class:`GL64Backend` — numpy ``uint64`` arrays using the Goldilocks
  kernels in :mod:`repro.field.gl64`; ~1-2 orders of magnitude faster.

Both produce canonical residues, so proofs are byte-identical whichever
backend runs (asserted by ``tests/halo2/test_vectorized_equivalence.py``).
Vectors returned by a backend must be treated as immutable — they may be
cached and shared between expression nodes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.field import gl64
from repro.field.prime_field import PrimeField


class ListBackend:
    """Reference backend: vectors are Python lists of canonical ints."""

    def __init__(self, field: PrimeField):
        self.field = field

    def from_ints(self, values: Sequence[int]):
        if isinstance(values, np.ndarray):
            return values.tolist()
        return list(values)

    def to_ints(self, vec) -> List[int]:
        return list(vec)

    def zeros(self, n: int):
        return [0] * n

    def add(self, a, b):
        p = self.field.p
        return [s - p if (s := x + y) >= p else s for x, y in zip(a, b)]

    def sub(self, a, b):
        p = self.field.p
        return [d + p if (d := x - y) < 0 else d for x, y in zip(a, b)]

    def mul(self, a, b):
        p = self.field.p
        return [x * y % p for x, y in zip(a, b)]

    def neg(self, a):
        p = self.field.p
        return [p - x if x else 0 for x in a]

    def add_scalar(self, a, s: int):
        p = self.field.p
        return [(x + s) % p for x in a]

    def mul_scalar(self, a, s: int):
        p = self.field.p
        return [x * s % p for x in a]

    def scalar_sub(self, s: int, a):
        p = self.field.p
        return [(s - x) % p for x in a]

    def fold(self, acc, y: int, values):
        """``acc * y + values`` elementwise (constraint folding)."""
        p = self.field.p
        return [(x * y + v) % p for x, v in zip(acc, values)]

    def fold_scalar(self, acc, y: int, value: int):
        p = self.field.p
        return [(x * y + value) % p for x in acc]

    def rotate(self, vec, shift: int):
        """Cyclic left rotation by ``shift`` positions."""
        shift %= len(vec)
        if shift == 0:
            return vec
        return vec[shift:] + vec[:shift]

    def batch_inv(self, vec):
        return self.field.batch_inv(list(vec))


class GL64Backend(ListBackend):
    """Goldilocks backend: vectors are numpy ``uint64`` arrays."""

    def from_ints(self, values):
        return gl64.from_ints(values)

    def to_ints(self, vec) -> List[int]:
        return gl64.to_ints(vec)

    def zeros(self, n: int):
        return np.zeros(n, dtype=np.uint64)

    def add(self, a, b):
        return gl64.add(a, b)

    def sub(self, a, b):
        return gl64.sub(a, b)

    def mul(self, a, b):
        return gl64.mul(a, b)

    def neg(self, a):
        return gl64.neg(a)

    def add_scalar(self, a, s: int):
        return gl64.add(a, s)

    def mul_scalar(self, a, s: int):
        return gl64.mul(a, s)

    def scalar_sub(self, s: int, a):
        return gl64.sub(s, a)

    def fold(self, acc, y: int, values):
        return gl64.fold(acc, y, values)

    def fold_scalar(self, acc, y: int, value: int):
        return gl64.fold(acc, y, np.uint64(value))

    def rotate(self, vec, shift: int):
        # rows rotate along the last axis so the quotient's (ext, n)
        # coset-part matrices rotate exactly like 1-D columns
        shift %= vec.shape[-1]
        if shift == 0:
            return vec
        return np.roll(vec, -shift, axis=-1)

    def batch_inv(self, vec):
        return gl64.from_ints(self.field.batch_inv(gl64.to_ints(vec)))


def vector_backend(field: PrimeField) -> ListBackend:
    """The fastest exact backend available for ``field``."""
    if gl64.is_goldilocks(field.p):
        return GL64Backend(field)
    return ListBackend(field)
