"""Evaluation domains for Plonkish circuits.

A circuit with ``2^k`` rows is interpolated over the multiplicative
subgroup of order ``2^k``.  The quotient argument additionally needs an
*extended* coset domain whose size covers the constraint degree, exactly as
in halo2: ``k' = k + ceil(log2(d_max - 1))``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.field.ntt import coset_intt, coset_ntt, intt, ntt
from repro.field.prime_field import PrimeField


class EvaluationDomain:
    """The multiplicative subgroup of order ``2^k`` plus coset machinery."""

    def __init__(self, field: PrimeField, k: int, max_degree: int = 3):
        if k < 0:
            raise ValueError("k must be nonnegative")
        if max_degree < 2:
            raise ValueError("max constraint degree must be at least 2")
        self.field = field
        self.k = k
        self.n = 1 << k
        self.omega = field.root_of_unity(k)
        # Extension factor: smallest power of two >= max_degree - 1, so that
        # degree (max_degree * (n-1)) polynomials fit on the extended domain.
        ext = 1
        while ext < max_degree - 1:
            ext <<= 1
        self.extension = max(ext, 2)
        self.extended_k = k + self.extension.bit_length() - 1
        self.extended_n = 1 << self.extended_k
        self.extended_omega = field.root_of_unity(self.extended_k)
        # Coset shift: the field generator keeps the coset disjoint from the
        # base subgroup, so the vanishing polynomial never hits zero on it.
        self.coset_shift = field.generator

    # -- transforms ---------------------------------------------------------

    def lagrange_to_coeff(self, evals: Sequence[int]) -> List[int]:
        """Interpolate evaluations over the base domain into coefficients."""
        if len(evals) != self.n:
            raise ValueError("expected %d evaluations, got %d" % (self.n, len(evals)))
        return intt(self.field, evals, self.omega)

    def coeff_to_lagrange(self, coeffs: Sequence[int]) -> List[int]:
        """Evaluate a coefficient vector over the base domain."""
        padded = list(coeffs) + [0] * (self.n - len(coeffs))
        if len(padded) != self.n:
            raise ValueError("polynomial degree exceeds domain size")
        return ntt(self.field, padded, self.omega)

    def coeff_to_extended(self, coeffs: Sequence[int]) -> List[int]:
        """Evaluate a coefficient vector over the extended coset domain."""
        padded = list(coeffs) + [0] * (self.extended_n - len(coeffs))
        if len(padded) != self.extended_n:
            raise ValueError("polynomial degree exceeds extended domain size")
        return coset_ntt(self.field, padded, self.extended_omega, self.coset_shift)

    def extended_to_coeff(self, evals: Sequence[int]) -> List[int]:
        """Interpolate extended-coset evaluations back to coefficients."""
        if len(evals) != self.extended_n:
            raise ValueError(
                "expected %d evaluations, got %d" % (self.extended_n, len(evals))
            )
        return coset_intt(self.field, evals, self.extended_omega, self.coset_shift)

    # -- vanishing polynomial ------------------------------------------------

    def vanishing_eval(self, x: int) -> int:
        """Evaluate ``Z_H(X) = X^n - 1`` at a point."""
        return self.field.sub(self.field.pow(x, self.n), 1)

    def vanishing_on_extended(self) -> List[int]:
        """Evaluations of ``Z_H`` over the extended coset (all nonzero)."""
        field = self.field
        shift_n = field.pow(self.coset_shift, self.n)
        omega_ext_n = field.pow(self.extended_omega, self.n)
        out = []
        acc = shift_n
        for _ in range(self.extended_n):
            out.append(field.sub(acc, 1))
            acc = field.mul(acc, omega_ext_n)
        return out

    def rotate(self, x: int, rotation: int) -> int:
        """Multiply a point by ``omega^rotation`` (for shifted openings)."""
        if rotation >= 0:
            return self.field.mul(x, self.field.pow(self.omega, rotation))
        return self.field.mul(
            x, self.field.inv(self.field.pow(self.omega, -rotation))
        )
