"""Evaluation domains for Plonkish circuits.

A circuit with ``2^k`` rows is interpolated over the multiplicative
subgroup of order ``2^k``.  The quotient argument additionally needs an
*extended* coset domain whose size covers the constraint degree, exactly as
in halo2: ``k' = k + ceil(log2(d_max - 1))``.

Every derived quantity a transform needs — per-stage twiddle tables
(forward and inverse, base and extended), coset power tables, the
vanishing polynomial on the extended coset and its batch inverse, rotation
powers — is computed once and cached on the domain, so repeated transforms
(one per column, hundreds per proof) never redo the ``pow`` chains.  On
the Goldilocks field all transforms run through the numpy kernel in
:mod:`repro.field.gl64`; the ``*_vec`` / ``*_batch`` entry points keep
columns in backend representation end to end.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.field import gl64
from repro.field.ntt import (
    coset_intt,
    coset_ntt,
    intt,
    ntt,
    power_table,
    scaled_power_table,
    stage_twiddles,
)
from repro.field.prime_field import PrimeField
from repro.field.vector import vector_backend
from repro.obs.stats import STATS
from repro.resilience import faults


class EvaluationDomain:
    """The multiplicative subgroup of order ``2^k`` plus coset machinery."""

    def __init__(self, field: PrimeField, k: int, max_degree: int = 3):
        if k < 0:
            raise ValueError("k must be nonnegative")
        if max_degree < 2:
            raise ValueError("max constraint degree must be at least 2")
        self.field = field
        self.k = k
        self.n = 1 << k
        self.omega = field.root_of_unity(k)
        # Extension factor: smallest power of two >= max_degree - 1, so that
        # degree (max_degree * (n-1)) polynomials fit on the extended domain.
        ext = 1
        while ext < max_degree - 1:
            ext <<= 1
        self.extension = max(ext, 2)
        self.extended_k = k + self.extension.bit_length() - 1
        self.extended_n = 1 << self.extended_k
        self.extended_omega = field.root_of_unity(self.extended_k)
        # Coset shift: the field generator keeps the coset disjoint from the
        # base subgroup, so the vanishing polynomial never hits zero on it.
        self.coset_shift = field.generator
        self.backend = vector_backend(field)
        self._use_gl64 = gl64.is_goldilocks(field.p)
        # numpy twiddle/permutation caches, built lazily per transform size
        self._np_stages: Dict[tuple, List[np.ndarray]] = {}
        self._np_rev: Dict[int, np.ndarray] = {}
        self._np_powers: Dict[tuple, np.ndarray] = {}
        self._np_scale_rev: Dict[tuple, np.ndarray] = {}
        self._np_post_scale: Dict[tuple, np.ndarray] = {}
        self._np_sixstep: Dict[tuple, gl64.SixStepPlan] = {}
        self._vanishing: Optional[List[int]] = None
        self._inv_vanishing_vec = None
        self._part_shifts: Optional[List[int]] = None
        self._part_invs: Optional[List[int]] = None
        self._rotation_cache: Dict[int, int] = {}
        # transforms this large run through the six-step decomposition
        try:
            self._sixstep_min_n = 1 << max(
                2, int(os.environ.get("ZKML_SIXSTEP_MIN_K", "16"))
            )
        except ValueError:
            self._sixstep_min_n = 1 << 16

    @property
    def uses_gl64(self) -> bool:
        """True when transforms run on the numpy Goldilocks kernels."""
        return self._use_gl64

    # -- cached numpy tables -------------------------------------------------

    def _gl64_stages(self, root: int, n: int) -> List[np.ndarray]:
        key = (root, n)
        cached = self._np_stages.get(key)
        if cached is None:
            cached = [
                np.array(tw, dtype=np.uint64)
                for tw in stage_twiddles(self.field.p, root, n)
            ]
            self._np_stages[key] = cached
        else:
            STATS.ntt_plan_hits += 1
        return cached

    def _gl64_rev(self, n: int) -> np.ndarray:
        cached = self._np_rev.get(n)
        if cached is None:
            cached = gl64.bit_reverse_indices(n)
            self._np_rev[n] = cached
        else:
            STATS.ntt_plan_hits += 1
        return cached

    def _gl64_powers(self, base: int, n: int) -> np.ndarray:
        key = (base, n)
        cached = self._np_powers.get(key)
        if cached is None:
            cached = np.array(power_table(self.field.p, base, n), dtype=np.uint64)
            self._np_powers[key] = cached
        else:
            STATS.ntt_plan_hits += 1
        return cached

    def _gl64_scale_rev(self, base: int, n: int) -> np.ndarray:
        """Coset power table pre-permuted by bit-reversal, for the fused
        gather-and-scale entry of :func:`repro.field.gl64.ntt`."""
        key = (base, n)
        cached = self._np_scale_rev.get(key)
        if cached is None:
            cached = self._gl64_powers(base, n)[self._gl64_rev(n)]
            self._np_scale_rev[key] = cached
        else:
            STATS.ntt_plan_hits += 1
        return cached

    def _gl64_post_scale(self, base: int, n: int, scalar: int) -> np.ndarray:
        """Cached ``scalar * base^i`` vector — the inverse-transform's
        ``1/n`` and inverse-coset scalings fused into one multiply pass."""
        key = (base, n, scalar)
        cached = self._np_post_scale.get(key)
        if cached is None:
            cached = np.array(
                scaled_power_table(self.field.p, base, n, scalar),
                dtype=np.uint64,
            )
            self._np_post_scale[key] = cached
        else:
            STATS.ntt_plan_hits += 1
        return cached

    def _gl64_sixstep(self, root: int, n: int, shift: int) -> gl64.SixStepPlan:
        key = (root, n, shift)
        cached = self._np_sixstep.get(key)
        if cached is None:
            cached = gl64.build_sixstep_plan(root, n, shift)
            self._np_sixstep[key] = cached
        else:
            STATS.ntt_plan_hits += 1
        return cached

    def _gl64_ntt(self, vec: np.ndarray, root: int) -> np.ndarray:
        n = int(vec.shape[-1])
        if n == 1:
            return vec.copy()
        if vec.ndim == 1 and n >= self._sixstep_min_n:
            return gl64.sixstep_ntt(vec, self._gl64_sixstep(root, n, 1))
        return gl64.ntt(vec, self._gl64_stages(root, n), self._gl64_rev(n))

    def _gl64_coset_ntt(self, vec: np.ndarray, root: int, shift: int) -> np.ndarray:
        """Coset NTT with the shift scaling fused into the input gather
        (radix-2) or the inner stages (six-step) — never a separate pass."""
        n = int(vec.shape[-1])
        if n == 1:
            return vec.copy()
        if vec.ndim == 1 and n >= self._sixstep_min_n:
            return gl64.sixstep_ntt(vec, self._gl64_sixstep(root, n, shift))
        return gl64.ntt(
            vec,
            self._gl64_stages(root, n),
            self._gl64_rev(n),
            scale_rev=self._gl64_scale_rev(shift, n),
        )

    # -- vector-native transforms -------------------------------------------
    #
    # These accept and return backend vectors (numpy arrays on Goldilocks,
    # lists elsewhere) without converting elements through Python ints.

    def _pad_vec(self, vec, n: int):
        if len(vec) == n:
            return vec
        if len(vec) > n:
            raise ValueError("polynomial degree exceeds domain size")
        if isinstance(vec, np.ndarray):
            out = np.zeros(n, dtype=np.uint64)
            out[: len(vec)] = vec
            return out
        return list(vec) + [0] * (n - len(vec))

    def lagrange_to_coeff_vec(self, evals):
        """Interpolate base-domain evaluations; backend vector in and out."""
        if len(evals) != self.n:
            raise ValueError("expected %d evaluations, got %d" % (self.n, len(evals)))
        faults.maybe_inject("ntt")
        STATS.ntt_base += 1
        if self._use_gl64:
            vec = gl64.from_ints(evals)
            out = self._gl64_ntt(vec, self.field.inv(self.omega))
            return gl64.mul(out, self.field.inv(self.n))
        return intt(self.field, evals, self.omega)

    def coeff_to_lagrange_vec(self, coeffs):
        """Evaluate a coefficient vector over the base domain."""
        STATS.ntt_base += 1
        padded = self._pad_vec(coeffs, self.n)
        if self._use_gl64:
            return self._gl64_ntt(gl64.from_ints(padded), self.omega)
        return ntt(self.field, padded, self.omega)

    def coeff_to_extended_vec(self, coeffs):
        """Evaluate a coefficient vector over the extended coset domain."""
        STATS.ntt_extended += 1
        padded = self._pad_vec(coeffs, self.extended_n)
        if self._use_gl64:
            return self._gl64_coset_ntt(
                gl64.from_ints(padded), self.extended_omega, self.coset_shift
            )
        return coset_ntt(self.field, padded, self.extended_omega, self.coset_shift)

    def extended_to_coeff_vec(self, evals):
        """Interpolate extended-coset evaluations back to coefficients."""
        STATS.ntt_extended += 1
        if len(evals) != self.extended_n:
            raise ValueError(
                "expected %d evaluations, got %d" % (self.extended_n, len(evals))
            )
        if self._use_gl64:
            vec = gl64.from_ints(evals)
            out = self._gl64_ntt(vec, self.field.inv(self.extended_omega))
            # 1/n and the inverse coset powers land in one fused pass
            return gl64.mul(
                out,
                self._gl64_post_scale(
                    self.field.inv(self.coset_shift),
                    self.extended_n,
                    self.field.inv(self.extended_n),
                ),
            )
        return coset_intt(self.field, evals, self.extended_omega, self.coset_shift)

    # -- batch transforms ----------------------------------------------------

    def lagrange_to_coeff_rows(self, mat: np.ndarray) -> np.ndarray:
        """Interpolate ``m`` base-domain columns in one batched kernel call.

        Goldilocks only: ``mat`` is an ``(m, n)`` ``uint64`` matrix whose
        rows are column evaluation vectors.  One batched inverse NTT (with
        the ``1/n`` scaling fused into the input gather — exact by
        linearity of the transform) replaces ``m`` per-column calls; the
        ``ntt_base`` counter is bumped by ``m`` so operation counts stay
        comparable with the per-column path.
        """
        if not self._use_gl64:
            raise TypeError("lagrange_to_coeff_rows requires the Goldilocks backend")
        if mat.ndim != 2 or mat.shape[1] != self.n:
            raise ValueError(
                "expected an (m, %d) matrix, got shape %r" % (self.n, mat.shape)
            )
        faults.maybe_inject("ntt")
        rows = mat.shape[0]
        STATS.ntt_base += rows
        if rows == 0:
            return mat.copy()
        if self.n == 1:
            return mat.copy()
        return gl64.ntt(
            mat,
            self._gl64_stages(self.field.inv(self.omega), self.n),
            self._gl64_rev(self.n),
            scale_rev=np.uint64(self.field.inv(self.n)),
        )

    def lagrange_to_coeff_batch(self, columns: Sequence) -> List:
        """Interpolate many base-domain columns (backend vectors out)."""
        if self._use_gl64 and columns:
            mat = np.stack([gl64.from_ints(col) for col in columns])
            return list(self.lagrange_to_coeff_rows(mat))
        return [self.lagrange_to_coeff_vec(col) for col in columns]

    def coeff_to_extended_batch(self, polys: Sequence) -> List:
        """Extend many coefficient vectors to the extended coset."""
        return [self.coeff_to_extended_vec(poly) for poly in polys]

    # -- extended-coset part decomposition -----------------------------------
    #
    # Extended-domain index ``j`` splits as ``j = t * extension + r``: the
    # evaluation point ``shift * w_E^j`` equals ``(shift * w_E^r) * omega^t``
    # because ``w_E^extension == omega`` (both are powers of the same
    # generator).  Part ``r`` of a polynomial's extended evaluations is
    # therefore a *base-size* coset NTT with shift ``shift * w_E^r`` — the
    # quotient phase streams over parts, never materializing per-column
    # extended vectors, and Z_H is a scalar on each part.

    def extended_part_shifts(self) -> List[int]:
        """Coset shifts ``coset_shift * extended_omega^r`` per part."""
        if self._part_shifts is None:
            f = self.field
            shifts = []
            acc = self.coset_shift
            for _ in range(self.extension):
                shifts.append(acc)
                acc = f.mul(acc, self.extended_omega)
            self._part_shifts = shifts
        return self._part_shifts

    def coeff_to_extended_part(self, mat: np.ndarray, r: int) -> np.ndarray:
        """Part ``r`` of the extended-coset evaluations of each row of ``mat``.

        ``mat`` is ``(m, n)`` coefficient rows; the result is ``(m, n)``
        evaluations at ``shift_r * omega^t``.  Callers account for
        ``ntt_extended`` themselves (all ``extension`` parts of one column
        together equal one logical extended transform).
        """
        if not self._use_gl64:
            raise TypeError("coeff_to_extended_part requires the Goldilocks backend")
        return self._gl64_coset_ntt(mat, self.omega, self.extended_part_shifts()[r])

    def vanishing_part_inverses(self) -> List[int]:
        """``1 / Z_H`` per extended-coset part (a scalar on each part).

        ``Z_H(shift_r * omega^t) = shift^n * w_E^(n*r) - 1`` is independent
        of ``t`` since ``omega^n = 1``, so the vanishing division in the
        quotient phase is one scalar multiply per part instead of a
        full-width vector multiply against a batch-inverted table.
        """
        if self._part_invs is None:
            f = self.field
            acc = f.pow(self.coset_shift, self.n)
            w_ext_n = f.pow(self.extended_omega, self.n)
            invs = []
            for _ in range(self.extension):
                invs.append(f.inv(f.sub(acc, 1)))
                acc = f.mul(acc, w_ext_n)
            self._part_invs = invs
        return self._part_invs

    # -- transforms (int-list API, kept for callers outside the prover) ------

    def lagrange_to_coeff(self, evals: Sequence[int]) -> List[int]:
        """Interpolate evaluations over the base domain into coefficients."""
        return self.backend.to_ints(self.lagrange_to_coeff_vec(evals))

    def coeff_to_lagrange(self, coeffs: Sequence[int]) -> List[int]:
        """Evaluate a coefficient vector over the base domain."""
        return self.backend.to_ints(self.coeff_to_lagrange_vec(coeffs))

    def coeff_to_extended(self, coeffs: Sequence[int]) -> List[int]:
        """Evaluate a coefficient vector over the extended coset domain."""
        return self.backend.to_ints(self.coeff_to_extended_vec(coeffs))

    def extended_to_coeff(self, evals: Sequence[int]) -> List[int]:
        """Interpolate extended-coset evaluations back to coefficients."""
        return self.backend.to_ints(self.extended_to_coeff_vec(evals))

    # -- vanishing polynomial ------------------------------------------------

    def vanishing_eval(self, x: int) -> int:
        """Evaluate ``Z_H(X) = X^n - 1`` at a point."""
        return self.field.sub(self.field.pow(x, self.n), 1)

    def vanishing_on_extended(self) -> List[int]:
        """Evaluations of ``Z_H`` over the extended coset (all nonzero)."""
        if self._vanishing is None:
            field = self.field
            p = field.p
            shift_n = field.pow(self.coset_shift, self.n)
            omega_ext_n = field.pow(self.extended_omega, self.n)
            out = []
            acc = shift_n
            for _ in range(self.extended_n):
                out.append(acc - 1 if acc else p - 1)
                acc = acc * omega_ext_n % p
            self._vanishing = out
        return list(self._vanishing)

    def vanishing_inverse_vec(self):
        """Cached batch inverse of ``Z_H`` on the extended coset."""
        if self._inv_vanishing_vec is None:
            inv = self.field.batch_inv(self.vanishing_on_extended())
            self._inv_vanishing_vec = self.backend.from_ints(inv)
        return self._inv_vanishing_vec

    def rotate(self, x: int, rotation: int) -> int:
        """Multiply a point by ``omega^rotation`` (for shifted openings)."""
        power = self._rotation_cache.get(rotation)
        if power is None:
            if rotation >= 0:
                power = self.field.pow(self.omega, rotation)
            else:
                power = self.field.inv(self.field.pow(self.omega, -rotation))
            self._rotation_cache[rotation] = power
        return self.field.mul(x, power)
