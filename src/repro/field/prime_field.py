"""Prime-field arithmetic.

Field elements are plain Python ints reduced mod ``p``.  A
:class:`PrimeField` carries the modulus together with the data the NTT and
the proving system need: a multiplicative generator, the field's
two-adicity, and the corresponding ``2^two_adicity``-th root of unity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Sequence


@lru_cache(maxsize=4096)
def _cached_inv(p: int, a: int) -> int:
    return pow(a, p - 2, p)


@dataclass(frozen=True)
class PrimeField:
    """A prime field F_p with NTT support.

    Attributes:
        name: Human-readable field name.
        p: The prime modulus.
        generator: A multiplicative generator of F_p*.
        two_adicity: Largest ``s`` with ``2^s | p - 1``.
    """

    name: str
    p: int
    generator: int
    two_adicity: int
    _root_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.p < 3:
            raise ValueError("modulus must be an odd prime")
        if (self.p - 1) % (1 << self.two_adicity):
            raise ValueError("two_adicity does not divide p - 1")

    # -- scalar operations -------------------------------------------------

    def reduce(self, a: int) -> int:
        """Reduce an arbitrary int into ``[0, p)``."""
        return a % self.p

    def add(self, a: int, b: int) -> int:
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        return self.p - a if a else 0

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def square(self, a: int) -> int:
        return a * a % self.p

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on zero.

        Backed by a small LRU: the prover inverts the same handful of
        constants (``n``, roots of unity, coset shifts) over and over.
        """
        if a == 0:
            raise ZeroDivisionError("inverse of zero in %s" % self.name)
        return _cached_inv(self.p, a)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # -- vector operations -------------------------------------------------

    def batch_inv(self, values: Sequence[int]) -> List[int]:
        """Invert many nonzero elements with a single field inversion.

        Montgomery's trick: prefix products, one inversion, then unwind.
        """
        n = len(values)
        if n == 0:
            return []
        prefix = [0] * n
        acc = 1
        for i, v in enumerate(values):
            if v == 0:
                raise ZeroDivisionError("batch_inv of zero at index %d" % i)
            prefix[i] = acc
            acc = acc * v % self.p
        inv_acc = self.inv(acc)
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = inv_acc * prefix[i] % self.p
            inv_acc = inv_acc * values[i] % self.p
        return out

    # -- roots of unity ----------------------------------------------------

    def root_of_unity(self, k: int) -> int:
        """A primitive ``2^k``-th root of unity."""
        if k > self.two_adicity:
            raise ValueError(
                "field %s has two-adicity %d < %d" % (self.name, self.two_adicity, k)
            )
        cached = self._root_cache.get(k)
        if cached is not None:
            return cached
        exponent = (self.p - 1) >> k
        root = pow(self.generator, exponent, self.p)
        self._root_cache[k] = root
        return root

    # -- encoding of signed fixed-point values ------------------------------

    def encode_signed(self, v: int) -> int:
        """Map a signed integer to the field (negatives wrap to ``p - |v|``)."""
        return v % self.p

    def decode_signed(self, a: int) -> int:
        """Map a field element back to a signed integer, centered at zero."""
        return a - self.p if a > self.p // 2 else a


GOLDILOCKS = PrimeField(
    name="goldilocks",
    p=(1 << 64) - (1 << 32) + 1,
    generator=7,
    two_adicity=32,
)

BN254_FR = PrimeField(
    name="bn254-fr",
    p=21888242871839275222246405745257275088548364400416034343698204186575808495617,
    generator=5,
    two_adicity=28,
)

_FIELDS = {f.name: f for f in (GOLDILOCKS, BN254_FR)}


def field_by_name(name: str) -> PrimeField:
    """Look up a predefined field by name ('goldilocks' or 'bn254-fr')."""
    try:
        return _FIELDS[name]
    except KeyError:
        raise KeyError(
            "unknown field %r; available: %s" % (name, sorted(_FIELDS))
        ) from None
