"""Command-line interface (the paper's "simple bash interface", §4.1).

Subcommands:

- ``zkml models``                       — list the zoo.
- ``zkml inspect --model NAME``         — circuit statistics for a model.
- ``zkml optimize --model NAME``        — run the layout optimizer.
- ``zkml prove --model NAME``           — prove one inference of a mini
  model, writing proof/vk artifacts.
- ``zkml verify --artifact FILE``       — verify a saved proof artifact.
- ``zkml bench``                        — benchmark the prover on mini
  models and write ``BENCH_prover.json``.
- ``zkml transpile --flat FILE``        — import a tflite-like flat JSON
  model and report its circuit statistics.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys

import numpy as np

from repro.compiler import build_physical_layout
from repro.layers.base import LayoutChoices
from repro.model import get_model, model_names, transpile
from repro.optimizer import PROFILES
from repro.runtime import estimate_model, prove_model, verify_model_proof


def _cmd_models(args) -> int:
    for name in model_names():
        paper = get_model(name, "paper")
        print("%-10s %12d params %16d flops" % (name, paper.param_count(),
                                                paper.flops()))
    return 0


def _describe_spec(spec, num_cols: int, scale_bits: int) -> None:
    layout = build_physical_layout(spec, LayoutChoices(), num_cols,
                                   scale_bits=scale_bits)
    print("model:          ", spec.name)
    print("layers:         ", len(spec.layers))
    print("parameters:     ", "{:,}".format(spec.param_count()))
    print("flops:          ", "{:,}".format(spec.flops()))
    print("grid (at %d cols):" % num_cols,
          "2^%d rows (%s gadget rows, %s table rows)"
          % (layout.k, "{:,}".format(layout.gadget_rows),
             "{:,}".format(layout.table_rows)))
    print("lookup args:    ", layout.num_lookups)
    print("selectors:      ", layout.num_selectors)
    print("fixed columns:  ", layout.num_fixed,
          "(%d weight columns)" % layout.num_weight_columns)
    print("constraint deg: ", layout.d_max)


def _cmd_inspect(args) -> int:
    spec = get_model(args.model, args.scale)
    _describe_spec(spec, args.columns, args.scale_bits)
    if args.per_layer:
        from repro.compiler import render_breakdown

        layout = build_physical_layout(spec, LayoutChoices(), args.columns,
                                       scale_bits=args.scale_bits)
        print()
        print(render_breakdown(layout))
    return 0


def _cmd_transpile(args) -> int:
    with open(args.flat) as f:
        flat = json.load(f)
    spec = transpile(flat)
    print("transpiled %r: %d layers, all kinds supported" %
          (spec.name, len(spec.layers)))
    _describe_spec(spec, args.columns, args.scale_bits)
    return 0


def _cmd_optimize(args) -> int:
    hardware = PROFILES[args.hardware] if args.hardware else None
    est = estimate_model(
        args.model,
        scheme_name=args.backend,
        scale_bits=args.scale_bits,
        hardware=hardware,
        objective=args.objective,
        include_freivalds=args.freivalds,
    )
    print("model:        ", est.model)
    print("backend:      ", est.scheme_name)
    print("hardware:     ", est.hardware)
    print("layout:       ", "%d columns x 2^%d rows" % (est.num_cols, est.k))
    print("plan:         ", est.result.layout.plan)
    print("est. proving: ", "%.2f s" % est.proving_seconds)
    print("est. verify:  ", "%.4f s" % est.verification_seconds)
    print("est. proof:   ", "%d bytes" % est.proof_bytes)
    print("optimizer ran:", "%.2f s over %d layouts"
          % (est.optimizer_seconds, len(est.result.candidates)))
    return 0


def _cmd_prove(args) -> int:
    spec = get_model(args.model, "mini")
    rng = np.random.default_rng(args.seed)
    inputs = {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }
    result = prove_model(spec, inputs, scheme_name=args.backend,
                         num_cols=args.columns, scale_bits=args.scale_bits,
                         jobs=args.jobs)
    verify_seconds = result.verification_seconds()
    print("model:       ", result.spec_name)
    print("backend:     ", result.scheme_name)
    print("grid:        ", "%d columns x 2^%d rows" % (result.num_cols, result.k))
    print("keygen:      ", "%.2f s" % result.keygen_seconds)
    print("proving:     ", "%.2f s" % result.proving_seconds)
    print("verification:", "%.4f s" % verify_seconds)
    print("proof size:  ", "%d bytes (modeled)" % result.modeled_proof_bytes)
    if args.profile:
        print("prover phase breakdown:")
        total = sum(result.phase_seconds.values())
        for phase, secs in sorted(result.phase_seconds.items(),
                                  key=lambda kv: -kv[1]):
            share = 100.0 * secs / total if total else 0.0
            print("  %-10s %8.3f s  %5.1f%%" % (phase, secs, share))
    if args.out:
        with open(args.out, "wb") as f:
            pickle.dump(
                {"vk": result.vk, "proof": result.proof,
                 "instance": result.instance,
                 "scheme": result.scheme_name}, f,
            )
        print("artifact:    ", args.out)
    return 0


def _cmd_bench(args) -> int:
    from repro.perf.bench import DEFAULT_MODELS, run_bench

    run_bench(
        models=args.models or DEFAULT_MODELS,
        scheme_name=args.backend,
        jobs=args.jobs,
        seed=args.seed,
        output_path=args.out or None,
    )
    return 0


def _cmd_verify(args) -> int:
    with open(args.artifact, "rb") as f:
        artifact = pickle.load(f)
    ok = verify_model_proof(artifact["vk"], artifact["proof"],
                            artifact["instance"], artifact["scheme"])
    print("verification:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="zkml",
        description="ZKML: an optimizing compiler from ML models to "
                    "ZK-SNARK circuits (EuroSys '24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list zoo models").set_defaults(
        func=_cmd_models)

    inspect = sub.add_parser("inspect", help="circuit statistics for a model")
    inspect.add_argument("--model", required=True, choices=model_names())
    inspect.add_argument("--scale", default="paper", choices=["paper", "mini"])
    inspect.add_argument("--columns", type=int, default=16)
    inspect.add_argument("--scale-bits", type=int, default=8)
    inspect.add_argument("--per-layer", action="store_true",
                         help="print the per-layer row budget")
    inspect.set_defaults(func=_cmd_inspect)

    transpile_cmd = sub.add_parser(
        "transpile", help="import a tflite-like flat JSON model")
    transpile_cmd.add_argument("--flat", required=True)
    transpile_cmd.add_argument("--columns", type=int, default=16)
    transpile_cmd.add_argument("--scale-bits", type=int, default=8)
    transpile_cmd.set_defaults(func=_cmd_transpile)

    opt = sub.add_parser("optimize", help="optimize a circuit layout")
    opt.add_argument("--model", required=True, choices=model_names())
    opt.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    opt.add_argument("--objective", default="time", choices=["time", "size"])
    opt.add_argument("--scale-bits", type=int, default=12)
    opt.add_argument("--hardware", choices=sorted(PROFILES), default=None)
    opt.add_argument("--freivalds", action="store_true",
                     help="allow the Freivalds matmul layout")
    opt.set_defaults(func=_cmd_optimize)

    prove = sub.add_parser("prove", help="prove a mini-model inference")
    prove.add_argument("--model", required=True, choices=model_names())
    prove.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    prove.add_argument("--columns", type=int, default=10)
    prove.add_argument("--scale-bits", type=int, default=5)
    prove.add_argument("--seed", type=int, default=0)
    prove.add_argument("--out", default=None, help="artifact output path")
    prove.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the prover "
                            "(default: ZKML_JOBS env, else serial)")
    prove.add_argument("--profile", action="store_true",
                       help="print the prover's per-phase time breakdown")
    prove.set_defaults(func=_cmd_prove)

    bench = sub.add_parser(
        "bench", help="benchmark the prover on mini zoo models")
    bench.add_argument("--models", nargs="+", default=None,
                       choices=model_names(),
                       help="models to prove (default: dlrm mnist twitter)")
    bench.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    bench.add_argument("--jobs", type=int, default=None)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_prover.json",
                       help="report path ('' to skip writing)")
    bench.set_defaults(func=_cmd_bench)

    verify = sub.add_parser("verify", help="verify a proof artifact")
    verify.add_argument("--artifact", required=True)
    verify.set_defaults(func=_cmd_verify)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
