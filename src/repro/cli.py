"""Command-line interface (the paper's "simple bash interface", §4.1).

Subcommands:

- ``zkml models``                       — list the zoo.
- ``zkml inspect --model NAME``         — circuit statistics for a model
  (``--json`` for machine-readable output).
- ``zkml optimize --model NAME``        — run the layout optimizer.
- ``zkml prove --model NAME``           — prove one inference of a mini
  model, writing proof/vk artifacts (``--envelope PATH`` for the raw
  canonical proof envelope, ``--registry DIR`` to publish the
  verifying key).
- ``zkml verify``                       — verify a saved proof artifact
  (``--artifact``) or a raw ``zkml-proof-envelope/v1`` (``--envelope``,
  resolving the verifying key through ``--registry``); exit 3 = the
  envelope's key is absent from the registry.
- ``zkml registry publish|list|check``  — the content-addressed,
  checksummed verifying-key registry backing envelope verification.
- ``zkml verify-serve``                 — run the hardened envelope
  verification service on a unix socket: per-request caps, load
  shedding, deadlines, batch verification, verdicts by typed cause.
- ``zkml diagnose --model NAME``        — mock-verify a mini model with
  region-attributed failure reports (``--tamper-row`` breaks a cell;
  exit 2 = constraints failed, exit 1 = operational error).
- ``zkml profile --model NAME``         — prove once under full
  observability and attribute rows / cells / copies / wall-time to
  individual model layers; writes a JSON report plus Chrome-trace and
  flamegraph siblings.
- ``zkml calibrate``                    — microbenchmark this machine,
  fit the §7.4 cost curves, and write a hardware profile JSON the
  optimizer loads via ``--hardware`` or ``$ZKML_HW_PROFILE``.
- ``zkml bench``                        — benchmark the prover on mini
  models and write ``BENCH_prover.json`` (``--quick`` for CI smoke;
  ``--compare BASELINE.json`` gates on regressions).
- ``zkml chaos``                        — run the fault-injection matrix
  (every site must recover or surface a typed error) and, with
  ``--fuzz N``, the proof-mutation fuzz loop.
- ``zkml transpile --flat FILE``        — import a tflite-like flat JSON
  model and report its circuit statistics.
- ``zkml serve``                        — run the batch-aware proving
  service on a unix socket (``--smoke N`` runs the in-process load test
  instead and asserts coalescing happened; ``--fault`` adds a poisoned
  request and asserts the flight recorder dumped).
- ``zkml submit``                       — send proof requests to a
  running ``zkml serve`` socket; exits 1 on failed requests, 2 when a
  proof came back unverified.
- ``zkml top``                          — live operator dashboard for a
  running ``zkml serve`` (``--once --json`` for scripting).

Observability flags available on every subcommand: ``--trace PATH``
(span tree, Chrome trace_event JSON or ``.jsonl``; the ``ZKML_TRACE``
environment variable is the flag's default), ``--metrics PATH``
(Prometheus text format), ``-v`` / ``--quiet`` for log verbosity
(``ZKML_LOG_LEVEL`` also applies).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time

import numpy as np

from repro.compiler import build_physical_layout
from repro.halo2.proof import proof_from_bytes, proof_to_bytes
from repro.layers.base import LayoutChoices
from repro.model import get_model, model_names, transpile
from repro.obs import log as obs_log
from repro.obs.metrics import (
    MetricsRegistry,
    record_circuit_stats,
    render_predicted_vs_actual,
)
from repro.obs.trace import Tracer, use_tracer
from repro.optimizer import resolve_profile
from repro.resilience import events, faults
from repro.resilience.errors import (
    ProofFormatError,
    ResilienceError,
    UnknownVerifyingKeyError,
    VerificationFailure,
)
from repro.runtime import estimate_model, prove_model, verify_model_proof

log = obs_log.get_logger("cli")


def _cmd_models(args) -> int:
    for name in model_names():
        paper = get_model(name, "paper")
        log.info("%-10s %12d params %16d flops", name, paper.param_count(),
                 paper.flops())
    return 0


def _describe_spec(spec, num_cols: int, scale_bits: int) -> None:
    layout = build_physical_layout(spec, LayoutChoices(), num_cols,
                                   scale_bits=scale_bits)
    log.info("model:           %s", spec.name)
    log.info("layers:          %d", len(spec.layers))
    log.info("parameters:      %s", "{:,}".format(spec.param_count()))
    log.info("flops:           %s", "{:,}".format(spec.flops()))
    log.info("grid (at %d cols): 2^%d rows (%s gadget rows, %s table rows)",
             num_cols, layout.k, "{:,}".format(layout.gadget_rows),
             "{:,}".format(layout.table_rows))
    log.info("lookup args:     %d", layout.num_lookups)
    log.info("selectors:       %d", layout.num_selectors)
    log.info("fixed columns:   %d (%d weight columns)", layout.num_fixed,
             layout.num_weight_columns)
    log.info("constraint deg:  %d", layout.d_max)


def _inspect_info(spec, scale: str, num_cols: int, scale_bits: int) -> dict:
    """The machine-readable form of ``zkml inspect`` (``--json``)."""
    layout = build_physical_layout(spec, LayoutChoices(), num_cols,
                                   scale_bits=scale_bits)
    info = {
        "model": spec.name,
        "scale": scale,
        "layers": len(spec.layers),
        "parameters": spec.param_count(),
        "flops": spec.flops(),
        "layout": {
            "k": layout.k,
            "num_cols": num_cols,
            "rows": 1 << layout.k,
            "gadget_rows": layout.gadget_rows,
            "table_rows": layout.table_rows,
            "num_lookups": layout.num_lookups,
            "num_selectors": layout.num_selectors,
            "num_fixed": layout.num_fixed,
            "num_weight_columns": layout.num_weight_columns,
            "d_max": layout.d_max,
            "per_layer_rows": dict(layout.per_layer_rows),
        },
    }
    if spec.materialized:
        # Mini models can be synthesized for exact cell/row counters — the
        # circuit structure is input-independent, so zeros suffice.  These
        # are the same counters ``zkml prove --metrics`` records.
        from repro.compiler import synthesize_model

        synthesized = synthesize_model(
            spec,
            {name: np.zeros(shape) for name, shape in spec.inputs.items()},
            num_cols=num_cols, scale_bits=scale_bits,
        )
        # expose outputs exactly like prove_model does, so the instance
        # cell and copy-constraint counters match a prove run's metrics
        for name in spec.outputs:
            synthesized.builder.expose(synthesized.outputs[name].entries())
        registry = MetricsRegistry()
        record_circuit_stats(registry, synthesized, model=spec.name)
        info["metrics"] = registry.as_dict()
    return info


def _cmd_inspect(args) -> int:
    spec = get_model(args.model, args.scale)
    if args.json:
        print(json.dumps(_inspect_info(spec, args.scale, args.columns,
                                       args.scale_bits),
                         indent=2, sort_keys=True))
        return 0
    _describe_spec(spec, args.columns, args.scale_bits)
    if args.per_layer:
        from repro.compiler import render_breakdown

        layout = build_physical_layout(spec, LayoutChoices(), args.columns,
                                       scale_bits=args.scale_bits)
        log.info("")
        log.info("%s", render_breakdown(layout))
    return 0


def _cmd_transpile(args) -> int:
    with open(args.flat) as f:
        flat = json.load(f)
    spec = transpile(flat)
    log.info("transpiled %r: %d layers, all kinds supported",
             spec.name, len(spec.layers))
    _describe_spec(spec, args.columns, args.scale_bits)
    return 0


def _cmd_optimize(args) -> int:
    # a built-in name, a calibrated-profile JSON path, $ZKML_HW_PROFILE,
    # or the paper's per-model default — in that order
    hardware = resolve_profile(args.hardware, model_name=args.model)
    est = estimate_model(
        args.model,
        scheme_name=args.backend,
        scale_bits=args.scale_bits,
        hardware=hardware,
        objective=args.objective,
        include_freivalds=args.freivalds,
    )
    log.info("model:         %s", est.model)
    log.info("backend:       %s", est.scheme_name)
    log.info("hardware:      %s", est.hardware)
    log.info("layout:        %d columns x 2^%d rows", est.num_cols, est.k)
    log.info("plan:          %s", est.result.layout.plan)
    log.info("est. proving:  %.2f s", est.proving_seconds)
    log.info("est. verify:   %.4f s", est.verification_seconds)
    log.info("est. proof:    %d bytes", est.proof_bytes)
    log.info("optimizer ran: %.2f s over %d layouts",
             est.optimizer_seconds, len(est.result.candidates))
    return 0


def _cmd_prove(args) -> int:
    spec = get_model(args.model, "mini")
    rng = np.random.default_rng(args.seed)
    inputs = {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }
    result = prove_model(spec, inputs, scheme_name=args.backend,
                         num_cols=args.columns, scale_bits=args.scale_bits,
                         jobs=args.jobs, metrics=args.obs_registry,
                         checkpoint_dir=args.checkpoint, resume=args.resume)
    verify_seconds = result.verification_seconds()
    log.info("model:        %s", result.spec_name)
    log.info("backend:      %s", result.scheme_name)
    log.info("grid:         %d columns x 2^%d rows", result.num_cols, result.k)
    log.info("keygen:       %.2f s", result.keygen_seconds)
    log.info("proving:      %.2f s", result.proving_seconds)
    log.info("verification: %.4f s", verify_seconds)
    log.info("proof size:   %d bytes (modeled)", result.modeled_proof_bytes)
    if args.profile:
        log.info("prover phase breakdown:")
        total = sum(result.phase_seconds.values())
        for phase, secs in sorted(result.phase_seconds.items(),
                                  key=lambda kv: -kv[1]):
            share = 100.0 * secs / total if total else 0.0
            log.info("  %-10s %8.3f s  %5.1f%%", phase, secs, share)
        log.info("cost model, predicted vs actual:")
        log.info("%s",
                 render_predicted_vs_actual(result.predicted_vs_actual()))
    envelope = None
    if args.out or args.envelope or args.registry:
        envelope = result.envelope()
    if args.out:
        # "envelope" is the canonical wire form (`zkml verify` runs it
        # through the bounds-checked decoder); "proof_bytes"/"proof"
        # stay for older readers of the loose format
        with open(args.out, "wb") as f:
            pickle.dump(
                {"vk": result.vk, "proof": result.proof,
                 "proof_bytes": proof_to_bytes(result.proof),
                 "envelope": envelope.encode(),
                 "instance": result.instance,
                 "scheme": result.scheme_name}, f,
            )
        log.info("artifact:     %s", args.out)
    if args.envelope:
        data = envelope.encode()
        with open(args.envelope, "wb") as f:
            f.write(data)
        log.info("envelope:     %s (%d bytes, vk %s...)", args.envelope,
                 len(data), envelope.vk_hash_hex[:16])
    if args.registry:
        from repro.registry import VKRegistry

        entry, created = VKRegistry(args.registry).publish(
            result.vk, envelope.model, envelope.config_digest)
        log.info("registry:     %s %s (vk %s...)", args.registry,
                 "published" if created else "already present",
                 entry.vk_hash[:16])
    return 0


def _cmd_diagnose(args) -> int:
    from repro.obs.diagnose import diagnose_model

    spec = get_model(args.model, "mini")
    rng = np.random.default_rng(args.seed)
    inputs = {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }
    report = diagnose_model(
        spec, inputs, num_cols=args.columns, scale_bits=args.scale_bits,
        tamper_row=args.tamper_row, tamper_col=args.tamper_col,
        max_failures=args.max_failures,
    )
    log.info("%s", report.render())
    # exit 2 is the stable "constraints failed" code (CI greps for it);
    # operational errors keep exiting 1 via the ResilienceError handler
    return 0 if report.ok else 2


def _sibling_path(path: str, suffix: str) -> str:
    root, _ = os.path.splitext(path)
    return root + suffix


def _cmd_profile(args) -> int:
    from repro.obs.profile import profile_model

    spec = get_model(args.model, "mini")
    rng = np.random.default_rng(args.seed)
    inputs = {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }
    report, tracer, _ = profile_model(
        spec, inputs, scheme_name=args.backend, num_cols=args.columns,
        scale_bits=args.scale_bits, jobs=args.jobs,
        registry=args.obs_registry,
    )
    for line in report.render(top=args.top).splitlines():
        log.info("%s", line)
    out = args.out or "PROFILE_%s.json" % args.model
    report.write(out)
    trace_path = _sibling_path(out, ".trace.json")
    folded_path = _sibling_path(out, ".folded")
    tracer.write(trace_path)
    tracer.write(folded_path)
    log.info("report:       %s", out)
    log.info("trace:        %s (chrome://tracing)", trace_path)
    log.info("flamegraph:   %s (flamegraph.pl folded stacks)", folded_path)
    if report.attributed_rows() != report.rows_used:
        log.error("attribution lost rows: %d attributed vs %d used",
                  report.attributed_rows(), report.rows_used)
        return 1
    return 0


def _cmd_calibrate(args) -> int:
    from repro.optimizer import calibrate_hardware, probe_drift

    calibration = calibrate_hardware(
        ks=tuple(args.ks), scheme_name=args.backend, name=args.name,
    )
    if args.probe != "none":
        registry = args.obs_registry if args.obs_registry is not None \
            else MetricsRegistry()
        probe_drift(calibration, probe_model=args.probe,
                    registry=registry, seed=args.seed)
    for line in calibration.render().splitlines():
        log.info("%s", line)
    calibration.save(args.out)
    log.info("profile:      %s", args.out)
    log.info("use it:       zkml optimize --hardware %s  "
             "(or export ZKML_HW_PROFILE=%s)", args.out, args.out)
    if calibration.drift and not calibration.drift["improved"]:
        log.warning("calibration did not beat the static default on the "
                    "probe — profile written anyway, inspect the drift "
                    "numbers above")
        if args.strict:
            return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.perf.bench import DEFAULT_MODELS, QUICK_MODELS, run_bench
    from repro.perf.regress import (
        compare_reports,
        load_report,
        parse_thresholds,
    )

    default = QUICK_MODELS if args.quick else DEFAULT_MODELS
    report = run_bench(
        models=args.models or default,
        scheme_name=args.backend,
        jobs=args.jobs,
        seed=args.seed,
        output_path=args.out or None,
        check_parallel=args.check_parallel,
        registry=args.obs_registry,
        mem=args.mem,
    )
    if report.get("parallel_proofs_identical") is False:
        log.error("serial and parallel proof bytes diverge")
        return 1
    if args.compare:
        diff = compare_reports(
            load_report(args.compare), report,
            thresholds=parse_thresholds(args.threshold),
            baseline_path=args.compare,
        )
        for line in diff.render().splitlines():
            (log.error if not diff.ok else log.info)("%s", line)
        if not diff.ok:
            return 1
    return 0


def _registry_vk(registry_dir: str, env):
    """Resolve an envelope's verifying key through the registry.

    Mirrors :class:`~repro.serve.verify_service.VerifyService`: the
    proof statement binds the vk hash and public inputs; the
    model/config metadata is bound against the registry entry the
    prover published, so a relabeled envelope is rejected here too.
    """
    from repro.registry import VKRegistry

    registry = VKRegistry(registry_dir)
    entry = registry.entry(env.vk_hash_hex)
    vk = registry.get(env.vk_hash_hex)
    if (entry.model != env.model
            or entry.config_digest != env.config_digest_hex):
        raise VerificationFailure(
            "envelope metadata (model %r, config %s) does not match "
            "registry entry (model %r, config %s)"
            % (env.model, env.config_digest_hex[:8], entry.model,
               entry.config_digest[:8]), model=env.model)
    return vk


def _verify_envelope_file(args) -> int:
    """``zkml verify --envelope FILE``: decode, resolve vk, verify."""
    from repro.envelope import decode_envelope, verify_envelope

    try:
        with open(args.envelope, "rb") as f:
            data = f.read()
    except OSError as exc:
        log.error("verification: FAILED", envelope=args.envelope,
                  reason="unreadable", detail=str(exc))
        return 1
    if not args.registry:
        log.error("verification: FAILED", envelope=args.envelope,
                  reason="no registry",
                  detail="--envelope needs --registry DIR to resolve "
                         "the verifying key")
        return 1
    try:
        env = decode_envelope(data)
        verify_envelope(env, _registry_vk(args.registry, env))
    except UnknownVerifyingKeyError:
        raise  # exit 3 with the remediation hint, in _cmd_verify
    except ResilienceError as exc:
        fields = {"envelope": args.envelope}
        fields.update(exc.attribution())
        fields.setdefault("detail", exc.args[0] if exc.args else "")
        log.error("verification: FAILED", **fields)
        return 1
    log.info("verification: OK", model=env.model, scheme=env.scheme_name,
             vk_hash=env.vk_hash_hex[:16],
             public_inputs=env.num_public_inputs())
    return 0


def _verify_artifact_file(args) -> int:
    """``zkml verify --artifact FILE``: envelope-carrying or loose."""
    from repro.envelope import decode_envelope, verify_envelope

    try:
        with open(args.artifact, "rb") as f:
            artifact = pickle.load(f)
    except OSError as exc:
        log.error("verification: FAILED", artifact=args.artifact,
                  reason="unreadable", detail=str(exc))
        return 1
    except Exception as exc:  # noqa: BLE001 — corrupt pickle: any crash here is "bad artifact"
        log.error("verification: FAILED", artifact=args.artifact,
                  reason="malformed artifact",
                  detail="%s: %s" % (type(exc).__name__, str(exc)[:120]))
        return 1
    try:
        if not isinstance(artifact, dict):
            raise ProofFormatError("artifact is not a mapping",
                                   found=type(artifact).__name__)
        if artifact.get("envelope"):
            env = decode_envelope(artifact["envelope"])
            if args.registry:
                vk = _registry_vk(args.registry, env)
            elif "vk" in artifact:
                vk = artifact["vk"]
            else:
                raise ProofFormatError(
                    "artifact has an envelope but no 'vk'; pass "
                    "--registry DIR to resolve the key")
            verify_envelope(env, vk)
        else:
            log.warning("artifact carries no proof envelope — loose-proof "
                        "verification is deprecated; re-prove with "
                        "'zkml prove --out' to get one")
            missing = {"vk", "instance", "scheme"} - set(artifact)
            if missing:
                raise ProofFormatError("artifact is missing keys: %s"
                                       % sorted(missing))
            if "proof_bytes" in artifact:
                proof = proof_from_bytes(artifact["proof_bytes"])
            elif "proof" in artifact:
                proof = artifact["proof"]
            else:
                raise ProofFormatError(
                    "artifact carries neither 'proof_bytes' nor 'proof'")
            verify_model_proof(artifact["vk"], proof, artifact["instance"],
                               artifact["scheme"])
    except UnknownVerifyingKeyError:
        raise
    except ResilienceError as exc:
        fields = {"artifact": args.artifact}
        fields.update(exc.attribution())
        fields.setdefault("detail", exc.args[0] if exc.args else "")
        log.error("verification: FAILED", **fields)
        return 1
    log.info("verification: OK")
    return 0


def _cmd_verify(args) -> int:
    """Verify an untrusted artifact or envelope: every failure is typed.

    Exit codes: 0 verified; 1 any verification or operational failure;
    3 the envelope's verifying key is absent from the registry (the
    distinct code lets callers distinguish "publish the key and retry"
    from "this proof is bad").
    """
    try:
        if args.envelope:
            return _verify_envelope_file(args)
        return _verify_artifact_file(args)
    except UnknownVerifyingKeyError as exc:
        fields = dict(exc.attribution())
        fields.setdefault("detail", exc.args[0] if exc.args else "")
        log.error("verification: FAILED", reason="unknown_vk", **fields)
        log.error("hint: publish the key first — zkml registry publish "
                  "--artifact <prove artifact> --registry %s",
                  args.registry or "<DIR>")
        return 3


def _registry_publish(registry, args) -> int:
    from repro.envelope import decode_envelope

    try:
        with open(args.artifact, "rb") as f:
            artifact = pickle.load(f)
    except OSError as exc:
        raise ProofFormatError("artifact is unreadable: %s" % exc,
                               artifact=args.artifact) from exc
    except Exception as exc:  # noqa: BLE001 — corrupt pickle: any crash here is "bad artifact"
        raise ProofFormatError(
            "artifact is malformed: %s: %s"
            % (type(exc).__name__, str(exc)[:120]),
            artifact=args.artifact) from exc
    if not isinstance(artifact, dict) or "vk" not in artifact:
        raise ProofFormatError("artifact does not carry a verifying key",
                               artifact=args.artifact)
    if not artifact.get("envelope"):
        raise ProofFormatError(
            "artifact has no proof envelope binding (model, config) to "
            "the key — re-prove with this build's 'zkml prove --out'",
            artifact=args.artifact)
    env = decode_envelope(artifact["envelope"])
    vk = artifact["vk"]
    if vk.digest() != env.vk_hash:
        raise ProofFormatError(
            "artifact envelope was produced by a different verifying key",
            artifact=args.artifact, envelope_vk=env.vk_hash_hex[:16],
            artifact_vk=vk.digest().hex()[:16])
    entry, created = registry.publish(vk, env.model, env.config_digest)
    log.info("%s vk %s (model=%s scheme=%s config=%s, %d bytes)",
             "published" if created else "already present",
             entry.vk_hash[:16], entry.model, entry.scheme,
             entry.config_digest[:16], entry.size_bytes)
    log.info("registry:     %s", registry.root)
    return 0


def _cmd_registry(args) -> int:
    """``zkml registry publish|list|check`` — the verifying-key store."""
    from repro.registry import VKRegistry

    registry = VKRegistry(args.registry)
    if args.registry_cmd == "publish":
        return _registry_publish(registry, args)
    if args.registry_cmd == "list":
        entries = registry.list_entries()
        if args.json:
            print(json.dumps([e.as_dict() for e in entries], indent=2,
                             sort_keys=True))
            return 0
        if not entries:
            log.info("registry at %s is empty", registry.root)
            return 0
        log.info("%-12s %-6s %-18s %-18s %10s", "model", "scheme",
                 "vk hash", "config digest", "bytes")
        for e in entries:
            log.info("%-12s %-6s %-18s %-18s %10d", e.model, e.scheme,
                     e.vk_hash[:16], e.config_digest[:16], e.size_bytes)
        return 0
    report = registry.check(repair=args.repair)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        log.info("registry check: %d/%d intact%s", report["intact"],
                 report["checked"],
                 " (corrupt entries evicted)" if report["repaired"] else "")
        for item in report["corrupt"]:
            log.error("  corrupt: %s (%s) — %s", item["vk_hash"][:16],
                      item["model"], item["cause"])
    # exit 1 = corrupt entries found (CI greps for it); --repair evicted
    # them, but the keys still need re-publishing to be served again
    return 0 if report["ok"] else 1


def _verify_serve_config(args):
    from repro.envelope import EnvelopeCaps
    from repro.serve import VerifyConfig

    return VerifyConfig(
        caps=EnvelopeCaps(
            max_envelope_bytes=args.max_envelope_mb << 20,
            max_instance_columns=args.max_instance_columns,
            max_public_inputs=args.max_public_inputs,
            max_proof_bytes=args.max_proof_mb << 20,
        ),
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        deadline_seconds=args.deadline,
        telemetry=not args.no_telemetry,
        flight_path=args.flight_recorder or None,
    )


def _cmd_verify_serve(args) -> int:
    import signal

    from repro.registry import VKRegistry
    from repro.serve import VerifyService
    from repro.serve.verify_server import VerifyServer

    registry = VKRegistry(args.registry) if args.registry else None
    if registry is None:
        log.warning("no --registry: every envelope will be rejected "
                    "unknown_vk (a verifier with no trusted keys trusts "
                    "nothing)")
    service = VerifyService(registry=registry,
                            config=_verify_serve_config(args),
                            metrics=args.obs_registry)
    server = VerifyServer(service, args.socket,
                          max_request_bytes=args.max_request_mb << 20)

    def _terminate(signum, frame):
        raise KeyboardInterrupt  # SIGTERM shuts down like Ctrl-C

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("shutting down...")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.stop()
        service.close()
        if service.runtime.enabled and service.runtime.dump_path:
            service.dump_flight(reason="shutdown")
            log.info("flight recorder: %s", service.runtime.dump_path)
    stats = service.stats()
    log.info("verified %d envelopes over %d requests "
             "(%d accepted, %d rejected)", stats["envelopes"],
             stats["requests"], stats["accepted"], stats["rejected"])
    return 0


def _chaos_site(site, spec, inputs, args, baseline_bytes):
    """Run one fault site; returns ``(ok, outcome_text)``.

    A site passes when its fault actually fired and the run either
    recovered with a byte-identical, verifying proof or surfaced a typed
    :class:`ResilienceError`.  Anything else — an untyped escape, a
    diverged proof, or a fault that never triggered — fails the matrix.
    """
    import tempfile

    from repro.perf.pkcache import GLOBAL_PK_CACHE

    extra = {}
    if site == "worker":
        extra["jobs"] = 2  # the worker site only fires on the parallel path
    if site == "freivalds":
        extra["plan"] = LayoutChoices(linear="freivalds")
    if site == "disk_write":
        # the disk_write site only fires inside checkpoint stage writes
        extra["checkpoint_dir"] = tempfile.mkdtemp(prefix="zkml-chaos-")
    # cache_read fires on a pk-cache hit, so keep the baseline's entry
    # warm for it; every other site proves from a cold cache
    if site != "cache_read":
        GLOBAL_PK_CACHE.clear()
    events.reset()
    with faults.use_faults("%s:1" % site) as plan:
        try:
            result = prove_model(spec, inputs, scheme_name=args.backend,
                                 num_cols=args.columns,
                                 scale_bits=args.scale_bits, **extra)
        except ResilienceError as exc:
            if not plan.report().get(site, {}).get("fired"):
                return False, "fault never fired (raised %s anyway)" \
                    % type(exc).__name__
            return True, "surfaced typed %s" % type(exc).__name__
        except Exception as exc:  # noqa: BLE001 — the chaos matrix hunts untyped escapes
            return False, "ESCAPED %s: %s" % (type(exc).__name__,
                                              str(exc)[:100])
    if not plan.report().get(site, {}).get("fired"):
        return False, "fault never fired"
    if proof_to_bytes(result.proof) != baseline_bytes:
        return False, "recovered but proof bytes diverged"
    try:
        verify_model_proof(result.vk, result.proof, result.instance,
                           result.scheme_name)
    except ResilienceError as exc:
        return False, "recovered proof rejected: %s" % type(exc).__name__
    labeled = {k: v for k, v in events.counts().items() if "{" in k and v}
    recovery = ", ".join("%s=%d" % (k, v) for k, v in sorted(labeled.items()))
    return True, "recovered, proof identical (%s)" % (recovery or "no events")


def _cmd_chaos(args) -> int:
    from repro.perf.pkcache import GLOBAL_PK_CACHE
    from repro.resilience.fuzz import run_proof_fuzz

    spec = get_model(args.model, "mini")
    rng = np.random.default_rng(args.seed)
    inputs = {
        name: rng.uniform(-0.5, 0.5, shape)
        for name, shape in spec.inputs.items()
    }
    log.info("chaos: baseline prove (%s, %s, %d cols)", spec.name,
             args.backend, args.columns)
    GLOBAL_PK_CACHE.clear()
    baseline = prove_model(spec, inputs, scheme_name=args.backend,
                           num_cols=args.columns, scale_bits=args.scale_bits)
    verify_model_proof(baseline.vk, baseline.proof, baseline.instance,
                       baseline.scheme_name)
    baseline_bytes = proof_to_bytes(baseline.proof)

    failed = []
    sites = args.sites or list(faults.FAULT_SITES)
    for site in sites:
        ok, outcome = _chaos_site(site, spec, inputs, args, baseline_bytes)
        log.info("  %-11s %-4s %s", site, "ok" if ok else "FAIL", outcome)
        if not ok:
            failed.append(site)

    if args.fuzz:
        from repro.commit import scheme_by_name

        scheme = scheme_by_name(baseline.scheme_name, baseline.vk.field)
        report = run_proof_fuzz(baseline.vk, baseline.proof,
                                baseline.instance, scheme,
                                iterations=args.fuzz, seed=args.seed)
        log.info("fuzz: %s", report.summary())
        if not report.ok:
            failed.append("fuzz")

    if args.envelope_fuzz:
        from repro.resilience.fuzz import (
            local_envelope_checker,
            run_envelope_fuzz,
        )

        report = run_envelope_fuzz(
            baseline.envelope_bytes(),
            local_envelope_checker(baseline.vk),
            iterations=args.envelope_fuzz, seed=args.seed)
        log.info("envelope fuzz: %s", report.summary())
        if not report.ok:
            failed.append("envelope-fuzz")

    if failed:
        log.error("chaos matrix failed: %s", ", ".join(failed))
        return 1
    log.info("chaos matrix: all sites recovered or surfaced typed errors")
    return 0


def _serve_config(args):
    from repro.serve import ServeConfig

    return ServeConfig(
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_flush_seconds=args.flush_ms / 1000.0,
        cluster_workers=max(0, args.workers),
        pk_cache_dir=args.pk_cache_dir,
        max_backlog_batches=args.max_backlog,
        jobs=args.jobs,
        telemetry=not args.no_telemetry,
        worker_telemetry=not args.no_worker_telemetry,
        flight_path=args.flight_recorder or None,
    )


def _smoke_fault(service, spec, args) -> list:
    """``--fault``: force one batch failure and check the postmortem.

    A request whose inputs sit far outside the quantization range fails
    its batch with a typed error; the flight recorder must auto-dump a
    checksummed artifact recording the ``batch_failed`` event."""
    from repro.obs.runtime import verify_flight_dump

    poisoned = {name: np.full(shape, 1e9)
                for name, shape in spec.inputs.items()}
    future = service.submit(spec, poisoned, scheme_name=args.backend,
                            num_cols=args.columns,
                            scale_bits=args.scale_bits)
    try:
        future.result(timeout=300)
        return ["poisoned request unexpectedly proved"]
    except ResilienceError as exc:
        log.info("forced fault surfaced typed %s", type(exc).__name__)
    service.drain(timeout=300)
    path = args.flight_recorder
    if not path or not os.path.exists(path):
        return ["forced fault did not write a flight dump at %r" % path]
    with open(path) as fh:
        artifact = json.load(fh)
    if not verify_flight_dump(artifact):
        return ["flight dump at %s failed its checksum" % path]
    kinds = [event["kind"] for event in artifact["events"]]
    if "batch_failed" not in kinds:
        return ["flight dump is missing the batch_failed event"]
    log.info("flight dump: %s (%d events, checksum ok)", path,
             len(artifact["events"]))
    return []


def _serve_smoke(args) -> int:
    """In-process load test: N concurrent requests must all verify and
    must actually coalesce (the CI serve-smoke job's assertion)."""
    from repro.serve import ProvingService

    spec = get_model(args.model, "mini")
    rng = np.random.default_rng(args.seed)
    registry = args.obs_registry if args.obs_registry is not None \
        else MetricsRegistry()
    failures = []
    with ProvingService(_serve_config(args), metrics=registry) as service:
        if args.fault:
            failures.extend(_smoke_fault(service, spec, args))
        futures = [
            service.submit(
                spec,
                {name: rng.uniform(-0.5, 0.5, shape)
                 for name, shape in spec.inputs.items()},
                scheme_name=args.backend, num_cols=args.columns,
                scale_bits=args.scale_bits,
            )
            for _ in range(args.smoke)
        ]
        responses = [f.result(timeout=300) for f in futures]
        stats = service.stats()
    log.info("serve smoke: %d requests -> %d batches "
             "(mean occupancy %.2f), all verified: %s",
             stats["requests"], stats["batches"], stats["mean_occupancy"],
             all(r.verified for r in responses))
    for response in responses:
        log.debug("request", request_id=response.request_id,
                  batch_id=response.batch_id,
                  batch_size=response.batch_size,
                  padded=response.padded_size,
                  keygen_cache_hit=response.keygen_cache_hit)
    if not all(r.verified for r in responses):
        failures.append("not every proof verified")
    if not stats["batches"]:
        failures.append("serve_batches_total is zero")
    if args.smoke > 1 and args.max_batch > 1 \
            and stats["mean_occupancy"] <= 1.0:
        failures.append("mean batch occupancy %.2f never exceeded 1 — "
                        "requests were not coalesced"
                        % stats["mean_occupancy"])
    if failures:
        log.error("serve smoke failed: %s", "; ".join(failures))
        return 1
    return 0


def _cmd_serve(args) -> int:
    if args.smoke:
        return _serve_smoke(args)
    import signal

    from repro.serve import ProvingService
    from repro.serve.server import ServeServer

    service = ProvingService(_serve_config(args),
                             metrics=args.obs_registry).start()
    server = ServeServer(service, args.socket)
    http = None
    if args.http_port is not None:
        from repro.serve.http_server import HttpFrontEnd

        http = HttpFrontEnd(service, host=args.http_host,
                            port=args.http_port).start()
        log.info("http:         %s", http.url)
    if service._scheduler is not None:
        log.info("cluster:      %d workers, pids %s",
                 service._scheduler.workers,
                 service._scheduler.worker_pids())

    def _terminate(signum, frame):
        raise KeyboardInterrupt  # SIGTERM drains like Ctrl-C

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("draining...")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.stop()
        if http is not None:
            http.stop()
        service.shutdown(drain=True)
        if service.runtime.enabled and service.runtime.dump_path:
            service.dump_flight(reason="shutdown")
            log.info("flight recorder: %s", service.runtime.dump_path)
    stats = service.stats()
    log.info("served %d requests in %d batches (mean occupancy %.2f)",
             stats["requests"], stats["batches"], stats["mean_occupancy"])
    return 0


def _cmd_submit(args) -> int:
    from repro.obs.runtime import percentile
    from repro.serve.client import submit_many

    models = [m.strip() for m in args.model.split(",") if m.strip()]
    unknown = [m for m in models if m not in model_names()]
    if unknown:
        log.error("unknown model(s) %s (known: %s)",
                  ",".join(unknown), ",".join(model_names()))
        return 1
    payloads = [
        {"model": models[i % len(models)], "seed": args.seed + i,
         "scheme": args.backend, "columns": args.columns,
         "scale_bits": args.scale_bits, "timeout": args.timeout,
         "priority": args.priority,
         "want_proof": bool(args.out)}
        for i in range(args.count)
    ]
    responses = submit_many(args.socket, payloads, timeout=args.timeout)
    failed = 0
    for i, response in enumerate(responses):
        if response.get("ok"):
            log.info("request %d: verified=%s batch=%d/%d queued %.3fs "
                     "proved %.3fs (slot %.3fs)  %s", i,
                     response["verified"],
                     response["batch_size"], response["padded_size"],
                     response["queue_seconds"], response["prove_seconds"],
                     response.get("slot_prove_seconds",
                                  response["prove_seconds"]),
                     response.get("request_id", ""))
        else:
            failed += 1
            log.error("request %d: %s: %s", i, response.get("error"),
                      response.get("detail"))
    if args.out:
        import base64

        for i, response in enumerate(responses):
            if response.get("ok") and "proof_b64" in response:
                path = "%s.%d.proof" % (args.out, i)
                with open(path, "wb") as fh:
                    fh.write(base64.b64decode(response["proof_b64"]))
                log.info("proof:        %s", path)
    ok_responses = [r for r in responses if r.get("ok")]
    unverified = sum(1 for r in ok_responses if not r.get("verified"))
    latencies = sorted(r["client_seconds"] for r in responses
                       if "client_seconds" in r)
    p50 = percentile(latencies, 0.50)
    p95 = percentile(latencies, 0.95)
    occupancies = [r["batch_size"] for r in ok_responses
                   if "batch_size" in r]
    log.info("submitted %d: %d ok, %d verified, %d failed  |  "
             "latency p50 %s p95 %s  mean occupancy %s",
             len(responses), len(ok_responses),
             len(ok_responses) - unverified, failed,
             "%.3fs" % p50 if p50 is not None else "-",
             "%.3fs" % p95 if p95 is not None else "-",
             "%.2f" % (sum(occupancies) / len(occupancies))
             if occupancies else "-")
    if failed:
        return 1
    if unverified:
        # mirrors `zkml diagnose`: exit 2 = proof-level failure, the
        # request round trip itself was operationally fine
        return 2
    return 0


def _cmd_top(args) -> int:
    """Poll a serving socket's ``status`` op and render the dashboard."""
    from repro.obs.runtime import render_status
    from repro.serve.client import control_request

    remaining = 1 if args.once else args.count
    try:
        while True:
            response = control_request(args.socket, "status",
                                       timeout=args.timeout)
            status = response["status"]
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
            else:
                if not args.once and args.count is None:
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear, home
                print(render_status(status))
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    # observability options shared by every subcommand
    common = argparse.ArgumentParser(add_help=False)
    obs = common.add_argument_group("observability")
    obs.add_argument("--trace", default=None, metavar="PATH",
                     help="write the span tree (Chrome trace_event JSON; "
                          "'.jsonl' for JSON lines; default: $ZKML_TRACE)")
    obs.add_argument("--metrics", default=None, metavar="PATH",
                     help="write run metrics (Prometheus text format)")
    obs.add_argument("-v", "--verbose", action="count", default=0,
                     help="debug logging")
    obs.add_argument("-q", "--quiet", action="store_true",
                     help="errors only")

    parser = argparse.ArgumentParser(
        prog="zkml",
        description="ZKML: an optimizing compiler from ML models to "
                    "ZK-SNARK circuits (EuroSys '24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list zoo models",
                   parents=[common]).set_defaults(func=_cmd_models)

    inspect = sub.add_parser("inspect", parents=[common],
                             help="circuit statistics for a model")
    inspect.add_argument("--model", required=True, choices=model_names())
    inspect.add_argument("--scale", default="paper", choices=["paper", "mini"])
    inspect.add_argument("--columns", type=int, default=16)
    inspect.add_argument("--scale-bits", type=int, default=8)
    inspect.add_argument("--per-layer", action="store_true",
                         help="print the per-layer row budget")
    inspect.add_argument("--json", action="store_true",
                         help="machine-readable output (includes the same "
                              "counters 'zkml prove --metrics' records)")
    inspect.set_defaults(func=_cmd_inspect)

    transpile_cmd = sub.add_parser(
        "transpile", parents=[common],
        help="import a tflite-like flat JSON model")
    transpile_cmd.add_argument("--flat", required=True)
    transpile_cmd.add_argument("--columns", type=int, default=16)
    transpile_cmd.add_argument("--scale-bits", type=int, default=8)
    transpile_cmd.set_defaults(func=_cmd_transpile)

    opt = sub.add_parser("optimize", parents=[common],
                         help="optimize a circuit layout")
    opt.add_argument("--model", required=True, choices=model_names())
    opt.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    opt.add_argument("--objective", default="time", choices=["time", "size"])
    opt.add_argument("--scale-bits", type=int, default=12)
    opt.add_argument("--hardware", default=None, metavar="NAME|PATH",
                     help="built-in profile name (r6i.8xlarge, ...) or a "
                          "calibrated profile JSON from 'zkml calibrate' "
                          "(default: $ZKML_HW_PROFILE, else the paper's "
                          "per-model instance)")
    opt.add_argument("--freivalds", action="store_true",
                     help="allow the Freivalds matmul layout")
    opt.set_defaults(func=_cmd_optimize)

    prove = sub.add_parser("prove", parents=[common],
                           help="prove a mini-model inference")
    prove.add_argument("--model", required=True, choices=model_names())
    prove.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    prove.add_argument("--columns", type=int, default=10)
    prove.add_argument("--scale-bits", type=int, default=5)
    prove.add_argument("--seed", type=int, default=0)
    prove.add_argument("--out", default=None, help="artifact output path")
    prove.add_argument("--envelope", default=None, metavar="PATH",
                       help="also write the canonical proof envelope "
                            "(zkml-proof-envelope/v1 bytes) to PATH")
    prove.add_argument("--registry", default=None, metavar="DIR",
                       help="publish the verifying key into this registry "
                            "after proving")
    prove.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the prover "
                            "(default: ZKML_JOBS env, else serial)")
    prove.add_argument("--profile", action="store_true",
                       help="print the prover's per-phase time breakdown "
                            "and the predicted-vs-actual op counts")
    prove.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="persist each pipeline stage to DIR so an "
                            "interrupted run can resume")
    prove.add_argument("--resume", action="store_true",
                       help="resume from completed stages in --checkpoint "
                            "DIR (the proof is byte-identical to an "
                            "uninterrupted run)")
    prove.set_defaults(func=_cmd_prove)

    diagnose = sub.add_parser(
        "diagnose", parents=[common],
        help="mock-verify a mini model with region-attributed failures")
    diagnose.add_argument("--model", required=True, choices=model_names())
    diagnose.add_argument("--columns", type=int, default=10)
    diagnose.add_argument("--scale-bits", type=int, default=5)
    diagnose.add_argument("--seed", type=int, default=0)
    diagnose.add_argument("--tamper-row", type=int, default=None,
                          help="corrupt the advice cell at this row first")
    diagnose.add_argument("--tamper-col", type=int, default=0,
                          help="advice column of the corrupted cell")
    diagnose.add_argument("--max-failures", type=int, default=10,
                          help="cap on reported violations")
    diagnose.set_defaults(func=_cmd_diagnose)

    bench = sub.add_parser(
        "bench", parents=[common],
        help="benchmark the prover on mini zoo models")
    bench.add_argument("--models", nargs="+", default=None,
                       choices=model_names(),
                       help="models to prove (default: dlrm mnist twitter)")
    bench.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    bench.add_argument("--jobs", type=int, default=None)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_prover.json",
                       help="report path ('' to skip writing)")
    bench.add_argument("--quick", action="store_true",
                       help="prove only the smallest model (CI smoke run)")
    bench.add_argument("--check-parallel", action="store_true",
                       help="re-prove with workers and fail if the proof "
                            "bytes diverge from the serial run")
    bench.add_argument("--mem", action="store_true",
                       help="record peak RSS per prover phase (ru_maxrss, "
                            "KB) into the report")
    bench.add_argument("--compare", default=None, metavar="BASELINE.json",
                       help="diff this run against a committed baseline "
                            "report and exit 1 on any regression")
    bench.add_argument("--threshold", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="regression threshold override (repeatable); "
                            "'time=X' covers all *_seconds metrics, "
                            "deterministic counters default to exact")
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile", parents=[common],
        help="prove once and attribute rows/cells/time to model layers")
    profile.add_argument("--model", required=True, choices=model_names())
    profile.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    profile.add_argument("--columns", type=int, default=10)
    profile.add_argument("--scale-bits", type=int, default=5)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the profiled prove")
    profile.add_argument("--top", type=int, default=12,
                         help="rows of the ranked layer table to print")
    profile.add_argument("--out", default=None,
                         help="JSON report path (default: "
                              "PROFILE_<model>.json); the Chrome trace and "
                              "folded flamegraph land next to it")
    profile.set_defaults(func=_cmd_profile)

    calibrate = sub.add_parser(
        "calibrate", parents=[common],
        help="fit the cost model to this machine and write a hardware "
             "profile JSON")
    calibrate.add_argument("--out", default="hardware-profile.json",
                           help="profile JSON output path")
    calibrate.add_argument("--ks", nargs="+", type=int,
                           default=[8, 9, 10, 11, 12],
                           help="microbenchmark sizes (2^k)")
    calibrate.add_argument("--backend", default="kzg",
                           choices=["kzg", "ipa"])
    calibrate.add_argument("--name", default="local-calibrated",
                           help="name recorded in the profile")
    calibrate.add_argument("--probe", default="mnist",
                           help="mini model proved to measure prediction "
                                "drift ('none' to skip)")
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument("--strict", action="store_true",
                           help="exit 1 if calibration does not reduce "
                                "probe drift vs the static default")
    calibrate.set_defaults(func=_cmd_calibrate)

    verify = sub.add_parser("verify", parents=[common],
                            help="verify a proof artifact or envelope")
    verify_src = verify.add_mutually_exclusive_group(required=True)
    verify_src.add_argument("--artifact",
                            help="prove artifact pickle (zkml prove --out)")
    verify_src.add_argument("--envelope", metavar="PATH",
                            help="raw zkml-proof-envelope/v1 bytes "
                                 "(needs --registry)")
    verify.add_argument("--registry", default=None, metavar="DIR",
                        help="verifying-key registry resolving the "
                             "envelope's vk hash (exit 3 when the key "
                             "is absent)")
    verify.set_defaults(func=_cmd_verify)

    registry = sub.add_parser(
        "registry",
        help="manage the content-addressed verifying-key registry")
    regsub = registry.add_subparsers(dest="registry_cmd", required=True)
    reg_publish = regsub.add_parser(
        "publish", parents=[common],
        help="publish a prove artifact's verifying key")
    reg_publish.add_argument("--registry", required=True, metavar="DIR",
                             help="registry root directory")
    reg_publish.add_argument("--artifact", required=True,
                             help="envelope-carrying artifact from "
                                  "'zkml prove --out'")
    reg_publish.set_defaults(func=_cmd_registry)
    reg_list = regsub.add_parser("list", parents=[common],
                                 help="list published verifying keys")
    reg_list.add_argument("--registry", required=True, metavar="DIR")
    reg_list.add_argument("--json", action="store_true",
                          help="machine-readable index records")
    reg_list.set_defaults(func=_cmd_registry)
    reg_check = regsub.add_parser(
        "check", parents=[common],
        help="re-verify every artifact checksum (exit 1 on corruption)")
    reg_check.add_argument("--registry", required=True, metavar="DIR")
    reg_check.add_argument("--json", action="store_true")
    reg_check.add_argument("--repair", action="store_true",
                           help="evict corrupt entries (the publisher "
                                "re-runs 'registry publish' to rebuild)")
    reg_check.set_defaults(func=_cmd_registry)

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="fault-injection matrix: every site must recover or "
             "surface a typed error")
    chaos.add_argument("--model", default="mnist", choices=model_names())
    chaos.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    chaos.add_argument("--columns", type=int, default=10)
    chaos.add_argument("--scale-bits", type=int, default=5)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--sites", nargs="+", default=None,
                       choices=list(faults.FAULT_SITES),
                       help="fault sites to exercise (default: all)")
    chaos.add_argument("--fuzz", type=int, default=0, metavar="N",
                       help="also run N proof-mutation fuzz iterations")
    chaos.add_argument("--envelope-fuzz", type=int, default=0, metavar="N",
                       help="also run N envelope-mutation fuzz iterations "
                            "against the bounds-checked decoder + verifier")
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the batch-aware proving service on a unix socket")
    serve.add_argument("--socket", default="zkml-serve.sock",
                       help="unix socket path to bind")
    serve.add_argument("--model", default="dlrm", choices=model_names(),
                       help="model the --smoke load test proves")
    serve.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    serve.add_argument("--columns", type=int, default=10)
    serve.add_argument("--scale-bits", type=int, default=5)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-batch", type=int, default=8,
                       help="flush a group at this many coalesced requests")
    serve.add_argument("--flush-ms", type=float, default=250.0,
                       help="ceiling on how long the oldest request waits")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="bounded queue size (backpressure beyond this)")
    serve.add_argument("--workers", type=int, default=0,
                       help="prover worker *processes* (cluster mode); "
                            "0 proves in-process on a thread (default)")
    serve.add_argument("--pk-cache-dir", default=None, metavar="DIR",
                       help="shared disk-backed proving-key cache the "
                            "cluster workers attach (keys survive "
                            "restarts; keygen happens once cluster-wide)")
    serve.add_argument("--max-backlog", type=int, default=8,
                       help="per-model batches queued for worker dispatch "
                            "before load shedding (bulk is shed first)")
    serve.add_argument("--http-port", type=int, default=None, metavar="PORT",
                       help="also serve HTTP/JSON on this TCP port "
                            "(0 = ephemeral; same payloads and control "
                            "ops as the socket)")
    serve.add_argument("--http-host", default="127.0.0.1",
                       help="bind address for --http-port")
    serve.add_argument("--jobs", type=int, default=None,
                       help="prover worker processes per batch")
    serve.add_argument("--smoke", type=int, default=0, metavar="N",
                       help="submit N in-process requests, assert they all "
                            "verify and actually coalesced, then exit")
    serve.add_argument("--fault", action="store_true",
                       help="with --smoke: also force one batch failure "
                            "(poisoned inputs) and assert the flight "
                            "recorder dumped a verifiable artifact")
    serve.add_argument("--flight-recorder", default="zkml-flightrec.json",
                       metavar="PATH",
                       help="where flight-recorder dumps land on a batch "
                            "failure, overload storm, or shutdown "
                            "('' disables automatic dumps)")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable runtime telemetry (SLO windows + "
                            "flight recorder); proof bytes are identical "
                            "either way")
    serve.add_argument("--no-worker-telemetry", action="store_true",
                       help="with --workers: don't collect per-batch "
                            "spans/op-counts/pk-cache stats inside worker "
                            "processes (--trace then records only the "
                            "parent); proof bytes are identical either way")
    serve.set_defaults(func=_cmd_serve)

    vserve = sub.add_parser(
        "verify-serve", parents=[common],
        help="run the hardened envelope verification service on a "
             "unix socket")
    vserve.add_argument("--socket", default="zkml-verify.sock",
                        help="unix socket path to bind")
    vserve.add_argument("--registry", default=None, metavar="DIR",
                        help="verifying-key registry the service trusts "
                             "(without one, every envelope is rejected "
                             "unknown_vk)")
    vserve.add_argument("--max-batch", type=int, default=32,
                        help="envelopes per request; more is rejected "
                             "before any decoding")
    vserve.add_argument("--max-inflight", type=int, default=4,
                        help="concurrent requests before load shedding")
    vserve.add_argument("--deadline", type=float, default=60.0,
                        help="per-request wall-clock budget (seconds)")
    vserve.add_argument("--max-envelope-mb", type=int, default=64,
                        help="decoder cap on one envelope's total bytes")
    vserve.add_argument("--max-proof-mb", type=int, default=48,
                        help="decoder cap on one envelope's proof bytes")
    vserve.add_argument("--max-instance-columns", type=int, default=64,
                        help="decoder cap on instance columns")
    vserve.add_argument("--max-public-inputs", type=int, default=1 << 18,
                        help="decoder cap on total public inputs")
    vserve.add_argument("--max-request-mb", type=int, default=64,
                        help="cap on one socket request line (base64 "
                             "envelopes ride inside it)")
    vserve.add_argument("--flight-recorder",
                        default="zkml-verify-flightrec.json", metavar="PATH",
                        help="where flight-recorder dumps land on an "
                             "overload storm or shutdown ('' disables)")
    vserve.add_argument("--no-telemetry", action="store_true",
                        help="disable runtime telemetry (SLO windows + "
                             "flight recorder)")
    vserve.set_defaults(func=_cmd_verify_serve)

    submit = sub.add_parser(
        "submit", parents=[common],
        help="send proof requests to a running 'zkml serve' socket")
    submit.add_argument("--socket", default="zkml-serve.sock",
                        help="unix socket path, or an http://host:port "
                             "URL targeting the HTTP front end")
    submit.add_argument("--model", required=True,
                        help="zoo model name; a comma-separated list "
                             "round-robins requests across models "
                             "(mixed-model traffic)")
    submit.add_argument("--priority", default="interactive",
                        choices=["interactive", "bulk"],
                        help="dispatch class (bulk is shed first under "
                             "overload)")
    submit.add_argument("--count", type=int, default=1,
                        help="concurrent requests to send")
    submit.add_argument("--seed", type=int, default=0,
                        help="input seed for the first request "
                             "(request i uses seed+i)")
    submit.add_argument("--backend", default="kzg", choices=["kzg", "ipa"])
    submit.add_argument("--columns", type=int, default=10)
    submit.add_argument("--scale-bits", type=int, default=5)
    submit.add_argument("--timeout", type=float, default=120.0)
    submit.add_argument("--out", default=None, metavar="PREFIX",
                        help="write each proof to PREFIX.<i>.proof")
    submit.set_defaults(func=_cmd_submit)

    top = sub.add_parser(
        "top", parents=[common],
        help="live dashboard for a running 'zkml serve' socket")
    top.add_argument("--socket", default="zkml-serve.sock",
                     help="unix socket path, or an http://host:port URL")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between status polls")
    top.add_argument("--count", type=int, default=None, metavar="N",
                     help="render N snapshots then exit (default: forever)")
    top.add_argument("--once", action="store_true",
                     help="render one snapshot and exit (no screen clear)")
    top.add_argument("--json", action="store_true",
                     help="print the raw status JSON instead of the "
                          "dashboard (scripting; pairs with --once)")
    top.add_argument("--timeout", type=float, default=10.0,
                     help="per-poll socket timeout")
    top.set_defaults(func=_cmd_top)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    obs_log.configure(verbosity=args.verbose, quiet=args.quiet)
    trace_path = args.trace or os.environ.get("ZKML_TRACE") or None
    metrics_path = args.metrics
    args.obs_registry = MetricsRegistry() if metrics_path else None
    try:
        if trace_path:
            tracer = Tracer()
            with use_tracer(tracer):
                rc = args.func(args)
            tracer.write(trace_path)
            log.info("trace:        %s", trace_path)
        else:
            rc = args.func(args)
    except ResilienceError as exc:
        # a typed pipeline failure exits with a structured log line, not
        # a traceback — the attribution says which phase/layer to blame
        fields = dict(exc.attribution())
        fields.setdefault("detail", exc.args[0] if exc.args else "")
        log.error("failed", **fields)
        rc = 1
    if args.obs_registry is not None:
        events.merge_into(args.obs_registry)
        args.obs_registry.write(metrics_path)
        log.info("metrics:      %s", metrics_path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
