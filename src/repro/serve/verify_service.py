"""The hardened verification service behind ``zkml verify-serve``.

Where :class:`~repro.serve.service.ProvingService` turns inference
requests into batch proofs, :class:`VerifyService` is the other side of
the trust boundary: it accepts serialized proof envelopes **from
untrusted parties** and answers accept/reject — without letting a
hostile envelope hurt the service.  The hardening layers, outermost
first:

- **load shedding** — at most ``max_inflight`` requests verify
  concurrently; excess requests are rejected immediately with a typed
  :class:`~repro.resilience.errors.ServiceOverloadedError` (clients
  retry; the service never builds an unbounded backlog of attacker
  bytes);
- **per-request resource caps** — batch size is capped before any
  envelope is touched, and every envelope decodes under
  :class:`~repro.envelope.EnvelopeCaps` (total bytes, instance columns,
  public inputs, proof length), all enforced *before* field arithmetic;
- **wall-clock deadline** — each request runs under the existing
  :class:`~repro.resilience.supervisor.Supervisor` with a per-request
  deadline, checked cooperatively between envelopes, so one request
  cannot hold a verify slot forever
  (:class:`~repro.resilience.errors.DeadlineExceeded`);
- **batch amortization** — envelopes are grouped by verifying-key hash;
  each distinct key is fetched from the registry (and integrity-checked)
  once per request, not once per envelope;
- **deterministic verdicts** — results come back in input order, one
  verdict per envelope; a malformed envelope rejects *itself* (typed
  error name + detail) without failing its batch-mates, and the same
  envelope bytes always produce the same verdict (property-tested);
- **accounting by cause** — every rejection increments a counter keyed
  by its taxonomy cause (``schema``/``truncated``/``cap``/``checksum``/
  ``unknown_vk``/...), surfaced through ``status`` and the Prometheus
  text op, mirroring the proving service's telemetry (SLO windows,
  flight recorder).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from repro.envelope import DEFAULT_CAPS, EnvelopeCaps, decode_envelope
from repro.envelope.verify import verify_envelope
from repro.field import GOLDILOCKS
from repro.obs import log as obs_log
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    NULL_RUNTIME,
    FlightRecorder,
    RuntimeTelemetry,
    new_request_id,
)
from repro.obs.trace import get_tracer
from repro.resilience import events
from repro.resilience.errors import (
    DeadlineExceeded,
    EnvelopeCapError,
    EnvelopeChecksumError,
    EnvelopeError,
    EnvelopeSchemaError,
    EnvelopeTruncatedError,
    ProofFormatError,
    RegistryError,
    ResilienceError,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    UnknownVerifyingKeyError,
    VerificationFailure,
)
from repro.resilience.supervisor import Supervisor

__all__ = ["VerifyConfig", "VerifyService", "rejection_cause"]

log = obs_log.get_logger("verify")

#: Histogram buckets for request verify latency (seconds).
VERIFY_LATENCY_BUCKETS = (0.005, 0.02, 0.05, 0.1, 0.25, 1.0, 5.0, 30.0)

#: Taxonomy class -> rejection-cause label, most specific first (the
#: first ``isinstance`` match wins, so subclasses precede their bases).
_CAUSES = (
    (EnvelopeSchemaError, "schema"),
    (EnvelopeTruncatedError, "truncated"),
    (EnvelopeCapError, "cap"),
    (EnvelopeChecksumError, "checksum"),
    (EnvelopeError, "envelope"),
    (UnknownVerifyingKeyError, "unknown_vk"),
    (RegistryError, "registry"),
    (VerificationFailure, "verify_failed"),
    (ProofFormatError, "proof_format"),
    (DeadlineExceeded, "deadline"),
    (ServiceOverloadedError, "overload"),
    (ServiceError, "service"),
)


def rejection_cause(exc: BaseException) -> str:
    """The counter label a rejection is accounted under."""
    for cls, cause in _CAUSES:
        if isinstance(exc, cls):
            return cause
    return "other"


@dataclass
class VerifyConfig:
    """Resource caps and knobs for the verification service."""

    #: Decoder caps applied to every envelope (see ``repro.envelope``).
    caps: EnvelopeCaps = dataclass_field(default_factory=lambda: DEFAULT_CAPS)
    #: Envelopes per request; more is rejected before any decoding.
    max_batch: int = 32
    #: Concurrent requests verifying; excess is shed with a typed error.
    max_inflight: int = 4
    #: Per-request wall-clock budget (supervised, checked cooperatively).
    deadline_seconds: float = 60.0
    #: Record runtime telemetry (SLO windows + flight ring).
    telemetry: bool = True
    #: Flight-recorder ring capacity.
    flight_capacity: int = 256
    #: Where automatic flight dumps land (``None`` disables them).
    flight_path: Optional[str] = None
    #: Rejections within one second that count as an overload storm.
    overload_dump_threshold: int = 16


class VerifyService:
    """Batch-verify proof envelopes from untrusted parties, safely.

    ``registry`` resolves envelope verifying-key hashes to keys; without
    one, every envelope is rejected ``unknown_vk`` (a verifier with no
    trusted keys trusts nothing).
    """

    def __init__(self, registry=None, config: Optional[VerifyConfig] = None,
                 metrics: Optional[MetricsRegistry] = None, tracer=None,
                 supervisor: Optional[Supervisor] = None, runtime=None,
                 field=GOLDILOCKS):
        self.registry = registry
        self.config = config if config is not None else VerifyConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.field = field
        self._tracer = tracer
        self._supervisor = supervisor if supervisor is not None \
            else Supervisor(tracer=tracer)
        if runtime is not None:
            self.runtime = runtime
        elif self.config.telemetry:
            self.runtime = RuntimeTelemetry(
                recorder=FlightRecorder(capacity=self.config.flight_capacity),
                dump_path=self.config.flight_path,
                overload_threshold=self.config.overload_dump_threshold)
        else:
            self.runtime = NULL_RUNTIME
        self._slots = threading.Semaphore(self.config.max_inflight)
        self._lock = threading.Lock()
        self._closed = False
        self._started_at = time.monotonic()
        self._requests = 0
        self._envelopes = 0
        self._accepted = 0
        self._rejected_requests = 0
        self._rejections: Dict[str, int] = {}
        self._inflight = 0

    @property
    def tracer(self):
        return self._tracer if self._tracer is not None else get_tracer()

    def close(self) -> None:
        with self._lock:
            self._closed = True

    # -- accounting ----------------------------------------------------------

    def _count_rejection(self, cause: str, n: int = 1) -> None:
        with self._lock:
            self._rejections[cause] = self._rejections.get(cause, 0) + n
        self.metrics.counter(
            "verify_rejected_total",
            "envelope/request rejections by taxonomy cause",
            cause=cause).inc(n)

    # -- the core request ----------------------------------------------------

    def verify_batch(self, envelopes: List[bytes],
                     request_id: Optional[str] = None) -> Dict[str, object]:
        """Verify a batch of serialized envelopes; verdicts in input order.

        Request-level rejections (shutdown, load shed, batch cap,
        deadline) raise typed errors; *per-envelope* failures never
        escape — each envelope's verdict carries its taxonomy error name
        and detail, and its batch-mates still verify.
        """
        rid = request_id if request_id else new_request_id()
        if self._closed:
            raise ServiceShutdownError(
                "verify service is shut down; request rejected",
                request_id=rid)
        if len(envelopes) > self.config.max_batch:
            self._count_rejection("batch_cap")
            raise ServiceError(
                "batch of %d envelopes exceeds the %d cap"
                % (len(envelopes), self.config.max_batch),
                request_id=rid, batch=len(envelopes),
                max_batch=self.config.max_batch)
        if not self._slots.acquire(blocking=False):
            self._count_rejection("overload")
            self.runtime.note("request_rejected", request_id=rid,
                              cause="overload",
                              max_inflight=self.config.max_inflight)
            if self.runtime.rejection():
                self._auto_dump("overload_storm")
            raise ServiceOverloadedError(
                "verify service is at its %d-request concurrency cap"
                % self.config.max_inflight,
                request_id=rid, max_inflight=self.config.max_inflight)
        started = time.monotonic()
        with self._lock:
            self._requests += 1
            self._inflight += 1
        self.metrics.counter("verify_requests_total",
                             "verify requests accepted").inc()
        self.runtime.note("request_accepted", request_id=rid,
                          batch=len(envelopes))
        try:
            with obs_log.bind(request_id=rid):
                results = self._supervisor.run_phase(
                    "verify_request",
                    lambda: self._verify_all(envelopes, rid, started),
                    deadline=self.config.deadline_seconds)
        except DeadlineExceeded:
            self._count_rejection("deadline")
            self.runtime.request_done(time.monotonic() - started, ok=False,
                                      occupancy=len(envelopes))
            self.runtime.note("request_deadline", request_id=rid,
                              batch=len(envelopes),
                              deadline=self.config.deadline_seconds)
            raise
        finally:
            with self._lock:
                self._inflight -= 1
            self._slots.release()
        elapsed = time.monotonic() - started
        accepted = sum(1 for r in results if r["ok"])
        with self._lock:
            self._envelopes += len(results)
            self._accepted += accepted
            if accepted < len(results):
                self._rejected_requests += 1
        self.metrics.counter("verify_envelopes_total",
                             "envelopes processed").inc(len(results))
        self.metrics.counter("verify_accepted_total",
                             "envelopes that verified").inc(accepted)
        self.metrics.histogram(
            "verify_request_seconds", "end-to-end verify request latency",
            buckets=VERIFY_LATENCY_BUCKETS).observe(elapsed)
        self.runtime.request_done(elapsed, ok=accepted == len(results),
                                  occupancy=len(results))
        self.runtime.note("request_verified", request_id=rid,
                          batch=len(results), accepted=accepted,
                          seconds=round(elapsed, 4))
        return {
            "request_id": rid,
            "batch_size": len(results),
            "accepted": accepted,
            "rejected": len(results) - accepted,
            "verify_seconds": round(elapsed, 6),
            "results": results,
        }

    def _verify_all(self, envelopes: List[bytes], rid: str,
                    started: float) -> List[Dict[str, object]]:
        """Decode + verify each envelope; one verdict per input, in order.

        Decoding happens first for the whole batch so key fetches can be
        amortized by vk hash; the expensive verify loop then checks the
        cooperative deadline *between* envelopes.
        """
        decoded: List[object] = []
        for idx, data in enumerate(envelopes):
            try:
                decoded.append(decode_envelope(bytes(data),
                                               caps=self.config.caps))
            except EnvelopeError as exc:
                decoded.append(exc)
        # one registry fetch (with integrity re-check) per distinct key
        vks: Dict[str, object] = {}
        for env in decoded:
            if isinstance(env, BaseException):
                continue
            if env.vk_hash_hex in vks:
                continue
            vks[env.vk_hash_hex] = self._fetch_vk(env.vk_hash_hex)
        results = []
        deadline = self.config.deadline_seconds
        for idx, env in enumerate(decoded):
            if deadline is not None \
                    and time.monotonic() - started > deadline:
                raise DeadlineExceeded(
                    "verify request overran its %.1fs deadline at envelope "
                    "%d/%d" % (deadline, idx, len(decoded)),
                    phase="verify_request", request_id=rid)
            results.append(self._verdict(idx, env, vks))
        return results

    def _fetch_vk(self, vk_hash: str):
        """``(vk, entry)`` from the registry for ``vk_hash``, or the
        typed error it raised (stored so every envelope under that key
        shares one fetch)."""
        if self.registry is None:
            return UnknownVerifyingKeyError(
                "no verifying-key registry configured; key %s cannot be "
                "resolved" % vk_hash[:16], vk_hash=vk_hash)
        try:
            return self.registry.get(vk_hash), self.registry.entry(vk_hash)
        except RegistryError as exc:
            return exc

    def _verdict(self, idx: int, env, vks: Dict[str, object]
                 ) -> Dict[str, object]:
        if isinstance(env, BaseException):
            return self._reject(idx, env)
        fetched = vks[env.vk_hash_hex]
        if isinstance(fetched, BaseException):
            return self._reject(idx, fetched, env)
        vk, entry = fetched
        # the proof statement binds the vk hash and public inputs; the
        # model/config metadata is bound *here*, against what the prover
        # published — a relabeled envelope is rejected, not re-served
        if entry.model != env.model \
                or entry.config_digest != env.config_digest_hex:
            return self._reject(idx, VerificationFailure(
                "envelope metadata (model %r, config %s) does not match "
                "registry entry (model %r, config %s)"
                % (env.model, env.config_digest_hex[:8], entry.model,
                   entry.config_digest[:8]), model=env.model), env)
        try:
            with self.tracer.span("verify:envelope", model=env.model,
                                  scheme=env.scheme_name):
                verify_envelope(env, vk, field=self.field, strict=True)
        except ResilienceError as exc:
            return self._reject(idx, exc, env)
        except Exception as exc:  # noqa: BLE001 — a verifier crash must reject, not escape
            return self._reject(idx, VerificationFailure(
                "verifier crashed: %s: %s"
                % (type(exc).__name__, str(exc)[:200]), model=env.model), env)
        return {
            "index": idx,
            "ok": True,
            "model": env.model,
            "scheme": env.scheme_name,
            "vk_hash": env.vk_hash_hex,
            "public_inputs": env.num_public_inputs(),
        }

    def _reject(self, idx: int, exc: BaseException,
                env=None) -> Dict[str, object]:
        cause = rejection_cause(exc)
        self._count_rejection(cause)
        out = {
            "index": idx,
            "ok": False,
            "error": type(exc).__name__,
            "cause": cause,
            "detail": str(exc)[:300],
        }
        if env is not None:
            out["model"] = env.model
            out["vk_hash"] = env.vk_hash_hex
        return out

    # -- operator surface ----------------------------------------------------

    def _auto_dump(self, reason: str) -> None:
        if not self.runtime.enabled or not self.runtime.dump_path:
            return
        try:
            self.runtime.dump(reason=reason)
            log.warning("flight recorder dumped", reason=reason,
                        path=self.runtime.dump_path)
        except OSError as exc:
            log.warning("flight recorder dump failed", reason=reason,
                        error=str(exc)[:120])

    def dump_flight(self, reason: str = "on_demand",
                    path: Optional[str] = None) -> Dict:
        return self.runtime.dump(reason=reason, path=path)

    def health(self) -> Dict[str, object]:
        """Cheap liveness: answered from in-memory state, no registry
        read, no verification."""
        with self._lock:
            inflight = self._inflight
        accepting = not self._closed
        return {
            "ok": accepting,
            "accepting": accepting,
            "inflight": inflight,
            "slots_free": max(0, self.config.max_inflight - inflight),
            "saturated": inflight >= self.config.max_inflight,
        }

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "requests": self._requests,
                "envelopes": self._envelopes,
                "accepted": self._accepted,
                "rejected": self._envelopes - self._accepted,
                "requests_with_rejections": self._rejected_requests,
                "rejections_by_cause": dict(sorted(
                    self._rejections.items())),
                "inflight": self._inflight,
            }

    def status(self) -> Dict[str, object]:
        """The full operator snapshot (``zkml-verify-status/v1``)."""
        out: Dict[str, object] = {
            "schema": "zkml-verify-status/v1",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "accepting": not self._closed,
            "limits": {
                "max_batch": self.config.max_batch,
                "max_inflight": self.config.max_inflight,
                "deadline_seconds": self.config.deadline_seconds,
                "max_envelope_bytes": self.config.caps.max_envelope_bytes,
                "max_public_inputs": self.config.caps.max_public_inputs,
                "max_proof_bytes": self.config.caps.max_proof_bytes,
            },
            "counters": self.stats(),
            "registry": {
                "configured": self.registry is not None,
                "root": getattr(self.registry, "root", None),
                "entries": len(self.registry.list_entries())
                if self.registry is not None else 0,
            },
            "resilience": events.counts(),
        }
        if self.runtime.enabled:
            out["slo"] = self.runtime.slo.snapshot()
            recorder = self.runtime.recorder
            out["flight_recorder"] = {
                "buffered": len(recorder),
                "capacity": recorder.capacity,
                "recorded": recorder.recorded,
                "dumps": recorder.dumps,
                "dump_path": self.runtime.dump_path,
            }
        return out
