"""Batch-aware proving service (``zkml serve`` / ``zkml submit``).

Scaling zkML is a proof-construction *scheduling* problem: the repo's
prover already amortizes keygen (pk cache), weights, and lookup tables
across a batch (``prove_batch``), but nothing coalesced concurrent
requests into those batches.  This package is that layer:

- :class:`~repro.serve.service.ProvingService` — the in-process API: a
  bounded request queue with backpressure, an adaptive micro-batcher
  that coalesces same-(model, scheme, config) requests into single
  ``prove_batch`` calls, a worker pool that keeps proving keys warm, and
  per-request futures carrying proof bytes + instance + verification
  status;
- :class:`~repro.serve.scheduler.ClusterScheduler` /
  :mod:`~repro.serve.worker` — cluster mode (``zkml serve --workers N``):
  flushed batches dispatch to N prover worker *processes* over per-model
  priority queues, with load shedding, crash re-dispatch, and a shared
  disk-backed proving-key cache
  (:class:`~repro.perf.pkcache.DiskPKCache`);
- :class:`~repro.serve.server.ServeServer` — a unix-socket JSON front
  end (``zkml serve``);
- :class:`~repro.serve.http_server.HttpFrontEnd` — the HTTP/JSON twin
  (same payloads, same control ops, honest status codes);
- :mod:`~repro.serve.client` — the matching client (``zkml submit``),
  speaking either transport;
- :class:`~repro.serve.verify_service.VerifyService` /
  :class:`~repro.serve.verify_server.VerifyServer` — the *other* side of
  the trust boundary (``zkml verify-serve``): batch-verify proof
  envelopes from untrusted parties under hard resource caps, load
  shedding, and per-request deadlines.

Only the service modules are imported eagerly; the socket front ends are
explicit imports so the in-process API stays dependency-light.
"""

from repro.serve.service import (
    BatchKey,
    ProofRequest,
    ProofResponse,
    ProvingService,
    ServeConfig,
)
from repro.serve.verify_service import VerifyConfig, VerifyService

__all__ = [
    "BatchKey",
    "ProofRequest",
    "ProofResponse",
    "ProvingService",
    "ServeConfig",
    "VerifyConfig",
    "VerifyService",
]
