"""Prover worker process for the serve cluster.

One worker = one OS process running :func:`worker_main`: a loop that
takes :class:`BatchJob` messages off its private job queue, proves them
with :func:`~repro.runtime.pipeline.prove_batch`, strict-verifies the
proof, and ships a :class:`BatchResult` back on the shared result queue.
Everything that crosses the process boundary is a plain picklable
dataclass — proof *bytes*, not live :class:`~repro.halo2.Proof` objects,
so the scheduler side never needs to touch prover state.

Workers attach the shared :class:`~repro.perf.pkcache.DiskPKCache`
under their in-process ``GLOBAL_PK_CACHE`` at startup: the first worker
to see a circuit runs keygen under the digest's advisory file lock and
persists the keys; every other worker (and every restarted worker)
loads them from disk instead of re-deriving them.

A worker never *exits* on a proving failure — typed errors travel back
inside ``BatchResult`` and fail only that batch's requests.  A worker
*process* death (SIGKILL, OOM, segfault) is the scheduler's problem: it
detects the corpse, re-dispatches the in-flight batch, and spawns a
replacement (see :mod:`repro.serve.scheduler`).
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.model.spec import ModelSpec
from repro.resilience.errors import ResilienceError

__all__ = ["BatchJob", "BatchResult", "worker_main"]

#: Sentinel the scheduler enqueues to stop a worker cleanly.
STOP = None


@dataclass
class BatchJob:
    """One flushed batch, ready to prove (crosses the process boundary).

    ``batch_inputs`` is already padded to ``padded_size``; ``occupancy``
    is the real request count — the worker returns outputs only for the
    occupied slots.  ``redispatches`` counts how many workers died with
    this job in flight (the scheduler's poison-batch guard).
    """

    job_id: int
    batch_id: str
    spec: ModelSpec
    batch_inputs: List[Dict[str, np.ndarray]]
    scheme_name: str
    num_cols: int
    scale_bits: int
    lookup_bits: Optional[int]
    occupancy: int
    padded_size: int
    priority: str = "interactive"
    jobs: Optional[int] = None
    redispatches: int = 0
    #: ``time.perf_counter`` stamps set by the scheduler (0.0 = unset);
    #: perf_counter is CLOCK_MONOTONIC on Linux, so these are directly
    #: comparable with worker-side span timestamps after a fork.
    enqueued_pc: float = 0.0
    dispatched_pc: float = 0.0


@dataclass
class BatchResult:
    """What a worker sends back for one :class:`BatchJob`."""

    job_id: int
    batch_id: str
    ok: bool
    worker_id: int
    pid: int
    error: str = ""
    detail: str = ""
    verified: bool = False
    proof_bytes: bytes = b""
    envelope_bytes: bytes = b""
    instance: List[List[int]] = dataclass_field(default_factory=list)
    #: Per-occupied-slot output arrays (``occupancy`` entries).
    outputs: List[Dict[str, np.ndarray]] = dataclass_field(
        default_factory=list)
    proving_seconds: float = 0.0
    keygen_seconds: float = 0.0
    keygen_cache_hit: bool = False
    #: :class:`~repro.obs.cluster.WorkerTelemetry` when the worker ran
    #: with batch telemetry capture on; ``None`` otherwise.
    telemetry: Optional[Any] = None


def prove_job(job: BatchJob, worker_id: int,
              verify_proofs: bool = True,
              telemetry: bool = False) -> BatchResult:
    """Prove one batch job and package the outcome (never raises).

    Shared by the worker process loop and the scheduler's in-process
    fallback path, so both produce identical result messages — and
    identical proof bytes, since the proving pipeline underneath is the
    same deterministic code either way.  With ``telemetry`` the prove
    runs under a fresh worker-local tracer and the result carries a
    :class:`~repro.obs.cluster.WorkerTelemetry` (spans, STATS delta,
    pk-cache counters) for the parent to ingest; capture never touches
    proof construction, so proof bytes stay identical either way.
    """
    if telemetry:
        from repro.obs.cluster import capture_batch

        with capture_batch(job, worker_id) as capture:
            result = _prove_job(job, worker_id, verify_proofs)
        result.telemetry = capture.telemetry
        return result
    return _prove_job(job, worker_id, verify_proofs)


def _prove_job(job: BatchJob, worker_id: int,
               verify_proofs: bool) -> BatchResult:
    from repro.halo2.proof import proof_to_bytes
    from repro.runtime.pipeline import prove_batch

    pid = os.getpid()
    try:
        result = prove_batch(
            job.spec, job.batch_inputs, scheme_name=job.scheme_name,
            num_cols=job.num_cols, scale_bits=job.scale_bits,
            lookup_bits=job.lookup_bits, jobs=job.jobs,
        )
        verified = False
        if verify_proofs:
            result.verify()  # strict: raises on any malformation
            verified = True
        return BatchResult(
            job_id=job.job_id,
            batch_id=job.batch_id,
            ok=True,
            worker_id=worker_id,
            pid=pid,
            verified=verified,
            proof_bytes=proof_to_bytes(result.proof),
            envelope_bytes=result.envelope_bytes(),
            instance=result.instance,
            outputs=result.outputs[:job.occupancy],
            proving_seconds=result.proving_seconds,
            keygen_seconds=result.keygen_seconds,
            keygen_cache_hit=result.keygen_cache_hit,
        )
    except ResilienceError as exc:
        return BatchResult(
            job_id=job.job_id, batch_id=job.batch_id, ok=False,
            worker_id=worker_id, pid=pid,
            error=type(exc).__name__, detail=str(exc)[:300])
    except Exception as exc:  # noqa: BLE001 — a crash must fail its batch, not the worker loop
        return BatchResult(
            job_id=job.job_id, batch_id=job.batch_id, ok=False,
            worker_id=worker_id, pid=pid,
            error=type(exc).__name__, detail=str(exc)[:300])


def worker_main(worker_id: int, job_queue, result_queue,
                pk_cache_dir: Optional[str] = None,
                verify_proofs: bool = True,
                telemetry: bool = False) -> None:
    """Entry point of a prover worker process.

    Blocks on ``job_queue``; a ``STOP`` (``None``) sentinel ends the
    loop.  SIGINT is ignored so a Ctrl-C at the operator's terminal
    drains through the scheduler instead of killing workers mid-batch
    (SIGTERM/SIGKILL still work — that is what the crash-recovery path
    is for).  ``telemetry`` turns on per-batch span/metric capture
    (shipped back inside each :class:`BatchResult`).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    if pk_cache_dir:
        from repro.perf.pkcache import GLOBAL_PK_CACHE

        GLOBAL_PK_CACHE.attach_disk(pk_cache_dir)
    while True:
        job = job_queue.get()
        if job is STOP:
            return
        result_queue.put(prove_job(job, worker_id,
                                   verify_proofs=verify_proofs,
                                   telemetry=telemetry))
