"""A unix-domain-socket front end for :class:`VerifyService`.

``zkml verify-serve`` binds one of these alongside (or instead of) the
proving socket.  Same tiny protocol as the proving server: **one JSON
request per connection**, one JSON response, connection closed.

Request fields::

    {"envelopes": ["<b64>", ...],   # serialized v1 envelopes, or ...
     "envelope": "<b64>",           # ... a single one
     "request_id": "req-..."}       # correlation id (minted if absent)

Response::

    {"ok": true, "request_id", "batch_size", "accepted", "rejected",
     "verify_seconds", "results": [{"index", "ok", ...verdict...}]}

or ``{"ok": false, "error", "detail"}`` for request-level rejections
(overload shed, batch cap, deadline, shutdown) — the typed taxonomy
class name rides in ``error`` so clients can distinguish "back off"
from "your envelope is garbage".

The wire layer is hardened independently of the service: the request
line itself is capped (``max_request_bytes``) so a client cannot stream
unbounded bytes before JSON parsing, and base64 payloads that fail to
decode are rejected without touching the envelope decoder.

**Control ops** mirror the proving server: ``{"op": "health"}``,
``{"op": "status"}`` (``zkml-verify-status/v1``), ``{"op": "metrics"}``
(Prometheus text), ``{"op": "dump"}`` (flight recorder).
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import socket
import threading
from typing import Dict, List, Optional

from repro.obs import log as obs_log
from repro.resilience import events
from repro.resilience.errors import ResilienceError, ServiceError
from repro.serve.verify_service import VerifyService

__all__ = ["VerifyServer", "VERIFY_CONTROL_OPS", "DEFAULT_VERIFY_SOCKET"]

#: Operator ops the verify socket answers without verifying anything.
VERIFY_CONTROL_OPS = ("health", "status", "metrics", "dump")

#: Default unix socket path for the verification endpoint.
DEFAULT_VERIFY_SOCKET = "zkml-verify.sock"

#: Default cap on one request line.  Envelopes ride base64 (4/3
#: overhead), so this comfortably holds a few mini-model envelopes while
#: still bounding what an attacker can make us buffer.
DEFAULT_MAX_REQUEST_BYTES = 64 << 20

log = obs_log.get_logger("verify")


class VerifyServer:
    """Accept-loop wrapper: socket connections → ``service.verify_batch``."""

    def __init__(self, service: VerifyService, socket_path: str,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES):
        self.service = service
        self.socket_path = socket_path
        self.max_request_bytes = max_request_bytes
        self._sock: Optional[socket.socket] = None
        self._accepting = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "VerifyServer":
        """Bind the socket and start accepting in a background thread."""
        self._bind()
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="zkml-verify-accept",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Bind the socket and accept on the calling thread (CLI mode)."""
        self._bind()
        self._accept_loop()

    def _bind(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(64)
        self._sock.settimeout(0.2)
        self._accepting = True
        log.info("verify-serving on %s", self.socket_path)

    def stop(self) -> None:
        self._accepting = False
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while self._accepting:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            handler = threading.Thread(target=self._handle, args=(conn,),
                                       daemon=True)
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            try:
                payload = self._read_request(conn)
                response = self._process(payload)
            except ResilienceError as exc:
                response = {"ok": False, "error": type(exc).__name__,
                            "detail": str(exc)}
            except Exception as exc:  # noqa: BLE001 — a bad request must not kill the accept loop
                response = {"ok": False, "error": type(exc).__name__,
                            "detail": str(exc)[:200]}
            try:
                conn.sendall(json.dumps(response).encode() + b"\n")
            except OSError:
                pass  # client went away

    def _read_request(self, conn: socket.socket) -> Dict:
        chunks = []
        total = 0
        while not chunks or b"\n" not in chunks[-1]:
            chunk = conn.recv(65536)
            if not chunk:
                break
            total += len(chunk)
            if total > self.max_request_bytes:
                raise ServiceError("request exceeds %d bytes"
                                   % self.max_request_bytes)
            chunks.append(chunk)
        line = b"".join(chunks).split(b"\n", 1)[0]
        if not line:
            raise ServiceError("empty request")
        return json.loads(line)

    def _decode_envelopes(self, payload: Dict) -> List[bytes]:
        if "envelope" in payload:
            raw = [payload["envelope"]]
        else:
            raw = payload.get("envelopes")
        if not isinstance(raw, list) or not raw:
            raise ServiceError(
                "request must carry 'envelope' or a non-empty "
                "'envelopes' list")
        out: List[bytes] = []
        for idx, item in enumerate(raw):
            if not isinstance(item, str):
                raise ServiceError("envelope %d is not a base64 string"
                                   % idx, got=type(item).__name__)
            try:
                out.append(base64.b64decode(item, validate=True))
            except (binascii.Error, ValueError):
                raise ServiceError("envelope %d is not valid base64" % idx)
        return out

    def _process(self, payload: Dict) -> Dict:
        if "op" in payload:
            return self._control(payload)
        rid = payload.get("request_id")
        if rid is not None and not isinstance(rid, str):
            raise ServiceError("request_id must be a string",
                               got=type(rid).__name__)
        envelopes = self._decode_envelopes(payload)
        report = self.service.verify_batch(envelopes, request_id=rid or None)
        report["ok"] = True
        return report

    def _control(self, payload: Dict) -> Dict:
        op = payload["op"]
        if not isinstance(op, str) or op not in VERIFY_CONTROL_OPS:
            raise ServiceError(
                "unknown control op %r (expected one of %s)"
                % (op, "/".join(VERIFY_CONTROL_OPS)))
        if op == "health":
            health = self.service.health()
            health["ok"] = True  # protocol-level ok; liveness is "accepting"
            return health
        if op == "status":
            return {"ok": True, "status": self.service.status()}
        if op == "metrics":
            text = self.service.metrics.to_prometheus()
            resilience = events.EVENTS.to_prometheus()
            if resilience:
                text = text + resilience if text.endswith("\n") or not text \
                    else text + "\n" + resilience
            return {"ok": True, "metrics_text": text}
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            raise ServiceError("dump path must be a string",
                               got=type(path).__name__)
        artifact = self.service.dump_flight(reason="operator_request",
                                            path=path)
        effective = path or self.service.runtime.dump_path
        out = {"ok": True, "reason": "operator_request",
               "events_recorded": artifact.get("events_recorded", 0),
               "checksum": artifact.get("checksum", "")}
        if effective:
            out["path"] = effective
        if not path:
            out["artifact"] = artifact
        return out
