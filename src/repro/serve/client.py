"""Client helpers for the proving service socket (``zkml submit``).

One JSON request per connection (see :mod:`repro.serve.server` for the
protocol).  :func:`submit_many` opens one connection per request from
worker threads, so N requests arrive at the service concurrently and
coalesce into batches — the shape ``zkml submit --count N`` produces.
"""

from __future__ import annotations

import json
import socket
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from repro.resilience.errors import ServiceError

__all__ = ["submit_request", "submit_many"]


def submit_request(socket_path: str, payload: Dict,
                   timeout: float = 120.0) -> Dict:
    """Send one request and block for its response dict."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        try:
            conn.connect(socket_path)
        except OSError as exc:
            raise ServiceError(
                "cannot reach proving service at %r: %s" % (socket_path, exc),
            ) from exc
        conn.sendall(json.dumps(payload).encode() + b"\n")
        chunks: List[bytes] = []
        while not chunks or b"\n" not in chunks[-1]:
            try:
                chunk = conn.recv(65536)
            except socket.timeout as exc:
                raise ServiceError(
                    "timed out after %.1fs waiting for the service"
                    % timeout) from exc
            if not chunk:
                break
            chunks.append(chunk)
        line = b"".join(chunks).split(b"\n", 1)[0]
        if not line:
            raise ServiceError("service closed the connection without "
                               "responding")
        return json.loads(line)
    finally:
        conn.close()


def submit_many(socket_path: str, payloads: List[Dict],
                timeout: float = 120.0) -> List[Dict]:
    """Send several requests concurrently; responses come back in
    request order (each on its own connection, so the service sees them
    simultaneously and can coalesce)."""
    if not payloads:
        return []
    with ThreadPoolExecutor(max_workers=min(32, len(payloads)),
                            thread_name_prefix="zkml-submit") as pool:
        futures = [pool.submit(submit_request, socket_path, p, timeout)
                   for p in payloads]
        return [f.result() for f in futures]
