"""Client helpers for the proving service socket (``zkml submit``).

One JSON request per connection (see :mod:`repro.serve.server` for the
protocol).  :func:`submit_many` opens one connection per request from
worker threads, so N requests arrive at the service concurrently and
coalesce into batches — the shape ``zkml submit --count N`` produces.

Proof requests are stamped with a client-minted ``request_id`` before
they leave the process (unless the caller already set one), so the
client's logs, the server's logs, and the flight recorder all correlate
on the same id even when the request never reaches the service.
:func:`control_request` speaks the operator side of the protocol
(``health`` / ``status`` / ``metrics`` / ``dump``) — it is what
``zkml top`` polls.

Every response dict gains a ``client_seconds`` field: the wall-clock the
round trip took as seen from this process (connect → response parsed),
the number an SLO about *user-visible* latency actually cares about.

Every helper accepts either a unix socket path or an ``http://host:port``
URL as its target — the same payload rides whichever transport the
string names (the HTTP front end shares the socket's wire format).
"""

from __future__ import annotations

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from repro.obs.runtime import new_request_id
from repro.resilience.errors import ServiceError, ServiceTimeoutError

__all__ = ["control_request", "submit_request", "submit_many",
           "verify_request"]


def _parse_frame(line: bytes, request_id: str) -> Dict:
    """Decode one JSON response frame (shared by both transports)."""
    try:
        response = json.loads(line)
    except ValueError as exc:
        raise ServiceError(
            "service sent a malformed response frame: %s" % exc,
            request_id=request_id, received_bytes=len(line)) from exc
    if not isinstance(response, dict):
        raise ServiceError(
            "service response is not a JSON object",
            got=type(response).__name__, request_id=request_id)
    return response


def _roundtrip_http(url: str, payload: Dict, timeout: float) -> Dict:
    """One request against the HTTP front end (``http://host:port``).

    Control ops go to ``/v1/control``, proof requests to ``/v1/prove``
    — the same JSON payloads the socket speaks, so callers pick the
    transport with nothing but the target string.
    """
    import urllib.error
    import urllib.request

    rid = str(payload.get("request_id", ""))
    started = time.monotonic()
    path = "/v1/control" if "op" in payload else "/v1/prove"
    request = urllib.request.Request(
        url.rstrip("/") + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            body = reply.read()
    except urllib.error.HTTPError as exc:
        body = exc.read()  # error replies are JSON too; surface them
    except socket.timeout as exc:
        raise ServiceTimeoutError(
            "timed out after %.1fs waiting for %s" % (timeout, url),
            request_id=rid) from exc
    except urllib.error.URLError as exc:
        if isinstance(exc.reason, socket.timeout):
            raise ServiceTimeoutError(
                "timed out after %.1fs waiting for %s" % (timeout, url),
                request_id=rid) from exc
        raise ServiceError(
            "cannot reach proving service at %r: %s" % (url, exc.reason),
            request_id=rid) from exc
    response = _parse_frame(body, rid)
    response["client_seconds"] = round(time.monotonic() - started, 4)
    return response


def _roundtrip(socket_path: str, payload: Dict, timeout: float) -> Dict:
    """One connection, one JSON line out, one JSON frame back.

    ``socket_path`` may also be an ``http(s)://`` URL, which routes the
    same payload through the HTTP front end.

    The response frame is everything up to the first newline, however
    it arrives: split across any number of ``recv`` chunks, with the
    terminator and trailing bytes landing in any chunk (a frame is *one
    message*, not one ``recv``).  The failure edges stay distinct:

    - a timeout mid-exchange raises the typed
      :class:`~repro.resilience.errors.ServiceTimeoutError` (the peer is
      alive but the reply did not finish in time);
    - a connection closed before *any* byte arrives is the silent-close
      :class:`ServiceError`;
    - a connection cut after a partial frame (bytes but no terminator)
      is its own :class:`ServiceError` — never misread as malformed
      JSON, because the frame never completed.
    """
    if socket_path.startswith(("http://", "https://")):
        return _roundtrip_http(socket_path, payload, timeout)
    rid = str(payload.get("request_id", ""))
    started = time.monotonic()
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        try:
            conn.connect(socket_path)
        except socket.timeout as exc:
            raise ServiceTimeoutError(
                "timed out after %.1fs connecting to %r"
                % (timeout, socket_path), request_id=rid) from exc
        except OSError as exc:
            raise ServiceError(
                "cannot reach proving service at %r: %s" % (socket_path, exc),
            ) from exc
        try:
            conn.sendall(json.dumps(payload).encode() + b"\n")
        except socket.timeout as exc:
            raise ServiceTimeoutError(
                "timed out after %.1fs sending the request"
                % timeout, request_id=rid) from exc
        buffer = bytearray()
        while b"\n" not in buffer:
            try:
                chunk = conn.recv(65536)
            except socket.timeout as exc:
                raise ServiceTimeoutError(
                    "timed out after %.1fs waiting for the service"
                    % timeout, request_id=rid,
                    received_bytes=len(buffer)) from exc
            if not chunk:
                break
            buffer.extend(chunk)
        if not buffer:
            raise ServiceError("service closed the connection without "
                               "responding", request_id=rid)
        if b"\n" not in buffer:
            raise ServiceError(
                "connection cut mid-reply: %d bytes received with no "
                "frame terminator" % len(buffer),
                request_id=rid, received_bytes=len(buffer))
        # the frame ends at the newline; any bytes after it are not ours
        response = _parse_frame(bytes(buffer).split(b"\n", 1)[0], rid)
        response["client_seconds"] = round(time.monotonic() - started, 4)
        return response
    finally:
        conn.close()


def submit_request(socket_path: str, payload: Dict,
                   timeout: float = 120.0) -> Dict:
    """Send one proof request and block for its response dict.

    Mints and attaches a ``request_id`` when the payload has none (and
    is not a control op), so the id exists client-side even if the
    connection dies before the server answers.
    """
    if "op" not in payload and not payload.get("request_id"):
        payload = dict(payload, request_id=new_request_id())
    return _roundtrip(socket_path, payload, timeout)


def control_request(socket_path: str, op: str, timeout: float = 10.0,
                    **extra) -> Dict:
    """Send one operator op (``health``/``status``/``metrics``/``dump``).

    Extra keyword args ride along in the payload (e.g. ``path=...`` for
    ``dump``).  Raises :class:`ServiceError` when the server rejects the
    op, so callers never have to inspect ``ok`` themselves.
    """
    response = _roundtrip(socket_path, dict(extra, op=op), timeout)
    if not response.get("ok"):
        raise ServiceError(
            "control op %r failed: %s" % (op, response.get("detail", "")),
            error=response.get("error", ""))
    return response


def verify_request(socket_path: str, envelopes: List[bytes],
                   timeout: float = 120.0, request_id: str = "") -> Dict:
    """Send serialized envelopes to a ``zkml verify-serve`` socket.

    ``envelopes`` are raw envelope byte strings; they ride base64 on the
    wire.  Returns the server's verdict report (``results`` in input
    order) — request-level rejections come back as
    ``{"ok": false, "error": <taxonomy class>, ...}``.
    """
    import base64

    payload = {
        "envelopes": [base64.b64encode(bytes(e)).decode()
                      for e in envelopes],
        "request_id": request_id or new_request_id(),
    }
    return _roundtrip(socket_path, payload, timeout)


def submit_many(socket_path: str, payloads: List[Dict],
                timeout: float = 120.0) -> List[Dict]:
    """Send several requests concurrently; responses come back in
    request order (each on its own connection, so the service sees them
    simultaneously and can coalesce)."""
    if not payloads:
        return []
    with ThreadPoolExecutor(max_workers=min(32, len(payloads)),
                            thread_name_prefix="zkml-submit") as pool:
        futures = [pool.submit(submit_request, socket_path, p, timeout)
                   for p in payloads]
        return [f.result() for f in futures]
