"""Client helpers for the proving service socket (``zkml submit``).

One JSON request per connection (see :mod:`repro.serve.server` for the
protocol).  :func:`submit_many` opens one connection per request from
worker threads, so N requests arrive at the service concurrently and
coalesce into batches — the shape ``zkml submit --count N`` produces.

Proof requests are stamped with a client-minted ``request_id`` before
they leave the process (unless the caller already set one), so the
client's logs, the server's logs, and the flight recorder all correlate
on the same id even when the request never reaches the service.
:func:`control_request` speaks the operator side of the protocol
(``health`` / ``status`` / ``metrics`` / ``dump``) — it is what
``zkml top`` polls.

Every response dict gains a ``client_seconds`` field: the wall-clock the
round trip took as seen from this process (connect → response parsed),
the number an SLO about *user-visible* latency actually cares about.
"""

from __future__ import annotations

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from repro.obs.runtime import new_request_id
from repro.resilience.errors import ServiceError

__all__ = ["control_request", "submit_request", "submit_many",
           "verify_request"]


def _roundtrip(socket_path: str, payload: Dict, timeout: float) -> Dict:
    """One connection, one JSON line out, one JSON line back."""
    started = time.monotonic()
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        try:
            conn.connect(socket_path)
        except OSError as exc:
            raise ServiceError(
                "cannot reach proving service at %r: %s" % (socket_path, exc),
            ) from exc
        conn.sendall(json.dumps(payload).encode() + b"\n")
        chunks: List[bytes] = []
        while not chunks or b"\n" not in chunks[-1]:
            try:
                chunk = conn.recv(65536)
            except socket.timeout as exc:
                raise ServiceError(
                    "timed out after %.1fs waiting for the service"
                    % timeout) from exc
            if not chunk:
                break
            chunks.append(chunk)
        line = b"".join(chunks).split(b"\n", 1)[0]
        if not line:
            raise ServiceError("service closed the connection without "
                               "responding",
                               request_id=payload.get("request_id", ""))
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError(
                "service sent a malformed response (connection cut "
                "mid-reply?): %s" % exc,
                request_id=payload.get("request_id", ""),
                received_bytes=len(line)) from exc
        if not isinstance(response, dict):
            raise ServiceError(
                "service response is not a JSON object",
                got=type(response).__name__,
                request_id=payload.get("request_id", ""))
        response["client_seconds"] = round(time.monotonic() - started, 4)
        return response
    finally:
        conn.close()


def submit_request(socket_path: str, payload: Dict,
                   timeout: float = 120.0) -> Dict:
    """Send one proof request and block for its response dict.

    Mints and attaches a ``request_id`` when the payload has none (and
    is not a control op), so the id exists client-side even if the
    connection dies before the server answers.
    """
    if "op" not in payload and not payload.get("request_id"):
        payload = dict(payload, request_id=new_request_id())
    return _roundtrip(socket_path, payload, timeout)


def control_request(socket_path: str, op: str, timeout: float = 10.0,
                    **extra) -> Dict:
    """Send one operator op (``health``/``status``/``metrics``/``dump``).

    Extra keyword args ride along in the payload (e.g. ``path=...`` for
    ``dump``).  Raises :class:`ServiceError` when the server rejects the
    op, so callers never have to inspect ``ok`` themselves.
    """
    response = _roundtrip(socket_path, dict(extra, op=op), timeout)
    if not response.get("ok"):
        raise ServiceError(
            "control op %r failed: %s" % (op, response.get("detail", "")),
            error=response.get("error", ""))
    return response


def verify_request(socket_path: str, envelopes: List[bytes],
                   timeout: float = 120.0, request_id: str = "") -> Dict:
    """Send serialized envelopes to a ``zkml verify-serve`` socket.

    ``envelopes`` are raw envelope byte strings; they ride base64 on the
    wire.  Returns the server's verdict report (``results`` in input
    order) — request-level rejections come back as
    ``{"ok": false, "error": <taxonomy class>, ...}``.
    """
    import base64

    payload = {
        "envelopes": [base64.b64encode(bytes(e)).decode()
                      for e in envelopes],
        "request_id": request_id or new_request_id(),
    }
    return _roundtrip(socket_path, payload, timeout)


def submit_many(socket_path: str, payloads: List[Dict],
                timeout: float = 120.0) -> List[Dict]:
    """Send several requests concurrently; responses come back in
    request order (each on its own connection, so the service sees them
    simultaneously and can coalesce)."""
    if not payloads:
        return []
    with ThreadPoolExecutor(max_workers=min(32, len(payloads)),
                            thread_name_prefix="zkml-submit") as pool:
        futures = [pool.submit(submit_request, socket_path, p, timeout)
                   for p in payloads]
        return [f.result() for f in futures]
