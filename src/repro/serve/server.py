"""A unix-domain-socket front end for :class:`ProvingService`.

``zkml serve`` binds one of these so out-of-process clients (``zkml
submit``, or anything that can write JSON to a socket) can feed the
micro-batcher.  The protocol is deliberately tiny: **one JSON request
per connection**, one JSON response back, connection closed.  A client
wanting its requests coalesced opens N concurrent connections — exactly
the traffic shape the batcher exists for.

Request fields::

    {"model": "dlrm",            # required: a zoo model name (mini scale)
     "inputs": {"x": [[...]]},   # either explicit input arrays ...
     "seed": 7,                  # ... or a seed for zkml-prove-style inputs
     "scheme": "kzg", "columns": 10, "scale_bits": 5,   # batch-key params
     "request_id": "req-...",    # correlation id (minted here if absent)
     "want_proof": false,        # include base64 proof bytes in the reply
     "want_envelope": false,     # include the base64 v1 proof envelope
     "timeout": 60.0}            # per-request wait budget (seconds)

Response: ``{"ok": true, "id", "request_id", "batch_id", "model",
"verified", "batch_size", "padded_size", "queue_seconds",
"prove_seconds", "slot_prove_seconds", "keygen_cache_hit", "outputs",
["proof_b64"]}`` or ``{"ok": false, "error", "detail"}`` —
typed service errors (overload, shutdown, proving failures) map to their
taxonomy class name in ``error``, so backpressure is visible to clients.

**Control ops** share the socket: a payload carrying ``{"op": ...}``
instead of ``"model"`` addresses the *server*, not the prover.

- ``{"op": "health"}`` — cheap liveness + queue headroom; answered from
  in-memory state, never touches the prover (safe to poll aggressively);
- ``{"op": "status"}`` — the full operator snapshot
  (``zkml-serve-status/v2``): uptime, queue, in-flight batches, pending
  per model, batcher state, pk-cache stats, resilience counters, the
  SLO sliding windows, and in cluster mode a ``cluster`` block with a
  per-worker ``telemetry`` rollup and per-priority-class SLO windows
  (``zkml top`` renders this);
- ``{"op": "metrics"}`` — the Prometheus text exposition of the
  service's registry plus the process resilience counters;
- ``{"op": "dump", "path": ...}`` — dump the flight recorder; with
  ``path`` the checksummed artifact is written server-side and the reply
  summarizes it, without ``path`` the artifact comes back inline.

An unknown or non-string ``op`` gets the structured
``{"ok": false, "error": "ServiceError", ...}`` rejection, same as any
malformed proof request.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import threading
from typing import Dict, Optional

import numpy as np

from repro.model import get_model, model_names
from repro.obs import log as obs_log
from repro.obs.runtime import new_request_id
from repro.resilience import events
from repro.resilience.errors import ResilienceError, ServiceError
from repro.serve.service import ProvingService

__all__ = ["ServeServer", "PayloadProcessor", "CONTROL_OPS",
           "DEFAULT_SOCKET", "request_inputs"]

#: Operator ops the socket answers without touching the prover.
CONTROL_OPS = ("health", "status", "metrics", "dump")

#: Default unix socket path (relative to the server's working directory).
DEFAULT_SOCKET = "zkml-serve.sock"

#: Cap on a single request line (a mini-model input is a few KB).
MAX_REQUEST_BYTES = 4 << 20

log = obs_log.get_logger("serve")


def request_inputs(spec, payload: Dict) -> Dict[str, np.ndarray]:
    """Materialize a request's input arrays.

    Explicit ``inputs`` win; otherwise ``seed`` generates the same
    uniform(-0.5, 0.5) inputs ``zkml prove --seed`` uses, so a socket
    client and the CLI prove bit-identical statements.
    """
    if "inputs" in payload:
        arrays = {}
        for name, shape in spec.inputs.items():
            if name not in payload["inputs"]:
                raise ServiceError("request is missing input %r" % name,
                                   model=spec.name)
            arr = np.asarray(payload["inputs"][name], dtype=np.float64)
            if arr.shape != tuple(shape):
                raise ServiceError(
                    "input %r has shape %s, expected %s"
                    % (name, arr.shape, tuple(shape)), model=spec.name)
            arrays[name] = arr
        return arrays
    rng = np.random.default_rng(int(payload.get("seed", 0)))
    return {name: rng.uniform(-0.5, 0.5, shape)
            for name, shape in spec.inputs.items()}


class PayloadProcessor:
    """Wire payload → response dict, front-end agnostic.

    Both front ends — the unix socket (:class:`ServeServer`) and HTTP
    (:class:`~repro.serve.http_server.HttpFrontEnd`) — hand their parsed
    JSON here, so proof requests and control ops behave identically over
    either transport: same fields, same typed errors, same replies.
    """

    def __init__(self, service: ProvingService,
                 default_timeout: float = 120.0):
        self.service = service
        self.default_timeout = default_timeout

    def process(self, payload: Dict) -> Dict:
        if not isinstance(payload, dict):
            raise ServiceError("request payload must be a JSON object",
                               got=type(payload).__name__)
        if "op" in payload:
            return self.control(payload)
        model = payload.get("model")
        if model not in model_names():
            raise ServiceError("unknown model %r" % model)
        rid = payload.get("request_id")
        if rid is not None and not isinstance(rid, str):
            raise ServiceError("request_id must be a string",
                               got=type(rid).__name__)
        if not rid:
            rid = new_request_id()
        with obs_log.bind(request_id=rid):
            spec = get_model(model, "mini")
            inputs = request_inputs(spec, payload)
            future = self.service.submit(
                spec, inputs,
                scheme_name=payload.get("scheme", "kzg"),
                num_cols=int(payload.get("columns", 10)),
                scale_bits=int(payload.get("scale_bits", 5)),
                request_id=rid,
                priority=str(payload.get("priority", "interactive")),
            )
            timeout = float(payload.get("timeout", self.default_timeout))
            response = future.result(timeout=timeout)
        out = {
            "ok": True,
            "id": response.sequence,
            "request_id": response.request_id,
            "batch_id": response.batch_id,
            "model": response.model,
            "scheme": response.scheme_name,
            "verified": response.verified,
            "batch_size": response.batch_size,
            "padded_size": response.padded_size,
            "batch_index": response.batch_index,
            "queue_seconds": round(response.queue_seconds, 4),
            "prove_seconds": round(response.prove_seconds, 4),
            "slot_prove_seconds": round(response.slot_prove_seconds, 4),
            "keygen_cache_hit": response.keygen_cache_hit,
            "outputs": {name: np.asarray(values, dtype=object).tolist()
                        for name, values in response.outputs.items()},
        }
        if payload.get("want_proof"):
            out["proof_b64"] = base64.b64encode(
                response.proof_bytes).decode()
        if payload.get("want_envelope"):
            out["envelope_b64"] = base64.b64encode(
                response.envelope_bytes).decode()
        return out

    def control(self, payload: Dict) -> Dict:
        """Answer an operator op (``health`` / ``status`` / ``metrics`` /
        ``dump``) from in-memory state — never via the prover."""
        op = payload["op"]
        if not isinstance(op, str) or op not in CONTROL_OPS:
            raise ServiceError(
                "unknown control op %r (expected one of %s)"
                % (op, "/".join(CONTROL_OPS)))
        if op == "health":
            health = self.service.health()
            health["ok"] = True  # protocol-level ok; liveness is "accepting"
            return health
        if op == "status":
            return {"ok": True, "status": self.service.status()}
        if op == "metrics":
            return {"ok": True, "metrics_text": self.metrics_text()}
        path = payload.get("path")
        if path is not None and not isinstance(path, str):
            raise ServiceError("dump path must be a string",
                               got=type(path).__name__)
        artifact = self.service.dump_flight(reason="operator_request",
                                            path=path)
        effective = path or self.service.runtime.dump_path
        out = {"ok": True, "reason": "operator_request",
               "events_recorded": artifact.get("events_recorded", 0),
               "checksum": artifact.get("checksum", "")}
        if effective:
            out["path"] = effective
        if not path:
            out["artifact"] = artifact
        return out

    def metrics_text(self) -> str:
        """The Prometheus exposition (service registry + resilience)."""
        text = self.service.metrics.to_prometheus()
        resilience = events.EVENTS.to_prometheus()
        if resilience:
            text = text + resilience if text.endswith("\n") or not text \
                else text + "\n" + resilience
        return text


class ServeServer:
    """Accept-loop wrapper: socket connections → ``service.submit``."""

    def __init__(self, service: ProvingService, socket_path: str,
                 default_timeout: float = 120.0):
        self.service = service
        self.socket_path = socket_path
        self.default_timeout = default_timeout
        self.processor = PayloadProcessor(service, default_timeout)
        self._sock: Optional[socket.socket] = None
        self._accepting = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeServer":
        """Bind the socket and start accepting in a background thread."""
        self._bind()
        self._thread = threading.Thread(target=self._accept_loop,
                                        name="zkml-serve-accept", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Bind the socket and accept on the calling thread (CLI mode)."""
        self._bind()
        self._accept_loop()

    def _bind(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(64)
        self._sock.settimeout(0.2)
        self._accepting = True
        log.info("serving on %s", self.socket_path)

    def stop(self) -> None:
        """Stop accepting and remove the socket (the service keeps its
        own lifecycle — call ``service.shutdown`` separately)."""
        self._accepting = False
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while self._accepting:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            handler = threading.Thread(target=self._handle, args=(conn,),
                                       daemon=True)
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            try:
                payload = self._read_request(conn)
                response = self._process(payload)
            except ResilienceError as exc:
                response = {"ok": False, "error": type(exc).__name__,
                            "detail": str(exc)}
            except Exception as exc:  # noqa: BLE001 — a bad request must not kill the accept loop
                response = {"ok": False, "error": type(exc).__name__,
                            "detail": str(exc)[:200]}
            try:
                conn.sendall(json.dumps(response).encode() + b"\n")
            except OSError:
                pass  # client went away; its future already resolved

    def _read_request(self, conn: socket.socket) -> Dict:
        chunks = []
        total = 0
        while not chunks or b"\n" not in chunks[-1]:
            chunk = conn.recv(65536)
            if not chunk:
                break
            total += len(chunk)
            if total > MAX_REQUEST_BYTES:
                raise ServiceError("request exceeds %d bytes"
                                   % MAX_REQUEST_BYTES)
            chunks.append(chunk)
        line = b"".join(chunks).split(b"\n", 1)[0]
        if not line:
            raise ServiceError("empty request")
        return json.loads(line)

    def _process(self, payload: Dict) -> Dict:
        return self.processor.process(payload)
