"""The batch-aware proving service: queue → micro-batcher → workers.

:class:`ProvingService` turns one-shot ``prove_batch`` calls into a
request-serving loop.  The moving parts:

- **bounded request queue with backpressure** — ``submit`` enqueues a
  request and returns a future; when the queue is full it raises a typed
  :class:`~repro.resilience.errors.ServiceOverloadedError` (or blocks up
  to ``block_seconds``) instead of buffering without bound;
- **adaptive micro-batcher** — a dispatcher thread coalesces requests
  with the same :class:`BatchKey` (model, scheme, grid parameters) into
  one group and flushes it into a single
  :func:`~repro.runtime.pipeline.prove_batch` call when the group
  reaches ``max_batch`` *or* its oldest request has waited out the flush
  deadline, whichever comes first.  The deadline adapts: it tracks a
  fraction of the exponentially-averaged batch proving time (clamped to
  ``[min_flush_seconds, max_flush_seconds]``), so queueing never adds
  more than a sliver of the work it amortizes;
- **warm proving keys** — partial flushes are padded up to the next
  occupancy bucket (powers of two up to ``max_batch``), so the handful
  of distinct batch shapes all stay resident in the global
  :class:`~repro.perf.pkcache.ProvingKeyCache` and keygen is skipped
  after each shape's first flush;
- **per-request futures** — each future resolves to a
  :class:`ProofResponse` carrying the shared batch proof bytes, the full
  instance, this request's slot, its outputs, and its verification
  status (every batch is strict-verified before any future resolves);
- **resilience** — batches prove under the caller's
  :class:`~repro.resilience.supervisor.Supervisor` policy (transient
  faults retry, a dead worker pool degrades the batch to serial proving
  via ``repro.perf.parallel`` — queued requests are never lost), and a
  failed batch fails *only* its own requests, with the typed error;
- **graceful drain** — ``shutdown(drain=True)`` stops intake, flushes
  every pending group regardless of occupancy, and waits for in-flight
  batches to resolve their futures.

Everything is observable through ``repro.obs``: ``serve_*`` counters and
histograms (queue depth, batch occupancy, time-to-flush, end-to-end
latency) land in the registry passed at construction, and every batch
proves under a ``serve:batch`` span on the active tracer.

Runtime telemetry (:mod:`repro.obs.runtime`) makes the running service
*operable*:

- every request carries a string ``request_id`` (caller-supplied or
  minted on submit) and every flushed group a ``batch_id``; both are
  threaded through spans, bound into structured log records, recorded in
  the flight ring, and returned on :class:`ProofResponse` — one grep
  reconstructs a request's lifecycle including the batch it rode in;
- :meth:`ProvingService.health` is a cheap liveness probe (queue
  headroom, never touches the prover); :meth:`ProvingService.status` is
  the full operator snapshot (uptime, in-flight, per-model queue depths,
  batcher state, pk-cache stats, resilience counters, SLO windows);
- the flight recorder rings recent lifecycle events and auto-dumps a
  checksummed JSON artifact on a batch failure or an overload storm
  (when ``ServeConfig.flight_path`` is set), or on demand via
  :meth:`ProvingService.dump_flight`.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

import numpy as np

from repro.halo2.proof import proof_to_bytes
from repro.model.spec import ModelSpec
from repro.obs import log as obs_log
from repro.obs.cluster import fold_worker_result
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    NULL_RUNTIME,
    FlightRecorder,
    RuntimeTelemetry,
    new_batch_id,
    new_request_id,
)
from repro.obs.trace import get_tracer
from repro.perf.pkcache import GLOBAL_PK_CACHE
from repro.resilience import events
from repro.resilience.errors import (
    ResilienceError,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    WorkerCrashError,
)
from repro.runtime.pipeline import prove_batch
from repro.serve.scheduler import PRIORITIES, ClusterScheduler
from repro.serve.worker import BatchJob, BatchResult

__all__ = [
    "BatchKey",
    "ProofRequest",
    "ProofResponse",
    "ProvingService",
    "ServeConfig",
]

log = obs_log.get_logger("serve")

#: Histogram buckets for batch occupancy (requests coalesced per proof).
OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32)

#: Histogram buckets for queueing/flush latencies (seconds).
LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 1.0, 5.0, 30.0)

_STOP = object()


@dataclass(frozen=True)
class BatchKey:
    """What must match for two requests to share one batch proof.

    The model is identified by name: the zoo materializes a given
    mini-model deterministically, so the name binds the weights.  Callers
    submitting ad-hoc :class:`~repro.model.spec.ModelSpec` objects must
    give distinct specs distinct names.
    """

    model: str
    scheme_name: str
    num_cols: int
    scale_bits: int
    lookup_bits: Optional[int]
    #: Dispatch class (``interactive`` or ``bulk``).  Part of the key so
    #: one batch never mixes classes — a bulk request can neither ride an
    #: interactive batch's priority nor drag one down.
    priority: str = "interactive"


@dataclass
class ServeConfig:
    """Tuning knobs for the service (defaults suit mini-model traffic)."""

    #: Bounded queue size; a full queue rejects with backpressure.
    max_queue: int = 64
    #: Flush a group as soon as it holds this many requests.
    max_batch: int = 8
    #: Ceiling on how long the oldest request may wait before a flush.
    max_flush_seconds: float = 0.25
    #: Floor for the adaptive deadline (don't busy-flush singletons).
    min_flush_seconds: float = 0.005
    #: Adaptive deadline = this fraction of the EMA batch proving time.
    flush_fraction: float = 0.25
    #: Worker threads proving flushed batches (keys prove concurrently).
    workers: int = 1
    #: Prover worker *processes* per batch (``prove_batch(jobs=...)``).
    jobs: Optional[int] = None
    #: Pad partial flushes to the next power-of-two occupancy so the few
    #: distinct batch shapes stay warm in the proving-key cache.
    pad_to_bucket: bool = True
    #: Strict-verify every batch proof before resolving its futures.
    verify_proofs: bool = True
    #: Dispatcher poll interval (also bounds flush-deadline resolution).
    tick_seconds: float = 0.002
    #: Record runtime telemetry (SLO windows + flight ring).  Off, the
    #: service uses the inert :data:`~repro.obs.runtime.NULL_RUNTIME`;
    #: proof bytes are identical either way.
    telemetry: bool = True
    #: Flight-recorder ring capacity (most recent lifecycle events kept).
    flight_capacity: int = 512
    #: Where automatic flight-recorder dumps land (batch failure,
    #: overload storm).  ``None`` disables automatic dumps; the ring
    #: still records and can be dumped on demand.
    flight_path: Optional[str] = None
    #: Rejections within one second that count as an overload storm
    #: (each storm auto-dumps the flight recorder, rate-limited).
    overload_dump_threshold: int = 16
    #: Prover worker *processes* (the cluster).  ``0`` keeps today's
    #: in-process mode: batches prove on the thread pool above.  ``N>=1``
    #: spawns N worker processes fed by the cluster scheduler; the thread
    #: pool is not created and ``workers``/``jobs`` above only shape the
    #: in-process fallback.
    cluster_workers: int = 0
    #: Directory of the shared disk-backed proving-key cache cluster
    #: workers attach (:class:`~repro.perf.pkcache.DiskPKCache`): keygen
    #: happens once per circuit cluster-wide and keys survive restarts.
    #: ``None`` leaves each worker with only its in-memory cache.
    pk_cache_dir: Optional[str] = None
    #: Per-model cap on batches queued for worker dispatch; beyond it the
    #: scheduler sheds (bulk first) with a typed overload error.
    max_backlog_batches: int = 8
    #: Worker crashes one batch may survive before it is declared poison
    #: and failed with :class:`~repro.resilience.errors.WorkerCrashError`.
    redispatch_limit: int = 2
    #: Collect per-batch telemetry (span tree, STATS delta, pk-cache
    #: counters) inside cluster worker processes and ship it back on the
    #: result queue.  The parent ingests spans into its tracer (one
    #: Chrome-trace lane per worker) and folds deltas into the registry
    #: under per-worker labels.  Proof bytes are identical either way.
    worker_telemetry: bool = True
    #: Minimum seconds between automatic flight-recorder dumps *per
    #: reason* — a crash-looping worker cannot write unbounded dumps.
    auto_dump_interval_seconds: float = 5.0


@dataclass
class ProofRequest:
    """One queued inference-proof request (internal)."""

    id: int
    spec: ModelSpec
    inputs: Dict[str, np.ndarray]
    key: BatchKey
    submitted_at: float
    #: Wire-level correlation id (``req-...``), caller-supplied or minted.
    request_id: str = ""
    future: "Future[ProofResponse]" = dataclass_field(default_factory=Future)


@dataclass
class ProofResponse:
    """What a request's future resolves to.

    The proof covers the whole coalesced batch; ``batch_index`` says
    which inference slot belongs to this request (its instance columns
    are the slot's contiguous block of ``instance``).  ``verified``
    reports that the *service* strict-verified the batch proof before
    responding.  ``request_id`` is the string correlation id the request
    carried end to end; ``batch_id`` names the batch proof it rode in
    (the same id appears on the ``serve:batch`` span, in bound log
    records, and in flight-recorder events).
    """

    request_id: str
    sequence: int
    batch_id: str
    model: str
    scheme_name: str
    verified: bool
    proof_bytes: bytes
    #: The batch proof packaged as a serialized v1 envelope (shared by
    #: every request in the batch; built once per batch).
    envelope_bytes: bytes
    instance: List[List[int]]
    outputs: Dict[str, np.ndarray]
    batch_index: int
    batch_size: int
    padded_size: int
    queue_seconds: float
    #: Wall-clock of the *whole batch proof* this request rode in.
    prove_seconds: float
    #: ``prove_seconds`` amortized over the batch's occupied slots — the
    #: honest per-request proving cost (a batch of 8 is not 8 fast runs).
    slot_prove_seconds: float
    keygen_seconds: float
    keygen_cache_hit: bool


class ProvingService:
    """Coalesce concurrent proof requests into batch proofs.

    Use as a context manager, or call :meth:`start` / :meth:`shutdown`::

        with ProvingService(ServeConfig(max_batch=4)) as svc:
            futures = [svc.submit(spec, inp) for inp in request_inputs]
            responses = [f.result() for f in futures]

    Requests may be submitted before :meth:`start`; they queue up and
    are dispatched once the service runs.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None, supervisor=None, runtime=None):
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer
        self._supervisor = supervisor
        if runtime is not None:
            self.runtime = runtime
        elif self.config.telemetry:
            self.runtime = RuntimeTelemetry(
                recorder=FlightRecorder(capacity=self.config.flight_capacity),
                dump_path=self.config.flight_path,
                overload_threshold=self.config.overload_dump_threshold,
                auto_dump_interval_seconds=(
                    self.config.auto_dump_interval_seconds))
        else:
            self.runtime = NULL_RUNTIME
        self._queue: "queue_mod.Queue" = queue_mod.Queue(
            maxsize=self.config.max_queue)
        self._pending: Dict[BatchKey, List[ProofRequest]] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._inflight: set = set()
        self._closed = False
        self._started = False
        self._started_at: Optional[float] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._scheduler: Optional[ClusterScheduler] = None
        self._job_ids = itertools.count(1)
        # cluster mode: job_id -> (key, group, padded_size, launched_at);
        # popped exactly once, so a crash-re-dispatch duplicate result
        # can never double-resolve a future
        self._cluster_groups: Dict[int, tuple] = {}
        self._ema_prove_seconds: Optional[float] = None
        # resilience events observed while we run land in the flight ring
        self._events_listener = (
            lambda kind, fields: self.runtime.note(
                "resilience_" + kind,
                **{k: str(v) for k, v in fields.items()}))
        # plain counters mirrored into the metrics registry (stats() reads
        # these without needing registry internals)
        self._requests = 0
        self._outstanding = 0  # accepted but not yet resolved/failed
        self._rejected = 0
        self._batches = 0
        self._proofs = 0
        self._failed_batches = 0
        self._coalesced = 0  # sum of occupancies over all batches

    @property
    def tracer(self):
        return self._tracer if self._tracer is not None else get_tracer()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ProvingService":
        """Spawn the dispatcher thread and the proving worker pool."""
        if self._started:
            return self
        self._started = True
        self._started_at = time.monotonic()
        if self.runtime.enabled:
            events.add_listener(self._events_listener)
        self.runtime.note("service_started", workers=self.config.workers,
                          cluster_workers=self.config.cluster_workers,
                          max_batch=self.config.max_batch,
                          max_queue=self.config.max_queue)
        if self.config.cluster_workers > 0:
            # fork the worker processes before any service thread exists
            self._scheduler = ClusterScheduler(
                workers=self.config.cluster_workers,
                on_result=self._on_cluster_result,
                on_shed=self._on_cluster_shed,
                pk_cache_dir=self.config.pk_cache_dir,
                verify_proofs=self.config.verify_proofs,
                max_backlog_batches=self.config.max_backlog_batches,
                redispatch_limit=self.config.redispatch_limit,
                metrics=self.metrics,
                telemetry=self.config.worker_telemetry,
                runtime=self.runtime,
            ).start()
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, self.config.workers),
                thread_name_prefix="zkml-serve")
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="zkml-serve-dispatch",
                                            daemon=True)
        self._dispatcher.start()
        log.debug("service started", workers=self.config.workers,
                  cluster_workers=self.config.cluster_workers,
                  max_batch=self.config.max_batch,
                  max_queue=self.config.max_queue)
        return self

    def __enter__(self) -> "ProvingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop intake; with ``drain`` flush and finish everything queued.

        Without ``drain``, queued and pending requests fail with a typed
        :class:`ServiceShutdownError` (their futures resolve either way —
        a shutdown never leaves a caller hanging).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.runtime.note("service_shutdown", drain=drain)
        if not self._started:
            self._fail_queued(ServiceShutdownError(
                "service was shut down before it started"))
            return
        self._queue.put(_STOP)
        self._dispatcher.join(timeout=timeout)
        if not drain:
            self._fail_queued(ServiceShutdownError(
                "service shut down without draining"))
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._scheduler is not None:
            self._scheduler.shutdown(drain=drain, timeout=timeout)
            # anything still tracked (worker terminated at the join
            # deadline, non-drain shutdown) fails typed, never hangs
            with self._lock:
                leftovers = list(self._cluster_groups.values())
                self._cluster_groups.clear()
            for entry in leftovers:
                key, group = entry[0], entry[1]
                self._fail_group(key, group, ServiceShutdownError(
                    "service shut down before the batch was proved",
                    model=key.model))
        if self.runtime.enabled:
            events.remove_listener(self._events_listener)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every accepted request has resolved or failed
        (the service keeps running and keeps accepting)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._outstanding == 0:
                    return
                outstanding = self._outstanding
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError("drain timed out",
                                   outstanding=outstanding,
                                   queued=self._queue.qsize())
            time.sleep(self.config.tick_seconds)

    # -- intake --------------------------------------------------------------

    def submit(
        self,
        spec: ModelSpec,
        inputs: Dict[str, np.ndarray],
        scheme_name: str = "kzg",
        num_cols: int = 10,
        scale_bits: int = 5,
        lookup_bits: Optional[int] = None,
        block_seconds: Optional[float] = None,
        request_id: Optional[str] = None,
        priority: str = "interactive",
    ) -> "Future[ProofResponse]":
        """Enqueue one proof request; returns its future.

        ``request_id`` is the end-to-end correlation id; one is minted
        when the caller does not supply it (clients usually mint their
        own so their logs correlate with the server's).  ``priority``
        picks the dispatch class (``interactive`` beats ``bulk`` at the
        cluster scheduler, and bulk is shed first under overload).

        Raises :class:`ServiceShutdownError` after shutdown and
        :class:`ServiceOverloadedError` when the queue is full (after
        waiting up to ``block_seconds`` if given — backpressure, not
        unbounded buffering).
        """
        rid = request_id if request_id else new_request_id()
        if priority not in PRIORITIES:
            raise ServiceError(
                "unknown priority %r (expected one of %s)"
                % (priority, "/".join(PRIORITIES)),
                model=spec.name, request_id=rid)
        if self._closed:
            raise ServiceShutdownError(
                "service is shut down; request rejected", model=spec.name,
                request_id=rid)
        request = ProofRequest(
            id=next(self._ids),
            spec=spec,
            inputs=inputs,
            key=BatchKey(spec.name, scheme_name, num_cols, scale_bits,
                         lookup_bits, priority),
            submitted_at=time.monotonic(),
            request_id=rid,
        )
        try:
            if block_seconds is None:
                self._queue.put_nowait(request)
            else:
                self._queue.put(request, timeout=block_seconds)
        except queue_mod.Full:
            with self._lock:
                self._rejected += 1
            self.metrics.counter(
                "serve_rejected_total",
                "requests rejected by backpressure (queue full)",
                model=spec.name).inc()
            self.runtime.note("request_rejected", request_id=rid,
                              model=spec.name,
                              max_queue=self.config.max_queue)
            if self.runtime.rejection():
                self._auto_dump("overload_storm")
            raise ServiceOverloadedError(
                "request queue is full (%d waiting)" % self.config.max_queue,
                model=spec.name, max_queue=self.config.max_queue,
                request_id=rid,
            ) from None
        with self._lock:
            self._requests += 1
            self._outstanding += 1
        self.metrics.counter("serve_requests_total", "requests accepted",
                             model=spec.name).inc()
        self.metrics.gauge("serve_queue_depth",
                           "requests waiting in the bounded queue").set(
            self._queue.qsize())
        self.runtime.note("request_accepted", request_id=rid,
                          model=spec.name, sequence=request.id,
                          queue_depth=self._queue.qsize())
        log.debug("request accepted", request_id=rid, model=spec.name)
        return request.future

    # -- dispatcher ----------------------------------------------------------

    def _flush_deadline(self) -> float:
        """The adaptive time-to-flush for the oldest queued request."""
        cfg = self.config
        if self._ema_prove_seconds is None:
            return cfg.max_flush_seconds
        return min(cfg.max_flush_seconds,
                   max(cfg.min_flush_seconds,
                       cfg.flush_fraction * self._ema_prove_seconds))

    def _dispatch_loop(self) -> None:
        stopping = False
        while True:
            try:
                item = self._queue.get(timeout=self.config.tick_seconds)
            except queue_mod.Empty:
                item = None
            if item is _STOP:
                stopping = True
            elif item is not None:
                with self._lock:
                    self._pending.setdefault(item.key, []).append(item)
            self.metrics.gauge(
                "serve_queue_depth",
                "requests waiting in the bounded queue").set(
                self._queue.qsize())
            now = time.monotonic()
            deadline = self._flush_deadline()
            for key in list(self._pending):
                with self._lock:
                    group = self._pending.get(key)
                    flush = group is not None and (
                        len(group) >= self.config.max_batch or stopping
                        or now - group[0].submitted_at >= deadline)
                    if flush:
                        del self._pending[key]
                if flush:
                    self._launch(key, group)
            if stopping and not self._pending and self._queue.empty():
                return

    def _launch(self, key: BatchKey, group: List[ProofRequest]) -> None:
        flush_wait = time.monotonic() - group[0].submitted_at
        self.metrics.histogram(
            "serve_flush_seconds",
            "time from a group's first request to its flush",
            buckets=LATENCY_BUCKETS).observe(flush_wait)
        batch_id = new_batch_id()
        self.runtime.note("batch_flushed", batch_id=batch_id,
                          model=key.model, occupancy=len(group),
                          flush_wait_seconds=round(flush_wait, 4),
                          request_ids=[r.request_id for r in group])
        if self._scheduler is not None:
            self._launch_cluster(key, group, batch_id)
            return
        future = self._pool.submit(self._prove_group, key, group, batch_id)
        with self._lock:
            self._inflight.add(future)
        future.add_done_callback(self._retire)

    def _retire(self, future) -> None:
        with self._lock:
            self._inflight.discard(future)

    # -- batch proving -------------------------------------------------------

    @staticmethod
    def _bucket(size: int, max_batch: int) -> int:
        """The smallest power-of-two occupancy >= ``size`` (capped)."""
        bucket = 1
        while bucket < size:
            bucket *= 2
        return min(bucket, max(size, max_batch))

    def _padded_inputs(self, group: List[ProofRequest]):
        """The group's inputs padded to its occupancy bucket (shared by
        the in-process and cluster launch paths, so both prove the exact
        same padded batch)."""
        cfg = self.config
        batch_inputs = [r.inputs for r in group]
        padded_size = len(batch_inputs)
        if cfg.pad_to_bucket and len(group) < cfg.max_batch:
            padded_size = self._bucket(len(group), cfg.max_batch)
            batch_inputs = batch_inputs + [batch_inputs[-1]] * (
                padded_size - len(batch_inputs))
        return batch_inputs, padded_size

    def _prove_group(self, key: BatchKey, group: List[ProofRequest],
                     batch_id: str) -> None:
        cfg = self.config
        spec = group[0].spec
        batch_inputs, padded_size = self._padded_inputs(group)
        started = time.monotonic()
        try:
            with obs_log.bind(batch_id=batch_id), \
                    self.tracer.span(
                        "serve:batch", model=key.model,
                        scheme=key.scheme_name, batch_id=batch_id,
                        request_ids=[r.request_id for r in group],
                        occupancy=len(group), padded=padded_size):
                result = prove_batch(
                    spec, batch_inputs, scheme_name=key.scheme_name,
                    num_cols=key.num_cols, scale_bits=key.scale_bits,
                    lookup_bits=key.lookup_bits, jobs=cfg.jobs,
                    tracer=self.tracer, metrics=self.metrics,
                    supervisor=self._supervisor,
                )
                verified = False
                if cfg.verify_proofs:
                    result.verify()  # strict: raises on any malformation
                    verified = True
        except ResilienceError as exc:
            self._fail_group(key, group, exc, batch_id)
            return
        except Exception as exc:  # noqa: BLE001 — a worker crash must fail its own batch, not the pool
            self._fail_group(key, group, ServiceError(
                "batch proving crashed: %s: %s"
                % (type(exc).__name__, str(exc)[:200]),
                model=key.model, occupancy=len(group),
                batch_id=batch_id), batch_id)
            return
        self._resolve_group(key, group, result, verified, padded_size,
                            time.monotonic() - started, batch_id)

    # -- cluster mode --------------------------------------------------------

    def _launch_cluster(self, key: BatchKey, group: List[ProofRequest],
                        batch_id: str) -> None:
        """Hand one flushed group to the worker cluster as a job."""
        batch_inputs, padded_size = self._padded_inputs(group)
        job = BatchJob(
            job_id=next(self._job_ids),
            batch_id=batch_id,
            spec=group[0].spec,
            batch_inputs=batch_inputs,
            scheme_name=key.scheme_name,
            num_cols=key.num_cols,
            scale_bits=key.scale_bits,
            lookup_bits=key.lookup_bits,
            occupancy=len(group),
            padded_size=padded_size,
            priority=key.priority,
            jobs=self.config.jobs,
        )
        with self._lock:
            # span_start (perf_counter) times the parent serve:batch span
            # recorded at resolve; monotonic launched_at feeds the EMA
            self._cluster_groups[job.job_id] = (key, group, padded_size,
                                                time.monotonic(),
                                                time.perf_counter())
        # a shed job fires _on_cluster_shed synchronously, which pops the
        # entry back out and fails the group typed
        self._scheduler.enqueue(job)

    def _on_cluster_result(self, job: BatchJob,
                           result: BatchResult) -> None:
        """Resolve a cluster batch from its worker's result message.

        Runs on the scheduler's collector thread.  The job-table pop is
        the at-most-once gate: a worker that shipped its result and then
        died gets re-dispatched, and whichever of the two results lands
        second finds no entry and is dropped.
        """
        with self._lock:
            entry = self._cluster_groups.pop(result.job_id, None)
        if entry is None:
            return
        key, group, padded_size, launched_at, span_start = entry
        batch_seconds = time.monotonic() - launched_at
        self._stitch_cluster_batch(key, group, job, result, padded_size,
                                   span_start)
        if result.worker_id >= 0:
            fold_worker_result(self.metrics, result)
        if result.ok:
            self.metrics.counter(
                "serve_worker_batches_total",
                "batches proved per cluster worker",
                worker=str(result.worker_id)).inc()
            self._resolve_group(key, group, result, result.verified,
                                padded_size, batch_seconds, result.batch_id)
            return
        if result.error == "WorkerCrashError":
            exc: ResilienceError = WorkerCrashError(
                result.detail, model=key.model, batch_id=result.batch_id)
        else:
            exc = ServiceError(
                "batch proving failed in worker %d (pid %d): %s: %s"
                % (result.worker_id, result.pid, result.error,
                   result.detail),
                model=key.model, batch_id=result.batch_id)
        self._fail_group(key, group, exc, result.batch_id)

    def _on_cluster_shed(self, job: BatchJob, reason: str) -> None:
        """Fail a batch the scheduler shed (overload or shutdown)."""
        with self._lock:
            entry = self._cluster_groups.pop(job.job_id, None)
        if entry is None:
            return
        key, group = entry[0], entry[1]
        self.runtime.note("batch_shed", batch_id=job.batch_id,
                          model=key.model, priority=key.priority,
                          reason=reason, occupancy=len(group))
        if reason == "shutdown":
            exc: ResilienceError = ServiceShutdownError(
                "service shut down before the batch was proved",
                model=key.model, batch_id=job.batch_id)
        else:
            exc = ServiceOverloadedError(
                "batch shed: per-model dispatch backlog is full",
                model=key.model, priority=key.priority,
                max_backlog_batches=self.config.max_backlog_batches,
                batch_id=job.batch_id)
        self._fail_group(key, group, exc, job.batch_id)

    def _stitch_cluster_batch(self, key: BatchKey,
                              group: List[ProofRequest],
                              job: BatchJob, result: BatchResult,
                              padded_size: int, span_start: float) -> None:
        """Stitch one cluster batch into the parent trace.

        Records the parent ``serve:batch`` span (launch → resolve, timed
        on ``perf_counter`` like every tracer span), a ``serve:queue-wait``
        child covering scheduler backlog time, and ingests the worker's
        shipped span tree under the batch span — the worker's own pid is
        preserved, so the Chrome export shows
        client → queue-wait → dispatch → worker-prove → resolve with one
        lane per worker process.  A no-op under :data:`NULL_TRACER`.
        """
        tracer = self.tracer
        if not getattr(tracer, "enabled", False):
            return
        span_id = tracer.record_span(
            "serve:batch", span_start, time.perf_counter(),
            model=key.model, scheme=key.scheme_name,
            batch_id=result.batch_id,
            request_ids=[r.request_id for r in group],
            occupancy=len(group), padded=padded_size,
            worker=result.worker_id, ok=result.ok)
        if job is not None and job.enqueued_pc and job.dispatched_pc:
            tracer.record_span(
                "serve:queue-wait", job.enqueued_pc, job.dispatched_pc,
                parent_id=span_id, batch_id=result.batch_id,
                priority=job.priority)
        telemetry = getattr(result, "telemetry", None)
        if telemetry is not None and telemetry.spans:
            tracer.ingest(telemetry.spans, parent_id=span_id)

    # -- resolution ----------------------------------------------------------

    def _resolve_group(self, key: BatchKey, group: List[ProofRequest],
                       result, verified: bool, padded_size: int,
                       batch_seconds: float, batch_id: str) -> None:
        # `result` is a BatchProveResult (in-process path: live proof
        # objects) or a worker's BatchResult (cluster path: bytes already
        # serialized on the worker side); both carry the same fields
        if isinstance(result, BatchResult):
            proof_bytes = result.proof_bytes
            envelope_bytes = result.envelope_bytes
        else:
            proof_bytes = proof_to_bytes(result.proof)
            envelope_bytes = result.envelope_bytes()
        ema = self._ema_prove_seconds
        self._ema_prove_seconds = (batch_seconds if ema is None
                                   else 0.5 * ema + 0.5 * batch_seconds)
        now = time.monotonic()
        with self._lock:
            self._batches += 1
            self._proofs += len(group)
            self._coalesced += len(group)
            self._outstanding -= len(group)
        self.metrics.counter("serve_batches_total", "batch proofs produced",
                             model=key.model).inc()
        self.metrics.counter("serve_proofs_total",
                             "requests resolved with a verified proof",
                             model=key.model).inc(len(group))
        self.metrics.histogram("serve_batch_occupancy",
                               "requests coalesced per batch proof",
                               buckets=OCCUPANCY_BUCKETS).observe(len(group))
        self.metrics.gauge("serve_keygen_cache_hit",
                           "1 if the last batch skipped keygen",
                           model=key.model).set(int(result.keygen_cache_hit))
        latency = self.metrics.histogram(
            "serve_request_seconds", "end-to-end request latency",
            buckets=LATENCY_BUCKETS)
        # the batch's proving time amortized over its *occupied* slots:
        # what one request actually cost, not the whole batch's latency
        slot_seconds = result.proving_seconds / max(1, len(group))
        slot_hist = self.metrics.histogram(
            "serve_slot_prove_seconds",
            "per-request proving cost (batch time / occupancy)",
            buckets=LATENCY_BUCKETS)
        for index, request in enumerate(group):
            e2e_seconds = now - request.submitted_at
            latency.observe(e2e_seconds)
            slot_hist.observe(slot_seconds)
            self.runtime.request_done(e2e_seconds, ok=True,
                                      occupancy=len(group))
            self.runtime.note("request_resolved",
                              request_id=request.request_id,
                              batch_id=batch_id, slot=index,
                              latency_seconds=round(e2e_seconds, 4),
                              verified=verified)
            request.future.set_result(ProofResponse(
                request_id=request.request_id,
                sequence=request.id,
                batch_id=batch_id,
                model=key.model,
                scheme_name=key.scheme_name,
                verified=verified,
                proof_bytes=proof_bytes,
                envelope_bytes=envelope_bytes,
                instance=result.instance,
                outputs=result.outputs[index],
                batch_index=index,
                batch_size=len(group),
                padded_size=padded_size,
                queue_seconds=max(0.0, now - request.submitted_at
                                  - batch_seconds),
                prove_seconds=result.proving_seconds,
                slot_prove_seconds=slot_seconds,
                keygen_seconds=result.keygen_seconds,
                keygen_cache_hit=result.keygen_cache_hit,
            ))
        self.runtime.note("batch_resolved", batch_id=batch_id,
                          model=key.model, occupancy=len(group),
                          seconds=round(batch_seconds, 4),
                          verified=verified,
                          keygen_cache_hit=result.keygen_cache_hit)
        log.debug("batch resolved", batch_id=batch_id, model=key.model,
                  occupancy=len(group), padded=padded_size,
                  seconds=round(batch_seconds, 4),
                  keygen_cache_hit=result.keygen_cache_hit)

    def _fail_group(self, key: BatchKey, group: List[ProofRequest],
                    exc: ResilienceError, batch_id: str = "") -> None:
        now = time.monotonic()
        with self._lock:
            self._failed_batches += 1
            self._outstanding -= len(group)
        self.metrics.counter("serve_failed_batches_total",
                             "batches that failed with a typed error",
                             model=key.model).inc()
        for request in group:
            self.runtime.request_done(now - request.submitted_at, ok=False,
                                      occupancy=len(group))
        self.runtime.note("batch_failed", batch_id=batch_id,
                          model=key.model, occupancy=len(group),
                          error=type(exc).__name__, detail=str(exc)[:200],
                          request_ids=[r.request_id for r in group])
        log.warning("batch failed", batch_id=batch_id, model=key.model,
                    occupancy=len(group), error=type(exc).__name__)
        self._auto_dump("batch_failure")
        for request in group:
            request.future.set_exception(exc)

    def _fail_queued(self, exc: ServiceShutdownError) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue_mod.Empty:
                break
            if item is not _STOP:
                item.future.set_exception(exc)
                with self._lock:
                    self._outstanding -= 1
        for group in self._pending.values():
            for request in group:
                request.future.set_exception(exc)
                with self._lock:
                    self._outstanding -= 1
        self._pending.clear()

    # -- introspection -------------------------------------------------------

    def _auto_dump(self, reason: str) -> None:
        """Write an automatic flight-recorder dump if a path is set.

        Routed through :meth:`RuntimeTelemetry.auto_dump`, which
        rate-limits per *reason*: a crash-looping worker failing a batch
        every tick writes one dump per interval, not one per failure.
        """
        if not self.runtime.enabled or not self.runtime.dump_path:
            return
        try:
            artifact = self.runtime.auto_dump(reason)
            if artifact is not None:
                log.warning("flight recorder dumped", reason=reason,
                            path=self.runtime.dump_path)
        except OSError as exc:
            log.warning("flight recorder dump failed", reason=reason,
                        error=str(exc)[:120])

    def dump_flight(self, reason: str = "on_demand",
                    path: Optional[str] = None) -> Dict:
        """Dump the flight recorder now; returns the artifact dict.

        ``path`` overrides the configured ``flight_path``; with neither
        set the artifact is returned in memory only.
        """
        return self.runtime.dump(reason=reason, path=path)

    def health(self) -> Dict[str, object]:
        """A cheap liveness probe: never touches the prover or any lock
        beyond the queue's own.  ``ok`` means the service is accepting;
        ``saturated`` warns that backpressure is imminent."""
        depth = self._queue.qsize()
        headroom = max(0, self.config.max_queue - depth)
        accepting = self._started and not self._closed
        out = {
            "ok": accepting,
            "accepting": accepting,
            "queue_depth": depth,
            "queue_headroom": headroom,
            "saturated": headroom == 0,
            "inflight_batches": len(self._inflight),
        }
        if self._scheduler is not None:
            alive = sum(1 for h in self._scheduler._handles if h.alive)
            out["workers_alive"] = alive
            out["workers"] = self._scheduler.workers
            out["ok"] = accepting and alive > 0
        return out

    def status(self) -> Dict[str, object]:
        """The full operator snapshot (the ``status`` op / ``zkml top``).

        Everything is read from in-memory state — no proving, no disk.
        """
        now = time.monotonic()
        with self._lock:
            pending: Dict[str, int] = {}
            for key, group in self._pending.items():
                pending[key.model] = pending.get(key.model, 0) + len(group)
            inflight = len(self._inflight)
            outstanding = self._outstanding
        out: Dict[str, object] = {
            "schema": "zkml-serve-status/v2",
            "uptime_seconds": round(now - self._started_at, 3)
            if self._started_at is not None else 0.0,
            "accepting": self._started and not self._closed,
            "queue": {
                "depth": self._queue.qsize(),
                "max": self.config.max_queue,
                "headroom": max(0, self.config.max_queue
                                - self._queue.qsize()),
            },
            "inflight_batches": inflight,
            "outstanding_requests": outstanding,
            "pending_by_model": pending,
            "batcher": {
                "max_batch": self.config.max_batch,
                "flush_deadline_seconds": round(self._flush_deadline(), 4),
                "ema_prove_seconds": round(self._ema_prove_seconds, 4)
                if self._ema_prove_seconds is not None else None,
                "workers": self.config.workers,
            },
            "counters": self.stats(),
            "pk_cache": GLOBAL_PK_CACHE.stats(),
            "resilience": events.counts(),
            "mode": "cluster" if self._scheduler is not None else "inline",
        }
        if self._scheduler is not None:
            out["cluster"] = self._scheduler.status()
        if self.runtime.enabled:
            out["slo"] = self.runtime.slo.snapshot()
            recorder = self.runtime.recorder
            out["flight_recorder"] = {
                "buffered": len(recorder),
                "capacity": recorder.capacity,
                "recorded": recorder.recorded,
                "dumps": recorder.dumps,
                "suppressed_dumps": getattr(
                    self.runtime, "suppressed_dumps", 0),
                "dump_path": self.runtime.dump_path,
            }
        return out

    def stats(self) -> Dict[str, float]:
        """A plain-dict snapshot (the smoke test's assertion surface)."""
        with self._lock:
            batches = self._batches
            out = {
                "requests": self._requests,
                "rejected": self._rejected,
                "batches": batches,
                "proofs": self._proofs,
                "failed_batches": self._failed_batches,
                "queue_depth": self._queue.qsize(),
                "mean_occupancy": (self._coalesced / batches) if batches
                else 0.0,
            }
        if self._ema_prove_seconds is not None:
            out["ema_prove_seconds"] = round(self._ema_prove_seconds, 4)
        if self._scheduler is not None:
            out["worker_restarts"] = self._scheduler.restarts
            out["redispatched_batches"] = self._scheduler.redispatched
            out["shed_batches"] = self._scheduler.shed
            out["evicted_batches"] = self._scheduler.evicted
            out["poisoned_batches"] = self._scheduler.poisoned
        return out
