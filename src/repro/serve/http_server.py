"""An HTTP/JSON front end for :class:`ProvingService`.

Runs alongside (or instead of) the unix socket: same wire payloads,
same control ops, same typed errors — both transports feed the one
:class:`~repro.serve.server.PayloadProcessor`, so anything provable
over the socket is provable with ``curl``.  Built on the stdlib
threading HTTP server; no new dependencies.

Routes::

    POST /v1/prove    proof request (socket JSON payload, verbatim)
    POST /v1/control  control op payload ({"op": "health"|...})
    GET  /v1/health   = {"op": "health"}
    GET  /v1/status   = {"op": "status"} (zkml-serve-status/v2; in
                        cluster mode includes the per-worker telemetry
                        block — identical to the socket's, test-pinned)
    GET  /v1/metrics  Prometheus text exposition (text/plain), incl.
                      the per-worker and scheduler series in cluster mode
    POST /v1/dump     = {"op": "dump"} (optional {"path": ...} body)

Responses are the processor's JSON dicts.  Typed service errors map to
honest status codes — backpressure is visible at the HTTP layer:

=============================  ====
``ServiceOverloadedError``     429
``ServiceShutdownError``       503
``ServiceTimeoutError``        504 (also a ``future.result`` timeout)
other ``ResilienceError``      400 (malformed/unknown request)
anything else                  500
=============================  ====

Request-size caps are enforced *before* parse: a POST must carry
``Content-Length`` (411 without it), the declared length is checked
against the same ``MAX_REQUEST_BYTES`` cap as the socket (413) before a
single body byte is read, and the read is exact — a client cannot make
the server buffer or parse more than the cap.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs import log as obs_log
from repro.resilience.errors import (
    ResilienceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    ServiceTimeoutError,
)
from repro.serve.server import MAX_REQUEST_BYTES, PayloadProcessor
from repro.serve.service import ProvingService

__all__ = ["HttpFrontEnd", "DEFAULT_HTTP_PORT"]

#: Default TCP port for ``zkml serve --http-port`` (0 = ephemeral).
DEFAULT_HTTP_PORT = 8791

log = obs_log.get_logger("serve")


def _status_for(exc: Exception) -> int:
    if isinstance(exc, ServiceOverloadedError):
        return 429
    if isinstance(exc, ServiceShutdownError):
        return 503
    if isinstance(exc, (ServiceTimeoutError, FutureTimeoutError)):
        return 504
    if isinstance(exc, ResilienceError):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One request; the processor does the real work."""

    protocol_version = "HTTP/1.1"
    processor: PayloadProcessor = None  # type: ignore[assignment]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003 — stdlib signature
        log.debug("http %s", fmt % args)

    def _reply(self, code: int, body: Dict) -> None:
        data = json.dumps(body).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, code: int, text: str) -> None:
        data = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Optional[Dict]:
        """The parsed JSON body, with the size cap enforced *before*
        any byte is read or parsed.  Replies and returns ``None`` on a
        violation."""
        length = self.headers.get("Content-Length")
        if length is None:
            # the body was never read: drop the connection after replying
            # or a keep-alive peer's body bytes would parse as the next
            # request line
            self.close_connection = True
            self._reply(411, {"ok": False, "error": "ServiceError",
                              "detail": "Content-Length is required"})
            return None
        try:
            length = int(length)
        except ValueError:
            self.close_connection = True
            self._reply(400, {"ok": False, "error": "ServiceError",
                              "detail": "Content-Length must be an integer"})
            return None
        if length < 0 or length > MAX_REQUEST_BYTES:
            self.close_connection = True
            self._reply(413, {"ok": False, "error": "ServiceError",
                              "detail": "request exceeds %d bytes"
                              % MAX_REQUEST_BYTES})
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError:
            self._reply(400, {"ok": False, "error": "ServiceError",
                              "detail": "request body is not valid JSON"})
            return None

    def _run(self, payload: Dict) -> None:
        try:
            self._reply(200, self.processor.process(payload))
        except Exception as exc:  # noqa: BLE001 — every error must become a status code
            name = ("ServiceTimeoutError"
                    if isinstance(exc, FutureTimeoutError)
                    else type(exc).__name__)
            self._reply(_status_for(exc),
                        {"ok": False, "error": name,
                         "detail": str(exc)[:300] or "request timed out"})

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path in ("/v1/health", "/health"):
            self._run({"op": "health"})
        elif self.path in ("/v1/status", "/status"):
            self._run({"op": "status"})
        elif self.path in ("/v1/metrics", "/metrics"):
            try:
                self._reply_text(200, self.processor.metrics_text())
            except Exception as exc:  # noqa: BLE001
                self._reply(500, {"ok": False,
                                  "error": type(exc).__name__,
                                  "detail": str(exc)[:300]})
        else:
            self._reply(404, {"ok": False, "error": "ServiceError",
                              "detail": "unknown path %r" % self.path})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        payload = self._read_body()
        if payload is None:
            return
        if self.path in ("/v1/prove", "/prove", "/"):
            self._run(payload)
        elif self.path in ("/v1/control", "/control"):
            payload.setdefault("op", "health")
            self._run(payload)
        elif self.path in ("/v1/dump", "/dump"):
            payload["op"] = "dump"
            self._run(payload)
        else:
            self._reply(404, {"ok": False, "error": "ServiceError",
                              "detail": "unknown path %r" % self.path})


class HttpFrontEnd:
    """Bind an HTTP/JSON front end over a running service.

    ``port=0`` binds an ephemeral port; read the bound one back from
    ``.port`` (tests and the CLI's startup banner both do).
    """

    def __init__(self, service: ProvingService, host: str = "127.0.0.1",
                 port: int = 0, default_timeout: float = 120.0):
        self.service = service
        self.processor = PayloadProcessor(service, default_timeout)
        handler = type("BoundHandler", (_Handler,),
                       {"processor": self.processor})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "HttpFrontEnd":
        """Serve in a background thread (the unix socket usually owns
        the foreground)."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="zkml-serve-http", daemon=True)
        self._thread.start()
        log.info("http front end on %s", self.url)
        return self

    def serve_forever(self) -> None:
        log.info("http front end on %s", self.url)
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
