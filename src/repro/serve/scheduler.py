"""Cluster scheduler: flushed batches → prover worker processes.

The micro-batcher (:class:`~repro.serve.service.ProvingService`) turns
requests into batches; this module turns batches into *throughput* by
fanning them across N single-purpose worker processes
(:mod:`repro.serve.worker`).  Layout::

    micro-batcher ──▶ ClusterScheduler ──▶ worker 0 (process)
                        │  per-model         worker 1 (process)
                        │  priority queues    ...
                        ◀────────────── shared result queue

Responsibilities:

- **per-model dispatch queues, two priority classes** — every batch
  lands in its model's ``interactive`` or ``bulk`` deque.  Dispatch
  drains all interactive work before any bulk work, round-robining
  across models within a class so one hot model cannot starve the rest;
- **load shedding** — each model's backlog is bounded
  (``max_backlog_batches``).  An overflowing *interactive* batch evicts
  the newest queued bulk batch (shed, typed overload error) before being
  rejected itself; bulk overflow sheds the incoming batch.  Shedding
  fails futures fast instead of letting queue time grow without bound;
- **crash recovery** — a worker process that dies (SIGKILL, OOM,
  segfault) is detected by liveness polling: its in-flight batch is
  re-queued at the *front* of its priority class and a replacement
  worker is spawned.  A batch that out-lives ``redispatch_limit``
  workers is declared poison and failed with a typed
  :class:`~repro.resilience.errors.WorkerCrashError` — one bad batch
  can never crash-loop the whole pool;
- **at-most-once resolution** — a worker that manages to ship its
  result *and* die before the scheduler notices produces both a result
  and a re-dispatch; the service's job table resolves the first and
  ignores the duplicate, so futures settle exactly once.

The scheduler prefers the ``fork`` start method (workers inherit the
parent's warm imports; startup is milliseconds) and falls back to the
platform default elsewhere.  Workers attach the shared
:class:`~repro.perf.pkcache.DiskPKCache` so keygen happens once per
circuit *cluster-wide*, not once per process.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.obs import log as obs_log
from repro.obs.cluster import WorkerAggregate
from repro.obs.runtime import NULL_RUNTIME, SloTracker
from repro.serve.worker import STOP, BatchJob, BatchResult, worker_main

__all__ = ["ClusterScheduler", "PRIORITIES"]

#: Dispatch classes, highest priority first.
PRIORITIES = ("interactive", "bulk")

log = obs_log.get_logger("serve")


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else methods[0])


class _WorkerHandle:
    """One worker process plus its private job queue."""

    def __init__(self, worker_id: int, ctx, result_queue,
                 pk_cache_dir: Optional[str], verify_proofs: bool,
                 telemetry: bool = False):
        self.worker_id = worker_id
        self.job_queue = ctx.Queue()
        self.current: Optional[BatchJob] = None
        self.batches_done = 0
        self.started_at = time.monotonic()
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, self.job_queue, result_queue, pk_cache_dir,
                  verify_proofs, telemetry),
            name="zkml-prover-%d" % worker_id,
            daemon=True,
        )
        self.process.start()

    @property
    def busy(self) -> bool:
        return self.current is not None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def snapshot(self) -> Dict[str, object]:
        return {
            "id": self.worker_id,
            "pid": self.process.pid,
            "alive": self.alive,
            "busy": self.busy,
            "batches_done": self.batches_done,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
        }


class ClusterScheduler:
    """Dispatch batches over a pool of prover worker processes.

    ``on_result(job, result)`` fires on the scheduler's result thread
    for every finished batch (including typed failures and poison
    batches); ``on_shed(job, reason)`` fires for batches dropped by load
    shedding (``reason="overload"``) or a non-draining shutdown
    (``reason="shutdown"``).  Both callbacks must be thread-safe.
    """

    def __init__(self, workers: int,
                 on_result: Callable[[BatchJob, BatchResult], None],
                 on_shed: Callable[[BatchJob, str], None],
                 pk_cache_dir: Optional[str] = None,
                 verify_proofs: bool = True,
                 max_backlog_batches: int = 8,
                 redispatch_limit: int = 2,
                 tick_seconds: float = 0.01,
                 metrics=None,
                 telemetry: bool = False,
                 runtime=None):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.workers = workers
        self.on_result = on_result
        self.on_shed = on_shed
        self.pk_cache_dir = pk_cache_dir
        self.verify_proofs = verify_proofs
        self.max_backlog_batches = max_backlog_batches
        self.redispatch_limit = redispatch_limit
        self.tick_seconds = tick_seconds
        self.metrics = metrics
        self.telemetry = telemetry
        self.runtime = runtime if runtime is not None else NULL_RUNTIME
        self._ctx = _mp_context()
        self._result_queue = self._ctx.Queue()
        self._handles: List[_WorkerHandle] = []
        self._backlog: Dict[str, Dict[str, deque]] = {}
        self._rr: Dict[str, int] = {p: 0 for p in PRIORITIES}
        self._lock = threading.Lock()
        self._running = False
        self._closed = False
        self._stopping = False
        self._monitor: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None
        self.restarts = 0
        self.redispatched = 0
        self.shed = 0
        self.evicted = 0
        self.poisoned = 0
        #: Per-logical-worker rollups (survive respawns; collect-loop fed).
        self.worker_stats: Dict[int, WorkerAggregate] = {}
        #: End-to-end batch SLO windows per priority class.
        self.class_slo: Dict[str, SloTracker] = {
            p: SloTracker() for p in PRIORITIES}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterScheduler":
        if self._running:
            return self
        self._running = True
        for worker_id in range(self.workers):
            self._handles.append(self._spawn(worker_id))
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="zkml-cluster-monitor",
                                         daemon=True)
        self._collector = threading.Thread(target=self._collect_loop,
                                           name="zkml-cluster-results",
                                           daemon=True)
        self._monitor.start()
        self._collector.start()
        log.debug("cluster started", workers=self.workers,
                  pk_cache_dir=self.pk_cache_dir or "")
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        return _WorkerHandle(worker_id, self._ctx, self._result_queue,
                             self.pk_cache_dir, self.verify_proofs,
                             telemetry=self.telemetry)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop intake; with ``drain`` prove out the backlog first.

        Without ``drain`` every queued batch is shed
        (``reason="shutdown"``) so its futures fail typed instead of
        hanging.  Workers get a ``STOP`` sentinel and a bounded join;
        stragglers are terminated.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        if drain:
            while True:
                with self._lock:
                    idle = (not any(h.busy for h in self._handles)
                            and self._backlog_total() == 0)
                if idle:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    break
                time.sleep(self.tick_seconds)
        else:
            for job in self._drain_backlog():
                self.on_shed(job, "shutdown")
        self._stopping = True
        for handle in self._handles:
            try:
                handle.job_queue.put(STOP)
            except (OSError, ValueError):  # pragma: no cover - dead feeder
                pass
        for handle in self._handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
        self._running = False
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        self._result_queue.cancel_join_thread()

    def _drain_backlog(self) -> List[BatchJob]:
        out: List[BatchJob] = []
        with self._lock:
            for queues in self._backlog.values():
                for priority in PRIORITIES:
                    out.extend(queues[priority])
                    queues[priority].clear()
            self._update_backlog_gauges()
        return out

    # -- intake --------------------------------------------------------------

    def _backlog_total(self, model: Optional[str] = None) -> int:
        if model is not None:
            queues = self._backlog.get(model)
            if queues is None:
                return 0
            return sum(len(queues[p]) for p in PRIORITIES)
        return sum(len(q[p]) for q in self._backlog.values()
                   for p in PRIORITIES)

    def enqueue(self, job: BatchJob) -> bool:
        """Queue one batch for dispatch; ``False`` if it was shed.

        Shedding (and the eviction of a queued bulk victim making room
        for an interactive batch) invokes ``on_shed`` synchronously on
        the caller's thread.
        """
        model = job.spec.name
        victim: Optional[BatchJob] = None
        accepted = True
        job.enqueued_pc = time.perf_counter()
        with self._lock:
            if self._closed:
                accepted = False
            else:
                queues = self._backlog.setdefault(
                    model, {p: deque() for p in PRIORITIES})
                total = sum(len(queues[p]) for p in PRIORITIES)
                if total >= self.max_backlog_batches:
                    if job.priority == "interactive" and queues["bulk"]:
                        victim = queues["bulk"].pop()  # newest bulk yields
                        self.evicted += 1
                    else:
                        accepted = False
                if accepted:
                    queues[job.priority].append(job)
                    self.shed += 1 if victim is not None else 0
            self._update_backlog_gauges()
        if victim is not None:
            self._count_shed(victim, "overload")
            if self.metrics is not None:
                self.metrics.counter(
                    "zkml_scheduler_evicted_total",
                    "queued bulk batches evicted for interactive traffic",
                    model=victim.spec.name).inc()
            self.runtime.note("bulk_evicted", batch_id=victim.batch_id,
                              model=victim.spec.name,
                              for_batch=job.batch_id)
            self.on_shed(victim, "overload")
        if not accepted:
            with self._lock:
                self.shed += 1
            reason = "shutdown" if self._closed else "overload"
            self._count_shed(job, reason)
            self.on_shed(job, reason)
        return accepted

    def _count_shed(self, job: BatchJob, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "serve_shed_batches_total",
                "batches dropped by load shedding or shutdown",
                model=job.spec.name, reason=reason).inc()

    def _update_backlog_gauges(self) -> None:
        """Refresh per-(model, class) backlog gauges (lock held).

        Gauges are set for every model ever seen — including zeros — so
        a scrape after a burst still shows the series (at 0) instead of
        the series vanishing.
        """
        if self.metrics is None:
            return
        total = 0
        for model, queues in self._backlog.items():
            for priority in PRIORITIES:
                depth = len(queues[priority])
                total += depth
                self.metrics.gauge(
                    "zkml_scheduler_backlog",
                    "queued batches per model and priority class",
                    model=model, priority=priority).set(depth)
        self.metrics.gauge(
            "zkml_scheduler_backlog_total",
            "queued batches across all models and classes").set(total)

    # -- dispatch + liveness -------------------------------------------------

    def _monitor_loop(self) -> None:
        while self._running:
            self._reap_dead()
            self._dispatch_ready()
            time.sleep(self.tick_seconds)

    def _next_job(self) -> Optional[BatchJob]:
        """The next batch to dispatch: interactive before bulk, models
        round-robined within a class (call with the lock held)."""
        models = sorted(self._backlog)
        if not models:
            return None
        for priority in PRIORITIES:
            start = self._rr[priority]
            for offset in range(len(models)):
                model = models[(start + offset) % len(models)]
                queue = self._backlog[model][priority]
                if queue:
                    self._rr[priority] = (start + offset + 1) % len(models)
                    return queue.popleft()
        return None

    def _dispatch_ready(self) -> None:
        while True:
            with self._lock:
                idle = next((h for h in self._handles
                             if not h.busy and h.alive), None)
                if idle is None:
                    return
                job = self._next_job()
                if job is None:
                    return
                idle.current = job
                job.dispatched_pc = time.perf_counter()
                self._update_backlog_gauges()
            queue_seconds = job.dispatched_pc - job.enqueued_pc \
                if job.enqueued_pc else 0.0
            if self.metrics is not None:
                self.metrics.histogram(
                    "zkml_scheduler_dispatch_seconds",
                    "batch queue wait: enqueue to worker dispatch",
                ).observe(queue_seconds)
                self.metrics.counter(
                    "zkml_scheduler_dispatched_total",
                    "batches handed to a worker process",
                    model=job.spec.name, priority=job.priority).inc()
            self.runtime.note("batch_dispatched", batch_id=job.batch_id,
                              worker=idle.worker_id, model=job.spec.name,
                              priority=job.priority,
                              queue_seconds=round(queue_seconds, 6))
            try:
                idle.job_queue.put(job)
            except (OSError, ValueError):
                # the worker died between the liveness check and the put;
                # the reaper will re-dispatch `current`
                return

    def _reap_dead(self) -> None:
        if self._stopping:
            return
        poisoned: List[BatchJob] = []
        with self._lock:
            for index, handle in enumerate(self._handles):
                if handle.alive:
                    continue
                job = handle.current
                self.restarts += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "serve_worker_restarts_total",
                        "prover worker processes replaced after a crash",
                    ).inc()
                self.runtime.note("worker_respawned",
                                  worker=handle.worker_id,
                                  pid=handle.process.pid,
                                  exitcode=handle.process.exitcode,
                                  inflight=job.batch_id if job else "")
                log.warning("worker died; respawning",
                            worker=handle.worker_id,
                            pid=handle.process.pid,
                            exitcode=handle.process.exitcode,
                            inflight=job.batch_id if job else "")
                self._handles[index] = self._spawn(handle.worker_id)
                if job is None:
                    continue
                job.redispatches += 1
                if job.redispatches > self.redispatch_limit:
                    poisoned.append(job)
                    continue
                self.redispatched += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "serve_redispatched_batches_total",
                        "in-flight batches re-queued after a worker crash",
                        model=job.spec.name).inc()
                self.runtime.note("batch_redispatched",
                                  batch_id=job.batch_id,
                                  model=job.spec.name,
                                  redispatches=job.redispatches)
                # front of its class: a crashed batch does not lose its
                # place behind newer traffic
                self._backlog.setdefault(
                    job.spec.name, {p: deque() for p in PRIORITIES}
                )[job.priority].appendleft(job)
                self._update_backlog_gauges()
        for job in poisoned:
            with self._lock:
                self.poisoned += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "zkml_scheduler_poisoned_total",
                    "batches declared poison after the re-dispatch limit",
                    model=job.spec.name).inc()
            self.runtime.note("batch_poisoned", batch_id=job.batch_id,
                              model=job.spec.name,
                              redispatches=job.redispatches)
            self._observe_class_slo(job, ok=False)
            self.on_result(job, BatchResult(
                job_id=job.job_id, batch_id=job.batch_id, ok=False,
                worker_id=-1, pid=0, error="WorkerCrashError",
                detail="batch killed %d workers (re-dispatch limit %d); "
                       "declared poison" % (job.redispatches,
                                            self.redispatch_limit)))

    def _observe_class_slo(self, job: BatchJob, ok: bool) -> None:
        """Feed one finished batch into its priority class's SLO windows."""
        if job.spec is None or not job.enqueued_pc:
            return
        tracker = self.class_slo.get(job.priority)
        if tracker is None:
            return
        tracker.observe(time.perf_counter() - job.enqueued_pc, ok=ok,
                        occupancy=job.occupancy)

    def _collect_loop(self) -> None:
        while self._running:
            try:
                result = self._result_queue.get(timeout=self.tick_seconds)
            except (queue_mod.Empty, OSError, ValueError):
                continue
            job = None
            with self._lock:
                for handle in self._handles:
                    current = handle.current
                    if current is not None \
                            and current.job_id == result.job_id:
                        handle.current = None
                        handle.batches_done += 1
                        job = current
                        break
                if result.worker_id >= 0:
                    aggregate = self.worker_stats.get(result.worker_id)
                    if aggregate is None:
                        aggregate = WorkerAggregate(result.worker_id)
                        self.worker_stats[result.worker_id] = aggregate
                    aggregate.note_result(result)
            if job is not None:
                self._observe_class_slo(job, ok=result.ok)
            if job is None:
                # result from a worker already reaped (it shipped the
                # result and then died); the re-dispatched duplicate is
                # still queued — resolve with this one, the service's
                # job table drops whichever lands second
                job = BatchJob(
                    job_id=result.job_id, batch_id=result.batch_id,
                    spec=None, batch_inputs=[], scheme_name="", num_cols=0,
                    scale_bits=0, lookup_bits=None, occupancy=0,
                    padded_size=0)
            self.on_result(job, result)

    # -- introspection -------------------------------------------------------

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [h.process.pid for h in self._handles if h.process.pid]

    def status(self) -> Dict[str, object]:
        with self._lock:
            backlog = {
                model: {p: len(queues[p]) for p in PRIORITIES
                        if len(queues[p])}
                for model, queues in self._backlog.items()
                if any(len(queues[p]) for p in PRIORITIES)
            }
            workers = []
            for handle in self._handles:
                snap = handle.snapshot()
                aggregate = self.worker_stats.get(handle.worker_id)
                if aggregate is not None:
                    snap["telemetry"] = aggregate.snapshot()
                workers.append(snap)
            return {
                "workers": workers,
                "alive": sum(1 for h in self._handles if h.alive),
                "busy": sum(1 for h in self._handles if h.busy),
                "backlog": backlog,
                "backlog_total": self._backlog_total(),
                "max_backlog_batches": self.max_backlog_batches,
                "restarts": self.restarts,
                "redispatched": self.redispatched,
                "shed": self.shed,
                "evicted": self.evicted,
                "poisoned": self.poisoned,
                "worker_telemetry": self.telemetry,
                "slo_by_class": {
                    priority: tracker.snapshot()
                    for priority, tracker in self.class_slo.items()
                },
                "pk_cache_dir": self.pk_cache_dir,
            }
