"""Verifying-key registry: content-addressed VK artifacts on disk.

A verifier that accepts envelopes from untrusted parties needs key
provenance: given an envelope's verifying-key hash, fetch *the* key the
prover published — or refuse with a typed error.  :class:`VKRegistry`
stores pickled :class:`~repro.halo2.keygen.VerifyingKey` artifacts
content-addressed by their binding digest, checksummed at publish time
and re-verified on every read, with atomic writes and
evict-on-corruption (the proving-key cache's integrity pattern, applied
to disk).  ``zkml registry publish|list|check`` is the operator surface.
"""

from repro.registry.store import (
    INDEX_SCHEMA,
    RegistryEntry,
    VKRegistry,
)

__all__ = ["VKRegistry", "RegistryEntry", "INDEX_SCHEMA"]
